"""Tuning extensions: phase optimisation + the adaptive-Θ controller.

Two knobs the paper leaves manual, automated:

1. **Heartbeat phases** — `optimize_phases` picks daemon start offsets
   that minimise the expected wait for the next train (the length-biased
   merged-gap mean).  Restarting daemons at those offsets needs no app
   changes.
2. **Θ selection** — `AdaptiveThetaETrainStrategy` converges Θ toward a
   target delay instead of asking the user to sweep Fig. 7(a).

Run:  python examples/tuning_extensions.py
"""

from repro.baselines import AdaptiveThetaETrainStrategy, ETrainStrategy
from repro.core import SchedulerConfig, TrainAppProfile
from repro.heartbeat.generators import FixedCycleGenerator
from repro.heartbeat.phases import expected_wait, optimize_phases
from repro.sim import Scenario, default_scenario, run_strategy

CYCLES = [300.0, 270.0, 240.0]


def scenario_with_phases(phases):
    base = default_scenario(horizon=7200.0, seed=3)
    generators = [
        FixedCycleGenerator(
            TrainAppProfile(
                app_id=f"train{i}",
                cycle=cycle,
                heartbeat_size_bytes=120,
                first_heartbeat=phase % cycle,
            )
        )
        for i, (cycle, phase) in enumerate(zip(CYCLES, phases))
    ]
    return Scenario(
        profiles=base.profiles,
        train_generators=generators,
        packets=base.fresh_packets(),
        bandwidth=base.bandwidth,
        power_model=base.power_model,
        horizon=base.horizon,
    )


def main() -> None:
    # --- 1. Phase optimisation -------------------------------------
    aligned = [0.0, 0.0, 0.0]
    optimized, best_wait = optimize_phases(CYCLES, objective="wait", grid=10)
    print("Heartbeat phase tuning (expected wait for the next train):")
    print(f"  aligned   {aligned}: {expected_wait(CYCLES, aligned):6.1f} s")
    print(f"  optimized {[round(p) for p in optimized]}: {best_wait:6.1f} s")

    for label, phases in (("aligned", aligned), ("optimized", optimized)):
        sc = scenario_with_phases(phases)
        result = run_strategy(
            ETrainStrategy(sc.profiles, SchedulerConfig(theta=1.0)), sc
        )
        print(
            f"  eTrain with {label:9s} phases: "
            f"{result.total_energy:7.1f} J, delay {result.normalized_delay:5.1f} s"
        )

    # --- 2. Adaptive theta ------------------------------------------
    print("\nAdaptive-theta controller (no manual theta sweep):")
    for target in (10.0, 40.0, 120.0):
        sc = default_scenario(horizon=7200.0, seed=3)
        strategy = AdaptiveThetaETrainStrategy(sc.profiles, target_delay=target)
        result = run_strategy(strategy, sc)
        print(
            f"  target {target:5.0f} s -> theta converged to "
            f"{strategy.theta:6.2f}; energy {result.total_energy:7.1f} J, "
            f"delay {result.normalized_delay:5.1f} s"
        )


if __name__ == "__main__":
    main()
