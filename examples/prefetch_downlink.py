"""Prefetching over the downlink — Sec. V-4's second request type.

A news-reader cargo app periodically prefetches article bundles ("want
to download some data (mainly for prefetching purpose)").  Downloads
ride the downlink (severalfold faster than the uplink) but wake the
radio exactly like uploads — so eTrain schedules them onto heartbeat
tails the same way.

The example contrasts three policies for the same prefetch stream:
fetch-on-publish (immediate), fixed-interval polling, and eTrain
piggybacking — and prints the per-bundle schedule.

Run:  python examples/prefetch_downlink.py
"""

from repro.android import AndroidSystem, CargoApp, ETrainService, TrainApp
from repro.core import CargoAppProfile, MailCost, SchedulerConfig
from repro.heartbeat.apps import known_train_profile

HORIZON = 3600.0

#: Article bundles publish roughly every 6 minutes, 40-150 KB each.
BUNDLES = [
    (240.0, 80_000), (590.0, 120_000), (940.0, 45_000), (1310.0, 150_000),
    (1700.0, 60_000), (2100.0, 95_000), (2460.0, 70_000), (2880.0, 110_000),
    (3230.0, 55_000),
]


def news_profile() -> CargoAppProfile:
    """Prefetches are free until a 10-minute staleness deadline."""
    return CargoAppProfile(
        app_id="news",
        cost_function=MailCost(600.0),
        mean_size_bytes=90_000,
        min_size_bytes=40_000,
        deadline=600.0,
        mean_interarrival=400.0,
    )


def run(label: str, use_etrain: bool) -> float:
    system = AndroidSystem()
    service = ETrainService(system, SchedulerConfig(theta=0.5, k=None))
    for app_id, phase in (("qq", 0.0), ("wechat", 97.0)):
        train = TrainApp(known_train_profile(app_id, phase), system)
        train.start()
        service.attach_train_app(train)

    news = CargoApp(news_profile(), system, direct_mode=not use_etrain)
    news.register()
    for when, size in BUNDLES:
        system.alarm_manager.set_exact(
            when, lambda t, s=size: news.prefetch(s)
        )

    if use_etrain:
        service.start()
    system.run_until(HORIZON)
    if use_etrain:
        service.stop()

    energy = system.total_energy()
    downlink_bursts = sum(
        1 for r in system.radio.records if r.kind in ("data", "piggyback")
    )
    print(f"{label}: {energy:7.2f} J, {len(system.radio.records)} bursts")
    for p in sorted(news.transmitted, key=lambda p: p.arrival_time):
        print(
            f"  bundle {p.size_bytes // 1000:3d} KB published {p.arrival_time:6.1f}s"
            f" -> fetched {p.scheduled_time:6.1f}s"
            f" (staleness {p.delay:5.1f}s, {p.direction}link)"
        )
    print()
    return energy


def main() -> None:
    fetch_on_publish = run("fetch-on-publish", use_etrain=False)
    piggybacked = run("eTrain piggyback", use_etrain=True)
    saving = 1.0 - piggybacked / fetch_on_publish
    print(
        f"eTrain cuts prefetch radio energy by {100 * saving:.0f}% while "
        "keeping every bundle fresher than its 10-minute staleness budget."
    )


if __name__ == "__main__":
    main()
