"""Population study on the fleet engine: energy saving vs fleet size.

A Fig. 7-style curve, but over *population* instead of a scheduler
parameter: simulate fleets from 1 k to 100 k devices with the batched
NumPy engine (`repro.sim.fleet`), comparing eTrain against the
immediate-send baseline, and print per-device energy, the energy
saving, and the piggyback ratio at each population.  Heartbeat phases
are randomised per device (`phase_mode="random"`), so the population
is heterogeneous the way Sec. VI's user studies are.

The default 15-minute horizon keeps the full 126 k simulated devices
(2 strategies x 4 populations) under a minute on a laptop-class
machine; pass ``--horizon 7200`` for the paper's full 2-hour window
(proportionally slower).

Run:  PYTHONPATH=src python examples/fleet_population.py
      PYTHONPATH=src python examples/fleet_population.py --populations 1000,10000
"""

import argparse
import time

from repro.sim.fleet import FleetSpec, run_fleet

DEFAULT_POPULATIONS = (1_000, 5_000, 20_000, 100_000)


def simulate(population, strategy, args):
    spec = FleetSpec.make(
        population,
        strategy,
        chunk_size=min(args.chunk_size, population),
        seed=args.seed,
        horizon=args.horizon,
        phase_mode="random",
    )
    return run_fleet(spec, workers=args.workers)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--populations",
        default=",".join(str(p) for p in DEFAULT_POPULATIONS),
        help="comma-separated fleet sizes (default: %(default)s)",
    )
    parser.add_argument("--horizon", type=float, default=900.0)
    parser.add_argument("--chunk-size", type=int, default=8192)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    populations = [int(p) for p in args.populations.split(",")]

    started = time.perf_counter()
    print(
        f"eTrain vs immediate over fleet size "
        f"({args.horizon:.0f} s horizon, random heartbeat phases)\n"
    )
    print(
        f"{'devices':>9} | {'immediate J/dev':>15} | {'etrain J/dev':>12} | "
        f"{'saving':>7} | {'piggyback':>9} | {'dev/s':>7}"
    )
    print("-" * 78)
    for population in populations:
        base = simulate(population, "immediate", args)
        etr = simulate(population, "etrain", args)
        e_base = base.summary.summary()["energy_per_device_j"]
        e_etr = etr.summary.summary()["energy_per_device_j"]
        saving = 1.0 - e_etr / e_base
        rate = (base.spec.devices + etr.spec.devices) / (
            base.wall_time + etr.wall_time
        )
        print(
            f"{population:>9,} | {e_base:>15.1f} | {e_etr:>12.1f} | "
            f"{saving:>6.1%} | {etr.summary.summary()['piggyback_ratio']:>9.3f} | "
            f"{rate:>7,.0f}"
        )
    print(
        f"\n{2 * sum(populations):,} device-runs in "
        f"{time.perf_counter() - started:.1f} s total"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
