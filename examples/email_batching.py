"""Email batching: the paper's motivating scenario, end to end.

A mail client generates messages through the morning; WeChat's heartbeat
daemon is running in the background.  The example shows, step by step,

1. how scattered immediate sends waste one radio tail per message,
2. how eTrain defers and piggybacks them onto heartbeats,
3. how the offline optimum bounds what any schedule could achieve.

Run:  python examples/email_batching.py
"""

from repro.bandwidth.models import ConstantBandwidth
from repro.baselines import ETrainStrategy, ImmediateStrategy
from repro.core import (
    MailCost,
    CargoAppProfile,
    Packet,
    SchedulerConfig,
    exhaustive_offline,
)
from repro.heartbeat.apps import make_generator
from repro.heartbeat.generators import merge_heartbeats
from repro.sim import Simulation


def mail_workload():
    """Seven emails over 20 minutes, 4-40 KB, 5-minute deadline."""
    sends = [(65.0, 12_000), (140.0, 4_000), (410.0, 25_000), (430.0, 8_000),
             (700.0, 40_000), (900.0, 6_000), (1100.0, 15_000)]
    return [
        Packet(app_id="mail", arrival_time=t, size_bytes=s, deadline=300.0)
        for t, s in sends
    ]


def profile() -> CargoAppProfile:
    return CargoAppProfile(
        app_id="mail",
        cost_function=MailCost(300.0),
        mean_size_bytes=15_000,
        min_size_bytes=4_000,
        deadline=300.0,
        mean_interarrival=180.0,
    )


def run(strategy_name: str, strategy, packets):
    sim = Simulation(
        strategy,
        [make_generator("wechat")],
        packets,
        bandwidth=ConstantBandwidth(100_000.0),
        horizon=1300.0,
    )
    result = sim.run()
    print(f"{strategy_name}:")
    print(f"  energy {result.total_energy:7.2f} J in {result.burst_count} bursts, "
          f"mean delay {result.normalized_delay:5.1f} s, "
          f"violations {100 * result.deadline_violation_ratio:.0f}%")
    for p in sorted(result.packets, key=lambda p: p.arrival_time):
        rode = "piggybacked" if any(
            p.packet_id in r.packet_ids and r.kind == "piggyback"
            for r in result.records
        ) else "standalone"
        print(f"    mail @ {p.arrival_time:6.1f}s -> sent {p.scheduled_time:6.1f}s "
              f"({rode})")
    return result


def main() -> None:
    print("Scenario: 7 emails, WeChat heartbeats every 270 s\n")

    immediate = run("Immediate baseline", ImmediateStrategy(), mail_workload())
    print()
    etrain = run(
        "eTrain (theta=0.5)",
        ETrainStrategy([profile()], SchedulerConfig(theta=0.5)),
        mail_workload(),
    )

    # Offline optimum over the same instance (exact, tiny search space).
    packets = mail_workload()
    heartbeats = merge_heartbeats([make_generator("wechat")], 1300.0)
    best = exhaustive_offline(
        packets,
        heartbeats,
        {"mail": MailCost(300.0)},
        delay_budget=2.0,
        bandwidth=ConstantBandwidth(100_000.0),
    )
    print()
    print(f"Offline optimum (budget 2.0): {best.total_energy:7.2f} J")
    saving = 1.0 - etrain.total_energy / immediate.total_energy
    gap = etrain.total_energy / best.total_energy - 1.0
    print(f"eTrain saves {100 * saving:.0f}% vs immediate; "
          f"{100 * gap:.0f}% above the offline bound")


if __name__ == "__main__":
    main()
