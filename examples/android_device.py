"""Android-layer walkthrough: the full eTrain system on a virtual phone.

Reconstructs the paper's Fig. 5 architecture end to end:

* three train apps arm AlarmManager heartbeat daemons;
* the eTrain service hooks their heartbeat senders (Xposed-style),
  feeds the Heartbeat Monitor, and runs Algorithm 1 every second;
* Luna Weibo / eTrain Mail / eTrain Cloud register over the broadcast
  bus and transmit only when eTrain says so;
* a Monsoon-style power monitor samples the device at 10 Hz.

Run:  python examples/android_device.py
"""

from repro.android import (
    AndroidSystem,
    ETrainCloud,
    ETrainMail,
    ETrainService,
    LunaWeibo,
    TrainApp,
)
from repro.core import SchedulerConfig
from repro.heartbeat.apps import known_train_profile
from repro.measurement import PowerMonitor
from repro.workload.user_traces import ActivityClass, generate_session

HORIZON = 1800.0  # half an hour of virtual time


def build_device(use_etrain: bool) -> tuple:
    system = AndroidSystem()
    service = ETrainService(system, SchedulerConfig(theta=0.2, k=20))

    for app_id, phase in (("qq", 0.0), ("wechat", 97.0), ("whatsapp", 194.0)):
        train = TrainApp(known_train_profile(app_id, phase), system)
        train.start()
        service.attach_train_app(train)

    weibo = LunaWeibo(system)
    mail = ETrainMail(system)
    cloud = ETrainCloud(system)
    for app in (weibo, mail, cloud):
        app.direct_mode = not use_etrain
        app.register()

    # Workloads: a recorded user session for Weibo, Poisson for the rest.
    weibo.replay_trace(generate_session("demo-user", ActivityClass.ACTIVE, seed=7))
    mail.schedule_poisson(HORIZON, seed=1)
    cloud.schedule_poisson(HORIZON, seed=2)

    if use_etrain:
        service.start()
    return system, service, (weibo, mail, cloud)


def run(use_etrain: bool) -> float:
    system, service, apps = build_device(use_etrain)
    system.run_until(HORIZON)
    if use_etrain:
        service.stop()

    label = "with eTrain" if use_etrain else "without eTrain"
    monitor = PowerMonitor()
    trace = monitor.capture(system.radio.rrc, horizon=HORIZON)
    energy = system.total_energy()

    print(f"{label}:")
    print(f"  radio energy (extra over idle): {energy:8.2f} J")
    print(f"  power-monitor reading:          {trace.energy():8.2f} J "
          f"(mean {1000 * trace.mean_current():.1f} mA @ 3.7 V)")
    print(f"  radio bursts: {len(system.radio.records)}")
    for app in apps:
        delays = [p.delay for p in app.transmitted if p.is_scheduled]
        mean_delay = sum(delays) / len(delays) if delays else 0.0
        print(f"  {app.app_id:6s} {len(app.transmitted):3d} packets, "
              f"mean delay {mean_delay:5.1f} s")
    if use_etrain:
        cycles = {a: service.monitor.cycle_of(a) for a in service.monitor.app_ids}
        print(f"  monitor-learned cycles: "
              + ", ".join(f"{a}={c:.0f}s" for a, c in cycles.items()))
    print()
    return energy


def main() -> None:
    without = run(use_etrain=False)
    with_ = run(use_etrain=True)
    print(f"eTrain saved {without - with_:.1f} J "
          f"({100 * (1 - with_ / without):.0f}% of radio energy)")


if __name__ == "__main__":
    main()
