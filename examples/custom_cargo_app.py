"""Integrating your own delay-tolerant app with eTrain.

The paper's pitch to developers: "add some predefined subclasses of
BroadcastReceiver provided by eTrain system, and let other logic
unchanged".  This example builds a podcast-download app with a custom
delay-cost profile, registers it alongside the stock cargo apps, and
compares its delivery with and without scheduling.

Covers: custom cost functions (PiecewiseLinearCost), custom profiles,
the broadcast protocol, and per-app statistics.

Run:  python examples/custom_cargo_app.py
"""

from repro.android import AndroidSystem, CargoApp, ETrainService, TrainApp
from repro.core import CargoAppProfile, PiecewiseLinearCost, SchedulerConfig
from repro.heartbeat.apps import known_train_profile

HORIZON = 2400.0


def podcast_profile() -> CargoAppProfile:
    """Large prefetch downloads: free for 10 minutes, then climbing.

    The piecewise profile expresses "I'd like episodes before the
    commute, but anytime in the next few minutes is equally fine".
    """
    cost = PiecewiseLinearCost(
        breakpoints=[(0.0, 0.0), (600.0, 0.0), (900.0, 1.0), (1200.0, 4.0)],
        deadline=900.0,
    )
    return CargoAppProfile(
        app_id="podcasts",
        cost_function=cost,
        mean_size_bytes=400_000,
        min_size_bytes=100_000,
        deadline=900.0,
        mean_interarrival=600.0,
    )


class PodcastApp(CargoApp):
    """A cargo app that queues episode prefetches."""

    def prefetch_episode(self, size_bytes: int):
        """Submit one episode download request to eTrain."""
        return self.submit(size_bytes)


def run(use_etrain: bool) -> None:
    system = AndroidSystem()
    service = ETrainService(system, SchedulerConfig(theta=0.3, k=None))

    train = TrainApp(known_train_profile("wechat"), system)
    train.start()
    service.attach_train_app(train)

    podcasts = PodcastApp(podcast_profile(), system, direct_mode=not use_etrain)
    podcasts.register()

    # Three episodes become available during the run.
    for when, size in ((120.0, 350_000), (480.0, 500_000), (1500.0, 250_000)):
        system.alarm_manager.set_exact(
            when, lambda t, s=size: podcasts.prefetch_episode(s)
        )

    if use_etrain:
        service.start()
    system.run_until(HORIZON)
    if use_etrain:
        service.stop()

    label = "with eTrain" if use_etrain else "direct mode"
    print(f"{label}: {system.total_energy():7.2f} J, "
          f"{len(system.radio.records)} bursts")
    for p in podcasts.transmitted:
        print(f"  episode {p.size_bytes // 1000:3d} KB: "
              f"available {p.arrival_time:6.1f}s, sent {p.scheduled_time:6.1f}s "
              f"(waited {p.delay:5.1f}s, cost "
              f"{podcast_profile().cost_function(p.delay):.2f})")
    print()


def main() -> None:
    run(use_etrain=False)
    run(use_etrain=True)
    print("Episodes ride WeChat's 270-second heartbeats; the piecewise "
          "profile keeps every wait inside the free region.")


if __name__ == "__main__":
    main()
