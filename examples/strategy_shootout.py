"""Strategy shootout: every scheduler over every channel condition.

Runs every strategy in the registry (``STRATEGY_BUILDERS`` — the
paper's baselines plus the literature-derived families: lazy-circuit
batching, harvesting-aware lazy scheduling, common-deadline rounds and
AoI-threshold downloads) over three channels — flat, bursty Markov, and
the synthetic Wuhan drive trace — and prints one comparison table per
channel: energy, delay, delay *cost* (per-app cost functions),
violations, freshness (AoI) and savings.  This is the "which scheduler
should my app use?" view a downstream adopter wants.

Run:  python examples/strategy_shootout.py
"""

from repro.analysis.metrics import compare_results
from repro.analysis.summarize import format_table
from repro.bandwidth.models import ConstantBandwidth, MarkovBandwidth
from repro.bandwidth.synth import wuhan_bandwidth_model
from repro.sim import default_scenario, run_strategy
from repro.sim.parallel.specs import STRATEGY_BUILDERS

HORIZON = 3600.0

CHANNELS = {
    "flat 100 KB/s": lambda: ConstantBandwidth(100_000.0),
    "bursty Markov": lambda: MarkovBandwidth(
        good_rate=250_000.0, bad_rate=15_000.0, seed=11
    ),
    "Wuhan drive trace": lambda: wuhan_bandwidth_model(),
}

#: Non-default knobs per registry entry; everything else runs with the
#: builder's defaults.  ``fixed_batch`` is the fleet-facing alias of
#: ``periodic``, so the shootout skips the duplicate row.
PARAMS = {
    "etime": {"v": 40_000.0},
    "peres": {"omega": 0.4},
    "etrain": {"theta": 1.0},
}
SKIP = {"fixed_batch"}


def strategies(scenario):
    """One instance of every registered strategy, fresh per scenario."""
    return [
        STRATEGY_BUILDERS[name](scenario, **PARAMS.get(name, {}))
        for name in sorted(STRATEGY_BUILDERS)
        if name not in SKIP
    ]


def main() -> None:
    for channel_name, channel_factory in CHANNELS.items():
        scenario = default_scenario(
            horizon=HORIZON, seed=7, bandwidth=channel_factory()
        )
        costs = {p.app_id: p.cost_function for p in scenario.profiles}
        results = [run_strategy(s, scenario) for s in strategies(scenario)]
        rows = compare_results(results, costs=costs)
        print(
            format_table(
                ["strategy", "energy (J)", "delay (s)", "delay cost",
                 "violations", "AoI (s)", "bursts", "saved (%)"],
                [
                    [r.strategy, r.total_energy_j, r.normalized_delay_s,
                     r.delay_cost_j, r.deadline_violation_ratio, r.aoi_s,
                     r.bursts, r.saving_vs_baseline_pct]
                    for r in rows
                ],
                title=f"Channel: {channel_name}",
            )
        )
        print()


if __name__ == "__main__":
    main()
