"""Strategy shootout: every scheduler over every channel condition.

Runs all six transmission strategies (immediate, periodic batching,
TailEnder, eTime, PerES, eTrain) over three channels — flat, bursty
Markov, and the synthetic Wuhan drive trace — and prints one comparison
table per channel.  This is the "which scheduler should my app use?"
view a downstream adopter wants.

Run:  python examples/strategy_shootout.py
"""

from repro.analysis.metrics import compare_results
from repro.analysis.summarize import format_table
from repro.bandwidth.models import ConstantBandwidth, MarkovBandwidth
from repro.bandwidth.synth import wuhan_bandwidth_model
from repro.baselines import (
    ETimeStrategy,
    ETrainStrategy,
    ImmediateStrategy,
    PerESStrategy,
    PeriodicBatchStrategy,
    TailEnderStrategy,
)
from repro.core import SchedulerConfig
from repro.sim import default_scenario, run_strategy

HORIZON = 3600.0

CHANNELS = {
    "flat 100 KB/s": lambda: ConstantBandwidth(100_000.0),
    "bursty Markov": lambda: MarkovBandwidth(
        good_rate=250_000.0, bad_rate=15_000.0, seed=11
    ),
    "Wuhan drive trace": lambda: wuhan_bandwidth_model(),
}


def strategies(scenario):
    """One instance of every strategy, freshly built per scenario."""
    return [
        ImmediateStrategy(),
        PeriodicBatchStrategy(period=60.0),
        TailEnderStrategy(scenario.profiles),
        ETimeStrategy(scenario.estimator(), v=40_000.0),
        PerESStrategy(scenario.profiles, scenario.estimator(), omega=0.4),
        ETrainStrategy(scenario.profiles, SchedulerConfig(theta=1.0)),
    ]


def main() -> None:
    for channel_name, channel_factory in CHANNELS.items():
        scenario = default_scenario(
            horizon=HORIZON, seed=7, bandwidth=channel_factory()
        )
        results = [run_strategy(s, scenario) for s in strategies(scenario)]
        rows = compare_results(results)
        print(
            format_table(
                ["strategy", "energy (J)", "delay (s)", "violations",
                 "bursts", "saved (%)"],
                [
                    [r.strategy, r.total_energy_j, r.normalized_delay_s,
                     r.deadline_violation_ratio, r.bursts,
                     r.saving_vs_baseline_pct]
                    for r in rows
                ],
                title=f"Channel: {channel_name}",
            )
        )
        print()


if __name__ == "__main__":
    main()
