"""Quickstart: how much energy does eTrain save on the paper's workload?

Builds the evaluation's default scenario (3 IM train apps, 3 cargo apps
at λ = 0.08 packets/s, a synthetic 2-hour 3G bandwidth trace, Galaxy S4
power constants), runs the immediate-send baseline and eTrain, and
prints the headline numbers.

Run:  python examples/quickstart.py
"""

from repro.analysis.metrics import compare_results
from repro.analysis.summarize import format_table
from repro.baselines import ETrainStrategy, ImmediateStrategy
from repro.core import SchedulerConfig
from repro.sim import default_scenario, run_strategy


def main() -> None:
    scenario = default_scenario(horizon=7200.0, seed=42)

    baseline = run_strategy(ImmediateStrategy(), scenario)
    etrain = run_strategy(
        ETrainStrategy(scenario.profiles, SchedulerConfig(theta=1.0, k=None)),
        scenario,
    )

    rows = compare_results([baseline, etrain])
    print(
        format_table(
            ["strategy", "energy (J)", "delay (s)", "violations", "bursts",
             "saved (J)", "saved (%)"],
            [
                [r.strategy, r.total_energy_j, r.normalized_delay_s,
                 r.deadline_violation_ratio, r.bursts,
                 r.saving_vs_baseline_j, r.saving_vs_baseline_pct]
                for r in rows
            ],
            title="eTrain vs immediate baseline (2-hour simulation)",
        )
    )

    print()
    print(f"packets piggybacked onto heartbeats: {100 * etrain.piggyback_ratio:.0f}%")
    print(f"tail energy share, baseline: {100 * baseline.energy.tail_fraction:.0f}%")
    print(f"tail energy share, eTrain:   {100 * etrain.energy.tail_fraction:.0f}%")


if __name__ == "__main__":
    main()
