"""Unit + property tests for the Lyapunov drift machinery (Eqs. 6-9)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cost_functions import LinearCost, WeiboCost, ZeroCost
from repro.core.lyapunov import (
    AppDriftState,
    build_drift_states,
    greedy_select,
    lyapunov_value,
    marginal_gain,
    objective_value,
)
from repro.core.queues import WaitingQueue

from tests.conftest import make_packet


def state(specs, app_id="weibo"):
    packets = [make_packet(arrival=0.0) for _ in specs]
    return AppDriftState(app_id=app_id, packets=packets, speculative=list(specs))


class TestDriftState:
    def test_p_bar_is_sum(self):
        s = state([1.0, 2.0, 3.0])
        assert s.p_bar == pytest.approx(6.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            AppDriftState(app_id="x", packets=[make_packet()], speculative=[])

    def test_build_from_queues(self):
        q = WaitingQueue("weibo", WeiboCost(30.0))
        q.enqueue(make_packet(arrival=0.0))
        states = build_drift_states({"weibo": q}, now=14.0, slot=1.0)
        assert states["weibo"].speculative[0] == pytest.approx(0.5)


class TestMarginalGain:
    def test_formula(self):
        s = state([1.0, 2.0])
        # (p_bar - selected)·spec - spec²/2 = 3·2 - 2 = 4
        assert marginal_gain(s, 2.0) == pytest.approx(4.0)

    def test_gain_at_least_half_square(self):
        """Unselected mass covers the candidate: gain >= spec²/2."""
        s = state([0.5, 1.5, 2.5])
        for spec in s.speculative:
            assert marginal_gain(s, spec) >= spec**2 / 2 - 1e-12

    def test_zero_spec_zero_gain(self):
        s = state([0.0, 1.0])
        assert marginal_gain(s, 0.0) == 0.0


class TestObjectiveAndLyapunov:
    def test_objective_value(self):
        assert objective_value(5.0, [1.0, 2.0]) == pytest.approx(5 * 3 - 4.5)

    def test_lyapunov_value(self):
        assert lyapunov_value([3.0, 4.0]) == pytest.approx(12.5)

    def test_lyapunov_empty(self):
        assert lyapunov_value([]) == 0.0


class TestGreedySelect:
    def test_respects_budget(self):
        states = {"a": state([1.0, 1.0, 1.0], "a")}
        picks = greedy_select(states, budget=2)
        assert len(picks) == 2

    def test_zero_budget(self):
        states = {"a": state([1.0], "a")}
        assert greedy_select(states, budget=0) == []

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            greedy_select({}, budget=-1)

    def test_picks_highest_cost_first(self):
        states = {"a": state([0.5, 3.0, 1.0], "a")}
        picks = greedy_select(states, budget=1)
        app, packet = picks[0]
        idx_of_picked = 1  # spec 3.0 had the highest gain
        assert packet not in states["a"].packets
        assert 3.0 not in states["a"].speculative

    def test_skips_zero_gain_without_free_riders(self):
        states = {"a": state([0.0, 0.0], "a")}
        assert greedy_select(states, budget=5) == []

    def test_free_riders_drained_on_heartbeat(self):
        states = {"a": state([0.0, 0.0], "a")}
        picks = greedy_select(states, budget=5, include_free_riders=True)
        assert len(picks) == 2

    def test_free_riders_respect_budget(self):
        states = {"a": state([0.0] * 5, "a")}
        picks = greedy_select(states, budget=3, include_free_riders=True)
        assert len(picks) == 3

    def test_positive_gains_before_free_riders(self):
        states = {"a": state([0.0, 2.0], "a")}
        picks = greedy_select(states, budget=2, include_free_riders=True)
        first_app, first_packet = picks[0]
        # The positive-cost packet is picked first.
        assert first_packet is not None
        assert len(picks) == 2

    def test_cross_app_selection(self):
        states = {
            "a": state([1.0], "a"),
            "b": state([5.0], "b"),
        }
        picks = greedy_select(states, budget=1)
        assert picks[0][0] == "b"

    def test_mutates_selected_cost(self):
        s = state([2.0, 1.0])
        greedy_select({"weibo": s}, budget=1)
        assert s.selected_cost == pytest.approx(2.0)


@given(
    specs=st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=8),
    budget=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=80, deadline=None)
def test_greedy_drains_up_to_budget_when_all_positive(specs, budget):
    """With strictly positive speculative costs, the greedy always fills
    min(budget, queue) picks — a pick's gain is >= spec²/2 > 0."""
    states = {"a": state(list(specs), "a")}
    picks = greedy_select(states, budget=budget)
    assert len(picks) == min(budget, len(specs))


@given(
    specs=st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=8)
)
@settings(max_examples=60, deadline=None)
def test_greedy_selection_maximises_stepwise(specs):
    """Each pick has gain no smaller than any remaining packet's gain at
    pick time (the defining property of the subgradient heuristic)."""
    states = {"a": state(list(specs), "a")}
    s = states["a"]
    remaining = list(specs)
    while True:
        gains = [marginal_gain(s, c) for c in s.speculative]
        if not gains or max(gains) <= 0:
            break
        best = max(gains)
        picks = greedy_select({"a": s}, budget=1)
        assert picks, "positive gain must yield a pick"
        # The selected packet's gain equalled the max gain.
        assert best >= 0
