"""ChannelTable and SharedChannel: correctness and shm discipline.

The prefix-sum table must reproduce ``BandwidthModel.transfer_duration``
for arbitrary (possibly fractional) start times, including starts past
the simulated horizon (bursts serialized into the guard band) — and the
shared-memory wrapper must round-trip the table bit-exactly while
honouring the publish/attach/close/unlink lifecycle.
"""

import numpy as np
import pytest

from repro.bandwidth.models import ConstantBandwidth
from repro.bandwidth.synth import wuhan_bandwidth_model
from repro.sim.fleet.channel import ChannelTable, SharedChannel


@pytest.fixture(scope="module")
def wuhan():
    return wuhan_bandwidth_model()


@pytest.fixture(scope="module")
def table(wuhan):
    return ChannelTable.from_model(wuhan, 600.0)


def test_durations_match_model_integer_starts(wuhan, table):
    starts = np.arange(0.0, 500.0, 13.0)
    sizes = np.full(starts.shape, 50_000.0)
    got = table.durations(starts, sizes)
    want = np.array(
        [wuhan.transfer_duration(s, 50_000.0) for s in starts]
    )
    np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-9)


def test_durations_match_model_fractional_starts(wuhan, table):
    rng = np.random.default_rng(42)
    starts = rng.uniform(0.0, 590.0, size=64)
    sizes = rng.uniform(100.0, 500_000.0, size=64)
    got = table.durations(starts, sizes)
    want = np.array(
        [wuhan.transfer_duration(s, b) for s, b in zip(starts, sizes)]
    )
    np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-9)


def test_durations_past_horizon_still_match(wuhan, table):
    """Serialized bursts can start after the horizon; the guard band in
    the table must cover them exactly like the live model does."""
    starts = np.array([600.0, 601.5, 750.25, 3600.0])
    sizes = np.array([10_000.0, 120_000.0, 50_000.0, 80_000.0])
    got = table.durations(starts, sizes)
    want = np.array(
        [wuhan.transfer_duration(s, b) for s, b in zip(starts, sizes)]
    )
    np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-9)


def test_constant_bandwidth_table():
    bw = ConstantBandwidth(rate=1_000_000.0)
    table = ChannelTable.from_model(bw, 300.0)
    starts = np.array([0.0, 10.5, 299.0])
    sizes = np.array([125_000.0, 125_000.0, 250_000.0])
    got = table.durations(starts, sizes)
    want = np.array(
        [bw.transfer_duration(s, b) for s, b in zip(starts, sizes)]
    )
    np.testing.assert_allclose(got, want, rtol=1e-9)


def test_zero_size_zero_duration(table):
    got = table.durations(np.array([5.0, 100.3]), np.array([0.0, 0.0]))
    np.testing.assert_allclose(got, np.zeros(2), atol=1e-12)


def test_shared_channel_roundtrip(table):
    shared = SharedChannel.publish(table)
    try:
        view = SharedChannel.attach(shared.handle)
        try:
            np.testing.assert_array_equal(view.table.samples, table.samples)
            np.testing.assert_array_equal(view.table.prefix, table.prefix)
            starts = np.array([1.25, 42.0, 599.9])
            sizes = np.array([5_000.0, 80_000.0, 12_345.0])
            np.testing.assert_allclose(
                view.table.durations(starts, sizes),
                table.durations(starts, sizes),
                rtol=1e-12,
            )
        finally:
            view.close()
        # double-close is safe
        view.close()
        # attachers never unlink
        with pytest.raises(RuntimeError):
            view.unlink()
    finally:
        shared.close()
        shared.unlink()


def test_shared_channel_handle_is_plain_data(table):
    import pickle

    shared = SharedChannel.publish(table)
    try:
        handle = pickle.loads(pickle.dumps(shared.handle))
        view = SharedChannel.attach(handle)
        try:
            assert view.table.prefix.shape == table.prefix.shape
        finally:
            view.close()
    finally:
        shared.close()
        shared.unlink()
