"""ChannelTable and SharedChannel: correctness and shm discipline.

The prefix-sum table must reproduce ``BandwidthModel.transfer_duration``
for arbitrary (possibly fractional) start times, including starts past
the simulated horizon (bursts serialized into the guard band) — and the
shared-memory wrapper must round-trip the table bit-exactly while
honouring the publish/attach/close/unlink lifecycle.
"""

import numpy as np
import pytest

from repro.bandwidth.models import ConstantBandwidth
from repro.bandwidth.synth import wuhan_bandwidth_model
from repro.sim.fleet.channel import ChannelTable, SharedChannel


@pytest.fixture(scope="module")
def wuhan():
    return wuhan_bandwidth_model()


@pytest.fixture(scope="module")
def table(wuhan):
    return ChannelTable.from_model(wuhan, 600.0)


def test_durations_match_model_integer_starts(wuhan, table):
    starts = np.arange(0.0, 500.0, 13.0)
    sizes = np.full(starts.shape, 50_000.0)
    got = table.durations(starts, sizes)
    want = np.array(
        [wuhan.transfer_duration(s, 50_000.0) for s in starts]
    )
    np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-9)


def test_durations_match_model_fractional_starts(wuhan, table):
    rng = np.random.default_rng(42)
    starts = rng.uniform(0.0, 590.0, size=64)
    sizes = rng.uniform(100.0, 500_000.0, size=64)
    got = table.durations(starts, sizes)
    want = np.array(
        [wuhan.transfer_duration(s, b) for s, b in zip(starts, sizes)]
    )
    np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-9)


def test_durations_past_horizon_still_match(wuhan, table):
    """Serialized bursts can start after the horizon; the guard band in
    the table must cover them exactly like the live model does."""
    starts = np.array([600.0, 601.5, 750.25, 3600.0])
    sizes = np.array([10_000.0, 120_000.0, 50_000.0, 80_000.0])
    got = table.durations(starts, sizes)
    want = np.array(
        [wuhan.transfer_duration(s, b) for s, b in zip(starts, sizes)]
    )
    np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-9)


def test_constant_bandwidth_table():
    bw = ConstantBandwidth(rate=1_000_000.0)
    table = ChannelTable.from_model(bw, 300.0)
    starts = np.array([0.0, 10.5, 299.0])
    sizes = np.array([125_000.0, 125_000.0, 250_000.0])
    got = table.durations(starts, sizes)
    want = np.array(
        [bw.transfer_duration(s, b) for s, b in zip(starts, sizes)]
    )
    np.testing.assert_allclose(got, want, rtol=1e-9)


def test_zero_size_zero_duration(table):
    got = table.durations(np.array([5.0, 100.3]), np.array([0.0, 0.0]))
    np.testing.assert_allclose(got, np.zeros(2), atol=1e-12)


def test_shared_channel_roundtrip(table):
    shared = SharedChannel.publish(table)
    try:
        view = SharedChannel.attach(shared.handle)
        try:
            np.testing.assert_array_equal(view.table.samples, table.samples)
            np.testing.assert_array_equal(view.table.prefix, table.prefix)
            starts = np.array([1.25, 42.0, 599.9])
            sizes = np.array([5_000.0, 80_000.0, 12_345.0])
            np.testing.assert_allclose(
                view.table.durations(starts, sizes),
                table.durations(starts, sizes),
                rtol=1e-12,
            )
        finally:
            view.close()
        # double-close is safe
        view.close()
        # attachers never unlink
        with pytest.raises(RuntimeError):
            view.unlink()
    finally:
        shared.close()
        shared.unlink()


def test_shared_channel_handle_is_plain_data(table):
    import pickle

    shared = SharedChannel.publish(table)
    try:
        handle = pickle.loads(pickle.dumps(shared.handle))
        view = SharedChannel.attach(handle)
        try:
            assert view.table.prefix.shape == table.prefix.shape
        finally:
            view.close()
    finally:
        shared.close()
        shared.unlink()


class TestShmLifecycle:
    """Leak-hygiene satellite: named segments, context managers, sweeping."""

    def test_segments_are_named_after_the_publisher_pid(self, table):
        import os

        from repro.sim.fleet.channel import SHM_PREFIX

        with SharedChannel.publish(table) as shared:
            prefix = f"{SHM_PREFIX}{os.getpid()}-"
            assert shared.handle.samples_name.startswith(prefix)
            assert shared.handle.prefix_name.startswith(prefix)
            assert shared.handle.samples_name != shared.handle.prefix_name

    def test_publisher_context_manager_unlinks(self, table):
        with SharedChannel.publish(table) as shared:
            handle = shared.handle
        # Blocks are gone: attaching by name must now fail.
        with pytest.raises(FileNotFoundError):
            SharedChannel.attach(handle)

    def test_attacher_context_manager_only_closes(self, table):
        with SharedChannel.publish(table) as shared:
            with SharedChannel.attach(shared.handle) as view:
                assert view.table.n_seconds == table.n_seconds
            # The attacher exiting must NOT free the publisher's blocks.
            with SharedChannel.attach(shared.handle) as again:
                np.testing.assert_array_equal(again.table.samples, table.samples)

    def test_cleanup_stale_segments_skips_this_process(self, table):
        from repro.sim.fleet.channel import cleanup_stale_segments

        with SharedChannel.publish(table) as shared:
            removed = cleanup_stale_segments()
            assert shared.handle.samples_name not in removed
            assert shared.handle.prefix_name not in removed
            # Still attachable: the sweep must not have touched them.
            with SharedChannel.attach(shared.handle):
                pass

    def test_segment_name_parsing(self):
        from repro.sim.fleet.channel import _segment_pid, segment_name

        name = segment_name(pid=12345)
        assert _segment_pid(name) == 12345
        assert _segment_pid("unrelated-file") is None
        assert _segment_pid("etrain-notapid-x") is None
