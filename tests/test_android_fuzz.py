"""Property-based fuzzing of the Android runtime and service."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.android.alarm import AlarmManager
from repro.android.apps import CargoApp, TrainApp
from repro.android.etrain_service import ETrainService
from repro.android.runtime import AndroidSystem
from repro.core.profiles import weibo_profile
from repro.core.scheduler import SchedulerConfig
from repro.heartbeat.apps import known_train_profile

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@given(
    triggers=st.lists(
        st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=30
    )
)
@SETTINGS
def test_alarms_always_fire_in_time_order(triggers):
    am = AlarmManager()
    fired = []
    for t in triggers:
        am.set_exact(t, fired.append)
    am.fire_due(2000.0)
    assert fired == sorted(triggers)
    assert am.next_trigger_time() is None


@given(
    interval=st.floats(min_value=0.5, max_value=120.0),
    horizon=st.floats(min_value=1.0, max_value=600.0),
)
@SETTINGS
def test_repeating_alarm_count(interval, horizon):
    am = AlarmManager()
    fired = []
    am.set_repeating(0.0, interval, fired.append)
    am.fire_due(horizon)
    import math

    expected = math.floor(horizon / interval) + 1
    assert len(fired) == expected


@given(
    submits=st.lists(
        st.tuples(
            st.floats(min_value=1.0, max_value=880.0),  # when
            st.integers(min_value=100, max_value=50_000),  # size
        ),
        min_size=0,
        max_size=25,
    ),
    theta=st.floats(min_value=0.0, max_value=5.0),
)
@SETTINGS
def test_service_delivers_every_submission(submits, theta):
    """For any submission pattern and theta, every packet transmits by
    service stop, the radio log is serialised, and causality holds."""
    system = AndroidSystem()
    service = ETrainService(system, SchedulerConfig(theta=theta))
    train = TrainApp(known_train_profile("qq"), system)
    train.start()
    service.attach_train_app(train)
    app = CargoApp(weibo_profile(), system)
    app.register()
    for when, size in submits:
        system.alarm_manager.set_exact(
            when, lambda t, s=size: app.submit(s)
        )
    service.start()
    system.run_until(900.0)
    service.stop()

    assert app.pending_count == 0
    assert len(app.transmitted) == len(submits)
    for p in app.transmitted:
        assert p.scheduled_time is not None
        assert p.scheduled_time >= p.arrival_time - 1e-9
    records = system.radio.records
    for a, b in zip(records, records[1:]):
        assert b.start >= a.end - 1e-9
    # Energy bookkeeping stays consistent.
    breakdown = system.radio.energy_breakdown()
    assert breakdown.total == pytest.approx(
        breakdown.transmission + breakdown.tail + breakdown.signaling
    )
