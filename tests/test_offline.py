"""Unit tests for the offline schedule solvers (Sec. III-C)."""

import pytest

from repro.bandwidth.models import ConstantBandwidth
from repro.core.cost_functions import MailCost, WeiboCost
from repro.core.offline import (
    evaluate_schedule,
    exhaustive_offline,
    greedy_offline,
    local_search_offline,
)
from repro.core.packet import Heartbeat, Packet

from tests.conftest import make_packet


def heartbeats(times, app="qq"):
    return [
        Heartbeat(app_id=app, seq=i, time=t, size_bytes=378)
        for i, t in enumerate(times)
    ]


COSTS = {"weibo": WeiboCost(30.0), "mail": MailCost(60.0)}


class TestEvaluateSchedule:
    def test_rejects_causality_violation(self):
        p = make_packet(arrival=10.0)
        with pytest.raises(ValueError):
            evaluate_schedule([p], {p.packet_id: 5.0}, [], COSTS)

    def test_rejects_missing_assignment(self):
        p = make_packet(arrival=0.0)
        with pytest.raises(ValueError):
            evaluate_schedule([p], {}, [], COSTS)

    def test_immediate_assignment_zero_delay_cost(self):
        p = make_packet(arrival=5.0)
        schedule = evaluate_schedule([p], {p.packet_id: 5.0}, [], COSTS)
        assert schedule.total_delay_cost == 0.0
        assert schedule.total_energy > 0.0

    def test_piggyback_on_heartbeat_merges_burst(self, power_model):
        hb = heartbeats([100.0])
        p = make_packet(arrival=50.0)
        merged = evaluate_schedule([p], {p.packet_id: 100.0}, hb, COSTS)
        separate = evaluate_schedule([p], {p.packet_id: 50.0}, hb, COSTS)
        assert merged.total_energy < separate.total_energy

    def test_delay_cost_accumulates(self):
        p = make_packet(arrival=0.0)  # weibo, deadline 30
        schedule = evaluate_schedule([p], {p.packet_id: 15.0}, [], COSTS)
        assert schedule.total_delay_cost == pytest.approx(0.5)


class TestExhaustive:
    def test_prefers_heartbeat_when_budget_allows(self):
        hb = heartbeats([20.0])
        p = make_packet(arrival=0.0)
        best = exhaustive_offline([p], hb, COSTS, delay_budget=1.0)
        assert best.assignment[p.packet_id] == 20.0

    def test_budget_forces_immediate(self):
        hb = heartbeats([29.0])
        p = make_packet(arrival=0.0)
        # Deferring to t=29 costs f2(29) ≈ 0.97 > budget.
        best = exhaustive_offline([p], hb, COSTS, delay_budget=0.5)
        assert best.assignment[p.packet_id] == 0.0

    def test_aggregates_multiple_packets(self):
        hb = heartbeats([30.0])
        packets = [make_packet(app_id="mail", arrival=float(i), deadline=60.0) for i in range(3)]
        best = exhaustive_offline(packets, hb, COSTS, delay_budget=10.0)
        assert all(t == 30.0 for t in best.assignment.values())

    def test_search_space_guard(self):
        hb = heartbeats(list(range(10, 2000, 10)))
        packets = [make_packet(arrival=0.0) for _ in range(8)]
        with pytest.raises(RuntimeError):
            exhaustive_offline(
                packets, hb, COSTS, delay_budget=100.0, max_combinations=10
            )

    def test_online_never_beats_offline_optimum(self, power_model):
        """The exhaustive optimum lower-bounds any feasible schedule —
        including eTrain's online choices, evaluated the same way."""
        hb = heartbeats([25.0, 50.0])
        packets = [
            make_packet(app_id="mail", arrival=0.0, deadline=60.0),
            make_packet(app_id="mail", arrival=10.0, deadline=60.0),
            make_packet(app_id="weibo", arrival=5.0),
        ]
        budget = 5.0
        best = exhaustive_offline(packets, hb, COSTS, delay_budget=budget)
        # A plausible online-style schedule: everything at next heartbeat.
        online = evaluate_schedule(
            packets,
            {p.packet_id: 25.0 for p in packets},
            hb,
            COSTS,
        )
        if online.total_delay_cost <= budget:
            assert best.total_energy <= online.total_energy + 1e-9


class TestGreedyOffline:
    def test_matches_exhaustive_on_easy_instance(self):
        hb = heartbeats([20.0])
        packets = [make_packet(app_id="mail", arrival=0.0, deadline=60.0)]
        exact = exhaustive_offline(packets, hb, COSTS, delay_budget=5.0)
        greedy = greedy_offline(packets, hb, COSTS, delay_budget=5.0)
        assert greedy.total_energy == pytest.approx(exact.total_energy)

    def test_budget_repair_reverts_costliest(self):
        hb = heartbeats([29.0])
        packets = [make_packet(arrival=0.0), make_packet(arrival=0.0)]
        # Each deferred weibo packet costs ~0.97; budget 1.0 allows one.
        schedule = greedy_offline(packets, hb, COSTS, delay_budget=1.0)
        assert schedule.total_delay_cost <= 1.0 + 1e-9
        deferred = sum(1 for t in schedule.assignment.values() if t == 29.0)
        assert deferred == 1

    def test_no_heartbeats_everything_immediate(self):
        packets = [make_packet(arrival=3.0)]
        schedule = greedy_offline(packets, [], COSTS, delay_budget=10.0)
        assert schedule.assignment[packets[0].packet_id] == 3.0

    def test_feasible_for_any_budget(self):
        hb = heartbeats([50.0])
        packets = [make_packet(arrival=0.0) for _ in range(4)]
        schedule = greedy_offline(packets, hb, COSTS, delay_budget=0.0)
        assert schedule.total_delay_cost <= 1e-9


class TestLocalSearch:
    def test_never_worse_than_greedy(self):
        hb = heartbeats([25.0, 60.0, 95.0])
        packets = [
            make_packet(app_id="mail", arrival=float(i * 9), deadline=60.0)
            for i in range(6)
        ]
        budget = 3.0
        greedy = greedy_offline(packets, hb, COSTS, delay_budget=budget)
        refined = local_search_offline(
            packets, hb, COSTS, budget, initial=greedy
        )
        assert refined.total_energy <= greedy.total_energy + 1e-9
        assert refined.total_delay_cost <= budget + 1e-9

    def test_reaches_exhaustive_optimum_on_tiny_instance(self):
        hb = heartbeats([20.0, 45.0])
        packets = [
            make_packet(app_id="weibo", arrival=0.0),
            make_packet(app_id="mail", arrival=5.0, deadline=60.0),
            make_packet(app_id="weibo", arrival=30.0),
        ]
        budget = 4.0
        exact = exhaustive_offline(packets, hb, COSTS, delay_budget=budget)
        refined = local_search_offline(packets, hb, COSTS, budget)
        assert refined.total_energy == pytest.approx(
            exact.total_energy, rel=0.05
        ) or refined.total_energy >= exact.total_energy

    def test_improves_bad_initial_schedule(self):
        """Starting from all-immediate, local search finds heartbeats."""
        hb = heartbeats([20.0])
        packets = [
            make_packet(app_id="mail", arrival=float(i), deadline=60.0)
            for i in range(3)
        ]
        immediate = evaluate_schedule(
            packets, {p.packet_id: p.arrival_time for p in packets}, hb, COSTS
        )
        refined = local_search_offline(
            packets, hb, COSTS, delay_budget=5.0, initial=immediate
        )
        assert refined.total_energy < immediate.total_energy

    def test_max_rounds_validation(self):
        with pytest.raises(ValueError):
            local_search_offline([], [], COSTS, 1.0, max_rounds=0)
