"""Unit tests for the waiting queues Q_i and transmission queue Q_TX."""

import pytest

from repro.core.cost_functions import WeiboCost
from repro.core.queues import TransmissionQueue, WaitingQueue

from tests.conftest import make_packet


@pytest.fixture
def queue():
    return WaitingQueue("weibo", WeiboCost(30.0))


class TestWaitingQueue:
    def test_enqueue_and_len(self, queue):
        queue.enqueue(make_packet(arrival=0.0))
        queue.enqueue(make_packet(arrival=1.0))
        assert len(queue) == 2

    def test_rejects_wrong_app(self, queue):
        with pytest.raises(ValueError):
            queue.enqueue(make_packet(app_id="mail"))

    def test_rejects_out_of_order_arrivals(self, queue):
        queue.enqueue(make_packet(arrival=5.0))
        with pytest.raises(ValueError):
            queue.enqueue(make_packet(arrival=1.0))

    def test_head_is_oldest(self, queue):
        first = make_packet(arrival=0.0)
        queue.enqueue(first)
        queue.enqueue(make_packet(arrival=1.0))
        assert queue.head() is first

    def test_head_empty(self, queue):
        assert queue.head() is None

    def test_remove(self, queue):
        p = make_packet(arrival=0.0)
        queue.enqueue(p)
        queue.remove(p)
        assert len(queue) == 0

    def test_remove_missing_raises(self, queue):
        with pytest.raises(KeyError):
            queue.remove(make_packet())

    def test_contains(self, queue):
        p = make_packet(arrival=0.0)
        queue.enqueue(p)
        assert p in queue
        assert make_packet(arrival=1.0) not in queue

    def test_instantaneous_cost(self, queue):
        queue.enqueue(make_packet(arrival=0.0))
        queue.enqueue(make_packet(arrival=0.0))
        # Two packets, each 15 s old → f2(15) = 0.5 each.
        assert queue.instantaneous_cost(15.0) == pytest.approx(1.0)

    def test_instantaneous_cost_empty(self, queue):
        assert queue.instantaneous_cost(100.0) == 0.0

    def test_speculative_cost_one_slot_ahead(self, queue):
        p = make_packet(arrival=0.0)
        queue.enqueue(p)
        # At t=14 the speculative (t+1) cost is f2(15) = 0.5.
        assert queue.speculative_cost(p, 14.0, slot=1.0) == pytest.approx(0.5)

    def test_packets_returns_copy(self, queue):
        queue.enqueue(make_packet(arrival=0.0))
        packets = queue.packets
        packets.clear()
        assert len(queue) == 1

    def test_iteration_in_arrival_order(self, queue):
        arrivals = [0.0, 1.0, 2.0]
        for a in arrivals:
            queue.enqueue(make_packet(arrival=a))
        assert [p.arrival_time for p in queue] == arrivals


class TestTransmissionQueue:
    def test_fifo_order(self):
        q = TransmissionQueue()
        a, b = make_packet(arrival=0.0), make_packet(arrival=1.0)
        q.push(a)
        q.push(b)
        assert q.pop() is a
        assert q.pop() is b

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            TransmissionQueue().pop()

    def test_is_empty(self):
        q = TransmissionQueue()
        assert q.is_empty
        q.push(make_packet())
        assert not q.is_empty

    def test_drain_returns_all_in_order(self):
        q = TransmissionQueue()
        packets = [make_packet(arrival=float(i)) for i in range(3)]
        q.push_all(packets)
        assert q.drain() == packets
        assert q.is_empty

    def test_peek_does_not_remove(self):
        q = TransmissionQueue()
        p = make_packet()
        q.push(p)
        assert q.peek() is p
        assert len(q) == 1

    def test_peek_empty(self):
        assert TransmissionQueue().peek() is None
