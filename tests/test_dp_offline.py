"""Unit + property tests for the DP offline solver."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cost_functions import MailCost, WeiboCost
from repro.core.offline import dp_offline, exhaustive_offline, greedy_offline
from repro.core.packet import Heartbeat, Packet, reset_packet_ids

from tests.conftest import make_packet

COSTS = {"weibo": WeiboCost(30.0), "mail": MailCost(60.0)}


def heartbeats(times, app="qq"):
    return [
        Heartbeat(app_id=app, seq=i, time=t, size_bytes=378)
        for i, t in enumerate(times)
    ]


class TestDPBasics:
    def test_defers_to_heartbeat_with_budget(self):
        hb = heartbeats([20.0])
        p = make_packet(app_id="mail", arrival=0.0, deadline=60.0)
        schedule = dp_offline([p], hb, COSTS, delay_budget=5.0)
        assert schedule.assignment[p.packet_id] == 20.0

    def test_tight_budget_forces_early(self):
        hb = heartbeats([29.0])
        p = make_packet(arrival=0.0)  # weibo, deferring costs ~0.97
        schedule = dp_offline([p], hb, COSTS, delay_budget=0.2)
        assert schedule.total_delay_cost <= 0.2 + 1e-9

    def test_no_packets(self):
        schedule = dp_offline([], heartbeats([10.0]), COSTS, delay_budget=1.0)
        assert schedule.assignment == {}

    def test_no_heartbeats(self):
        p = make_packet(arrival=3.0)
        schedule = dp_offline([p], [], COSTS, delay_budget=10.0)
        assert schedule.assignment[p.packet_id] >= 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            dp_offline([], [], COSTS, 1.0, lagrange_iterations=0)


class TestDPMatchesExhaustive:
    @pytest.mark.parametrize("budget", [0.3, 1.0, 3.0, 10.0])
    def test_small_instance(self, budget):
        hb = heartbeats([25.0, 55.0, 95.0])
        packets = [
            make_packet(app_id="weibo", arrival=0.0),
            make_packet(app_id="mail", arrival=5.0, deadline=60.0),
            make_packet(app_id="weibo", arrival=40.0),
            make_packet(app_id="mail", arrival=60.0, deadline=60.0),
        ]
        exact = exhaustive_offline(packets, hb, COSTS, delay_budget=budget)
        dp = dp_offline(packets, hb, COSTS, delay_budget=budget)
        assert dp.total_delay_cost <= budget + 1e-9
        # DP optimises over earliest-assignment chains — a subset of the
        # exhaustive space — so it can only be >= the optimum, and on
        # these instances it should be close.
        assert dp.total_energy >= exact.total_energy - 1e-9
        assert dp.total_energy <= exact.total_energy * 1.25 + 1e-9


class TestDPScales:
    def test_handles_many_packets_fast(self):
        hb = heartbeats([float(t) for t in range(50, 3600, 90)])
        packets = [
            make_packet(
                app_id="weibo" if i % 2 else "mail",
                arrival=float(i * 40),
                deadline=30.0 if i % 2 else 60.0,
            )
            for i in range(80)
        ]
        schedule = dp_offline(packets, hb, COSTS, delay_budget=40.0)
        assert schedule.total_delay_cost <= 40.0 + 1e-9
        assert len(schedule.assignment) == 80

    def test_beats_or_matches_greedy_often(self):
        """On a mid-size instance the DP should not lose badly to the
        greedy heuristic (usually it wins)."""
        hb = heartbeats([float(t) for t in range(30, 1200, 85)])
        packets = [
            make_packet(app_id="mail", arrival=float(7 * i + 3), deadline=60.0)
            for i in range(25)
        ]
        budget = 10.0
        greedy = greedy_offline(packets, hb, COSTS, delay_budget=budget)
        dp = dp_offline(packets, hb, COSTS, delay_budget=budget)
        assert dp.total_energy <= greedy.total_energy * 1.2


@given(
    arrivals=st.lists(
        st.floats(min_value=0.0, max_value=200.0), min_size=1, max_size=6
    ),
    budget=st.floats(min_value=0.1, max_value=20.0),
)
@settings(max_examples=40, deadline=None)
def test_dp_always_feasible_and_causal(arrivals, budget):
    reset_packet_ids()
    packets = [
        Packet(app_id="weibo", arrival_time=a, size_bytes=1_000, deadline=30.0)
        for a in sorted(arrivals)
    ]
    hb = heartbeats([40.0, 110.0, 180.0])
    schedule = dp_offline(packets, hb, COSTS, delay_budget=budget)
    assert schedule.total_delay_cost <= budget + 1e-6
    for p in packets:
        assert schedule.assignment[p.packet_id] >= p.arrival_time - 1e-9
