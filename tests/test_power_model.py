"""Unit + property tests for the tail-energy model (Sec. III-A, Fig. 4)."""

import pytest
from hypothesis import given, strategies as st

from repro.radio.power_model import GALAXY_S4_3G, NEXUS4_3G, PowerModel
from repro.radio.states import RRCState


class TestTailEnergyPiecewise:
    """The four cases of E_tail(Δ) with the paper's constants."""

    def test_case1_overlap(self, power_model):
        assert power_model.tail_energy(0.0) == 0.0
        assert power_model.tail_energy(-5.0) == 0.0

    def test_case2_within_dch(self, power_model):
        # 0 < Δ <= δ_D → p̃_D · Δ
        assert power_model.tail_energy(4.0) == pytest.approx(0.7 * 4.0)
        assert power_model.tail_energy(10.0) == pytest.approx(7.0)

    def test_case3_within_fach(self, power_model):
        # δ_D < Δ <= T_tail → p̃_D δ_D + p̃_F (Δ − δ_D)
        assert power_model.tail_energy(12.0) == pytest.approx(7.0 + 0.45 * 2.0)
        assert power_model.tail_energy(17.5) == pytest.approx(10.375)

    def test_case4_full_tail(self, power_model):
        assert power_model.tail_energy(100.0) == pytest.approx(10.375)
        assert power_model.full_tail_energy == pytest.approx(10.375)

    def test_full_tail_matches_paper_magnitude(self, power_model):
        """The paper reports ~10.91 J per tail; our constants give 10.375."""
        assert 9.0 <= power_model.full_tail_energy <= 11.5

    def test_tail_time(self, power_model):
        assert power_model.tail_time == 17.5


class TestPowerModelValidation:
    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            PowerModel(p_dch_extra=-0.1)

    def test_rejects_fach_above_dch(self):
        with pytest.raises(ValueError):
            PowerModel(p_dch_extra=0.3, p_fach_extra=0.5)

    def test_rejects_negative_timers(self):
        with pytest.raises(ValueError):
            PowerModel(delta_dch=-1.0)

    def test_frozen(self, power_model):
        with pytest.raises(AttributeError):
            power_model.p_idle = 1.0  # type: ignore[misc]


class TestStatePower:
    def test_extra_powers(self, power_model):
        assert power_model.state_power(RRCState.IDLE) == 0.0
        assert power_model.state_power(RRCState.FACH) == 0.45
        assert power_model.state_power(RRCState.DCH) == 0.70

    def test_absolute_powers(self, power_model):
        assert power_model.state_power(RRCState.DCH, absolute=True) == pytest.approx(
            0.95
        )

    def test_state_at_gap_offset(self, power_model):
        assert power_model.state_at_gap_offset(0.0) is RRCState.DCH
        assert power_model.state_at_gap_offset(9.99) is RRCState.DCH
        assert power_model.state_at_gap_offset(10.0) is RRCState.FACH
        assert power_model.state_at_gap_offset(17.49) is RRCState.FACH
        assert power_model.state_at_gap_offset(17.5) is RRCState.IDLE

    def test_state_at_gap_offset_rejects_negative(self, power_model):
        with pytest.raises(ValueError):
            power_model.state_at_gap_offset(-0.1)


class TestTransmissionEnergy:
    def test_proportional_to_duration(self, power_model):
        assert power_model.transmission_energy(2.0) == pytest.approx(1.4)

    def test_rejects_negative_duration(self, power_model):
        with pytest.raises(ValueError):
            power_model.transmission_energy(-1.0)


class TestDevicePresets:
    def test_nexus_differs(self):
        assert NEXUS4_3G.full_tail_energy < GALAXY_S4_3G.full_tail_energy

    def test_presets_valid(self):
        for pm in (GALAXY_S4_3G, NEXUS4_3G):
            assert pm.tail_time > 0
            assert pm.full_tail_energy > 0


@given(gap=st.floats(min_value=-100.0, max_value=1000.0))
def test_tail_energy_bounded(gap):
    pm = GALAXY_S4_3G
    e = pm.tail_energy(gap)
    assert 0.0 <= e <= pm.full_tail_energy + 1e-12


@given(
    g1=st.floats(min_value=-10.0, max_value=100.0),
    g2=st.floats(min_value=-10.0, max_value=100.0),
)
def test_tail_energy_monotone(g1, g2):
    pm = GALAXY_S4_3G
    lo, hi = sorted((g1, g2))
    assert pm.tail_energy(lo) <= pm.tail_energy(hi) + 1e-12


@given(gap=st.floats(min_value=0.0, max_value=50.0))
def test_tail_energy_continuous(gap):
    """No jumps: values at gap ± ε are within ε · max-power of each other."""
    pm = GALAXY_S4_3G
    eps = 1e-6
    left = pm.tail_energy(max(0.0, gap - eps))
    right = pm.tail_energy(gap + eps)
    assert abs(right - left) <= 2 * eps * pm.p_dch_extra + 1e-12


@given(
    p_dch=st.floats(min_value=0.1, max_value=3.0),
    p_fach_frac=st.floats(min_value=0.0, max_value=1.0),
    d_dch=st.floats(min_value=0.0, max_value=60.0),
    d_fach=st.floats(min_value=0.0, max_value=60.0),
)
def test_full_tail_is_supremum(p_dch, p_fach_frac, d_dch, d_fach):
    """E_tail saturates exactly at the analytic full-tail energy."""
    pm = PowerModel(
        p_dch_extra=p_dch,
        p_fach_extra=p_dch * p_fach_frac,
        delta_dch=d_dch,
        delta_fach=d_fach,
    )
    assert pm.tail_energy(pm.tail_time) == pytest.approx(pm.full_tail_energy)
    assert pm.tail_energy(pm.tail_time + 1.0) == pytest.approx(pm.full_tail_energy)
