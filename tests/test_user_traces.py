"""Unit tests for Luna Weibo user-behaviour traces (Fig. 11 substrate)."""

import pytest

from repro.workload.user_traces import (
    SESSION_LENGTH,
    ActivityClass,
    BehaviorType,
    UserTraceRecord,
    classify_session,
    generate_session,
    generate_user_population,
    load_trace_csv,
    records_to_packets,
    save_trace_csv,
)


class TestGenerateSession:
    def test_deterministic(self):
        a = generate_session("u1", ActivityClass.ACTIVE, seed=1)
        b = generate_session("u1", ActivityClass.ACTIVE, seed=1)
        assert [(r.behavior, r.time) for r in a] == [(r.behavior, r.time) for r in b]

    def test_opens_app_first(self):
        records = generate_session("u1", ActivityClass.MODERATE, seed=0)
        assert records[0].behavior is BehaviorType.OPEN_APP

    def test_sorted_by_time(self):
        records = generate_session("u1", ActivityClass.ACTIVE, seed=2)
        times = [r.time for r in records]
        assert times == sorted(times)

    def test_truncated_to_session_length(self):
        records = generate_session("u1", ActivityClass.ACTIVE, seed=3)
        assert all(r.time <= SESSION_LENGTH for r in records)

    @pytest.mark.parametrize(
        "activity,lo,hi",
        [
            (ActivityClass.ACTIVE, 21, 35),
            (ActivityClass.MODERATE, 10, 20),
            (ActivityClass.INACTIVE, 2, 9),
        ],
    )
    def test_upload_counts_match_class(self, activity, lo, hi):
        """The paper's bucket definitions hold for most seeds; allow a
        small shortfall from end-of-session truncation."""
        for seed in range(5):
            records = generate_session("u", activity, seed=seed)
            uploads = sum(1 for r in records if r.behavior is BehaviorType.UPLOAD)
            assert lo - 3 <= uploads <= hi

    def test_upload_sizes_weibo_like(self):
        records = generate_session("u1", ActivityClass.ACTIVE, seed=0)
        sizes = [r.packet_size for r in records if r.behavior is BehaviorType.UPLOAD]
        assert all(s >= 100 for s in sizes)


class TestClassification:
    def test_roundtrip_classes(self):
        """Generated sessions classify back into their own bucket (or the
        boundary below when truncation clipped a few uploads)."""
        for activity in ActivityClass:
            hits = 0
            for seed in range(6):
                records = generate_session("u", activity, seed=seed)
                if classify_session(records) is activity:
                    hits += 1
            assert hits >= 4

    def test_classify_empty(self):
        assert classify_session([]) is ActivityClass.INACTIVE


class TestConversion:
    def test_records_to_packets_filters_network_events(self):
        records = [
            UserTraceRecord("u", BehaviorType.OPEN_APP, 0.0, 0),
            UserTraceRecord("u", BehaviorType.UPLOAD, 5.0, 2_000),
            UserTraceRecord("u", BehaviorType.BROWSE, 6.0, 0),
            UserTraceRecord("u", BehaviorType.REFRESH, 7.0, 300),
        ]
        packets = records_to_packets(records)
        assert len(packets) == 2
        assert [p.arrival_time for p in packets] == [5.0, 7.0]
        assert all(p.app_id == "weibo" for p in packets)

    def test_deadline_applied(self):
        records = [UserTraceRecord("u", BehaviorType.UPLOAD, 1.0, 500)]
        packets = records_to_packets(records, deadline=99.0)
        assert packets[0].deadline == 99.0


class TestPopulation:
    def test_default_population(self):
        population = generate_user_population(seed=0)
        assert len(population) == 100
        actives = [u for u in population if u.startswith("active")]
        assert len(actives) == 15

    def test_custom_counts(self):
        population = generate_user_population(
            {ActivityClass.ACTIVE: 2, ActivityClass.INACTIVE: 3}, seed=0
        )
        assert len(population) == 5


class TestTraceIO:
    def test_csv_roundtrip(self, tmp_path):
        records = generate_session("u1", ActivityClass.MODERATE, seed=0)
        path = tmp_path / "trace.csv"
        save_trace_csv(records, path)
        loaded = load_trace_csv(path)
        assert len(loaded) == len(records)
        assert loaded[0].behavior is records[0].behavior
        assert loaded[-1].packet_size == records[-1].packet_size

    def test_record_validation(self):
        with pytest.raises(ValueError):
            UserTraceRecord("u", BehaviorType.UPLOAD, -1.0, 100)
        with pytest.raises(ValueError):
            UserTraceRecord("u", BehaviorType.UPLOAD, 0.0, -5)
