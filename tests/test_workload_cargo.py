"""Unit tests for the synthetic cargo trace generator (Sec. VI-A)."""

import pytest

from repro.core.profiles import DEFAULT_CARGO_PROFILES, weibo_profile
from repro.workload.cargo import (
    REFERENCE_TOTAL_RATE,
    generate_packets,
    profiles_for_total_rate,
    synthesize_trace,
    total_arrival_rate,
)


class TestGeneratePackets:
    def test_deterministic(self):
        a = generate_packets(weibo_profile(), 2000.0, seed=3)
        b = generate_packets(weibo_profile(), 2000.0, seed=3)
        assert [(p.arrival_time, p.size_bytes) for p in a] == [
            (p.arrival_time, p.size_bytes) for p in b
        ]

    def test_sizes_respect_profile(self):
        packets = generate_packets(weibo_profile(), 20_000.0, seed=0)
        assert all(p.size_bytes >= 100 for p in packets)
        assert all(p.app_id == "weibo" for p in packets)

    def test_deadline_propagated(self):
        packets = generate_packets(weibo_profile(deadline=45.0), 5_000.0, seed=0)
        assert all(p.deadline == 45.0 for p in packets)

    def test_rate_approximates_profile(self):
        packets = generate_packets(weibo_profile(), 200_000.0, seed=1)
        rate = len(packets) / 200_000.0
        assert rate == pytest.approx(0.05, rel=0.1)


class TestSynthesizeTrace:
    def test_merged_and_sorted(self):
        trace = synthesize_trace(horizon=5_000.0, seed=0)
        times = [p.arrival_time for p in trace]
        assert times == sorted(times)
        assert {p.app_id for p in trace} == {"mail", "weibo", "cloud"}

    def test_reference_rate(self):
        trace = synthesize_trace(horizon=100_000.0, seed=2)
        rate = len(trace) / 100_000.0
        assert rate == pytest.approx(REFERENCE_TOTAL_RATE, rel=0.08)


class TestRateScaling:
    def test_total_arrival_rate(self):
        assert total_arrival_rate(DEFAULT_CARGO_PROFILES()) == pytest.approx(0.08)

    @pytest.mark.parametrize("rate", [0.04, 0.06, 0.10, 0.12])
    def test_scaled_profiles_hit_rate(self, rate):
        profiles = profiles_for_total_rate(rate)
        assert total_arrival_rate(profiles) == pytest.approx(rate)

    def test_scaling_preserves_ratio(self):
        """λ = 0.04 doubles each inter-arrival: 100 s / 40 s / 200 s."""
        profiles = {p.app_id: p for p in profiles_for_total_rate(0.04)}
        assert profiles["mail"].mean_interarrival == pytest.approx(100.0)
        assert profiles["weibo"].mean_interarrival == pytest.approx(40.0)
        assert profiles["cloud"].mean_interarrival == pytest.approx(200.0)

    def test_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            profiles_for_total_rate(0.0)
