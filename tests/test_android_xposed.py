"""Unit tests for the Xposed-style hooking framework."""

import pytest

from repro.android.xposed import HookRegistry


class Target:
    def __init__(self):
        self.calls = []

    def send_heartbeat(self, when):
        self.calls.append(when)
        return f"hb@{when}"

    def broken(self, when):
        raise RuntimeError("send failed")


class TestHookAfter:
    def test_after_hook_sees_result_and_args(self):
        registry = HookRegistry()
        target = Target()
        seen = []
        registry.hook_after(
            target, "send_heartbeat", lambda result, when: seen.append((result, when))
        )
        out = target.send_heartbeat(5.0)
        assert out == "hb@5.0"
        assert seen == [("hb@5.0", 5.0)]
        assert target.calls == [5.0]

    def test_hook_non_callable_rejected(self):
        registry = HookRegistry()
        target = Target()
        target.not_a_method = 42
        with pytest.raises(TypeError):
            registry.hook_after(target, "not_a_method", lambda *a: None)

    def test_exception_skips_after_hook(self):
        registry = HookRegistry()
        target = Target()
        seen = []
        registry.hook_after(target, "broken", lambda *a: seen.append(a))
        with pytest.raises(RuntimeError):
            target.broken(1.0)
        assert seen == []

    def test_unhook_restores_original(self):
        registry = HookRegistry()
        target = Target()
        seen = []
        hook = registry.hook_after(
            target, "send_heartbeat", lambda result, when: seen.append(when)
        )
        registry.unhook(hook)
        target.send_heartbeat(1.0)
        assert seen == []
        assert not hook.active

    def test_unhook_idempotent(self):
        registry = HookRegistry()
        target = Target()
        hook = registry.hook_after(target, "send_heartbeat", lambda *a: None)
        registry.unhook(hook)
        registry.unhook(hook)  # no error

    def test_unhook_all(self):
        registry = HookRegistry()
        targets = [Target(), Target()]
        seen = []
        for t in targets:
            registry.hook_after(t, "send_heartbeat", lambda *a: seen.append(1))
        registry.unhook_all()
        for t in targets:
            t.send_heartbeat(0.0)
        assert seen == []
        assert registry.active_hooks == []

    def test_multiple_hooks_stack(self):
        registry = HookRegistry()
        target = Target()
        seen = []
        registry.hook_after(target, "send_heartbeat", lambda *a: seen.append("first"))
        registry.hook_after(target, "send_heartbeat", lambda *a: seen.append("second"))
        target.send_heartbeat(0.0)
        assert seen == ["first", "second"]
