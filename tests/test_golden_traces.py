"""Golden trace snapshots: the event stream itself is pinned.

``tests/data/golden_trace_<strategy>_2h.jsonl`` hold the full event
traces of the paper-default 2-hour scenario (seed 0) as written by
``etrain record`` — for the paper's own schedulers (etrain, immediate)
and the literature-derived families (lazy_circuit, harvest_lazy,
common_deadline, aoi_download), all at builder-default parameters.  The
comparator is *schema-versioned*: it projects each event onto its
type's ``CORE_FIELDS`` before comparing, so adding new fields to events
later (an additive schema change) never breaks the pins — only changing
the simulation, removing a core field, or bumping
``TRACE_SCHEMA_VERSION`` past the comparator does.

Regenerate after an intentional semantic change with (once per pinned
strategy)::

    for s in etrain immediate lazy_circuit harvest_lazy \
             common_deadline aoi_download; do
        PYTHONPATH=src python -m repro.cli record --strategy $s \
            --trace-out tests/data/golden_trace_${s}_2h.jsonl --horizon 7200
    done
"""

import pathlib

import pytest

from repro.obs import ListRecorder, read_jsonl, verify_trace
from repro.obs.events import TRACE_SCHEMA_VERSION, core_view
from repro.obs.tracer import emit_simulation_trace

pytestmark = pytest.mark.obs

DATA = pathlib.Path(__file__).parent / "data"

GOLDEN = {
    name: DATA / f"golden_trace_{name}_2h.jsonl"
    for name in (
        "etrain",
        "immediate",
        "lazy_circuit",
        "harvest_lazy",
        "common_deadline",
        "aoi_download",
    )
}


def fresh_trace(name):
    """Re-run the pinned scenario and trace it in memory."""
    from repro.obs.events import app_cost_table
    from repro.sim.engine import Simulation
    from repro.sim.parallel.specs import StrategySpec
    from repro.sim.runner import default_scenario

    scenario = default_scenario(seed=0, horizon=7200.0)
    sim = Simulation(
        StrategySpec.make(name).build(scenario),
        scenario.train_generators,
        scenario.fresh_packets(),
        power_model=scenario.power_model,
        bandwidth=scenario.bandwidth,
        horizon=scenario.horizon,
        slot=scenario.slot,
    )
    result = sim.run()
    recorder = ListRecorder()
    emit_simulation_trace(
        recorder,
        result,
        power_model=scenario.power_model,
        slot=scenario.slot,
        app_costs=app_cost_table(scenario.profiles),
    )
    return recorder.events


def diff_traces(fresh, pinned):
    """Core-field differences between two event streams (empty == match)."""
    diffs = []
    if len(fresh) != len(pinned):
        diffs.append(f"event count {len(fresh)} != pinned {len(pinned)}")
    for i, (a, b) in enumerate(zip(fresh, pinned)):
        va, vb = core_view(a), core_view(b)
        if va != vb:
            diffs.append(f"event {i}: {va} != {vb}")
            if len(diffs) > 5:
                diffs.append("... (truncated)")
                break
    return diffs


@pytest.mark.parametrize("name", sorted(GOLDEN))
class TestGoldenTraces:
    def test_pin_exists_and_schema_supported(self, name):
        events = read_jsonl(GOLDEN[name])
        assert events, f"{GOLDEN[name]} is empty"
        head = events[0]
        assert head["ev"] == "run_start"
        assert head["schema"] <= TRACE_SCHEMA_VERSION, (
            "pinned trace written by a newer schema; regenerate or "
            "upgrade the comparator"
        )

    def test_fresh_run_matches_pin(self, name):
        diffs = diff_traces(fresh_trace(name), read_jsonl(GOLDEN[name]))
        assert not diffs, (
            f"{name} trace drifted from its golden pin "
            f"(regenerate only if the change is intentional):\n"
            + "\n".join(diffs)
        )

    def test_pin_replays_exactly(self, name):
        """The pinned bytes alone reproduce the recorded summary."""
        ok, _, _, mismatches = verify_trace(read_jsonl(GOLDEN[name]))
        assert ok, f"{name} pin no longer replays: {mismatches}"


class TestComparatorToleratesAdditiveFields:
    def test_extra_fields_are_ignored(self):
        pinned = read_jsonl(GOLDEN["etrain"])
        widened = [dict(e, future_field=123) for e in pinned]
        assert not diff_traces(widened, pinned)

    def test_core_field_change_is_caught(self):
        pinned = read_jsonl(GOLDEN["etrain"])
        mutated = [dict(e) for e in pinned]
        for event in mutated:
            if event["ev"] == "burst":
                event["size"] = event["size"] + 1
                break
        assert diff_traces(mutated, pinned)
