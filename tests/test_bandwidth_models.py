"""Unit + property tests for bandwidth models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bandwidth.models import (
    BandwidthModel,
    ConstantBandwidth,
    MarkovBandwidth,
    TraceBandwidth,
)


class TestConstant:
    def test_duration(self):
        bw = ConstantBandwidth(1_000.0)
        assert bw.transfer_duration(0.0, 2_500) == pytest.approx(2.5)

    def test_zero_bytes(self):
        assert ConstantBandwidth(1_000.0).transfer_duration(0.0, 0) == 0.0

    def test_zero_rate_raises(self):
        with pytest.raises(RuntimeError):
            ConstantBandwidth(0.0).transfer_duration(0.0, 1)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            ConstantBandwidth(-1.0)

    def test_max_duration_guard(self):
        with pytest.raises(RuntimeError):
            ConstantBandwidth(1.0).transfer_duration(0.0, 10**9, max_duration=10.0)


class TestTrace:
    def test_piecewise_lookup(self):
        bw = TraceBandwidth([100.0, 200.0, 300.0])
        assert bw.rate_at(0.5) == 100.0
        assert bw.rate_at(1.0) == 200.0
        assert bw.rate_at(2.9) == 300.0

    def test_clamping_outside_range(self):
        bw = TraceBandwidth([100.0, 200.0])
        assert bw.rate_at(-5.0) == 100.0
        assert bw.rate_at(100.0) == 200.0

    def test_wrap(self):
        bw = TraceBandwidth([100.0, 200.0], wrap=True)
        assert bw.rate_at(2.0) == 100.0
        assert bw.rate_at(3.0) == 200.0

    def test_transfer_spans_samples(self):
        bw = TraceBandwidth([100.0, 100.0, 200.0])
        # 250 bytes from t=0: 100 in [0,1), 100 in [1,2), 50 at 200 B/s.
        assert bw.transfer_duration(0.0, 250) == pytest.approx(2.25)

    def test_transfer_mid_second_start(self):
        bw = TraceBandwidth([100.0, 200.0])
        # Start at 0.5: 50 bytes in [0.5,1), then 200 B/s.
        assert bw.transfer_duration(0.5, 150) == pytest.approx(1.0)

    def test_zero_interval_skipped(self):
        bw = TraceBandwidth([0.0, 100.0])
        assert bw.transfer_duration(0.0, 100) == pytest.approx(2.0)

    def test_all_zero_trace_raises(self):
        bw = TraceBandwidth([0.0])
        with pytest.raises(RuntimeError):
            bw.transfer_duration(0.0, 1, max_duration=100.0)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            TraceBandwidth([])

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            TraceBandwidth([100.0, -1.0])

    def test_mean_rate(self):
        bw = TraceBandwidth([100.0, 300.0])
        assert bw.mean_rate(0.0, 2.0) == pytest.approx(200.0)


class TestMarkov:
    def test_deterministic_per_seed(self):
        a = MarkovBandwidth(1000.0, 100.0, seed=3)
        b = MarkovBandwidth(1000.0, 100.0, seed=3)
        assert [a.rate_at(t) for t in range(50)] == [
            b.rate_at(t) for t in range(50)
        ]

    def test_rates_are_two_levels(self):
        bw = MarkovBandwidth(1000.0, 100.0, seed=1)
        rates = {bw.rate_at(t) for t in range(200)}
        assert rates <= {1000.0, 100.0}

    def test_validation(self):
        with pytest.raises(ValueError):
            MarkovBandwidth(100.0, 1000.0)
        with pytest.raises(ValueError):
            MarkovBandwidth(1000.0, 100.0, p_stay_good=1.5)

    def test_starts_good(self):
        bw = MarkovBandwidth(1000.0, 100.0, seed=0)
        assert bw.rate_at(0.0) == 1000.0


@given(
    samples=st.lists(
        st.floats(min_value=10.0, max_value=1e6), min_size=1, max_size=20
    ),
    size=st.integers(min_value=1, max_value=100_000),
    start=st.floats(min_value=0.0, max_value=15.0),
)
@settings(max_examples=80, deadline=None)
def test_transfer_duration_moves_exactly_size_bytes(samples, size, start):
    """Integrating the rate over the returned duration yields the size."""
    import math

    bw = TraceBandwidth(samples)
    duration = bw.transfer_duration(start, size)
    # Exact piecewise-constant integration over 1-second sample boundaries.
    moved = 0.0
    t = start
    end = start + duration
    while t < end - 1e-12:
        boundary = min(end, math.floor(t) + 1.0)
        if boundary <= t:
            boundary = min(end, t + 1.0)
        moved += bw.rate_at(t) * (boundary - t)
        t = boundary
    assert moved == pytest.approx(size, rel=1e-6, abs=1e-6)


@given(size=st.integers(min_value=0, max_value=10**6))
def test_constant_bandwidth_linear(size):
    bw = ConstantBandwidth(50_000.0)
    assert bw.transfer_duration(0.0, size) == pytest.approx(size / 50_000.0)


class TestMeanRateValidation:
    def test_step_zero_rejected(self):
        bw = ConstantBandwidth(1000.0)
        with pytest.raises(ValueError, match="step must be > 0"):
            bw.mean_rate(0.0, 10.0, step=0.0)

    def test_step_negative_rejected(self):
        bw = TraceBandwidth([1000.0])
        with pytest.raises(ValueError, match="step must be > 0"):
            bw.mean_rate(0.0, 10.0, step=-1.0)

    def test_empty_interval_still_rejected(self):
        bw = ConstantBandwidth(1000.0)
        with pytest.raises(ValueError, match="end must be after start"):
            bw.mean_rate(5.0, 5.0)


class TestTraceFastPaths:
    """The prefix-sum shortcuts must reproduce the generic integrators."""

    def _traces(self):
        import random

        rng = random.Random(7)
        for _ in range(12):
            n = rng.randint(1, 25)
            samples = [rng.choice([0.0, rng.uniform(1.0, 5e4)]) for _ in range(n)]
            if not any(samples):
                samples[0] = 1000.0
            yield TraceBandwidth(
                samples,
                start_time=float(rng.choice([0, 0, 3])),
                wrap=rng.random() < 0.5,
            )

    def test_transfer_duration_matches_generic(self):
        import random

        rng = random.Random(11)
        for bw in self._traces():
            for _ in range(20):
                start = float(int(bw.start_time) + rng.randint(0, 60))
                size = rng.uniform(1.0, 2e5)
                direction = rng.choice(["up", "down"])
                fast = bw.transfer_duration(start, size, direction=direction)
                slow = BandwidthModel.transfer_duration(
                    bw, start, size, direction=direction
                )
                assert fast == pytest.approx(slow, rel=1e-9, abs=1e-9)

    def test_mean_rate_matches_generic(self):
        import random

        rng = random.Random(13)
        for bw in self._traces():
            for _ in range(10):
                start = float(int(bw.start_time) + rng.randint(0, 40))
                end = start + rng.randint(1, 40)
                assert bw.mean_rate(start, end) == pytest.approx(
                    BandwidthModel.mean_rate(bw, start, end), rel=1e-9
                )

    def test_fractional_geometry_delegates(self):
        bw = TraceBandwidth([1000.0, 2000.0, 500.0], start_time=0.5)
        assert bw.transfer_duration(1.25, 1234.0) == pytest.approx(
            BandwidthModel.transfer_duration(bw, 1.25, 1234.0)
        )
        assert bw.mean_rate(1.25, 4.25) == pytest.approx(
            BandwidthModel.mean_rate(bw, 1.25, 4.25)
        )

    def test_deadline_error_matches_generic(self):
        bw = TraceBandwidth([0.0, 0.0, 5.0], wrap=True)
        with pytest.raises(RuntimeError) as fast:
            bw.transfer_duration(0.0, 1e9, max_duration=10.0)
        with pytest.raises(RuntimeError) as slow:
            BandwidthModel.transfer_duration(bw, 0.0, 1e9, max_duration=10.0)
        assert str(fast.value) == str(slow.value)

    def test_long_wrap_transfer(self):
        """A transfer spanning many trace cycles stays exact."""
        bw = TraceBandwidth([100.0, 0.0, 50.0], wrap=True)
        size = 150.0 * 1000 + 75.0  # 1000 full cycles + half of a 50-step
        duration = bw.transfer_duration(0.0, size)
        slow = BandwidthModel.transfer_duration(bw, 0.0, size)
        assert duration == pytest.approx(slow, rel=1e-12)

    def test_clamped_extension_uses_last_sample(self):
        bw = TraceBandwidth([1000.0, 10.0], wrap=False)
        # 1010 bytes drain the trace; the rest rides the clamped 10 B/s.
        assert bw.transfer_duration(0.0, 1110.0) == pytest.approx(12.0)


class TestMarkovMemoryBound:
    def test_window_stays_bounded(self, monkeypatch):
        monkeypatch.setattr(MarkovBandwidth, "STATE_WINDOW", 64)
        monkeypatch.setattr(MarkovBandwidth, "CHECKPOINT_EVERY", 64)
        bw = MarkovBandwidth(1000.0, 100.0, seed=3)
        for sec in range(5000):
            bw.rate_at(float(sec))
        assert len(bw._states) < 2 * 64

    def test_backward_queries_replay_deterministically(self, monkeypatch):
        monkeypatch.setattr(MarkovBandwidth, "STATE_WINDOW", 64)
        monkeypatch.setattr(MarkovBandwidth, "CHECKPOINT_EVERY", 64)
        reference = MarkovBandwidth(1000.0, 100.0, seed=9)
        forward = [reference.rate_at(float(s)) for s in range(2000)]
        probe = MarkovBandwidth(1000.0, 100.0, seed=9)
        probe.rate_at(1999.0)  # window now covers only the tail
        for sec in [0, 1, 63, 64, 65, 500, 1234, 1998]:
            assert probe.rate_at(float(sec)) == forward[sec]

    def test_query_order_independent(self, monkeypatch):
        monkeypatch.setattr(MarkovBandwidth, "STATE_WINDOW", 32)
        monkeypatch.setattr(MarkovBandwidth, "CHECKPOINT_EVERY", 32)
        seconds = [700, 3, 699, 0, 64, 31, 32, 500, 1]
        a = MarkovBandwidth(1000.0, 100.0, seed=5)
        b = MarkovBandwidth(1000.0, 100.0, seed=5)
        rates_a = {s: a.rate_at(float(s)) for s in seconds}
        rates_b = {s: b.rate_at(float(s)) for s in sorted(seconds)}
        assert rates_a == rates_b
