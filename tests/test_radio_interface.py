"""Unit tests for the radio interface (serialisation, piggybacking)."""

import pytest

from repro.bandwidth.models import ConstantBandwidth
from repro.core.packet import Heartbeat, Packet
from repro.radio.interface import RadioInterface

from tests.conftest import make_packet


def hb(time=0.0, seq=0, app="qq", size=378):
    return Heartbeat(app_id=app, seq=seq, time=time, size_bytes=size)


class TestTransmit:
    def test_duration_from_bandwidth(self, power_model):
        radio = RadioInterface(power_model, ConstantBandwidth(1_000.0))
        record = radio.transmit(0.0, 2_000, "data")
        assert record.duration == pytest.approx(2.0)

    def test_busy_radio_delays_next_burst(self, power_model):
        radio = RadioInterface(power_model, ConstantBandwidth(1_000.0))
        radio.transmit(0.0, 5_000, "data")  # busy until t=5
        record = radio.transmit(2.0, 1_000, "data")
        assert record.start == pytest.approx(5.0)

    def test_rejects_out_of_order_requests(self, power_model):
        radio = RadioInterface(power_model)
        radio.transmit(10.0, 100, "data")
        with pytest.raises(ValueError):
            radio.transmit(5.0, 100, "data")

    def test_same_instant_requests_serialise(self, power_model):
        radio = RadioInterface(power_model, ConstantBandwidth(1_000.0))
        a = radio.transmit(0.0, 1_000, "data")
        b = radio.transmit(0.0, 1_000, "data")
        assert b.start == pytest.approx(a.end)

    def test_rejects_negative_start(self, power_model):
        with pytest.raises(ValueError):
            RadioInterface(power_model).transmit(-1.0, 100, "data")


class TestHeartbeatAndPackets:
    def test_transmit_heartbeat(self, power_model):
        radio = RadioInterface(power_model)
        record = radio.transmit_heartbeat(hb(time=60.0))
        assert record.kind == "heartbeat"
        assert record.app_ids == ("qq",)
        assert record.start == 60.0

    def test_transmit_packets_sets_times(self, power_model):
        radio = RadioInterface(power_model, ConstantBandwidth(1_000.0))
        packets = [make_packet(arrival=0.0, size=500), make_packet(arrival=0.0, size=500)]
        (record,) = radio.transmit_packets(10.0, packets)
        assert record.kind == "data"
        assert record.size_bytes == 1_000
        for p in packets:
            assert p.scheduled_time == pytest.approx(10.0)
            assert p.completion_time == pytest.approx(record.end)

    def test_transmit_packets_requires_nonempty(self, power_model):
        with pytest.raises(ValueError):
            RadioInterface(power_model).transmit_packets(0.0, [])

    def test_piggyback_merges_sizes(self, power_model):
        radio = RadioInterface(power_model, ConstantBandwidth(1_000.0))
        packets = [make_packet(size=1_000)]
        (record,) = radio.transmit_piggyback(hb(time=5.0), packets)
        assert record.kind == "piggyback"
        assert record.size_bytes == 1_378
        assert "qq" in record.app_ids and "weibo" in record.app_ids
        assert record.packet_ids == (packets[0].packet_id,)

    def test_piggyback_empty_falls_back_to_heartbeat(self, power_model):
        radio = RadioInterface(power_model)
        (record,) = radio.transmit_piggyback(hb(time=5.0), [])
        assert record.kind == "heartbeat"

    def test_mixed_direction_batch_splits_bursts(self, power_model):
        radio = RadioInterface(power_model, ConstantBandwidth(1_000.0))
        up = make_packet(size=1_000)
        down = Packet(
            app_id="weibo", arrival_time=0.0, size_bytes=3_000, direction="down"
        )
        records = radio.transmit_packets(10.0, [up, down])
        assert len(records) == 2
        # Downlink runs at downlink_factor x the uplink rate.
        assert records[0].duration == pytest.approx(1.0)
        assert records[1].duration == pytest.approx(1.0)
        # Back-to-back: no gap, so no extra tail between them.
        assert records[1].start == pytest.approx(records[0].end)

    def test_downlink_piggyback_follows_heartbeat(self, power_model):
        radio = RadioInterface(power_model, ConstantBandwidth(1_000.0))
        down = Packet(
            app_id="cloud", arrival_time=0.0, size_bytes=6_000, direction="down"
        )
        records = radio.transmit_piggyback(hb(time=5.0), [down])
        assert [r.kind for r in records] == ["heartbeat", "piggyback"]
        assert records[1].duration == pytest.approx(2.0)


class TestEnergyConsistency:
    def test_interface_energy_matches_rrc_integral(self, power_model):
        """Analytic accounting and the RRC timeline agree on totals."""
        radio = RadioInterface(power_model, ConstantBandwidth(10_000.0))
        radio.transmit(0.0, 5_000, "data")
        radio.transmit(30.0, 5_000, "data")
        radio.transmit(31.0, 5_000, "data")
        analytic = radio.total_energy()
        integral = radio.rrc.energy()
        assert analytic == pytest.approx(integral, rel=1e-9)

    def test_empty_radio_zero_energy(self, power_model):
        assert RadioInterface(power_model).total_energy() == 0.0
