"""Unit tests for the measured-app registry (Table 1 constants)."""

import pytest

from repro.heartbeat.apps import (
    ANDROID_CYCLE_TABLE,
    ANDROID_TRAIN_APPS,
    IOS_APNS_CYCLE,
    default_train_generators,
    ios_generator,
    known_train_profile,
    make_generator,
)
from repro.heartbeat.generators import DoublingCycleGenerator, FixedCycleGenerator


class TestRegistry:
    def test_paper_cycles(self):
        assert ANDROID_TRAIN_APPS["qq"].cycle == 300.0
        assert ANDROID_TRAIN_APPS["wechat"].cycle == 270.0
        assert ANDROID_TRAIN_APPS["whatsapp"].cycle == 240.0
        assert ANDROID_TRAIN_APPS["renren"].cycle == 300.0

    def test_paper_sizes(self):
        assert ANDROID_TRAIN_APPS["qq"].heartbeat_size_bytes == 378
        assert ANDROID_TRAIN_APPS["wechat"].heartbeat_size_bytes == 74
        assert ANDROID_TRAIN_APPS["whatsapp"].heartbeat_size_bytes == 66

    def test_ios_cycle(self):
        assert IOS_APNS_CYCLE == 1800.0

    def test_cycle_table_devices(self):
        assert "Samsung GALAXY S IV" in ANDROID_CYCLE_TABLE
        assert "iPhone 4/iPhone 5" in ANDROID_CYCLE_TABLE
        ios_row = ANDROID_CYCLE_TABLE["iPhone 4/iPhone 5"]
        assert all(v == 1800.0 for v in ios_row.values())

    def test_netease_range_in_table(self):
        row = ANDROID_CYCLE_TABLE["Samsung Note II"]
        assert row["netease"] == (60.0, 480.0)


class TestFactories:
    def test_known_profile_with_phase(self):
        p = known_train_profile("qq", first_heartbeat=42.0)
        assert p.first_heartbeat == 42.0
        assert p.cycle == 300.0

    def test_unknown_app_raises(self):
        with pytest.raises(KeyError):
            known_train_profile("telegram")

    def test_make_generator_fixed(self):
        gen = make_generator("wechat")
        assert isinstance(gen, FixedCycleGenerator)

    def test_make_generator_netease_doubles(self):
        gen = make_generator("netease")
        assert isinstance(gen, DoublingCycleGenerator)

    def test_default_generators_counts(self):
        for n in range(4):
            gens = default_train_generators(n)
            assert len(gens) == n

    def test_default_generators_order(self):
        gens = default_train_generators(3)
        assert [g.app_id for g in gens] == ["qq", "wechat", "whatsapp"]

    def test_default_generators_staggered_phases(self):
        gens = default_train_generators(3)
        firsts = [g.heartbeats_until(1000.0)[0].time for g in gens]
        assert len(set(firsts)) == 3

    def test_default_generators_rejects_bad_count(self):
        with pytest.raises(ValueError):
            default_train_generators(4)

    def test_ios_generator_cycle(self):
        gen = ios_generator("wechat")
        times = [h.time for h in gen.heartbeats_until(4000.0)]
        assert times == [0.0, 1800.0, 3600.0]
        assert gen.app_id == "wechat-ios"
