"""Unit tests for analytic energy accounting over burst sequences."""

import pytest

from repro.core.packet import TransmissionRecord
from repro.radio.energy import EnergyAccountant, EnergyBreakdown
from repro.radio.power_model import GALAXY_S4_3G


def rec(start, duration=0.1, size=100, kind="data", packet_ids=()):
    return TransmissionRecord(
        start=start,
        duration=duration,
        size_bytes=size,
        kind=kind,
        packet_ids=tuple(packet_ids),
    )


class TestGaps:
    def test_empty(self):
        assert EnergyAccountant().gaps([]) == []

    def test_single_burst_infinite_gap(self):
        gaps = EnergyAccountant().gaps([rec(0.0)])
        assert gaps == [float("inf")]

    def test_two_bursts(self):
        gaps = EnergyAccountant().gaps([rec(0.0, 1.0), rec(5.0, 1.0)])
        assert gaps[0] == pytest.approx(4.0)
        assert gaps[1] == float("inf")

    def test_back_to_back_zero_gap(self):
        gaps = EnergyAccountant().gaps([rec(0.0, 1.0), rec(1.0, 1.0)])
        assert gaps[0] == pytest.approx(0.0)

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            EnergyAccountant().gaps([rec(5.0), rec(0.0)])

    def test_rejects_overlap(self):
        with pytest.raises(ValueError):
            EnergyAccountant().gaps([rec(0.0, 2.0), rec(1.0, 1.0)])


class TestBreakdown:
    def test_single_isolated_burst(self, power_model):
        acc = EnergyAccountant(power_model)
        b = acc.breakdown([rec(0.0, duration=2.0)])
        assert b.tail == pytest.approx(power_model.full_tail_energy)
        assert b.transmission == pytest.approx(1.4)
        assert b.total == pytest.approx(b.tail + b.transmission)

    def test_two_bursts_share_tail(self, power_model):
        acc = EnergyAccountant(power_model)
        b = acc.breakdown([rec(0.0, 1.0), rec(3.0, 1.0)])
        # Gap of 2 s: only 2 s of DCH tail wasted for the first burst.
        assert b.tail == pytest.approx(0.7 * 2.0 + power_model.full_tail_energy)

    def test_heartbeat_vs_cargo_split(self, power_model):
        acc = EnergyAccountant(power_model)
        b = acc.breakdown(
            [rec(0.0, 1.0, kind="heartbeat"), rec(100.0, 1.0, kind="data")]
        )
        assert b.heartbeat_transmission == pytest.approx(0.7)
        assert b.cargo_transmission == pytest.approx(0.7)

    def test_piggyback_split_preserves_total(self, power_model):
        acc = EnergyAccountant(power_model)
        b = acc.breakdown([rec(0.0, 2.0, kind="piggyback", packet_ids=(1, 2, 3))])
        assert b.heartbeat_transmission + b.cargo_transmission == pytest.approx(
            b.transmission
        )
        assert b.heartbeat_transmission < b.cargo_transmission

    def test_empty_sequence(self, power_model):
        b = EnergyAccountant(power_model).breakdown([])
        assert b.total == 0.0
        assert b.tail_fraction == 0.0

    def test_tail_fraction(self, power_model):
        acc = EnergyAccountant(power_model)
        b = acc.breakdown([rec(0.0, 0.0, kind="heartbeat")])
        # A zero-duration heartbeat is pure tail.
        assert b.tail_fraction == pytest.approx(1.0)

    def test_total_energy_convenience(self, power_model):
        acc = EnergyAccountant(power_model)
        records = [rec(0.0, 1.0), rec(50.0, 1.0)]
        assert acc.total_energy(records) == pytest.approx(
            acc.breakdown(records).total
        )


class TestAggregationSavesEnergy:
    """The core premise: batching n packets beats sending them apart."""

    def test_batched_cheaper_than_scattered(self, power_model):
        acc = EnergyAccountant(power_model)
        scattered = [rec(100.0 * i, 1.0) for i in range(5)]
        batched = [rec(0.0, 5.0)]
        assert acc.total_energy(batched) < acc.total_energy(scattered)

    def test_scattered_cost_grows_with_separation(self, power_model):
        acc = EnergyAccountant(power_model)
        close = [rec(2.0 * i, 1.0) for i in range(5)]
        far = [rec(100.0 * i, 1.0) for i in range(5)]
        assert acc.total_energy(close) < acc.total_energy(far)
