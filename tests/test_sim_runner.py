"""Unit tests for scenario construction and strategy running."""

import pytest

from repro.baselines.immediate import ImmediateStrategy
from repro.sim.runner import default_scenario, run_strategy


class TestDefaultScenario:
    def test_components(self):
        sc = default_scenario(horizon=1000.0)
        assert len(sc.train_generators) == 3
        assert {p.app_id for p in sc.profiles} == {"mail", "weibo", "cloud"}
        assert sc.horizon == 1000.0
        assert all(p.arrival_time < 1000.0 for p in sc.packets)

    def test_train_count(self):
        sc = default_scenario(horizon=500.0, train_count=1)
        assert len(sc.train_generators) == 1

    def test_deterministic_per_seed(self):
        a = default_scenario(seed=3, horizon=1000.0)
        b = default_scenario(seed=3, horizon=1000.0)
        assert [(p.arrival_time, p.size_bytes) for p in a.packets] == [
            (p.arrival_time, p.size_bytes) for p in b.packets
        ]

    def test_fresh_packets_are_copies(self):
        sc = default_scenario(horizon=1000.0)
        copies = sc.fresh_packets()
        assert len(copies) == len(sc.packets)
        assert all(c.packet_id != o.packet_id or c is not o
                   for c, o in zip(copies, sc.packets))
        copies[0].scheduled_time = 5.0
        assert sc.packets[0].scheduled_time is None

    def test_estimator_bound_to_channel(self):
        sc = default_scenario(horizon=500.0)
        est = sc.estimator(lag=0.0, noise=0.0)
        assert est.estimate(10.0) == sc.bandwidth.rate_at(10.0)


class TestRunStrategy:
    def test_runs_are_independent(self):
        sc = default_scenario(horizon=1000.0)
        r1 = run_strategy(ImmediateStrategy(), sc)
        r2 = run_strategy(ImmediateStrategy(), sc)
        assert r1.total_energy == pytest.approx(r2.total_energy)
        assert r1.normalized_delay == pytest.approx(r2.normalized_delay)

    def test_result_metadata(self):
        sc = default_scenario(horizon=1000.0)
        r = run_strategy(ImmediateStrategy(), sc)
        assert r.strategy_name == "baseline"
        assert r.horizon == 1000.0
        assert len(r.heartbeats) > 0
