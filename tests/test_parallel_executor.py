"""Parallel experiment executor: determinism, caching, instrumentation.

The acceptance criteria of the parallel-runner issue live here:

* a 5-seed x 4-strategy grid produces bit-identical summary dicts
  whether executed serially in-process or across a process pool;
* re-running a grid against a warm on-disk cache executes **zero**
  simulations (asserted via :class:`ExecutorStats`);
* job-spec content hashes are stable, order-insensitive, and exclude
  the display ``tag``.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.multiseed import replicate_jobs, replicate_strategy
from repro.baselines.etrain import ETrainStrategy
from repro.core.scheduler import SchedulerConfig
from repro.sim.parallel import (
    ExperimentExecutor,
    JobSpec,
    ResultCache,
    ScenarioSpec,
    StrategySpec,
    run_job,
    seed_grid,
)

#: The comparison set the issue names: the baseline plus all three
#: scheduling algorithms, at their Fig. 8 operating points.
GRID_STRATEGIES = [
    StrategySpec.make("immediate"),
    StrategySpec.make("etrain", theta=1.0),
    StrategySpec.make("peres", omega=0.4),
    StrategySpec.make("etime", v=40_000.0),
]
GRID_SEEDS = [0, 1, 2, 3, 4]


def _grid_jobs(horizon: float = 450.0):
    return seed_grid(
        GRID_STRATEGIES, GRID_SEEDS, ScenarioSpec(horizon=horizon)
    )


def test_serial_and_parallel_grids_bit_identical():
    """5 seeds x 4 strategies: pool summaries == in-process summaries."""
    jobs = _grid_jobs()
    serial = ExperimentExecutor().run(jobs)
    parallel = ExperimentExecutor(workers=2).run(jobs)

    assert len(serial) == len(parallel) == 20
    for s, p in zip(serial, parallel):
        assert s.spec == p.spec
        assert s.summary == p.summary  # dict equality: bit-identical floats


def test_results_come_back_in_submission_order():
    jobs = _grid_jobs(horizon=240.0)
    results = ExperimentExecutor(workers=2).run(jobs)
    assert [r.spec for r in results] == jobs


def test_warm_cache_rerun_executes_zero_simulations(tmp_path):
    """Second run of the same grid: all cache hits, no simulations."""
    jobs = _grid_jobs(horizon=240.0)

    cold = ExperimentExecutor(cache_dir=tmp_path / "cache")
    first = cold.run(jobs)
    assert cold.stats.jobs_run == len(jobs)
    assert cold.stats.cache_hits == 0

    warm = ExperimentExecutor(cache_dir=tmp_path / "cache", workers=2)
    second = warm.run(jobs)
    assert warm.stats.jobs_run == 0
    assert warm.stats.cache_hits == len(jobs)
    assert all(r.cached for r in second)
    for a, b in zip(first, second):
        assert a.summary == b.summary


def test_partial_cache_only_runs_missing_cells(tmp_path):
    jobs = _grid_jobs(horizon=240.0)
    seeded = ExperimentExecutor(cache_dir=tmp_path / "cache")
    seeded.run(jobs[:8])

    rest = ExperimentExecutor(cache_dir=tmp_path / "cache")
    results = rest.run(jobs)
    assert rest.stats.cache_hits == 8
    assert rest.stats.jobs_run == len(jobs) - 8
    assert [r.spec for r in results] == jobs


def test_cached_results_identical_to_fresh(tmp_path):
    job = _grid_jobs(horizon=240.0)[5]
    executor = ExperimentExecutor(cache_dir=tmp_path / "cache")
    (fresh,) = executor.run([job])
    (cached,) = executor.run([job])
    assert cached.cached and not fresh.cached
    assert cached.summary == fresh.summary
    assert cached.summary == run_job(job)


def test_executor_stats_accumulate_and_describe(tmp_path):
    executor = ExperimentExecutor(cache_dir=tmp_path / "cache")
    jobs = _grid_jobs(horizon=240.0)[:4]
    executor.run(jobs)
    executor.run(jobs)
    stats = executor.stats
    assert stats.jobs_total == 8
    assert stats.jobs_run == 4
    assert stats.cache_hits == 4
    assert stats.mean_job_time > 0
    assert 0.0 <= stats.worker_utilization <= 1.0
    text = stats.describe()
    assert "8 jobs" in text and "4 run" in text and "4 cached" in text


def test_progress_callback_streams_every_job(tmp_path):
    lines = []
    executor = ExperimentExecutor(
        cache_dir=tmp_path / "cache", progress=lines.append
    )
    jobs = _grid_jobs(horizon=240.0)[:3]
    executor.run(jobs)
    assert len(lines) == 3
    assert lines[0].startswith("[1/3]")

    executor.run(jobs)  # warm: still one line per job, marked cached
    assert len(lines) == 6
    assert all("(cache)" in line for line in lines[3:])


# ---------------------------------------------------------------------------
# Content hashing
# ---------------------------------------------------------------------------


def test_content_hash_is_stable_and_order_insensitive():
    a = JobSpec(
        StrategySpec.make("etrain", theta=0.5, k=8),
        ScenarioSpec(seed=3, horizon=600.0),
    )
    b = JobSpec(
        StrategySpec.make("etrain", k=8, theta=0.5),  # kwargs reordered
        ScenarioSpec(seed=3, horizon=600.0),
    )
    assert a.content_hash() == b.content_hash()
    assert len(a.content_hash()) == 64  # sha-256 hex


def test_content_hash_excludes_tag():
    base = JobSpec(
        StrategySpec.make("immediate"), ScenarioSpec(seed=0, horizon=600.0)
    )
    tagged = JobSpec(
        StrategySpec.make("immediate"),
        ScenarioSpec(seed=0, horizon=600.0),
        tag="relabelled sweep cell",
    )
    assert base.content_hash() == tagged.content_hash()


def test_content_hash_distinguishes_every_spec_field():
    base = JobSpec(
        StrategySpec.make("etrain", theta=0.5),
        ScenarioSpec(seed=0, horizon=600.0),
    )
    variants = [
        JobSpec(StrategySpec.make("etrain", theta=0.6), base.scenario),
        JobSpec(StrategySpec.make("immediate"), base.scenario),
        JobSpec(base.strategy, ScenarioSpec(seed=1, horizon=600.0)),
        JobSpec(base.strategy, ScenarioSpec(seed=0, horizon=601.0)),
        JobSpec(base.strategy, ScenarioSpec(seed=0, horizon=600.0, rate=0.1)),
        JobSpec(
            base.strategy,
            ScenarioSpec(seed=0, horizon=600.0, power_model="lte_cat4"),
        ),
        JobSpec(base.strategy, ScenarioSpec(seed=0, horizon=600.0, slot=0.5)),
    ]
    hashes = {base.content_hash()} | {v.content_hash() for v in variants}
    assert len(hashes) == len(variants) + 1


def test_cache_survives_corrupt_entries(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    job = JobSpec(StrategySpec.make("immediate"), ScenarioSpec(horizon=240.0))
    key = job.content_hash()
    cache.put(key, {"summary": {"total_energy_j": 1.0}})
    assert cache.get(key)["summary"]["total_energy_j"] == 1.0

    path = cache._path(key)
    path.write_text("{not json", encoding="utf-8")
    assert cache.get(key) is None  # corrupt entry reads as a miss


def test_cache_entry_records_spec_for_auditing(tmp_path):
    executor = ExperimentExecutor(cache_dir=tmp_path / "cache")
    job = JobSpec(
        StrategySpec.make("etrain", theta=1.0),
        ScenarioSpec(horizon=240.0),
        tag="audit me",
    )
    executor.run([job])
    entry = json.loads(
        ResultCache(tmp_path / "cache")._path(job.content_hash()).read_text()
    )
    assert entry["spec"] == job.to_dict()
    assert entry["tag"] == "audit me"
    assert "summary" in entry and "wall_time" in entry


# ---------------------------------------------------------------------------
# replicate_strategy: declarative vs legacy-callable equivalence
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "name,params,factory",
    [
        (
            "immediate",
            {},
            lambda s: __import__(
                "repro.baselines.immediate", fromlist=["ImmediateStrategy"]
            ).ImmediateStrategy(),
        ),
        (
            "etrain",
            {"theta": 1.0},
            lambda s: ETrainStrategy(s.profiles, SchedulerConfig(theta=1.0)),
        ),
        (
            "peres",
            {"omega": 0.4},
            lambda s: __import__(
                "repro.baselines.peres", fromlist=["PerESStrategy"]
            ).PerESStrategy(s.profiles, s.estimator(), omega=0.4),
        ),
        (
            "etime",
            {"v": 40_000.0},
            lambda s: __import__(
                "repro.baselines.etime", fromlist=["ETimeStrategy"]
            ).ETimeStrategy(s.estimator(), v=40_000.0),
        ),
    ],
)
def test_replicate_strategy_declarative_matches_callable(name, params, factory):
    """Issue satellite: serial-vs-parallel replicate_strategy regression.

    For each of the four comparison strategies, the declarative
    (executor-backed, possibly pooled) path must reproduce the legacy
    callable path's per-seed metrics exactly.
    """
    seeds = (0, 1, 2)
    legacy = replicate_strategy(factory, seeds, horizon=450.0)
    serial = replicate_strategy(
        StrategySpec.make(name, **params), seeds, horizon=450.0
    )
    pooled = replicate_strategy(
        StrategySpec.make(name, **params),
        seeds,
        horizon=450.0,
        executor=ExperimentExecutor(workers=2),
    )
    for key, summary in legacy.items():
        assert serial[key] == summary, f"serial mismatch on {key}"
        assert pooled[key] == summary, f"pooled mismatch on {key}"


def test_replicate_jobs_template_seeds():
    jobs = replicate_jobs(
        "etrain", [4, 7], ScenarioSpec(horizon=450.0, rate=0.1)
    )
    assert [j.scenario.seed for j in jobs] == [4, 7]
    assert all(j.scenario.rate == 0.1 for j in jobs)
    assert all(j.strategy.name == "etrain" for j in jobs)


def test_replicate_strategy_rejects_mixed_forms():
    with pytest.raises(ValueError):
        replicate_strategy(
            "etrain",
            (0, 1),
            scenario_factory=lambda seed: None,
        )


class TestCacheConcurrency:
    """Hardening satellite: cache ops tolerate files vanishing in races."""

    @staticmethod
    def _fill(cache, n, prefix="aa"):
        for i in range(n):
            cache.put(f"{prefix}{i:062x}"[:64], {"summary": {"i": float(i)}})

    def test_concurrent_prunes_and_puts_never_raise(self, tmp_path):
        import threading

        cache = ResultCache(tmp_path / "cache")
        self._fill(cache, 40)
        errors = []

        def pruner():
            try:
                for _ in range(30):
                    cache.prune(max_entries=5)
            except Exception as exc:  # pragma: no cover - the bug
                errors.append(exc)

        def writer():
            try:
                for round_ in range(10):
                    self._fill(cache, 20, prefix="bb")
            except Exception as exc:  # pragma: no cover - the bug
                errors.append(exc)

        threads = [threading.Thread(target=pruner) for _ in range(3)]
        threads.append(threading.Thread(target=writer))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []

    def test_prune_tolerates_entries_vanishing_mid_scan(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        self._fill(cache, 10)
        # Rip a whole shard directory out from under the scan by making
        # _scan see stale dir entries: delete between scan and stat.
        import shutil

        real_scan = cache._scan

        def sabotaged_scan():
            paths = list(real_scan())
            for path in paths[:5]:
                path.unlink(missing_ok=True)
            shutil.rmtree(cache.root / "aa", ignore_errors=True)
            yield from paths

        cache._scan = sabotaged_scan
        removed = cache.prune(max_entries=0)  # must not raise
        assert removed >= 0

    def test_put_survives_shard_dir_removal(self, tmp_path, monkeypatch):
        import shutil
        import tempfile as _tempfile

        cache = ResultCache(tmp_path / "cache")
        key = "cc" + "0" * 62
        real_mkstemp = _tempfile.mkstemp
        state = {"fired": False}

        def racing_mkstemp(*args, **kwargs):
            # An external cleanup deletes the shard directory right
            # before the temp file is created — first call only.
            if not state["fired"]:
                state["fired"] = True
                shutil.rmtree(cache.root / key[:2], ignore_errors=True)
            return real_mkstemp(*args, **kwargs)

        monkeypatch.setattr(_tempfile, "mkstemp", racing_mkstemp)
        cache.put(key, {"summary": {"ok": 1.0}})
        assert cache.get(key) is not None

    def test_len_and_size_survive_missing_root(self, tmp_path):
        import shutil

        cache = ResultCache(tmp_path / "cache")
        self._fill(cache, 3)
        shutil.rmtree(cache.root)
        assert len(cache) == 0
        assert cache.size_bytes() == 0
        assert cache.prune(max_entries=0) == 0
