"""Cross-validation: the Android layer and the slotted engine agree.

The two execution paths — `repro.sim.engine.Simulation` (used by the
simulation figures) and the `repro.android` stack (used by the
controlled-experiment figures) — implement the same semantics: Algorithm
1 decisions, heartbeat-fixed departures, warm-gated Q_TX.  Run the same
workload through both and their energy/delay must agree closely; a
divergence means one path drifted from the model.
"""

import pytest

from repro.android.apps import CargoApp, TrainApp
from repro.android.etrain_service import ETrainService
from repro.android.runtime import AndroidSystem
from repro.bandwidth.models import ConstantBandwidth
from repro.baselines.etrain import ETrainStrategy
from repro.core.packet import Packet, reset_packet_ids
from repro.core.profiles import mail_profile, weibo_profile
from repro.core.scheduler import SchedulerConfig
from repro.heartbeat.apps import known_train_profile, make_generator
from repro.sim.engine import Simulation

HORIZON = 1800.0
THETA = 0.5

WORKLOAD = [
    ("weibo", 33.0, 2_000), ("mail", 80.0, 5_000), ("weibo", 150.0, 1_500),
    ("weibo", 260.0, 2_500), ("mail", 300.0, 4_000), ("weibo", 420.0, 2_000),
    ("mail", 700.0, 6_000), ("weibo", 820.0, 1_200), ("weibo", 1000.0, 3_000),
    ("mail", 1200.0, 5_500), ("weibo", 1500.0, 2_200), ("weibo", 1700.0, 1_800),
]

TRAINS = (("qq", 0.0), ("wechat", 97.0))


def run_engine():
    reset_packet_ids()
    packets = [
        Packet(app_id=a, arrival_time=t, size_bytes=s,
               deadline=30.0 if a == "weibo" else 60.0)
        for a, t, s in WORKLOAD
    ]
    sim = Simulation(
        ETrainStrategy(
            [weibo_profile(), mail_profile()], SchedulerConfig(theta=THETA)
        ),
        [make_generator(app, phase) for app, phase in TRAINS],
        packets,
        bandwidth=ConstantBandwidth(100_000.0),
        horizon=HORIZON,
    )
    result = sim.run()
    delays = [p.delay for p in packets]
    return result.total_energy, sum(delays) / len(delays)


def run_android():
    reset_packet_ids()
    system = AndroidSystem(bandwidth=ConstantBandwidth(100_000.0))
    service = ETrainService(system, SchedulerConfig(theta=THETA))
    for app_id, phase in TRAINS:
        train = TrainApp(known_train_profile(app_id, phase), system)
        train.start()
        service.attach_train_app(train)
    apps = {
        "weibo": CargoApp(weibo_profile(), system),
        "mail": CargoApp(mail_profile(), system),
    }
    for app in apps.values():
        app.register()
    for app_id, when, size in WORKLOAD:
        system.alarm_manager.set_exact(
            when, lambda t, a=apps[app_id], s=size: a.submit(s)
        )
    service.start()
    system.run_until(HORIZON)
    service.stop()
    transmitted = [p for app in apps.values() for p in app.transmitted]
    delays = [p.delay for p in transmitted if p.is_scheduled]
    return system.total_energy(), sum(delays) / len(delays)


class TestCrossValidation:
    def test_energy_agrees(self):
        engine_energy, _ = run_engine()
        android_energy, _ = run_android()
        assert android_energy == pytest.approx(engine_energy, rel=0.1)

    def test_delay_agrees(self):
        _, engine_delay = run_engine()
        _, android_delay = run_android()
        assert android_delay == pytest.approx(engine_delay, abs=10.0)

    def test_both_save_vs_immediate(self):
        from repro.baselines.immediate import ImmediateStrategy

        reset_packet_ids()
        packets = [
            Packet(app_id=a, arrival_time=t, size_bytes=s)
            for a, t, s in WORKLOAD
        ]
        baseline = Simulation(
            ImmediateStrategy(),
            [make_generator(app, phase) for app, phase in TRAINS],
            packets,
            bandwidth=ConstantBandwidth(100_000.0),
            horizon=HORIZON,
        ).run()
        engine_energy, _ = run_engine()
        android_energy, _ = run_android()
        assert engine_energy < baseline.total_energy
        assert android_energy < baseline.total_energy
