"""Unit tests for packet-trace CSV round-tripping."""

import pytest

from repro.workload.cargo import synthesize_trace
from repro.workload.trace_io import load_packets_csv, save_packets_csv

from tests.conftest import make_packet


class TestRoundTrip:
    def test_preserves_semantic_fields(self, tmp_path):
        trace = synthesize_trace(horizon=2_000.0, seed=0)
        path = tmp_path / "trace.csv"
        save_packets_csv(trace, path)
        loaded = load_packets_csv(path)
        assert len(loaded) == len(trace)
        for original, copy in zip(trace, loaded):
            assert copy.app_id == original.app_id
            assert copy.arrival_time == pytest.approx(original.arrival_time)
            assert copy.size_bytes == original.size_bytes
            assert copy.deadline == pytest.approx(original.deadline)

    def test_none_deadline_roundtrips(self, tmp_path):
        packet = make_packet()
        packet = type(packet)(
            app_id="mail", arrival_time=1.0, size_bytes=10, deadline=None
        )
        path = tmp_path / "t.csv"
        save_packets_csv([packet], path)
        loaded = load_packets_csv(path)
        assert loaded[0].deadline is None

    def test_rejects_wrong_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("nope,nope\n")
        with pytest.raises(ValueError):
            load_packets_csv(path)

    def test_rejects_malformed_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("app_id,arrival_time,size_bytes,deadline\nmail,1.0\n")
        with pytest.raises(ValueError):
            load_packets_csv(path)
