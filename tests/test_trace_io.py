"""Unit tests for packet-trace CSV round-tripping and NDJSON framing."""

import json

import pytest

from repro.workload.cargo import synthesize_trace
from repro.workload.trace_io import (
    NdjsonDecoder,
    TruncatedTraceError,
    load_packets_csv,
    save_packets_csv,
)

from tests.conftest import make_packet


class TestRoundTrip:
    def test_preserves_semantic_fields(self, tmp_path):
        trace = synthesize_trace(horizon=2_000.0, seed=0)
        path = tmp_path / "trace.csv"
        save_packets_csv(trace, path)
        loaded = load_packets_csv(path)
        assert len(loaded) == len(trace)
        for original, copy in zip(trace, loaded):
            assert copy.app_id == original.app_id
            assert copy.arrival_time == pytest.approx(original.arrival_time)
            assert copy.size_bytes == original.size_bytes
            assert copy.deadline == pytest.approx(original.deadline)

    def test_none_deadline_roundtrips(self, tmp_path):
        packet = make_packet()
        packet = type(packet)(
            app_id="mail", arrival_time=1.0, size_bytes=10, deadline=None
        )
        path = tmp_path / "t.csv"
        save_packets_csv([packet], path)
        loaded = load_packets_csv(path)
        assert loaded[0].deadline is None

    def test_rejects_wrong_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("nope,nope\n")
        with pytest.raises(ValueError):
            load_packets_csv(path)

    def test_rejects_malformed_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("app_id,arrival_time,size_bytes,deadline\nmail,1.0\n")
        with pytest.raises(ValueError):
            load_packets_csv(path)


class TestNdjsonDecoder:
    """The shared incremental framer: torn frames must never mis-parse."""

    FRAMES = [{"op": "event", "t": 1.5, "n": i} for i in range(7)]

    def _wire(self):
        return b"".join(
            (json.dumps(f) + "\n").encode("utf-8") for f in self.FRAMES
        )

    def test_whole_buffer(self):
        decoder = NdjsonDecoder()
        frames = decoder.feed(self._wire())
        assert [f.obj for f in frames] == self.FRAMES
        assert all(f.complete and f.error is None for f in frames)
        assert not decoder.pending

    @pytest.mark.parametrize("chunk", [1, 2, 3, 5, 17])
    def test_any_split_reassembles(self, chunk):
        """Frames split at every possible TCP read boundary still parse."""
        wire = self._wire()
        decoder = NdjsonDecoder()
        out = []
        for i in range(0, len(wire), chunk):
            out.extend(decoder.feed(wire[i : i + chunk]))
        out.extend(decoder.flush())
        assert [f.obj for f in out] == self.FRAMES
        assert all(f.error is None for f in out)

    def test_crlf_split_across_reads(self):
        """A \\r\\n terminator torn between reads yields one frame, not two."""
        decoder = NdjsonDecoder()
        first = decoder.feed(b'{"a":1}\r')
        assert first == []  # held back: could be \r\n
        rest = decoder.feed(b'\n{"b":2}\n')
        assert [f.obj for f in rest] == [{"a": 1}, {"b": 2}]

    def test_flush_marks_torn_tail_incomplete(self):
        decoder = NdjsonDecoder()
        complete = decoder.feed(b'{"a":1}\n{"b":')
        assert [f.obj for f in complete] == [{"a": 1}]
        tail = decoder.flush()
        assert len(tail) == 1
        assert not tail[0].complete
        assert tail[0].error is not None

    def test_flush_parses_unterminated_tail(self):
        """A half-closed peer's last line parses, but is flagged torn."""
        decoder = NdjsonDecoder()
        decoder.feed(b'{"a":1}')
        tail = decoder.flush()
        assert len(tail) == 1
        assert not tail[0].complete
        assert tail[0].error is None
        assert tail[0].obj == {"a": 1}

    def test_blank_lines_are_flagged(self):
        decoder = NdjsonDecoder()
        frames = decoder.feed(b'\n  \n{"a":1}\n')
        assert [f.is_blank for f in frames] == [True, True, False]


class TestReadJsonlFraming:
    """read_jsonl rides the shared decoder: tail semantics preserved."""

    def test_torn_tail_raises_truncated(self, tmp_path):
        from repro.obs.recorder import read_jsonl

        path = tmp_path / "t.jsonl"
        path.write_text('{"a":1}\n{"b":2}\n{"c":', encoding="utf-8")
        with pytest.raises(TruncatedTraceError) as excinfo:
            read_jsonl(path)
        assert excinfo.value.valid_lines == 2

    def test_mid_file_corruption_raises_decode_error(self, tmp_path):
        from repro.obs.recorder import read_jsonl

        path = tmp_path / "t.jsonl"
        path.write_text('{"a":1}\nnot json\n{"c":3}\n', encoding="utf-8")
        with pytest.raises(json.JSONDecodeError):
            read_jsonl(path)

    def test_clean_file_roundtrips(self, tmp_path):
        from repro.obs.recorder import read_jsonl

        path = tmp_path / "t.jsonl"
        rows = [{"a": 1}, {"b": [1, 2]}, {"c": "x"}]
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in rows), encoding="utf-8"
        )
        assert read_jsonl(path) == rows
