"""Unit tests for the adaptive-Θ eTrain controller."""

import pytest

from repro.baselines.adaptive import AdaptiveThetaETrainStrategy
from repro.core.profiles import weibo_profile
from repro.heartbeat.apps import default_train_generators
from repro.sim.engine import Simulation
from repro.workload.cargo import generate_packets


def strategy(target=20.0, **kwargs):
    return AdaptiveThetaETrainStrategy([weibo_profile()], target, **kwargs)


class TestValidation:
    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            strategy(target=0.0)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            strategy(window=0)

    def test_name_mentions_target(self):
        assert "target=20" in strategy(target=20.0).name


class TestAdaptation:
    def run(self, target, horizon=3600.0):
        s = strategy(target=target, theta_init=0.5)
        packets = generate_packets(weibo_profile(), horizon, seed=5)
        sim = Simulation(
            s,
            default_train_generators(3),
            packets,
            horizon=horizon,
        )
        result = sim.run()
        return s, result

    def test_theta_rises_for_patient_target(self):
        """A very lax delay target lets Θ climb (energy mode)."""
        s, _ = self.run(target=500.0)
        assert s.theta > 0.5

    def test_theta_falls_for_strict_target(self):
        """A near-zero delay target drives Θ down (performance mode)."""
        s, _ = self.run(target=0.5)
        assert s.theta < 0.5

    def test_theta_stays_clamped(self):
        s, _ = self.run(target=1e6)
        assert s.theta <= AdaptiveThetaETrainStrategy.THETA_MAX

    def test_all_packets_delivered(self):
        _, result = self.run(target=30.0)
        assert all(p.is_scheduled for p in result.packets)

    def test_energy_ordering_follows_targets(self):
        """A patient target must not use more energy than a strict one."""
        _, strict = self.run(target=2.0)
        _, patient = self.run(target=300.0)
        assert patient.total_energy <= strict.total_energy * 1.05
