"""Fault-tolerant executor: crash recovery, timeouts, degradation.

Every scenario injects failures through a seeded
:class:`repro.faults.FaultPlan`, so the injected set is computable in
the test (``crashes_for`` / ``hangs_for``) and the run is replayable.
The one invariant every scenario must preserve: summaries are
bit-identical to a clean serial run of the same grid, whatever died
along the way.
"""

import pytest

from repro.faults import FaultPlan
from repro.obs import ListRecorder
from repro.obs.events import EventType
from repro.sim.parallel import (
    ExperimentExecutor,
    RetryPolicy,
    RunJournal,
    ScenarioSpec,
    StrategySpec,
    run_key_of,
    seed_grid,
)

pytestmark = pytest.mark.faults


def tiny_grid(seeds=3):
    return seed_grid(
        [StrategySpec.make("immediate"), StrategySpec.make("etrain", theta=1.0)],
        list(range(seeds)),
        ScenarioSpec(horizon=240.0),
    )


def plan_with(keys, *, n_crashes=0, n_hangs=0, hang_seconds=30.0, **kw):
    """Search seeds for a plan injecting exactly the requested fault counts."""
    for seed in range(500):
        plan = FaultPlan(
            seed=seed,
            crash_prob=0.25 if n_crashes else 0.0,
            hang_prob=0.25 if n_hangs else 0.0,
            hang_seconds=hang_seconds,
            **kw,
        )
        if (
            len(plan.crashes_for(keys)) == n_crashes
            and len(plan.hangs_for(keys)) == n_hangs
        ):
            return plan
    raise AssertionError("no seed matches the requested fault counts")


@pytest.fixture(scope="module")
def jobs():
    return tiny_grid()


@pytest.fixture(scope="module")
def keys(jobs):
    return [j.content_hash() for j in jobs]


@pytest.fixture(scope="module")
def clean(jobs):
    return [r.summary for r in ExperimentExecutor().run(jobs)]


class TestCrashRecovery:
    def test_single_crash_converges_bit_identical(self, jobs, keys, clean):
        plan = plan_with(keys, n_crashes=1)
        ex = ExperimentExecutor(
            workers=2, faults=plan, retry=RetryPolicy(backoff_base=0.01)
        )
        results = ex.run(jobs)
        assert [r.summary for r in results] == clean
        assert ex.stats.worker_failures == 1
        assert ex.stats.pool_rebuilds == 1
        assert ex.stats.retries >= 1  # the crashed job, plus in-flight casualties
        assert ex.stats.serial_fallbacks == 0

    def test_metrics_counters_mirror_stats(self, jobs, keys):
        plan = plan_with(keys, n_crashes=1)
        ex = ExperimentExecutor(
            workers=2, faults=plan, retry=RetryPolicy(backoff_base=0.01)
        )
        ex.run(jobs)
        metrics = ex.metrics.to_dict()
        assert metrics["executor.worker_failures"]["value"] == ex.stats.worker_failures
        assert metrics["executor.retries"]["value"] == ex.stats.retries
        assert metrics["executor.pool_rebuilds"]["value"] == ex.stats.pool_rebuilds

    def test_recorder_sees_failure_events(self, jobs, keys):
        plan = plan_with(keys, n_crashes=1)
        recorder = ListRecorder()
        ex = ExperimentExecutor(
            workers=2,
            faults=plan,
            retry=RetryPolicy(backoff_base=0.01),
            recorder=recorder,
        )
        ex.run(jobs)
        kinds = [e["ev"] for e in recorder]
        assert EventType.WORKER_FAILURE in kinds
        assert EventType.JOB_RETRY in kinds

    def test_stats_describe_mentions_survival(self, jobs, keys):
        plan = plan_with(keys, n_crashes=1)
        ex = ExperimentExecutor(
            workers=2, faults=plan, retry=RetryPolicy(backoff_base=0.01)
        )
        ex.run(jobs)
        assert "survived 1 worker failure(s)" in ex.stats.describe()


class TestHangTimeout:
    def test_hung_worker_is_killed_and_job_retried(self, jobs, keys, clean):
        plan = plan_with(keys, n_hangs=1, hang_seconds=60.0)
        ex = ExperimentExecutor(
            workers=2,
            faults=plan,
            retry=RetryPolicy(job_timeout=1.5, backoff_base=0.01, poll_interval=0.02),
        )
        results = ex.run(jobs)
        assert [r.summary for r in results] == clean
        assert ex.stats.timeouts == 1
        # A timeout kill is not double-counted as a spontaneous failure.
        assert ex.stats.worker_failures == 0

    def test_no_timeout_without_policy(self, jobs, keys, clean):
        # hang shorter than the watchdog-free run just delays completion.
        plan = plan_with(keys, n_hangs=1, hang_seconds=0.3)
        ex = ExperimentExecutor(workers=2, faults=plan)
        results = ex.run(jobs)
        assert [r.summary for r in results] == clean
        assert ex.stats.timeouts == 0


class TestDegradation:
    def test_budget_exhaustion_falls_back_to_serial_rescue(self, jobs, keys, clean):
        # Crash the same job on every attempt; with retries exhausted the
        # executor must still finish via the in-process rescue path.
        plan = plan_with(keys, n_crashes=1, max_attempt=10**6)
        ex = ExperimentExecutor(
            workers=2,
            faults=plan,
            retry=RetryPolicy(max_retries=1, backoff_base=0.01),
        )
        results = ex.run(jobs)
        assert [r.summary for r in results] == clean
        assert ex.stats.serial_rescues >= 1

    def test_pool_collapse_falls_back_to_serial(self, jobs, clean):
        # Every attempt of every job crashes: the pool can never survive
        # a generation, so after max_pool_rebuilds the executor finishes
        # the whole queue serially (faults off in-process).
        plan = FaultPlan(seed=0, crash_prob=1.0, max_attempt=10**6)
        ex = ExperimentExecutor(
            workers=2,
            faults=plan,
            retry=RetryPolicy(
                max_retries=1, max_pool_rebuilds=1, backoff_base=0.01
            ),
        )
        results = ex.run(jobs)
        assert [r.summary for r in results] == clean
        assert ex.stats.serial_fallbacks == 1 or ex.stats.serial_rescues >= 1

    def test_serial_mode_ignores_faults(self, jobs, clean):
        # workers=None never enters a pool; fault plans only apply to
        # pool workers, so the serial path must be unaffected.
        ex = ExperimentExecutor(faults=FaultPlan(seed=0, crash_prob=1.0))
        assert [r.summary for r in ex.run(jobs)] == clean


class TestSubmitRace:
    def test_pool_break_during_submission_requeues_popped_job(
        self, monkeypatch, jobs, clean
    ):
        """A pool that breaks while jobs are still being submitted must
        requeue the job just popped from the queue — dropping it would
        shift every later result against its spec downstream."""
        from concurrent.futures.process import BrokenProcessPool

        import repro.sim.parallel.executor as ex_mod

        calls = {"n": 0}

        class FlakySubmitPool(ex_mod.ProcessPoolExecutor):
            def submit(self, fn, *args, **kwargs):
                calls["n"] += 1
                if calls["n"] == 2:
                    raise BrokenProcessPool("worker died mid-submission")
                return super().submit(fn, *args, **kwargs)

        monkeypatch.setattr(ex_mod, "ProcessPoolExecutor", FlakySubmitPool)
        ex = ExperimentExecutor(workers=2, retry=RetryPolicy(backoff_base=0.01))
        results = ex.run(jobs)
        assert len(results) == len(jobs)
        assert [r.summary for r in results] == clean
        assert ex.stats.worker_failures == 1
        assert ex.stats.pool_rebuilds == 1
        # Only the one in-flight casualty is charged a retry; the job
        # whose submit failed never reached a worker and spends nothing.
        assert ex.stats.retries == 1

    def test_incomplete_results_raise_instead_of_misaligning(
        self, monkeypatch, jobs
    ):
        """Completeness is an invariant: a hole in the result list must
        fail loudly, never be silently filtered away."""
        ex = ExperimentExecutor()
        monkeypatch.setattr(ex, "_run_serial", lambda *a, **k: None)
        with pytest.raises(RuntimeError, match="lost"):
            ex.run(jobs)


class TestJournalIntegration:
    def test_journal_records_every_completed_job(self, tmp_path, jobs, keys):
        journal = RunJournal.attach(
            tmp_path / "j.jsonl", run_key_of(keys), len(jobs)
        )
        ex = ExperimentExecutor(workers=2, journal=journal)
        ex.run(jobs)
        journal.close()
        assert journal.completed == set(keys)

    def test_cache_hits_are_journalled_too(self, tmp_path, jobs, keys):
        cache_dir = tmp_path / "cache"
        ExperimentExecutor(cache_dir=cache_dir).run(jobs)  # warm the cache
        journal = RunJournal.attach(
            tmp_path / "j.jsonl", run_key_of(keys), len(jobs)
        )
        ex = ExperimentExecutor(cache_dir=cache_dir, journal=journal)
        ex.run(jobs)
        journal.close()
        assert ex.stats.cache_hits == len(jobs)
        assert journal.completed == set(keys)
