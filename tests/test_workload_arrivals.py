"""Unit + property tests for arrival processes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workload.arrivals import (
    BurstyArrivals,
    DeterministicArrivals,
    PoissonArrivals,
)


class TestPoisson:
    def test_deterministic_per_seed(self):
        a = PoissonArrivals(20.0, seed=5).arrivals(0.0, 1000.0)
        b = PoissonArrivals(20.0, seed=5).arrivals(0.0, 1000.0)
        assert a == b

    def test_rate_property(self):
        assert PoissonArrivals(20.0).rate == pytest.approx(0.05)

    def test_mean_rate_approximates(self):
        arrivals = PoissonArrivals(10.0, seed=1).arrivals(0.0, 100_000.0)
        empirical = len(arrivals) / 100_000.0
        assert empirical == pytest.approx(0.1, rel=0.05)

    def test_sorted_within_window(self):
        arrivals = PoissonArrivals(5.0, seed=2).arrivals(100.0, 500.0)
        assert arrivals == sorted(arrivals)
        assert all(100.0 <= t < 500.0 for t in arrivals)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)
        with pytest.raises(ValueError):
            PoissonArrivals(10.0).arrivals(10.0, 5.0)


class TestDeterministic:
    def test_window_filter(self):
        proc = DeterministicArrivals([1.0, 5.0, 10.0, 20.0])
        assert proc.arrivals(2.0, 15.0) == [5.0, 10.0]

    def test_sorts_input(self):
        proc = DeterministicArrivals([5.0, 1.0, 3.0])
        assert proc.arrivals(0.0, 10.0) == [1.0, 3.0, 5.0]

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            DeterministicArrivals([-1.0])


class TestBursty:
    def test_deterministic_per_seed(self):
        kwargs = dict(calm_interarrival=60.0, burst_interarrival=3.0, seed=4)
        assert (
            BurstyArrivals(**kwargs).arrivals(0.0, 5000.0)
            == BurstyArrivals(**kwargs).arrivals(0.0, 5000.0)
        )

    def test_burstier_than_poisson(self):
        """Coefficient of variation of inter-arrivals exceeds 1 (MMPP)."""
        import statistics

        arrivals = BurstyArrivals(
            calm_interarrival=120.0,
            burst_interarrival=2.0,
            mean_calm_duration=300.0,
            mean_burst_duration=60.0,
            seed=0,
        ).arrivals(0.0, 100_000.0)
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        cv = statistics.stdev(gaps) / statistics.fmean(gaps)
        assert cv > 1.1

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyArrivals(calm_interarrival=0.0, burst_interarrival=1.0)


@given(
    mean=st.floats(min_value=0.5, max_value=100.0),
    horizon=st.floats(min_value=1.0, max_value=2000.0),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=50, deadline=None)
def test_poisson_arrivals_strictly_increasing(mean, horizon, seed):
    arrivals = PoissonArrivals(mean, seed=seed).arrivals(0.0, horizon)
    for a, b in zip(arrivals, arrivals[1:]):
        assert b > a
    assert all(0.0 <= t < horizon for t in arrivals)
