"""Shared conformance fixtures: one table, every registered strategy.

Historically each equivalence suite kept its own copy of the strategy
list and its own run helpers; adding a baseline meant touching three
test files and hoping none was forgotten.  This module centralizes the
machinery:

* :data:`FIXTURES` — one :class:`StrategyFixture` row per
  ``STRATEGY_BUILDERS`` entry, carrying the parameter sets each
  certification exercises.  ``tests/test_strategy_conformance.py``
  asserts the table covers the registry exactly, so a new baseline that
  forgets to add a row fails loudly.
* run helpers (:func:`run_both`, :func:`assert_bit_identical`,
  :func:`run_scenario`, fingerprints, :func:`conformance_scenarios`)
  imported by ``test_strategy_conformance.py``, ``test_engine_fastpath.py``
  and ``test_obs_equivalence.py`` instead of per-file copies.

The four certifications a strategy earns by having a row (all run by
``tests/test_strategy_conformance.py``):

1. dense-vs-event bit-identity (the event-horizon fast path skips
   slots, never changes results);
2. instrumented == uninstrumented (observability is free);
3. trace replay exactness (the JSONL trace alone reproduces the run's
   summary, including ``aoi_s``);
4. fleet-vs-scalar agreement (the chunked fleet pipeline — vectorized
   kernel or scalar fallback — matches per-device scalar simulation).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs import ListRecorder, metrics_scope
from repro.obs.events import app_cost_table
from repro.radio.power_model import GALAXY_S4_3G
from repro.sim.engine import Simulation
from repro.sim.fleet.aggregate import FleetChunkSummary
from repro.sim.fleet.reference import simulate_reference_chunk
from repro.sim.fleet.spec import FleetSpec
from repro.sim.parallel.specs import STRATEGY_BUILDERS
from repro.sim.runner import Scenario, default_scenario, run_strategy

__all__ = [
    "ALL_STRATEGIES",
    "FIXTURES",
    "FIXTURE_BY_NAME",
    "StrategyFixture",
    "assert_bit_identical",
    "assert_fleet_summaries_match",
    "build_strategy",
    "conformance_scenarios",
    "fleet_vs_scalar",
    "record_fingerprint",
    "run_both",
    "run_scenario",
    "schedule_fingerprint",
]

#: Every registered baseline, in registry-sorted order.  The conformance
#: suite (and the engine/observability suites that import this) sweep
#: this list, so registering a strategy automatically enrolls it.
ALL_STRATEGIES = sorted(STRATEGY_BUILDERS)


@dataclass(frozen=True)
class StrategyFixture:
    """One strategy's row in the conformance table.

    ``params`` is the primary (non-default where interesting) parameter
    set every certification runs; ``variants`` are extra parameter sets
    the dense-vs-event certification additionally sweeps — edge-case
    knobs (tiny rounds, zero-harvest batteries) that have historically
    been where fast-path bugs hide.
    """

    name: str
    params: Tuple[Tuple[str, object], ...] = ()
    variants: Tuple[Tuple[Tuple[str, object], ...], ...] = ()

    @property
    def param_dict(self) -> Dict[str, object]:
        return dict(self.params)

    def variant_dicts(self) -> List[Dict[str, object]]:
        """Primary params first, then each extra variant."""
        return [dict(self.params)] + [dict(v) for v in self.variants]


def _p(**kw) -> Tuple[Tuple[str, object], ...]:
    return tuple(sorted(kw.items()))


FIXTURES: Tuple[StrategyFixture, ...] = (
    StrategyFixture("adaptive", _p(target_delay=30.0)),
    StrategyFixture(
        "aoi_download",
        _p(threshold_s=120.0),
        variants=(_p(threshold_s=1.0), _p(threshold_s=600.0)),
    ),
    StrategyFixture("channel_aware", _p(theta=0.2)),
    StrategyFixture(
        "common_deadline",
        _p(round_s=300.0),
        variants=(_p(round_s=7.0), _p(round_s=900.0)),
    ),
    StrategyFixture("etime", _p(v=200_000.0)),
    StrategyFixture("etrain", _p(theta=0.2), variants=(_p(theta=0.0),)),
    StrategyFixture("fixed_batch", _p(period=60.0)),
    StrategyFixture(
        "harvest_lazy",
        _p(watermark=0.85),
        variants=(
            # Starved store, nothing ever harvested: every standalone
            # burst is held until flush — the battery-gating edge case.
            _p(initial_j=0.0, harvest_rate_max=0.0),
            # Overflowing store with a low watermark: fires constantly.
            _p(watermark=0.2, harvest_rate_max=0.5, battery_seed=3),
        ),
    ),
    StrategyFixture("immediate"),
    StrategyFixture(
        "lazy_circuit",
        _p(target_batch_bytes=60_000),
        variants=(_p(target_batch_bytes=500), _p(default_deadline=5.0)),
    ),
    StrategyFixture("periodic", _p(period=300.0)),
    StrategyFixture("peres", _p(omega=0.5)),
    # ``default_deadline`` is scalar-only (the fleet kernel derives
    # deadlines from the profile table), so it rides as a variant.
    StrategyFixture("tailender", variants=(_p(default_deadline=30.0),)),
)

FIXTURE_BY_NAME: Dict[str, StrategyFixture] = {f.name: f for f in FIXTURES}


def build_strategy(
    name: str, scenario: Scenario, params: Optional[Dict] = None
):
    return STRATEGY_BUILDERS[name](scenario, **(params or {}))


def run_both(name: str, scenario: Scenario, params: Optional[Dict] = None):
    """Same scenario through the dense reference loop and the fast path."""
    dense = run_strategy(
        build_strategy(name, scenario, params), scenario, dense=True
    )
    event = run_strategy(
        build_strategy(name, scenario, params), scenario, dense=False
    )
    return dense, event


def assert_bit_identical(dense, event) -> None:
    """Every observable output must match exactly — no tolerances."""
    assert event.summary() == dense.summary()
    assert event.decisions == dense.decisions
    assert event.flushed_packets == dense.flushed_packets
    assert event.energy == dense.energy
    assert len(event.records) == len(dense.records)
    for rd, re_ in zip(dense.records, event.records):
        assert re_ == rd
    assert len(event.packets) == len(dense.packets)
    for pd, pe in zip(dense.packets, event.packets):
        assert pe.packet_id == pd.packet_id
        assert pe.scheduled_time == pd.scheduled_time
        assert pe.completion_time == pd.completion_time


def conformance_scenarios(count: int) -> List[Scenario]:
    """Deterministic battery of varied scenarios (incl. odd slot grids)."""
    rng = random.Random(20150629)
    scenarios = []
    for i in range(count):
        scenario = default_scenario(
            seed=rng.randrange(10_000),
            horizon=float(rng.randrange(400, 2400)),
            train_count=rng.choice([1, 2, 3]),
        )
        if i % 5 == 4:
            # Non-dyadic slots: ceil-division grids and inexact float
            # multiples, forcing the non-exact-grid engine paths.
            scenario.slot = rng.choice([0.3, 0.7, 2.5])
        elif i % 5 == 2:
            scenario.slot = 0.5
        scenarios.append(scenario)
    return scenarios


def run_scenario(
    name: str,
    *,
    instrument: bool,
    horizon: float = 7200.0,
    seed: int = 0,
    params: Optional[Dict] = None,
):
    """One full default-scenario run; returns (result, events or None)."""
    scenario = default_scenario(seed=seed, horizon=horizon)
    strategy = build_strategy(name, scenario, params)
    recorder = ListRecorder() if instrument else None
    sim = Simulation(
        strategy,
        scenario.train_generators,
        scenario.fresh_packets(),
        power_model=scenario.power_model,
        bandwidth=scenario.bandwidth,
        horizon=scenario.horizon,
        slot=scenario.slot,
        recorder=recorder,
        trace_app_costs=app_cost_table(scenario.profiles) if instrument else None,
    )
    if instrument:
        with metrics_scope() as registry:
            result = sim.run()
        assert registry.counter("engine.runs").value == 1
        return result, list(recorder.events)
    return sim.run(), None


def record_fingerprint(result):
    """Everything a burst record carries, as comparable plain data."""
    return [
        (r.start, r.duration, r.size_bytes, r.kind, tuple(r.packet_ids))
        for r in result.records
    ]


def schedule_fingerprint(result):
    return sorted(
        (p.packet_id, p.arrival_time, p.size_bytes, p.scheduled_time)
        for p in result.packets
    )


def fleet_vs_scalar(
    name: str,
    params: Optional[Dict] = None,
    *,
    devices: int = 6,
    chunk_size: int = 3,
    horizon: float = 450.0,
    seed: int = 11,
):
    """Run one small fleet through the chunked pipeline and per-device.

    Returns ``(fleet_summary, scalar_summary, vectorized)``: the merged
    chunk summaries from :meth:`FleetChunkSpec.run_in_worker` (the exact
    code the executor pool runs — vectorized kernel when registered,
    scalar fallback otherwise) and the unchunked per-device scalar
    reference over the same synthesized workload.
    """
    from repro.sim.fleet.workload import synthesize_fleet

    spec = FleetSpec.make(
        devices,
        name,
        params=dict(params or {}),
        horizon=horizon,
        seed=seed,
        chunk_size=chunk_size,
    )
    chunked = FleetChunkSummary.merge_all(
        [
            FleetChunkSummary.from_dict(c.run_in_worker())
            for c in spec.chunk_specs()
        ]
    )
    workload = synthesize_fleet(
        devices, horizon, seed, profiles=spec.profiles()
    )
    scalar = simulate_reference_chunk(
        workload,
        spec.bandwidth_model(),
        strategy=name,
        params=dict(params or {}),
        power_model=GALAXY_S4_3G,
        profiles=spec.profiles(),
    )
    return chunked, scalar, spec.vectorized


def assert_fleet_summaries_match(fleet, scalar, rtol: float = 1e-6) -> None:
    """Chunked-vs-reference comparison at the fleet suite's tolerance.

    Counts must match exactly; energy/delay sums may differ by float
    re-association (chunk merge adds partial sums in a different order
    than the sequential per-device fold).
    """
    assert fleet.devices == scalar.devices
    assert fleet.packets == scalar.packets
    assert fleet.bursts == scalar.bursts
    assert fleet.heartbeats == scalar.heartbeats
    assert fleet.piggyback_hits == scalar.piggyback_hits
    assert fleet.violations == scalar.violations
    for attr in (
        "delay_sum",
        "delay_cost_sum",
        "energy_total_j",
        "energy_tail_j",
        "energy_tx_j",
    ):
        a, b = getattr(fleet, attr), getattr(scalar, attr)
        assert abs(a - b) <= rtol * max(abs(a), abs(b), 1.0), (
            f"{attr}: fleet {a!r} vs scalar {b!r}"
        )
    assert list(fleet.energy_hist) == list(scalar.energy_hist)
    assert list(fleet.delay_hist) == list(scalar.delay_hist)
