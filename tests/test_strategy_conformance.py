"""The conformance harness: every registered strategy earns four stamps.

Driven entirely by the fixture table in ``tests/strategy_conformance.py``
— one row per ``STRATEGY_BUILDERS`` entry.  Registering a new baseline
without adding a row (or vice versa) fails ``test_fixture_table_complete``,
and a row automatically enrolls the strategy in:

1. **dense-vs-event bit-identity** — the event-horizon fast path must
   produce exactly the dense reference loop's outputs, for the primary
   parameter set and every edge-case variant the row declares;
2. **instrumentation is free** — an instrumented run equals an
   uninstrumented one, bit for bit;
3. **trace replay exactness** — the JSONL event stream alone reproduces
   the run's summary metrics (including ``aoi_s``);
4. **fleet-vs-scalar agreement** — the chunked fleet pipeline
   (vectorized kernel when registered, scalar fallback otherwise)
   matches unchunked per-device scalar simulation.

Plus the last-slot regression class: a ``decision_horizon`` that stops
promising quiet (returns a time at or before ``now``, e.g. ``0.0``) at
the final decision slot must force the event loop dense — the last
slot's decision can never be skipped away.
"""

from __future__ import annotations

import math
from typing import List

import pytest

from repro.baselines.base import TransmissionStrategy
from repro.core.packet import Packet, reset_packet_ids
from repro.obs import verify_trace
from repro.sim.engine import Simulation
from repro.sim.parallel.specs import STRATEGY_BUILDERS
from repro.sim.runner import default_scenario

from tests.strategy_conformance import (
    ALL_STRATEGIES,
    FIXTURE_BY_NAME,
    FIXTURES,
    assert_bit_identical,
    assert_fleet_summaries_match,
    build_strategy,
    fleet_vs_scalar,
    record_fingerprint,
    run_both,
    run_scenario,
    schedule_fingerprint,
)

pytestmark = pytest.mark.strategies


def test_fixture_table_complete():
    """The table and the registry must mirror each other exactly."""
    table = sorted(f.name for f in FIXTURES)
    assert table == sorted(set(table)), "duplicate fixture rows"
    assert table == ALL_STRATEGIES, (
        "conformance table out of sync with STRATEGY_BUILDERS: "
        f"missing rows {sorted(set(ALL_STRATEGIES) - set(table))}, "
        f"stale rows {sorted(set(table) - set(ALL_STRATEGIES))}"
    )


def test_fixture_params_are_accepted():
    """Every declared parameter set must build against its strategy."""
    scenario = default_scenario(seed=0, horizon=60.0)
    for fixture in FIXTURES:
        for params in fixture.variant_dicts():
            strategy = build_strategy(fixture.name, scenario, params)
            assert isinstance(strategy, TransmissionStrategy)


class TestDenseVsEvent:
    """Certification 1: the fast path changes nothing, ever."""

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_golden_scenario_all_variants(self, name):
        fixture = FIXTURE_BY_NAME[name]
        for params in fixture.variant_dicts():
            scenario = default_scenario(seed=0)
            dense, event = run_both(name, scenario, params)
            try:
                assert_bit_identical(dense, event)
            except AssertionError:  # pragma: no cover - diagnostic context
                raise AssertionError(
                    f"{name} diverged with params {params}"
                ) from None

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_non_dyadic_slot_grid(self, name):
        """Inexact grids disable the engine's exact-arithmetic shortcuts."""
        fixture = FIXTURE_BY_NAME[name]
        scenario = default_scenario(seed=5, horizon=601.0, train_count=2)
        scenario.slot = 0.7
        dense, event = run_both(name, scenario, fixture.param_dict)
        assert_bit_identical(dense, event)


class TestObservabilityIsFree:
    """Certifications 2 and 3, with each row's primary parameters."""

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_instrumented_run_is_bit_identical(self, name):
        params = FIXTURE_BY_NAME[name].param_dict
        plain, _ = run_scenario(
            name, instrument=False, horizon=2400.0, params=params
        )
        traced, events = run_scenario(
            name, instrument=True, horizon=2400.0, params=params
        )
        assert traced.summary() == plain.summary()
        assert record_fingerprint(traced) == record_fingerprint(plain)
        assert schedule_fingerprint(traced) == schedule_fingerprint(plain)
        assert events, "instrumented run must have produced a trace"

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_trace_replay_is_exact(self, name):
        params = FIXTURE_BY_NAME[name].param_dict
        _, events = run_scenario(
            name, instrument=True, horizon=2400.0, params=params
        )
        ok, replayed, recorded, mismatches = verify_trace(events)
        assert ok, f"{name}: replay mismatches: {mismatches}"
        assert "aoi_s" in recorded, "run_end summary must carry freshness"
        for key, value in replayed.items():
            assert recorded[key] == value


class TestFleetMatchesScalar:
    """Certification 4: chunking/merging preserves scalar semantics."""

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_chunked_fleet_matches_per_device_scalar(self, name):
        params = FIXTURE_BY_NAME[name].param_dict
        fleet, scalar, vectorized = fleet_vs_scalar(name, params)
        # Scalar fallback chunks run the very engine the reference does,
        # so only merge-order float re-association may differ; vectorized
        # kernels get the fleet suite's standing tolerance.
        assert_fleet_summaries_match(
            fleet, scalar, rtol=1e-6 if vectorized else 1e-12
        )


class LastSlotZeroHorizon(TransmissionStrategy):
    """Fires only at the last decision slot; ``decision_horizon`` is 0.

    ``decision_horizon() <= now`` promises nothing, so the event loop
    must behave densely — in particular it must still visit the final
    decision slot, where this strategy's only release happens.
    """

    def __init__(self, fire_at: float, granularity: float) -> None:
        self.slot = granularity
        self.name = "last-slot-zero-horizon"
        self.fire_at = fire_at
        self._queue: List[Packet] = []
        self.decide_times: List[float] = []

    def on_arrival(self, packet: Packet, now: float) -> None:
        self._queue.append(packet)

    @property
    def waiting_count(self) -> int:
        return len(self._queue)

    def decide(self, now: float, heartbeat_present: bool) -> List[Packet]:
        self.decide_times.append(now)
        if now >= self.fire_at and self._queue:
            released, self._queue = self._queue, []
            return released
        return []

    def flush(self, now: float) -> List[Packet]:
        released, self._queue = self._queue, []
        return released

    @property
    def is_idle(self) -> bool:
        return False

    def decision_horizon(self, now: float) -> float:
        return 0.0

    def on_decisions_skipped(self, window) -> None:  # pragma: no cover
        raise AssertionError(
            "no decisions may be skipped when decision_horizon promises "
            f"nothing (window of {window.count})"
        )


def _simulate(strategy, scenario, dense):
    sim = Simulation(
        strategy,
        scenario.train_generators,
        scenario.fresh_packets(),
        power_model=scenario.power_model,
        bandwidth=scenario.bandwidth,
        horizon=scenario.horizon,
        slot=scenario.slot,
        dense=dense,
    )
    return sim, sim.run()


class TestLastSlotNeverSkipped:
    """Regression: a 0-returning decision_horizon at the final slot."""

    @pytest.mark.parametrize(
        "horizon,slot,granularity",
        [
            (100.0, 1.0, 1.0),
            (100.0, 1.0, 7.0),  # final granule not slot-aligned
            (100.0, 0.7, 2.1),  # inexact grid
            (99.4, 0.7, 0.7),
            (101.0, 1.0, 10.0),
        ],
    )
    def test_zero_horizon_strategy_fires_at_last_decision_slot(
        self, horizon, slot, granularity
    ):
        n_slots = int(math.ceil(horizon / slot))
        last_t = (n_slots - 1) * slot
        for fire_at in (last_t, last_t - slot):
            scenario = default_scenario(seed=5, horizon=horizon, train_count=1)
            scenario.slot = slot
            dense_strat = LastSlotZeroHorizon(fire_at, granularity)
            event_strat = LastSlotZeroHorizon(fire_at, granularity)
            _, dense = _simulate(dense_strat, scenario, dense=True)
            sim, event = _simulate(event_strat, scenario, dense=False)
            assert_bit_identical(dense, event)
            # The strategy-visible decision clock must be identical and
            # must include the final decision slot.
            assert event_strat.decide_times == dense_strat.decide_times
            assert event_strat.decide_times, "no decisions were offered"
            last_decision = event_strat.decide_times[-1]
            assert last_decision + granularity > last_t, (
                f"final decision slot skipped: last decide at "
                f"{last_decision}, last engine slot at {last_t}"
            )
            # A release armed only at the very end must still happen
            # inside the run, not be deferred to flush.
            assert event.flushed_packets == dense.flushed_packets

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_horizon_edge_arrivals_are_decided(self, name):
        """Arrivals landing in the final slots get the same treatment
        under both loops — no registered strategy may lose its last
        decision window to slot-skipping."""
        params = FIXTURE_BY_NAME[name].param_dict
        horizon, slot = 120.0, 1.0
        scenario = default_scenario(seed=9, horizon=horizon, train_count=1)
        scenario.slot = slot
        reset_packet_ids()
        late = [
            Packet(app_id="weibo", arrival_time=a, size_bytes=4000, deadline=5.0)
            for a in (horizon - 6.0, horizon - 2.5, horizon - 1.2)
        ]
        results = []
        for dense in (True, False):
            reset_packet_ids()
            packets = [
                Packet(
                    app_id=p.app_id,
                    arrival_time=p.arrival_time,
                    size_bytes=p.size_bytes,
                    deadline=p.deadline,
                )
                for p in late
            ]
            strategy = build_strategy(name, scenario, params)
            sim = Simulation(
                strategy,
                scenario.train_generators,
                packets,
                power_model=scenario.power_model,
                bandwidth=scenario.bandwidth,
                horizon=horizon,
                slot=slot,
                dense=dense,
            )
            results.append(sim.run())
        dense_res, event_res = results
        assert_bit_identical(dense_res, event_res)
        assert all(p.is_scheduled for p in event_res.packets), (
            f"{name}: a horizon-edge arrival was never transmitted"
        )
