"""Unit tests for the channel-aware eTrain extension."""

import pytest

from repro.bandwidth.models import ConstantBandwidth, TraceBandwidth
from repro.baselines.base import BandwidthEstimator
from repro.baselines.channel_aware import ChannelAwareETrainStrategy
from repro.core.profiles import weibo_profile
from repro.core.scheduler import SchedulerConfig

from tests.conftest import make_packet


def strategy(bw=None, quality_threshold=1.0, max_defer=20.0, theta=0.0):
    bandwidth = bw if bw is not None else ConstantBandwidth(100_000.0)
    est = BandwidthEstimator(bandwidth, lag=0.0, noise=0.0)
    return ChannelAwareETrainStrategy(
        [weibo_profile()],
        est,
        SchedulerConfig(theta=theta),
        quality_threshold=quality_threshold,
        max_defer=max_defer,
        warm_gate=False,
    )


class TestDeferral:
    def test_flat_channel_releases_immediately(self):
        s = strategy()
        p = make_packet(arrival=0.0)
        s.on_arrival(p, 0.0)
        # quality = estimate/average = 1.0 >= threshold.
        assert s.decide(1.0, False) == [p]

    def test_bad_channel_defers(self):
        # Rate collapses after t=10: quality < 1 vs the running average.
        bw = TraceBandwidth([100_000.0] * 10 + [1_000.0] * 100)
        s = strategy(bw=bw, quality_threshold=0.9)
        for t in range(10):
            s.decide(float(t), False)  # record good-channel history
        p = make_packet(arrival=10.0)
        s.on_arrival(p, 10.0)
        assert s.decide(11.0, False) == []
        assert s.waiting_count == 1

    def test_patience_bound_forces_release(self):
        bw = TraceBandwidth([100_000.0] * 10 + [1_000.0] * 200)
        s = strategy(bw=bw, quality_threshold=0.9, max_defer=5.0)
        for t in range(10):
            s.decide(float(t), False)
        p = make_packet(arrival=10.0)
        s.on_arrival(p, 10.0)
        s.decide(11.0, False)
        released = []
        for t in range(12, 20):
            released = s.decide(float(t), False)
            if released:
                break
        assert released == [p]

    def test_heartbeat_flushes_deferred(self):
        bw = TraceBandwidth([100_000.0] * 10 + [1_000.0] * 100)
        s = strategy(bw=bw, quality_threshold=0.9)
        for t in range(10):
            s.decide(float(t), False)
        p = make_packet(arrival=10.0)
        s.on_arrival(p, 10.0)
        s.decide(11.0, False)  # deferred
        released = s.decide(12.0, True)  # heartbeat slot
        assert p in released

    def test_flush_includes_deferred(self):
        bw = TraceBandwidth([100_000.0] * 10 + [1_000.0] * 100)
        s = strategy(bw=bw, quality_threshold=0.9)
        for t in range(10):
            s.decide(float(t), False)
        p = make_packet(arrival=10.0)
        s.on_arrival(p, 10.0)
        s.decide(11.0, False)
        assert s.flush(12.0) == [p]
        assert s.waiting_count == 0

    def test_validation(self):
        est = BandwidthEstimator(ConstantBandwidth(1.0))
        with pytest.raises(ValueError):
            ChannelAwareETrainStrategy(
                [weibo_profile()], est, quality_threshold=0.0
            )
        with pytest.raises(ValueError):
            ChannelAwareETrainStrategy([weibo_profile()], est, max_defer=-1.0)
