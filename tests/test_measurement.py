"""Unit tests for packet capture, cycle analysis and the power monitor."""

import pytest

from repro.heartbeat.apps import make_generator
from repro.measurement.analyze import analyze_capture, format_cycle_table
from repro.measurement.capture import capture_active_traffic, capture_idle_traffic
from repro.measurement.pcap import CaptureRecord, PacketCapture
from repro.measurement.power_monitor import CurrentTrace, PowerMonitor
from repro.radio.rrc import RRCMachine


class TestCaptureRecords:
    def test_validation(self):
        with pytest.raises(ValueError):
            CaptureRecord(time=-1.0, size_bytes=10, app_id="x")
        with pytest.raises(ValueError):
            CaptureRecord(time=0.0, size_bytes=-1, app_id="x")
        with pytest.raises(ValueError):
            CaptureRecord(time=0.0, size_bytes=1, app_id="x", direction="sideways")


class TestPacketCapture:
    def records(self):
        return [
            CaptureRecord(time=0.0, size_bytes=74, app_id="wechat"),
            CaptureRecord(time=10.0, size_bytes=5_000, app_id="wechat"),
            CaptureRecord(time=20.0, size_bytes=378, app_id="qq"),
        ]

    def test_sorted_on_init(self):
        cap = PacketCapture(reversed(self.records()))
        assert cap.times() == [0.0, 10.0, 20.0]

    def test_for_app(self):
        cap = PacketCapture(self.records())
        assert len(cap.for_app("wechat")) == 2

    def test_small_packets_filter(self):
        cap = PacketCapture(self.records())
        small = cap.small_packets(max_bytes=600)
        assert len(small) == 2
        assert all(r.size_bytes <= 600 for r in small)

    def test_window(self):
        cap = PacketCapture(self.records())
        assert len(cap.window(5.0, 25.0)) == 2

    def test_app_ids(self):
        assert PacketCapture(self.records()).app_ids() == ["qq", "wechat"]

    def test_add_enforces_order(self):
        cap = PacketCapture(self.records())
        with pytest.raises(ValueError):
            cap.add(CaptureRecord(time=1.0, size_bytes=10, app_id="x"))

    def test_csv_roundtrip(self, tmp_path):
        cap = PacketCapture(self.records())
        path = tmp_path / "cap.csv"
        cap.save_csv(path)
        loaded = PacketCapture.load_csv(path)
        assert len(loaded) == len(cap)
        assert loaded.records[0].app_id == "wechat"


class TestCaptureSynthesis:
    def test_idle_capture_is_heartbeats_only(self):
        cap = capture_idle_traffic([make_generator("wechat")], 1_000.0)
        assert all(r.size_bytes == 74 for r in cap)
        assert len(cap) == 4  # t = 0, 270, 540, 810

    def test_active_capture_adds_data(self):
        gens = [make_generator("wechat")]
        idle = capture_idle_traffic(gens, 3_600.0)
        active = capture_active_traffic(gens, 3_600.0, seed=1)
        assert len(active) > len(idle)

    def test_active_capture_deterministic(self):
        gens = [make_generator("qq")]
        a = capture_active_traffic(gens, 1_800.0, seed=2)
        b = capture_active_traffic(gens, 1_800.0, seed=2)
        assert a.times() == b.times()

    def test_validation(self):
        with pytest.raises(ValueError):
            capture_active_traffic([], 100.0, picture_fraction=2.0)


class TestAnalysis:
    def test_fixed_cycles_recovered_despite_data_traffic(self):
        gens = [make_generator(a) for a in ("qq", "wechat", "whatsapp")]
        cap = capture_active_traffic(gens, 3_600.0, seed=0)
        reports = analyze_capture(cap)
        assert reports["qq"].cycle == pytest.approx(300.0, rel=0.02)
        assert reports["wechat"].cycle == pytest.approx(270.0, rel=0.02)
        assert reports["whatsapp"].cycle == pytest.approx(240.0, rel=0.02)

    def test_netease_reported_as_range(self):
        cap = capture_idle_traffic([make_generator("netease")], 3_600.0)
        report = analyze_capture(cap)["netease"]
        assert report.cycle is None
        assert report.doubling
        assert report.cycle_cell == "60-480s"

    def test_format_cycle_table(self):
        cap = capture_idle_traffic([make_generator("qq")], 3_600.0)
        table = format_cycle_table({"DeviceX": analyze_capture(cap)})
        assert "DeviceX" in table
        assert "300s" in table


class TestPowerMonitor:
    def test_current_trace_energy(self):
        trace = CurrentTrace(times=[0.0, 0.1], amps=[0.1, 0.1], voltage=3.7, interval=0.1)
        assert trace.energy() == pytest.approx(3.7 * 0.2 * 0.1)
        assert trace.mean_current() == pytest.approx(0.1)

    def test_capture_matches_power_over_voltage(self, power_model):
        m = RRCMachine(power_model)
        m.add_burst(0.0, 1.0)
        monitor = PowerMonitor()
        trace = monitor.capture(m, horizon=5.0)
        # During DCH the current is (p_idle + p_dch)/V.
        assert trace.amps[0] == pytest.approx((0.25 + 0.70) / 3.7)

    def test_measured_energy_close_to_analytic(self, power_model):
        m = RRCMachine(power_model)
        m.add_burst(0.0, 1.0)
        monitor = PowerMonitor(interval=0.01)
        horizon = 30.0
        measured = monitor.measure_energy(m, horizon=horizon, above_idle=True)
        analytic = m.energy(horizon=horizon)
        assert measured == pytest.approx(analytic, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerMonitor(voltage=0.0)
        with pytest.raises(ValueError):
            CurrentTrace(times=[0.0], amps=[0.1, 0.2])
