"""Unit tests for the simulated AlarmManager."""

import pytest

from repro.android.alarm import AlarmManager


class TestOneShot:
    def test_fires_once(self):
        am = AlarmManager()
        fired = []
        am.set_exact(5.0, fired.append)
        assert am.fire_due(4.0) == 0
        assert am.fire_due(5.0) == 1
        assert am.fire_due(10.0) == 0
        assert fired == [5.0]

    def test_callback_gets_nominal_time(self):
        am = AlarmManager()
        fired = []
        am.set_exact(5.0, fired.append)
        am.fire_due(8.0)  # fired late
        assert fired == [5.0]

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            AlarmManager().set_exact(-1.0, lambda t: None)


class TestRepeating:
    def test_re_arms(self):
        am = AlarmManager()
        fired = []
        am.set_repeating(0.0, 10.0, fired.append)
        am.fire_due(25.0)
        assert fired == [0.0, 10.0, 20.0]

    def test_next_trigger_time(self):
        am = AlarmManager()
        am.set_repeating(5.0, 10.0, lambda t: None)
        assert am.next_trigger_time() == 5.0
        am.fire_due(5.0)
        assert am.next_trigger_time() == 15.0

    def test_rejects_zero_interval(self):
        with pytest.raises(ValueError):
            AlarmManager().set_repeating(0.0, 0.0, lambda t: None)


class TestCancel:
    def test_cancelled_alarm_skipped(self):
        am = AlarmManager()
        fired = []
        alarm = am.set_exact(5.0, fired.append)
        am.cancel(alarm)
        am.fire_due(10.0)
        assert fired == []

    def test_cancel_repeating_stops_rearm(self):
        am = AlarmManager()
        fired = []
        alarm = am.set_repeating(0.0, 10.0, fired.append)
        am.fire_due(0.0)
        am.cancel(alarm)
        am.fire_due(100.0)
        assert fired == [0.0]

    def test_cancelled_not_in_next_trigger(self):
        am = AlarmManager()
        alarm = am.set_exact(5.0, lambda t: None)
        am.cancel(alarm)
        assert am.next_trigger_time() is None


class TestOrdering:
    def test_fire_order_by_time_then_registration(self):
        am = AlarmManager()
        order = []
        am.set_exact(5.0, lambda t: order.append("a"))
        am.set_exact(3.0, lambda t: order.append("b"))
        am.set_exact(5.0, lambda t: order.append("c"))
        am.fire_due(10.0)
        assert order == ["b", "a", "c"]

    def test_callback_may_schedule_new_alarm(self):
        am = AlarmManager()
        fired = []

        def chain(t):
            fired.append(t)
            if t < 3.0:
                am.set_exact(t + 1.0, chain)

        am.set_exact(0.0, chain)
        am.fire_due(10.0)
        assert fired == [0.0, 1.0, 2.0, 3.0]
