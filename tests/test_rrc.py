"""Unit + property tests for the RRC state machine timeline."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.radio.power_model import GALAXY_S4_3G, PowerModel
from repro.radio.rrc import RRCMachine, RRCSegment
from repro.radio.states import RRCState


class TestSegments:
    def test_idle_before_first_burst(self, power_model):
        m = RRCMachine(power_model)
        m.add_burst(30.0, 1.0)
        segs = m.segments()
        assert segs[0].state is RRCState.IDLE
        assert segs[0].start == 0.0
        assert segs[0].end == 30.0

    def test_burst_and_decay_sequence(self, power_model):
        m = RRCMachine(power_model)
        m.add_burst(30.0, 2.0)
        states = [(s.state, s.transmitting) for s in m.segments()]
        assert states == [
            (RRCState.IDLE, False),
            (RRCState.DCH, True),
            (RRCState.DCH, False),
            (RRCState.FACH, False),
        ]

    def test_decay_durations(self, power_model):
        m = RRCMachine(power_model)
        m.add_burst(0.0, 1.0)
        segs = m.segments()
        dch_tail = [s for s in segs if s.state is RRCState.DCH and not s.transmitting]
        fach = [s for s in segs if s.state is RRCState.FACH]
        assert dch_tail[0].duration == pytest.approx(power_model.delta_dch)
        assert fach[0].duration == pytest.approx(power_model.delta_fach)

    def test_interrupted_tail_repromotes(self, power_model):
        """A burst inside the previous tail re-promotes to DCH directly."""
        m = RRCMachine(power_model)
        m.add_burst(0.0, 1.0)
        m.add_burst(5.0, 1.0)  # within the DCH linger
        states = [s.state for s in m.segments()]
        assert RRCState.FACH not in states[:3]

    def test_horizon_extends_idle(self, power_model):
        m = RRCMachine(power_model)
        m.add_burst(0.0, 1.0)
        segs = m.segments(horizon=100.0)
        assert segs[-1].state is RRCState.IDLE
        assert segs[-1].end == 100.0

    def test_no_bursts_idle_timeline(self, power_model):
        m = RRCMachine(power_model)
        segs = m.segments(horizon=10.0)
        assert len(segs) == 1
        assert segs[0].state is RRCState.IDLE

    def test_rejects_overlapping_bursts(self, power_model):
        m = RRCMachine(power_model)
        m.add_burst(0.0, 5.0)
        with pytest.raises(ValueError):
            m.add_burst(3.0, 1.0)

    def test_rejects_negative_duration(self, power_model):
        with pytest.raises(ValueError):
            RRCMachine(power_model).add_burst(0.0, -1.0)

    def test_zero_duration_burst_still_tails(self, power_model):
        m = RRCMachine(power_model)
        m.add_burst(10.0, 0.0)
        assert m.tail_energy() == pytest.approx(power_model.full_tail_energy)


class TestStateAndPowerAt:
    def test_state_at(self, power_model):
        m = RRCMachine(power_model)
        m.add_burst(10.0, 1.0)
        assert m.state_at(5.0) is RRCState.IDLE
        assert m.state_at(10.5) is RRCState.DCH
        assert m.state_at(15.0) is RRCState.DCH  # tail linger
        assert m.state_at(22.0) is RRCState.FACH
        assert m.state_at(40.0) is RRCState.IDLE

    def test_power_at(self, power_model):
        m = RRCMachine(power_model)
        m.add_burst(0.0, 1.0)
        assert m.power_at(0.5) == pytest.approx(0.70)
        assert m.power_at(0.5, absolute=True) == pytest.approx(0.95)


class TestEnergyIntegration:
    def test_tail_energy_matches_analytic_isolated_burst(self, power_model):
        m = RRCMachine(power_model)
        m.add_burst(0.0, 2.0)
        assert m.tail_energy() == pytest.approx(power_model.full_tail_energy)

    def test_transmission_energy_included_by_default(self, power_model):
        m = RRCMachine(power_model)
        m.add_burst(0.0, 3.0)
        total = m.energy()
        assert total == pytest.approx(
            power_model.full_tail_energy + 0.7 * 3.0
        )

    def test_absolute_energy_adds_idle_floor(self, power_model):
        m = RRCMachine(power_model)
        m.add_burst(0.0, 0.0)
        horizon = 100.0
        extra = m.energy(horizon=horizon)
        absolute = m.energy(horizon=horizon, absolute=True)
        assert absolute == pytest.approx(extra + power_model.p_idle * horizon)


@given(
    gaps=st.lists(st.floats(min_value=0.0, max_value=60.0), min_size=1, max_size=8),
    durations=st.lists(
        st.floats(min_value=0.0, max_value=5.0), min_size=9, max_size=9
    ),
)
@settings(max_examples=60, deadline=None)
def test_rrc_integral_equals_analytic_tail_sum(gaps, durations):
    """For any burst schedule, the RRC timeline's wasted energy equals
    the analytic Σ E_tail(Δ) of the inter-burst gaps (+ final full tail).
    """
    pm = GALAXY_S4_3G
    m = RRCMachine(pm)
    bursts = []
    t = 0.0
    for i, gap in enumerate(gaps):
        dur = durations[i]
        bursts.append((t, dur))
        t += dur + gap
    bursts.append((t, durations[-1]))
    m.add_bursts(bursts)

    analytic = sum(pm.tail_energy(gap) for gap in gaps) + pm.full_tail_energy
    assert m.tail_energy() == pytest.approx(analytic, rel=1e-9, abs=1e-9)


@given(
    start=st.floats(min_value=0.0, max_value=100.0),
    duration=st.floats(min_value=0.0, max_value=10.0),
)
def test_segments_are_contiguous_and_ordered(start, duration):
    pm = GALAXY_S4_3G
    m = RRCMachine(pm)
    m.add_burst(start, duration)
    segs = m.segments(horizon=start + duration + pm.tail_time + 5.0)
    for a, b in zip(segs, segs[1:]):
        assert a.end == pytest.approx(b.start)
    assert segs[0].start == 0.0
