"""Unit tests for power-trace sampling (the power-monitor view)."""

import pytest

from repro.radio.rrc import RRCMachine
from repro.sim.power_trace import PowerTrace, sample_power_trace


class TestPowerTrace:
    def test_energy_rectangle_rule(self):
        trace = PowerTrace(times=[0.0, 0.1, 0.2], watts=[1.0, 1.0, 1.0], interval=0.1)
        assert trace.energy() == pytest.approx(0.3)

    def test_mean_and_peak(self):
        trace = PowerTrace(times=[0.0, 0.1], watts=[0.5, 1.5], interval=0.1)
        assert trace.mean_power() == pytest.approx(1.0)
        assert trace.peak_power() == pytest.approx(1.5)

    def test_window(self):
        trace = PowerTrace(
            times=[0.0, 0.1, 0.2, 0.3], watts=[1.0, 2.0, 3.0, 4.0], interval=0.1
        )
        sub = trace.window(0.1, 0.3)
        assert sub.watts == [2.0, 3.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerTrace(times=[0.0], watts=[], interval=0.1)
        with pytest.raises(ValueError):
            PowerTrace(times=[], watts=[], interval=0.0)


class TestSampling:
    def test_sample_count(self, power_model):
        m = RRCMachine(power_model)
        m.add_burst(0.0, 1.0)
        trace = sample_power_trace(m, horizon=10.0, interval=0.1)
        assert len(trace) == 100

    def test_levels_match_states(self, power_model):
        m = RRCMachine(power_model)
        m.add_burst(5.0, 1.0)
        trace = sample_power_trace(m, horizon=30.0, interval=0.1)
        # Before the burst: idle absolute power.
        assert trace.watts[0] == pytest.approx(power_model.p_idle)
        # During DCH (burst + linger).
        assert trace.watts[60] == pytest.approx(power_model.p_idle + 0.70)
        # FACH window: 5+1+10=16 .. 23.5.
        assert trace.watts[200] == pytest.approx(power_model.p_idle + 0.45)
        # Back to idle after 23.5.
        assert trace.watts[260] == pytest.approx(power_model.p_idle)

    def test_sampled_energy_close_to_integral(self, power_model):
        m = RRCMachine(power_model)
        m.add_burst(0.0, 2.0)
        m.add_burst(10.0, 1.0)
        horizon = 60.0
        trace = sample_power_trace(m, horizon=horizon, interval=0.01)
        assert trace.energy() == pytest.approx(
            m.energy(horizon=horizon, absolute=True), rel=0.01
        )

    def test_relative_sampling(self, power_model):
        m = RRCMachine(power_model)
        m.add_burst(0.0, 1.0)
        trace = sample_power_trace(m, horizon=5.0, interval=0.1, absolute=False)
        assert trace.watts[0] == pytest.approx(0.70)

    def test_rejects_bad_interval(self, power_model):
        with pytest.raises(ValueError):
            sample_power_trace(RRCMachine(power_model), horizon=1.0, interval=0.0)
