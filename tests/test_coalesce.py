"""Unit tests for heartbeat coalescing (the constraint-5 what-if)."""

import pytest

from repro.core.packet import Heartbeat
from repro.experiments.ablations import ablation_heartbeat_coalescing
from repro.heartbeat.apps import default_train_generators
from repro.heartbeat.coalesce import coalesce_heartbeats
from repro.heartbeat.generators import merge_heartbeats


def hb(time, app="a", seq=0, size=100):
    return Heartbeat(app_id=app, seq=seq, time=time, size_bytes=size)


class TestCoalesce:
    def test_empty(self):
        assert coalesce_heartbeats([], 10.0) == []

    def test_zero_slack_identity_times(self):
        beats = [hb(0.0), hb(50.0, "b"), hb(120.0, "c")]
        out = coalesce_heartbeats(beats, 0.0)
        assert [h.time for h in out] == [0.0, 50.0, 120.0]

    def test_nearby_beats_merge(self):
        beats = [hb(100.0, "a"), hb(108.0, "b", 1)]
        out = coalesce_heartbeats(beats, 15.0)
        assert {h.time for h in out} == {108.0}

    def test_never_advances_a_heartbeat(self):
        beats = merge_heartbeats(default_train_generators(3), 3600.0)
        out = coalesce_heartbeats(beats, 30.0)
        nominal = {(h.app_id, h.seq): h.time for h in beats}
        for h in out:
            assert h.time >= nominal[(h.app_id, h.seq)] - 1e-9

    def test_delay_bounded_by_slack(self):
        beats = merge_heartbeats(default_train_generators(3), 7200.0)
        slack = 45.0
        out = coalesce_heartbeats(beats, slack)
        nominal = {(h.app_id, h.seq): h.time for h in beats}
        for h in out:
            assert h.time - nominal[(h.app_id, h.seq)] <= slack + 1e-9

    def test_distinct_departures_shrink_with_slack(self):
        beats = merge_heartbeats(default_train_generators(3), 7200.0)
        counts = [
            len({h.time for h in coalesce_heartbeats(beats, s)})
            for s in (0.0, 30.0, 120.0)
        ]
        assert counts[0] >= counts[1] >= counts[2]
        assert counts[2] < counts[0]

    def test_negative_slack_rejected(self):
        with pytest.raises(ValueError):
            coalesce_heartbeats([hb(0.0)], -1.0)


class TestCoalescingAblation:
    def test_more_slack_less_energy(self):
        rows = ablation_heartbeat_coalescing(
            slacks=(0.0, 120.0), horizon=1800.0
        )
        nominal, coalesced = rows
        assert coalesced.energy_j < nominal.energy_j
        assert coalesced.delay_s >= nominal.delay_s - 1.0
