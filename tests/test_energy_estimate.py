"""Unit tests for capture-based energy estimation."""

import pytest

from repro.heartbeat.apps import default_train_generators, make_generator
from repro.measurement.capture import capture_idle_traffic
from repro.measurement.energy_estimate import estimate_energy_from_capture
from repro.measurement.pcap import CaptureRecord, PacketCapture
from repro.radio.interface import RadioInterface
from repro.radio.power_model import GALAXY_S4_3G


class TestBasics:
    def test_empty_capture_rejected(self):
        with pytest.raises(ValueError):
            estimate_energy_from_capture(PacketCapture())

    def test_single_burst_is_one_full_tail(self):
        cap = PacketCapture([CaptureRecord(time=0.0, size_bytes=100, app_id="qq")])
        est = estimate_energy_from_capture(cap)
        assert est.tail_j == pytest.approx(GALAXY_S4_3G.full_tail_energy)
        assert est.bursts == 1
        assert est.tail_fraction > 0.99

    def test_close_bursts_share_tail(self):
        near = PacketCapture(
            [
                CaptureRecord(time=0.0, size_bytes=100, app_id="a"),
                CaptureRecord(time=2.0, size_bytes=100, app_id="a"),
            ]
        )
        far = PacketCapture(
            [
                CaptureRecord(time=0.0, size_bytes=100, app_id="a"),
                CaptureRecord(time=100.0, size_bytes=100, app_id="a"),
            ]
        )
        assert (
            estimate_energy_from_capture(near).total_j
            < estimate_energy_from_capture(far).total_j
        )

    def test_per_app_attribution_sums_to_total(self):
        cap = capture_idle_traffic(default_train_generators(3), 3600.0)
        est = estimate_energy_from_capture(cap)
        assert sum(est.per_app_j.values()) == pytest.approx(est.total_j)
        assert set(est.per_app_j) == {"qq", "wechat", "whatsapp"}


class TestAgreementWithSimulator:
    def test_matches_radio_accounting_for_heartbeat_stream(self):
        """Estimating from the capture of a heartbeat stream must equal
        the simulator's own accounting of the same stream."""
        gen = make_generator("qq")
        horizon = 3600.0
        capture = capture_idle_traffic([gen], horizon)
        estimate = estimate_energy_from_capture(capture, uplink_rate=100_000.0)

        radio = RadioInterface(GALAXY_S4_3G)
        for hb in gen.heartbeats_until(horizon):
            radio.transmit_heartbeat(hb)
        assert estimate.total_j == pytest.approx(radio.total_energy(), rel=1e-6)

    def test_fig1_style_standby_magnitude(self):
        """Three IM apps, 4 h idle: the capture-derived energy lands in
        the simulator's (and the paper's) range."""
        cap = capture_idle_traffic(default_train_generators(3), 4 * 3600.0)
        est = estimate_energy_from_capture(cap)
        assert 1200.0 <= est.total_j <= 2200.0
