"""Integration tests for the eTrain service on the Android layer."""

import pytest

from repro.android.apps import CargoApp, TrainApp
from repro.android.broadcast import Actions
from repro.android.cargo_apps import ETrainMail, LunaWeibo
from repro.android.etrain_service import ETrainService
from repro.android.runtime import AndroidSystem
from repro.core.profiles import mail_profile, weibo_profile
from repro.core.scheduler import SchedulerConfig
from repro.heartbeat.apps import known_train_profile


def build(theta=0.2, k=None, trains=("qq",)):
    system = AndroidSystem()
    service = ETrainService(system, SchedulerConfig(theta=theta, k=k))
    train_apps = []
    for i, app_id in enumerate(trains):
        app = TrainApp(known_train_profile(app_id, first_heartbeat=30.0 * i), system)
        app.start()
        service.attach_train_app(app)
        train_apps.append(app)
    return system, service, train_apps


class TestMonitorIntegration:
    def test_hooks_report_heartbeats(self):
        system, service, _ = build()
        service.start()
        system.run_until(700.0)
        obs = service.monitor._apps["qq"].times
        assert obs == [0.0, 300.0, 600.0]

    def test_heartbeat_broadcast_emitted(self):
        system, service, _ = build()
        events = []
        system.broadcast.register(
            Actions.HEARTBEAT, lambda i: events.append((i.get("app_id"), i.get("time")))
        )
        service.start()
        system.run_until(350.0)
        assert ("qq", 0.0) in events and ("qq", 300.0) in events

    def test_monitor_predicts_next(self):
        system, service, _ = build()
        service.start()
        system.run_until(350.0)
        assert service.monitor.predict_next("qq", 350.0) == pytest.approx(600.0)


class TestSchedulingFlow:
    def test_cargo_rides_heartbeat(self):
        system, service, _ = build(theta=10.0)
        mail = ETrainMail(system, mail_profile(deadline=600.0))
        mail.register()
        service.start()
        system.alarm_manager.set_exact(50.0, lambda t: mail.submit(5_000))
        system.run_until(700.0)
        assert len(mail.transmitted) == 1
        packet = mail.transmitted[0]
        assert packet.scheduled_time == pytest.approx(300.0, abs=1.5)

    def test_high_cost_transmits_before_heartbeat_when_warm(self):
        """A packet selected while the radio is still in the previous
        heartbeat's DCH linger goes out immediately."""
        system, service, _ = build(theta=0.0)
        weibo = LunaWeibo(system)
        weibo.register()
        service.start()
        # Heartbeat at t=0; DCH linger until t=10.  Submit at t=3.
        system.alarm_manager.set_exact(3.0, lambda t: weibo.submit(2_000))
        system.run_until(200.0)
        packet = weibo.transmitted[0]
        assert packet.scheduled_time < 10.0

    def test_pass_through_without_trains(self):
        system = AndroidSystem()
        service = ETrainService(system, SchedulerConfig(theta=10.0))
        weibo = LunaWeibo(system)
        weibo.register()
        service.start()
        system.alarm_manager.set_exact(5.0, lambda t: weibo.submit(2_000))
        system.run_until(100.0)
        assert len(weibo.transmitted) == 1
        assert weibo.transmitted[0].scheduled_time == pytest.approx(5.0)

    def test_stop_flushes_held_packets(self):
        system, service, _ = build(theta=10.0)
        mail = ETrainMail(system, mail_profile(deadline=600.0))
        mail.register()
        service.start()
        system.alarm_manager.set_exact(20.0, lambda t: mail.submit(5_000))
        system.run_until(100.0)  # before next heartbeat at 300
        assert mail.pending_count == 1
        service.stop()
        assert mail.pending_count == 0
        assert len(mail.transmitted) == 1

    def test_trains_dying_drains_queue(self):
        system, service, trains = build(theta=10.0)
        mail = ETrainMail(system, mail_profile(deadline=600.0))
        mail.register()
        service.start()
        system.alarm_manager.set_exact(20.0, lambda t: mail.submit(5_000))
        system.alarm_manager.set_exact(40.0, lambda t: trains[0].stop())
        system.run_until(100.0)
        assert len(mail.transmitted) == 1

    def test_register_intent_requires_profile(self):
        system = AndroidSystem()
        service = ETrainService(system)
        with pytest.raises(ValueError):
            system.broadcast.send_action(Actions.REGISTER)

    def test_submit_intent_requires_packet(self):
        system = AndroidSystem()
        service = ETrainService(system)
        with pytest.raises(ValueError):
            system.broadcast.send_action(Actions.SUBMIT_REQUEST)


class TestEndToEndEnergy:
    def test_etrain_saves_vs_direct_mode(self):
        """The headline effect on the device: scheduled cargo costs less
        than unmodified immediate-send cargo."""

        def run(direct):
            system, service, _ = build(theta=0.2, k=20, trains=("qq", "wechat", "whatsapp"))
            weibo = LunaWeibo(system)
            weibo.direct_mode = direct
            weibo.register()
            service.start()
            for i in range(12):
                when = 40.0 + i * 45.0
                system.alarm_manager.set_exact(
                    when, lambda t, a=weibo: a.submit(2_000)
                )
            system.run_until(600.0)
            service.stop()
            return system.total_energy()

        assert run(direct=False) < run(direct=True)
