"""Unit tests for the LTE and WiFi power-model extensions."""

import pytest

from repro.radio.lte import LTE_CAT4, LTEParameters, lte_power_model
from repro.radio.power_model import GALAXY_S4_3G
from repro.radio.wifi import WIFI_PSM, wifi_power_model


class TestLTEParameters:
    def test_drx_average_power(self):
        p = LTEParameters(p_drx_on=1.0, p_idle=0.0, drx_duty_cycle=0.4)
        assert p.drx_average_power == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            LTEParameters(drx_duty_cycle=1.5)
        with pytest.raises(ValueError):
            LTEParameters(p_connected=-1.0)
        with pytest.raises(ValueError):
            LTEParameters(p_connected=0.1, p_drx_on=1.0, drx_duty_cycle=1.0)


class TestMapping:
    def test_stage_mapping(self):
        params = LTEParameters()
        pm = lte_power_model(params)
        assert pm.delta_dch == params.continuous_reception
        assert pm.delta_fach == params.drx_window
        assert pm.p_dch_extra == pytest.approx(
            params.p_connected - params.p_idle
        )
        assert pm.p_fach_extra == pytest.approx(
            params.drx_average_power - params.p_idle
        )

    def test_lte_tail_shorter_but_hotter_than_3g(self):
        """LTE: higher connected power, shorter linger; the per-tail
        waste stays in the joules range."""
        assert LTE_CAT4.p_dch_extra > GALAXY_S4_3G.p_dch_extra
        assert LTE_CAT4.delta_dch < GALAXY_S4_3G.delta_dch
        assert 2.0 <= LTE_CAT4.full_tail_energy <= GALAXY_S4_3G.full_tail_energy

    def test_lte_is_valid_power_model(self):
        assert LTE_CAT4.tail_energy(5.0) > 0
        assert LTE_CAT4.tail_energy(100.0) == pytest.approx(
            LTE_CAT4.full_tail_energy
        )


class TestWiFi:
    def test_tail_nearly_free(self):
        assert WIFI_PSM.tail_time < 1.0
        assert WIFI_PSM.full_tail_energy < 0.5

    def test_no_intermediate_stage(self):
        assert WIFI_PSM.delta_fach == 0.0
        assert WIFI_PSM.p_fach_extra == 0.0

    def test_custom_parameters(self):
        pm = wifi_power_model(psm_tail=0.5, p_active_extra=1.0, p_tx_extra=1.0)
        assert pm.full_tail_energy == pytest.approx(0.5)


class TestCrossTechnologyEconomics:
    def test_tail_waste_ordering(self):
        """Per-burst waste: 3G > LTE >> WiFi — the adoption story."""
        assert (
            GALAXY_S4_3G.full_tail_energy
            > LTE_CAT4.full_tail_energy
            > 10 * WIFI_PSM.full_tail_energy
        )
