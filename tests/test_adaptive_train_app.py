"""Unit tests for the NetEase-style adaptive train app on the device."""

import pytest

from repro.android.apps import AdaptiveTrainApp, CargoApp
from repro.android.etrain_service import ETrainService
from repro.android.runtime import AndroidSystem
from repro.core.profiles import weibo_profile
from repro.core.scheduler import SchedulerConfig
from repro.heartbeat.generators import DoublingCycleGenerator


@pytest.fixture
def system():
    return AndroidSystem()


class TestSchedule:
    def test_matches_doubling_generator(self, system):
        """The device app fires at exactly the generator's instants.

        ``run_until`` fires an alarm landing exactly on the boundary,
        while the generator's horizon is exclusive — compare strictly
        inside the window.
        """
        app = AdaptiveTrainApp("netease", system)
        app.start()
        system.run_until(3000.0)
        expected = [
            h.time for h in DoublingCycleGenerator().heartbeats_until(3000.0)
        ]
        fired = [h.time for h in app.sent if h.time < 3000.0]
        assert fired == pytest.approx(expected)

    def test_seq_numbers(self, system):
        app = AdaptiveTrainApp("netease", system)
        app.start()
        system.run_until(400.0)
        assert [h.seq for h in app.sent] == list(range(len(app.sent)))

    def test_stop_halts_rearming(self, system):
        app = AdaptiveTrainApp("netease", system)
        app.start()
        system.run_until(100.0)
        app.stop()
        sent = len(app.sent)
        system.run_until(2000.0)
        assert len(app.sent) == sent
        assert not app.running

    def test_validation(self, system):
        with pytest.raises(ValueError):
            AdaptiveTrainApp("x", system, initial_cycle=0.0)
        with pytest.raises(ValueError):
            AdaptiveTrainApp("x", system, beats_per_stage=0)


class TestServiceIntegration:
    def test_monitor_observes_adaptive_departures(self, system):
        service = ETrainService(system, SchedulerConfig(theta=0.5))
        app = AdaptiveTrainApp("netease", system)
        app.start()
        service.attach_train_app(app)
        service.start()
        system.run_until(800.0)
        times = service.monitor._apps["netease"].times
        assert times[:4] == [0.0, 60.0, 120.0, 180.0]

    def test_cargo_rides_adaptive_heartbeats(self, system):
        service = ETrainService(system, SchedulerConfig(theta=10.0))
        train = AdaptiveTrainApp("netease", system)
        train.start()
        service.attach_train_app(train)
        weibo = CargoApp(weibo_profile(), system)
        weibo.register()
        service.start()
        system.alarm_manager.set_exact(65.0, lambda t: weibo.submit(2_000))
        system.run_until(400.0)
        service.stop()
        assert len(weibo.transmitted) == 1
        packet = weibo.transmitted[0]
        # Rides the t=120 heartbeat (next after the 60 s one at arrival).
        assert packet.scheduled_time == pytest.approx(120.0, abs=1.5)
