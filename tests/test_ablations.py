"""Shape tests for the ablation experiments (small horizons)."""

import pytest

from repro.experiments.ablations import (
    ablation_channel_aware,
    ablation_consolidated_push,
    ablation_estimator_quality,
    ablation_fast_dormancy,
    ablation_train_phases,
    ablation_warm_gate,
)
from repro.sim.runner import default_scenario


@pytest.fixture(scope="module")
def scenario():
    return default_scenario(horizon=1800.0)


class TestWarmGate:
    def test_three_configurations(self, scenario):
        rows = ablation_warm_gate(scenario)
        assert len(rows) == 3

    def test_gate_is_the_big_lever(self, scenario):
        rows = {r.label: r for r in ablation_warm_gate(scenario)}
        gated = rows["eTrain, radio-resource-gated Q_TX"]
        ungated = rows["eTrain, serve-immediately Q_TX"]
        assert gated.energy_j < ungated.energy_j
        assert gated.delay_s > ungated.delay_s


class TestFastDormancy:
    def test_ordering(self):
        rows = {r.label: r for r in ablation_fast_dormancy(horizon=1800.0)}
        assert (
            rows["eTrain, normal tail"].energy_j
            < rows["baseline, fast dormancy"].energy_j
            < rows["baseline, normal tail"].energy_j
        )

    def test_fast_dormancy_keeps_baseline_delay(self):
        rows = {r.label: r for r in ablation_fast_dormancy(horizon=1800.0)}
        assert rows["baseline, fast dormancy"].delay_s < 2.0


class TestEstimatorQuality:
    def test_etrain_single_row_beats_comparators(self, scenario):
        rows = ablation_estimator_quality(scenario, noise_levels=(0.0, 0.9))
        etrain = rows[0]
        assert etrain.label.startswith("eTrain")
        for r in rows[1:]:
            assert etrain.energy_j < r.energy_j

    def test_row_count(self, scenario):
        rows = ablation_estimator_quality(scenario, noise_levels=(0.0, 0.5))
        assert len(rows) == 1 + 2 * 2


class TestChannelAware:
    def test_extension_close_to_plain(self, scenario):
        plain, aware = ablation_channel_aware(scenario)
        assert aware.energy_j == pytest.approx(plain.energy_j, rel=0.35)


class TestConsolidatedPush:
    def test_energy_delay_tradeoff(self):
        per_app, gcm, apns = ablation_consolidated_push(horizon=3600.0)
        assert apns.energy_j < gcm.energy_j < per_app.energy_j
        assert apns.delay_s > gcm.delay_s > per_app.delay_s


class TestTrainPhases:
    def test_optimized_phases_reduce_delay(self):
        aligned, default, optimized = ablation_train_phases(horizon=3600.0)
        assert optimized.delay_s < aligned.delay_s
        assert optimized.delay_s <= default.delay_s + 1.0
