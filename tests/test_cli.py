"""Unit tests for the CLI."""

import pytest

from repro.cli import build_parser, main
from repro.experiments import ALL_EXPERIMENTS


class TestParser:
    def test_parses_experiment(self):
        args = build_parser().parse_args(["fig2"])
        assert args.experiment == "fig2"
        assert not args.quick

    def test_quick_flag(self):
        args = build_parser().parse_args(["fig7", "--quick"])
        assert args.quick


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ALL_EXPERIMENTS:
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_light_experiment(self, capsys):
        assert main(["fig6"]) == 0
        assert "delay cost functions" in capsys.readouterr().out

    def test_case_insensitive(self, capsys):
        assert main(["FIG6"]) == 0

    def test_registry_modules_all_have_main(self):
        for module in ALL_EXPERIMENTS.values():
            assert callable(module.main)


class TestTraceTooling:
    def test_bandwidth_trace(self, tmp_path, capsys):
        out = tmp_path / "bw.csv"
        assert main(["trace", "bandwidth", "--out", str(out), "--duration", "120"]) == 0
        from repro.bandwidth.trace import BandwidthTrace

        trace = BandwidthTrace.load_csv(out)
        assert len(trace) == 120

    def test_cargo_trace(self, tmp_path, capsys):
        out = tmp_path / "pkts.csv"
        assert main(
            ["trace", "cargo", "--out", str(out), "--rate", "0.08",
             "--horizon", "1000"]
        ) == 0
        from repro.workload.trace_io import load_packets_csv

        packets = load_packets_csv(out)
        assert len(packets) > 20
        assert {p.app_id for p in packets} == {"mail", "weibo", "cloud"}

    def test_users_trace(self, tmp_path, capsys):
        out = tmp_path / "users.csv"
        assert main(
            ["trace", "users", "--out", str(out), "--active", "1",
             "--moderate", "1", "--inactive", "1"]
        ) == 0
        from repro.workload.user_traces import load_trace_csv

        records = load_trace_csv(out)
        users = {r.user_id for r in records}
        assert len(users) == 3

    def test_capture_trace(self, tmp_path, capsys):
        out = tmp_path / "cap.csv"
        assert main(
            ["trace", "capture", "--out", str(out), "--apps", "qq,netease",
             "--duration", "1200"]
        ) == 0
        from repro.measurement.pcap import PacketCapture

        capture = PacketCapture.load_csv(out)
        assert set(capture.app_ids()) == {"qq", "netease"}


class TestBenchCommand:
    def _run(self, tmp_path, *extra):
        out = tmp_path / "bench.json"
        code = main(
            ["bench", "--out", str(out), "--mode", "smoke", "--repeats", "1",
             *extra]
        )
        return code, out

    def test_writes_benchmark_json(self, tmp_path, capsys):
        import json

        code, out = self._run(tmp_path)
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["mode"] == "smoke"
        names = {c["name"] for c in doc["cases"]}
        assert "periodic600_day" in names
        for case in doc["cases"]:
            assert case["speedup"] > 0
            assert case["event_iterations"] <= case["dense_iterations"]
        assert "wrote" in capsys.readouterr().out

    def test_check_against_self_passes(self, tmp_path, capsys):
        code, out = self._run(tmp_path)
        assert code == 0
        code, _ = self._run(tmp_path, "--check", str(out), "--tolerance", "0.9")
        assert code == 0
        assert "all cases within" in capsys.readouterr().out

    def test_check_flags_regression(self, tmp_path, capsys):
        import json

        code, out = self._run(tmp_path)
        assert code == 0
        doc = json.loads(out.read_text())
        for case in doc["cases"]:
            case["speedup"] *= 100.0  # impossible baseline
        baseline = tmp_path / "inflated.json"
        baseline.write_text(json.dumps(doc))
        code, _ = self._run(tmp_path, "--check", str(baseline))
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().err


class TestFleetCommand:
    def test_runs_tiny_fleet_and_writes_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "fleet.json"
        code = main(
            ["fleet", "--devices", "4", "--chunk-size", "2",
             "--horizon", "300", "--quiet", "--out", str(out)]
        )
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["vectorized"] is True
        assert doc["chunks"] == 2
        assert doc["spec"]["devices"] == 4
        assert doc["summary"]["devices"] == 4
        assert doc["summary"]["total_energy_j"] > 0
        printed = capsys.readouterr().out
        assert "4 devices" in printed
        assert "wrote" in printed

    def test_strategy_params_reach_the_engine(self, tmp_path, capsys):
        code = main(
            ["fleet", "--devices", "2", "--chunk-size", "2",
             "--horizon", "300", "--quiet",
             "--strategy", "periodic", "--param", "period=45"]
        )
        assert code == 0
        assert "periodic" in capsys.readouterr().out

    def test_scalar_fallback_strategy(self, capsys):
        # Every strategy now has a vectorized kernel (channel_aware was
        # the last, ISSUE 8); configurations outside the engine's
        # assumptions (etrain with a k-limited drain) still fall back.
        code = main(
            ["fleet", "--devices", "1", "--chunk-size", "1",
             "--horizon", "300", "--quiet",
             "--strategy", "etrain", "--param", "k=2"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "scalar fallback" in captured.out
        # Fallback visibility satellite: a one-line warning on stderr.
        assert "no vectorized fleet kernel" in captured.err

    def test_vectorized_strategy_has_no_fallback_warning(self, capsys):
        code = main(
            ["fleet", "--devices", "1", "--chunk-size", "1",
             "--horizon", "300", "--quiet", "--strategy", "peres"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "vectorized" in captured.out
        assert "no vectorized fleet kernel" not in captured.err

    def test_bad_param_syntax(self, capsys):
        code = main(["fleet", "--devices", "1", "--param", "oops"])
        assert code == 2
        assert "NAME=VALUE" in capsys.readouterr().err

    def test_invalid_spec_is_reported(self, capsys):
        code = main(["fleet", "--devices", "1", "--strategy", "etrain",
                     "--param", "k=3", "--horizon", "300", "--quiet"])
        # k!=None is outside the vectorized engine's contract; the spec
        # still runs via the scalar fallback, so this must succeed.
        assert code == 0
        assert "scalar fallback" in capsys.readouterr().out


class TestFaultToleranceFlags:
    def test_sweep_parser_accepts_fault_flags(self):
        from repro.cli import build_sweep_parser

        args = build_sweep_parser().parse_args(
            ["--resume", "--max-retries", "5", "--job-timeout", "2.5",
             "--faults", "crash=0.1,seed=3"]
        )
        assert args.resume and args.max_retries == 5
        assert args.job_timeout == 2.5 and args.faults == "crash=0.1,seed=3"

    def test_fleet_parser_accepts_fault_flags(self):
        from repro.cli import build_fleet_parser

        args = build_fleet_parser().parse_args(["--cleanup-shm", "--resume"])
        assert args.cleanup_shm and args.resume

    def test_bad_faults_spec_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["sweep", "--seeds", "1", "--horizon", "240",
                  "--quiet", "--faults", "explode=1"])
        assert exc_info.value.code == 2
        assert "bad --faults spec" in capsys.readouterr().err

    def test_sweep_resume_needs_cache_dir(self, capsys):
        assert main(["sweep", "--seeds", "1", "--resume"]) == 2
        assert "--resume requires --cache-dir" in capsys.readouterr().err

    def test_fleet_resume_needs_cache_dir(self, capsys):
        assert main(["fleet", "--devices", "1", "--resume"]) == 2
        assert "--resume requires --cache-dir" in capsys.readouterr().err

    def test_fleet_cleanup_shm_runs_standalone(self, capsys):
        assert main(["fleet", "--cleanup-shm"]) == 0
        assert "stale etrain-* segment(s)" in capsys.readouterr().out

    def test_dist_flags_parse_on_sweep_and_fleet(self):
        from repro.cli import build_fleet_parser, build_sweep_parser

        args = build_sweep_parser().parse_args(
            ["--workers-remote", "2", "--bind", "0.0.0.0:7777",
             "--min-workers", "3", "--lease-timeout", "12.5"]
        )
        assert args.workers_remote == 2 and args.bind == "0.0.0.0:7777"
        assert args.min_workers == 3 and args.lease_timeout == 12.5
        fleet = build_fleet_parser().parse_args(["--workers-remote", "1"])
        assert fleet.workers_remote == 1 and fleet.bind is None

    def test_bad_bind_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["sweep", "--seeds", "1", "--horizon", "240", "--quiet",
                  "--bind", "nonsense", "--workers-remote", "1"])
        assert exc_info.value.code == 2
        assert "--bind wants HOST:PORT" in capsys.readouterr().err

    def test_coordinate_usage_and_delegation(self, capsys):
        assert main(["coordinate"]) == 2
        assert "usage: etrain coordinate" in capsys.readouterr().err
        assert main(["coordinate", "--help"]) == 0
        assert "usage: etrain coordinate" in capsys.readouterr().out
        assert main(["coordinate", "loadgen"]) == 2

    def test_worker_rejects_bad_connect(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["worker", "--connect", "no-port-here"])
        assert exc_info.value.code == 2

    def test_sweep_resume_round_trip(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        base = ["sweep", "--strategies", "immediate", "--seeds", "2",
                "--horizon", "240", "--quiet", "--cache-dir", cache]
        assert main(base) == 0
        first = capsys.readouterr().out
        assert main(base + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "resuming:" in second and "2/2 job(s) complete" in second
        # The result table is identical across the original and resume.
        table = lambda out: [
            l for l in out.splitlines()
            if l.startswith(("immediate", "strategy", "---", "Sweep:"))
        ]
        assert table(first) == table(second)

    def test_fleet_resume_round_trip(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        base = ["fleet", "--devices", "4", "--chunk-size", "2",
                "--horizon", "300", "--quiet", "--cache-dir", cache]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "resuming:" in out and "2/2 job(s) complete" in out
