"""Unit + property tests for heartbeat schedule generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.profiles import TrainAppProfile
from repro.heartbeat.generators import (
    DoublingCycleGenerator,
    FixedCycleGenerator,
    JitteredCycleGenerator,
    merge_heartbeats,
)


def fixed(cycle=300.0, first=0.0, app="qq", size=378):
    return FixedCycleGenerator(
        TrainAppProfile(
            app_id=app, cycle=cycle, heartbeat_size_bytes=size, first_heartbeat=first
        )
    )


class TestFixedCycle:
    def test_times_are_arithmetic(self):
        gen = fixed(cycle=300.0)
        times = [hb.time for hb in gen.heartbeats_until(1000.0)]
        assert times == [0.0, 300.0, 600.0, 900.0]

    def test_horizon_exclusive(self):
        gen = fixed(cycle=300.0)
        assert len(gen.heartbeats_until(300.0)) == 1

    def test_phase_offset(self):
        gen = fixed(cycle=300.0, first=50.0)
        times = [hb.time for hb in gen.heartbeats_until(700.0)]
        assert times == [50.0, 350.0, 650.0]

    def test_seq_numbers(self):
        gen = fixed()
        seqs = [hb.seq for hb in gen.heartbeats_until(1000.0)]
        assert seqs == [0, 1, 2, 3]

    def test_next_after(self):
        gen = fixed(cycle=300.0)
        nxt = gen.next_after(100.0)
        assert nxt is not None and nxt.time == 300.0

    def test_next_after_exact_boundary_is_strict(self):
        gen = fixed(cycle=300.0)
        nxt = gen.next_after(300.0)
        assert nxt is not None and nxt.time == 600.0

    def test_next_after_before_first(self):
        gen = fixed(cycle=300.0, first=50.0)
        nxt = gen.next_after(0.0)
        assert nxt is not None and nxt.time == 50.0

    def test_next_after_horizon(self):
        gen = fixed(cycle=300.0)
        assert gen.next_after(100.0, horizon=200.0) is None


class TestDoublingCycle:
    def test_paper_schedule(self):
        """60 s cycle doubling after every 6 beats, capped at 480 s."""
        gen = DoublingCycleGenerator()
        assert gen.cycle_for_seq(0) == 60.0
        assert gen.cycle_for_seq(5) == 60.0
        assert gen.cycle_for_seq(6) == 120.0
        assert gen.cycle_for_seq(12) == 240.0
        assert gen.cycle_for_seq(18) == 480.0
        assert gen.cycle_for_seq(100) == 480.0  # capped

    def test_first_stage_times(self):
        gen = DoublingCycleGenerator()
        times = [hb.time for hb in gen.heartbeats_until(400.0)]
        assert times == [0.0, 60.0, 120.0, 180.0, 240.0, 300.0, 360.0]

    def test_stage_transition(self):
        gen = DoublingCycleGenerator()
        times = [hb.time for hb in gen.heartbeats_until(700.0)]
        # Beat 6 comes 60 s after beat 5 at 300... beat 5 is at 300,
        # then beat 6 at 360 (cycle_for_seq(5)=60), beat 7 at 480 (120).
        assert 480.0 in times

    def test_validation(self):
        with pytest.raises(ValueError):
            DoublingCycleGenerator(initial_cycle=500.0, max_cycle=480.0)
        with pytest.raises(ValueError):
            DoublingCycleGenerator(beats_per_stage=0)

    def test_next_after_default_scan(self):
        gen = DoublingCycleGenerator()
        nxt = gen.next_after(100.0)
        assert nxt is not None and nxt.time == 120.0


class TestJitter:
    def test_zero_jitter_identity(self):
        inner = fixed()
        gen = JitteredCycleGenerator(inner, max_jitter=0.0)
        assert [h.time for h in gen.heartbeats_until(1000.0)] == [
            h.time for h in inner.heartbeats_until(1000.0)
        ]

    def test_jitter_bounded_and_ordered(self):
        gen = JitteredCycleGenerator(fixed(), max_jitter=5.0, seed=7)
        times = [h.time for h in gen.heartbeats_until(3000.0)]
        base = [h.time for h in fixed().heartbeats_until(3000.0)]
        for jittered, nominal in zip(times, base):
            assert nominal <= jittered <= nominal + 5.0
        assert times == sorted(times)

    def test_deterministic_per_seed(self):
        a = JitteredCycleGenerator(fixed(), max_jitter=5.0, seed=1)
        b = JitteredCycleGenerator(fixed(), max_jitter=5.0, seed=1)
        assert [h.time for h in a.heartbeats_until(2000.0)] == [
            h.time for h in b.heartbeats_until(2000.0)
        ]

    def test_rejects_negative_jitter(self):
        with pytest.raises(ValueError):
            JitteredCycleGenerator(fixed(), max_jitter=-1.0)


class TestStaticSchedule:
    def test_replays_sorted(self):
        from repro.core.packet import Heartbeat
        from repro.heartbeat.generators import StaticScheduleGenerator

        beats = [
            Heartbeat(app_id="b", seq=0, time=50.0, size_bytes=10),
            Heartbeat(app_id="a", seq=0, time=10.0, size_bytes=10),
        ]
        gen = StaticScheduleGenerator(beats)
        assert [h.time for h in gen.heartbeats_until(100.0)] == [10.0, 50.0]

    def test_horizon_exclusive(self):
        from repro.core.packet import Heartbeat
        from repro.heartbeat.generators import StaticScheduleGenerator

        beats = [Heartbeat(app_id="a", seq=0, time=10.0, size_bytes=10)]
        gen = StaticScheduleGenerator(beats)
        assert gen.heartbeats_until(10.0) == []

    def test_next_after_inherited(self):
        from repro.core.packet import Heartbeat
        from repro.heartbeat.generators import StaticScheduleGenerator

        beats = [
            Heartbeat(app_id="a", seq=i, time=100.0 * i, size_bytes=10)
            for i in range(5)
        ]
        gen = StaticScheduleGenerator(beats)
        nxt = gen.next_after(150.0)
        assert nxt is not None and nxt.time == 200.0


class TestMerge:
    def test_merged_sorted(self):
        gens = [fixed(cycle=300.0, app="qq"), fixed(cycle=240.0, first=60.0, app="whatsapp")]
        merged = merge_heartbeats(gens, 2000.0)
        times = [h.time for h in merged]
        assert times == sorted(times)

    def test_merged_counts(self):
        gens = [fixed(cycle=300.0, app="a"), fixed(cycle=200.0, app="b")]
        merged = merge_heartbeats(gens, 1200.0)
        assert len(merged) == 4 + 6

    def test_empty_generators(self):
        assert merge_heartbeats([], 1000.0) == []


@given(
    cycle=st.floats(min_value=1.0, max_value=2000.0),
    first=st.floats(min_value=0.0, max_value=500.0),
    horizon=st.floats(min_value=1.0, max_value=5000.0),
)
@settings(max_examples=60, deadline=None)
def test_fixed_cycle_invariants(cycle, first, horizon):
    gen = fixed(cycle=cycle, first=first)
    beats = gen.heartbeats_until(horizon)
    times = [h.time for h in beats]
    assert all(t < horizon for t in times)
    assert times == sorted(times)
    for a, b in zip(times, times[1:]):
        assert b - a == pytest.approx(cycle, rel=1e-9)


@given(
    t=st.floats(min_value=0.0, max_value=5000.0),
    cycle=st.floats(min_value=1.0, max_value=1000.0),
)
@settings(max_examples=60, deadline=None)
def test_next_after_is_strictly_future_and_minimal(t, cycle):
    gen = fixed(cycle=cycle)
    nxt = gen.next_after(t)
    assert nxt is not None
    assert nxt.time > t
    # No earlier heartbeat between t and the prediction.
    earlier = [h for h in gen.heartbeats_until(nxt.time) if h.time > t]
    assert not earlier
