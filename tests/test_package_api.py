"""Public-API surface tests: imports, __all__ integrity, quick_run."""

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.radio",
    "repro.heartbeat",
    "repro.workload",
    "repro.bandwidth",
    "repro.sim",
    "repro.baselines",
    "repro.android",
    "repro.measurement",
    "repro.analysis",
    "repro.experiments",
]


class TestPublicSurface:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_package_imports(self, name):
        importlib.import_module(name)

    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_entries_resolve(self, name):
        module = importlib.import_module(name)
        exported = getattr(module, "__all__", [])
        for symbol in exported:
            assert hasattr(module, symbol), f"{name}.{symbol} missing"

    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_has_no_duplicates(self, name):
        module = importlib.import_module(name)
        exported = getattr(module, "__all__", [])
        assert len(exported) == len(set(exported))

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_public_symbols_documented(self):
        """Every exported callable/class carries a docstring."""
        for name in PACKAGES:
            module = importlib.import_module(name)
            for symbol in getattr(module, "__all__", []):
                obj = getattr(module, symbol)
                if callable(obj) or isinstance(obj, type):
                    assert obj.__doc__, f"{name}.{symbol} lacks a docstring"


class TestQuickRun:
    def test_quick_run_returns_result(self):
        result = repro.quick_run(theta=0.5, horizon=600.0)
        assert result.total_energy > 0
        assert result.horizon == 600.0
        assert "eTrain" in result.strategy_name

    def test_quick_run_theta_effect(self):
        eager = repro.quick_run(theta=0.0, horizon=1200.0)
        patient = repro.quick_run(theta=5.0, horizon=1200.0)
        assert patient.normalized_delay >= eager.normalized_delay - 1.0
