"""Fleet engine vs per-device scalar loop: aggregate equivalence.

The batched NumPy engine (`repro.sim.fleet.engine`) promises the *same
aggregate numbers* as running each device through the scalar slotted
simulation — seed for seed, strategy for strategy.  These tests hold it
to that: fixed-seed checks for every vectorized strategy, a hypothesis
sweep over small fleets (satellite requirement: total energy, piggyback
ratio and delay-cost totals must match a per-device loop), and chunk
invariance (splitting a fleet into chunks never changes the merge).

Tolerances: the vectorized accounting sums per-packet costs in a
different association order than the scalar loop, so totals agree to
float round-off (rtol 1e-6 is generous; observed drift ~1e-13).  Chunk
splits reuse identical per-device streams, so they agree to 1e-9.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bandwidth.synth import wuhan_bandwidth_model
from repro.radio.power_model import GALAXY_S4_3G
from repro.sim.fleet.accounting import summarize_chunk
from repro.sim.fleet.aggregate import FleetChunkSummary
from repro.sim.fleet.channel import ChannelTable
from repro.sim.fleet.engine import VECTOR_STRATEGIES, simulate_fleet_chunk
from repro.sim.fleet.reference import simulate_reference_chunk
from repro.sim.fleet.workload import synthesize_fleet

#: Aggregate keys the fleet engine must reproduce from the scalar loop.
MATCH_KEYS = (
    "total_energy_j",
    "tail_energy_j",
    "transmission_energy_j",
    "normalized_delay_s",
    "deadline_violation_ratio",
    "piggyback_ratio",
    "delay_cost_total",
    "packets",
    "bursts",
)

_BW = wuhan_bandwidth_model()
_TABLES = {}


def channel_table(horizon: float) -> ChannelTable:
    if horizon not in _TABLES:
        _TABLES[horizon] = ChannelTable.from_model(_BW, horizon)
    return _TABLES[horizon]


def fleet_summary(devices, horizon, seed, strategy, params=None, phase_mode="fixed"):
    workload = synthesize_fleet(devices, horizon, seed, phase_mode=phase_mode)
    raw = simulate_fleet_chunk(
        workload, channel_table(horizon), strategy=strategy, params=params
    )
    return summarize_chunk(raw, GALAXY_S4_3G).summary()


def scalar_summary(devices, horizon, seed, strategy, params=None, phase_mode="fixed"):
    workload = synthesize_fleet(devices, horizon, seed, phase_mode=phase_mode)
    return simulate_reference_chunk(
        workload, _BW, strategy=strategy, params=params
    ).summary()


def assert_summaries_match(fleet, scalar, rtol=1e-6):
    for key in MATCH_KEYS:
        assert fleet[key] == pytest.approx(scalar[key], rel=rtol, abs=1e-9), (
            f"{key}: fleet {fleet[key]!r} != scalar {scalar[key]!r}"
        )


CASES = [
    ("immediate", None),
    ("periodic", {"period": 45.0}),
    ("tailender", None),
    ("etrain", None),
    ("etrain", {"warm_gate": False}),
    ("etrain", {"theta": 0.5}),
    # Registry-vectorized baseline kernels (ISSUE 7 tentpole).
    ("peres", None),
    ("peres", {"omega": 0.5}),
    ("etime", None),
    ("etime", {"v": 2.0}),
    ("adaptive", None),
    ("adaptive", {"target_delay": 20.0, "warm_gate": False}),
    ("fixed_batch", None),
    ("fixed_batch", {"period": 45.0}),
    # channel_aware (ISSUE 8): the last strategy off the scalar fallback.
    ("channel_aware", None),
    ("channel_aware", {"quality_threshold": 1.2, "max_defer": 10.0}),
    ("channel_aware", {"theta": 0.5, "noise": 0.0}),
    ("channel_aware", {"quality_threshold": 5.0}),
]

#: The strategies recent PRs moved off the scalar fallback.
NEW_VECTOR = ["peres", "etime", "adaptive", "fixed_batch", "channel_aware"]


@pytest.mark.parametrize("strategy,params", CASES)
def test_fixed_seed_equivalence(strategy, params):
    fleet = fleet_summary(6, 450.0, 3, strategy, params)
    scalar = scalar_summary(6, 450.0, 3, strategy, params)
    assert_summaries_match(fleet, scalar)


@pytest.mark.parametrize("strategy", VECTOR_STRATEGIES)
def test_random_phase_equivalence(strategy):
    fleet = fleet_summary(5, 450.0, 7, strategy, phase_mode="random")
    scalar = scalar_summary(5, 450.0, 7, strategy, phase_mode="random")
    assert_summaries_match(fleet, scalar)


def test_full_horizon_etrain_equivalence():
    """One slow full-length check: 2 devices over the paper's 2h horizon."""
    fleet = fleet_summary(2, 7200.0, 0, "etrain")
    scalar = scalar_summary(2, 7200.0, 0, "etrain")
    assert_summaries_match(fleet, scalar)
    assert fleet["piggyback_ratio"] > 0.3  # eTrain actually piggybacks


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    devices=st.integers(min_value=1, max_value=8),
    horizon=st.sampled_from([300.0, 450.0, 600.0, 900.0]),
    seed=st.integers(min_value=0, max_value=200),
    strategy=st.sampled_from(VECTOR_STRATEGIES),
    phase_mode=st.sampled_from(["fixed", "random"]),
)
def test_property_fleet_matches_scalar(devices, horizon, seed, strategy, phase_mode):
    """Satellite (c): any small fleet matches a per-device scalar loop on
    total energy, piggyback ratio and delay-cost totals, seed for seed."""
    fleet = fleet_summary(devices, horizon, seed, strategy, phase_mode=phase_mode)
    scalar = scalar_summary(devices, horizon, seed, strategy, phase_mode=phase_mode)
    assert fleet["devices"] == scalar["devices"] == devices
    assert fleet["total_energy_j"] == pytest.approx(
        scalar["total_energy_j"], rel=1e-6
    )
    assert fleet["piggyback_ratio"] == pytest.approx(
        scalar["piggyback_ratio"], rel=1e-6, abs=1e-12
    )
    assert fleet["delay_cost_total"] == pytest.approx(
        scalar["delay_cost_total"], rel=1e-6, abs=1e-9
    )


@pytest.mark.parametrize("strategy", ["immediate", "etrain"])
def test_chunk_invariance(strategy):
    """Chunking is invisible: per-device streams are keyed by absolute
    device index, and the summary merge is associative."""
    devices, horizon, seed = 20, 450.0, 1
    table = channel_table(horizon)
    whole = summarize_chunk(
        simulate_fleet_chunk(
            synthesize_fleet(devices, horizon, seed), table, strategy=strategy
        ),
        GALAXY_S4_3G,
    )
    parts = []
    for offset, count in ((0, 7), (7, 7), (14, 6)):
        w = synthesize_fleet(count, horizon, seed, device_offset=offset)
        parts.append(
            summarize_chunk(
                simulate_fleet_chunk(w, table, strategy=strategy), GALAXY_S4_3G
            )
        )
    merged = FleetChunkSummary.merge_all(parts)
    assert merged.devices == whole.devices
    assert merged.packets == whole.packets
    assert merged.bursts == whole.bursts
    assert merged.piggyback_hits == whole.piggyback_hits
    assert merged.energy_total_j == pytest.approx(whole.energy_total_j, rel=1e-9)
    assert merged.delay_cost_sum == pytest.approx(whole.delay_cost_sum, rel=1e-9)
    np.testing.assert_array_equal(merged.energy_hist, whole.energy_hist)
    np.testing.assert_array_equal(merged.delay_hist, whole.delay_hist)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    devices=st.integers(min_value=1, max_value=5),
    horizon=st.sampled_from([300.0, 450.0, 600.0]),
    seed=st.integers(min_value=0, max_value=200),
    strategy=st.sampled_from(NEW_VECTOR),
    phase_mode=st.sampled_from(["fixed", "random"]),
)
def test_property_new_kernels_match_scalar(
    devices, horizon, seed, strategy, phase_mode
):
    """Satellite: every newly vectorized strategy matches the scalar
    loop on the full aggregate key set, seed for seed."""
    fleet = fleet_summary(devices, horizon, seed, strategy, phase_mode=phase_mode)
    scalar = scalar_summary(devices, horizon, seed, strategy, phase_mode=phase_mode)
    assert fleet["devices"] == scalar["devices"] == devices
    assert_summaries_match(fleet, scalar)


def test_rejects_non_vectorized_strategy():
    w = synthesize_fleet(1, 60.0, 0)
    with pytest.raises(ValueError, match="no_such_strategy"):
        simulate_fleet_chunk(w, channel_table(60.0), strategy="no_such_strategy")


def test_rejects_unknown_params():
    w = synthesize_fleet(1, 60.0, 0)
    with pytest.raises((TypeError, ValueError)):
        simulate_fleet_chunk(
            w, channel_table(60.0), strategy="etrain", params={"bogus": 1}
        )
