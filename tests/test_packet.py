"""Unit tests for the core data model (Packet / Heartbeat / records)."""

import pytest

from repro.core.packet import (
    Heartbeat,
    Packet,
    TransmissionRecord,
    reset_packet_ids,
)


class TestPacket:
    def test_auto_increment_ids(self):
        a = Packet(app_id="mail", arrival_time=0.0, size_bytes=100)
        b = Packet(app_id="mail", arrival_time=0.0, size_bytes=100)
        assert b.packet_id == a.packet_id + 1

    def test_reset_packet_ids(self):
        Packet(app_id="mail", arrival_time=0.0, size_bytes=100)
        reset_packet_ids()
        p = Packet(app_id="mail", arrival_time=0.0, size_bytes=100)
        assert p.packet_id == 0

    def test_rejects_negative_arrival(self):
        with pytest.raises(ValueError):
            Packet(app_id="mail", arrival_time=-1.0, size_bytes=100)

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            Packet(app_id="mail", arrival_time=0.0, size_bytes=0)

    def test_rejects_nonpositive_deadline(self):
        with pytest.raises(ValueError):
            Packet(app_id="mail", arrival_time=0.0, size_bytes=1, deadline=0.0)

    def test_delay_at_clamps_to_zero(self):
        p = Packet(app_id="mail", arrival_time=10.0, size_bytes=1)
        assert p.delay_at(5.0) == 0.0
        assert p.delay_at(15.0) == 5.0

    def test_delay_requires_schedule(self):
        p = Packet(app_id="mail", arrival_time=0.0, size_bytes=1)
        with pytest.raises(ValueError):
            _ = p.delay

    def test_delay_after_scheduling(self):
        p = Packet(app_id="mail", arrival_time=10.0, size_bytes=1)
        p.scheduled_time = 25.0
        assert p.delay == 15.0
        assert p.is_scheduled

    def test_violates_deadline(self):
        p = Packet(app_id="mail", arrival_time=0.0, size_bytes=1, deadline=30.0)
        p.scheduled_time = 31.0
        assert p.violates_deadline()

    def test_within_deadline(self):
        p = Packet(app_id="mail", arrival_time=0.0, size_bytes=1, deadline=30.0)
        p.scheduled_time = 30.0
        assert not p.violates_deadline()

    def test_no_deadline_never_violates(self):
        p = Packet(app_id="mail", arrival_time=0.0, size_bytes=1, deadline=None)
        p.scheduled_time = 1e9
        assert not p.violates_deadline()

    def test_unscheduled_never_violates(self):
        p = Packet(app_id="mail", arrival_time=0.0, size_bytes=1, deadline=1.0)
        assert not p.violates_deadline()

    def test_equality_is_identity_by_id(self):
        a = Packet(app_id="mail", arrival_time=0.0, size_bytes=100)
        b = Packet(app_id="mail", arrival_time=0.0, size_bytes=100)
        assert a != b
        assert a == a
        assert len({a, b}) == 2

    def test_is_completed(self):
        p = Packet(app_id="mail", arrival_time=0.0, size_bytes=1)
        assert not p.is_completed
        p.completion_time = 5.0
        assert p.is_completed


class TestHeartbeat:
    def test_fields(self):
        hb = Heartbeat(app_id="qq", seq=3, time=900.0, size_bytes=378)
        assert hb.app_id == "qq"
        assert hb.seq == 3

    def test_frozen(self):
        hb = Heartbeat(app_id="qq", seq=0, time=0.0, size_bytes=378)
        with pytest.raises(AttributeError):
            hb.time = 5.0  # type: ignore[misc]

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            Heartbeat(app_id="qq", seq=0, time=-1.0, size_bytes=378)

    def test_rejects_negative_seq(self):
        with pytest.raises(ValueError):
            Heartbeat(app_id="qq", seq=-1, time=0.0, size_bytes=378)

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            Heartbeat(app_id="qq", seq=0, time=0.0, size_bytes=0)


class TestTransmissionRecord:
    def test_end(self):
        r = TransmissionRecord(start=10.0, duration=2.5, size_bytes=100, kind="data")
        assert r.end == 12.5

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            TransmissionRecord(start=0.0, duration=-1.0, size_bytes=1, kind="data")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            TransmissionRecord(start=0.0, duration=0.0, size_bytes=1, kind="junk")

    @pytest.mark.parametrize("kind", ["heartbeat", "data", "piggyback"])
    def test_accepts_known_kinds(self, kind):
        r = TransmissionRecord(start=0.0, duration=0.0, size_bytes=1, kind=kind)
        assert r.kind == kind
