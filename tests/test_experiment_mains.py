"""Smoke tests: every experiment's ``main()`` renders a report.

The shape assertions live in test_experiments.py and the benchmarks;
these only confirm the human-facing entry points run end to end and
print what their docstrings promise.
"""

import subprocess
import sys

import pytest

from repro.experiments import ALL_EXPERIMENTS, fig1, fig2, fig4, fig6, table1


class TestLightMains:
    def test_fig1_main(self, capsys):
        out = fig1.main(hours=1.0)
        assert "standby energy" in out
        assert "hb share" in out

    def test_fig2_main(self, capsys):
        out = fig2.main()
        assert "piggybacked" in out
        assert "%" in out

    def test_fig4_main(self, capsys):
        out = fig4.main()
        assert "DCH" in out and "FACH" in out

    def test_fig6_main(self, capsys):
        out = fig6.main()
        assert "f1 (mail)" in out

    def test_table1_main(self, capsys):
        out = table1.main()
        assert "iPhone" in out and "270s" in out


class TestQuickMains:
    """Heavier mains, exercised in quick mode."""

    @pytest.mark.parametrize("name", ["fig7", "fig8", "fig10", "sensitivity"])
    def test_quick_mode_runs(self, name, capsys):
        module = ALL_EXPERIMENTS[name]
        out = module.main(quick=True)
        assert len(out) > 100

    def test_fig11_main_small(self, capsys):
        out = ALL_EXPERIMENTS["fig11"].main(sessions_per_class=1)
        assert "activeness" in out

    def test_daylong_main(self, capsys):
        out = ALL_EXPERIMENTS["daylong"].main()
        assert "battery" in out

    def test_ablations_quick(self, capsys):
        out = ALL_EXPERIMENTS["ablations"].main(quick=True)
        assert "fast dormancy" in out
        assert "coalescing" in out


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 0
        assert "fig7" in proc.stdout
        assert "ablations" in proc.stdout
