"""Unit tests for cargo/train app profiles."""

import pytest

from repro.core.cost_functions import CloudCost, MailCost, WeiboCost
from repro.core.profiles import (
    CargoAppProfile,
    DEFAULT_CARGO_PROFILES,
    TrainAppProfile,
    cloud_profile,
    mail_profile,
    weibo_profile,
)


class TestCargoProfiles:
    def test_paper_size_parameters(self):
        """Sec. VI-A: 5 KB/1 KB mail, 2 KB/100 B weibo, 100 KB/10 KB cloud."""
        assert (mail_profile().mean_size_bytes, mail_profile().min_size_bytes) == (
            5_000,
            1_000,
        )
        assert (weibo_profile().mean_size_bytes, weibo_profile().min_size_bytes) == (
            2_000,
            100,
        )
        assert (cloud_profile().mean_size_bytes, cloud_profile().min_size_bytes) == (
            100_000,
            10_000,
        )

    def test_paper_interarrival_ratio(self):
        """Mail : weibo : cloud inter-arrival ratio is 5 : 2 : 10."""
        m, w, c = mail_profile(), weibo_profile(), cloud_profile()
        assert m.mean_interarrival / w.mean_interarrival == pytest.approx(2.5)
        assert c.mean_interarrival / w.mean_interarrival == pytest.approx(5.0)

    def test_cost_function_types(self):
        assert isinstance(mail_profile().cost_function, MailCost)
        assert isinstance(weibo_profile().cost_function, WeiboCost)
        assert isinstance(cloud_profile().cost_function, CloudCost)

    def test_default_total_rate(self):
        profiles = DEFAULT_CARGO_PROFILES()
        rate = sum(1.0 / p.mean_interarrival for p in profiles)
        assert rate == pytest.approx(0.08)

    def test_with_deadline_rebuilds_cost(self):
        p = weibo_profile(deadline=30.0).with_deadline(90.0)
        assert p.deadline == 90.0
        assert p.cost_function.deadline == 90.0
        assert isinstance(p.cost_function, WeiboCost)

    def test_with_interarrival(self):
        p = weibo_profile().with_interarrival(40.0)
        assert p.mean_interarrival == 40.0
        assert p.app_id == "weibo"

    def test_validation_rejects_min_above_mean(self):
        with pytest.raises(ValueError):
            CargoAppProfile(
                app_id="x",
                cost_function=WeiboCost(30.0),
                mean_size_bytes=100,
                min_size_bytes=200,
                deadline=30.0,
                mean_interarrival=10.0,
            )

    def test_validation_rejects_bad_deadline(self):
        with pytest.raises(ValueError):
            CargoAppProfile(
                app_id="x",
                cost_function=WeiboCost(30.0),
                mean_size_bytes=100,
                min_size_bytes=50,
                deadline=0.0,
                mean_interarrival=10.0,
            )


class TestTrainProfiles:
    def test_fields(self):
        p = TrainAppProfile(app_id="qq", cycle=300.0, heartbeat_size_bytes=378)
        assert p.first_heartbeat == 0.0

    def test_rejects_zero_cycle(self):
        with pytest.raises(ValueError):
            TrainAppProfile(app_id="qq", cycle=0.0, heartbeat_size_bytes=378)

    def test_rejects_negative_first(self):
        with pytest.raises(ValueError):
            TrainAppProfile(
                app_id="qq", cycle=300.0, heartbeat_size_bytes=378, first_heartbeat=-1.0
            )

    def test_frozen(self):
        p = TrainAppProfile(app_id="qq", cycle=300.0, heartbeat_size_bytes=378)
        with pytest.raises(AttributeError):
            p.cycle = 10.0  # type: ignore[misc]
