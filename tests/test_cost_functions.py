"""Unit + property tests for the delay-cost profile functions (Fig. 6)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.cost_functions import (
    CloudCost,
    LinearCost,
    MailCost,
    PiecewiseLinearCost,
    StepCost,
    WeiboCost,
    ZeroCost,
)

ALL_DEADLINE_COSTS = [MailCost, WeiboCost, CloudCost]


class TestMailCost:
    def test_zero_before_deadline(self):
        f = MailCost(60.0)
        assert f(0.0) == 0.0
        assert f(59.9) == 0.0
        assert f(60.0) == 0.0

    def test_linear_after_deadline(self):
        f = MailCost(60.0)
        assert f(120.0) == pytest.approx(1.0)
        assert f(180.0) == pytest.approx(2.0)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            MailCost(60.0)(-1.0)


class TestWeiboCost:
    def test_linear_up_to_deadline(self):
        f = WeiboCost(30.0)
        assert f(0.0) == 0.0
        assert f(15.0) == pytest.approx(0.5)
        assert f(30.0) == pytest.approx(1.0)

    def test_plateau_after_deadline(self):
        f = WeiboCost(30.0)
        assert f(31.0) == 2.0
        assert f(1e6) == 2.0


class TestCloudCost:
    def test_linear_up_to_deadline(self):
        f = CloudCost(120.0)
        assert f(60.0) == pytest.approx(0.5)
        assert f(120.0) == pytest.approx(1.0)

    def test_triple_slope_after(self):
        f = CloudCost(120.0)
        # f3(d) = 3 d/D - 2 past the deadline.
        assert f(240.0) == pytest.approx(4.0)

    def test_continuous_at_deadline(self):
        f = CloudCost(120.0)
        assert f(120.0) == pytest.approx(3.0 * 120.0 / 120.0 - 2.0)


class TestOtherCosts:
    def test_linear_cost(self):
        f = LinearCost(0.1)
        assert f(10.0) == pytest.approx(1.0)

    def test_linear_rejects_negative_slope(self):
        with pytest.raises(ValueError):
            LinearCost(-0.1)

    def test_step_cost(self):
        f = StepCost(10.0, penalty=5.0)
        assert f(10.0) == 0.0
        assert f(10.1) == 5.0

    def test_zero_cost(self):
        f = ZeroCost()
        assert f(1e9) == 0.0
        assert not f.violates(1e9)

    def test_piecewise_interpolates(self):
        f = PiecewiseLinearCost([(0.0, 0.0), (10.0, 1.0), (20.0, 3.0)])
        assert f(5.0) == pytest.approx(0.5)
        assert f(15.0) == pytest.approx(2.0)

    def test_piecewise_extends_final_slope(self):
        f = PiecewiseLinearCost([(0.0, 0.0), (10.0, 1.0)])
        assert f(20.0) == pytest.approx(2.0)

    def test_piecewise_rejects_decreasing_cost(self):
        with pytest.raises(ValueError):
            PiecewiseLinearCost([(0.0, 1.0), (10.0, 0.5)])

    def test_piecewise_rejects_nonzero_first_delay(self):
        with pytest.raises(ValueError):
            PiecewiseLinearCost([(1.0, 0.0), (10.0, 1.0)])

    def test_piecewise_rejects_single_point(self):
        with pytest.raises(ValueError):
            PiecewiseLinearCost([(0.0, 0.0)])


@pytest.mark.parametrize("cls", ALL_DEADLINE_COSTS)
class TestDeadlineValidation:
    def test_rejects_zero_deadline(self, cls):
        with pytest.raises(ValueError):
            cls(0.0)

    def test_rejects_negative_deadline(self, cls):
        with pytest.raises(ValueError):
            cls(-5.0)

    def test_violates(self, cls):
        f = cls(30.0)
        assert not f.violates(30.0)
        assert f.violates(30.1)


@given(
    deadline=st.floats(min_value=1.0, max_value=1e4),
    d1=st.floats(min_value=0.0, max_value=1e5),
    d2=st.floats(min_value=0.0, max_value=1e5),
)
@pytest.mark.parametrize("cls", ALL_DEADLINE_COSTS)
def test_cost_functions_monotone_nonnegative(cls, deadline, d1, d2):
    """Every profile is non-negative and non-decreasing in delay."""
    f = cls(deadline)
    lo, hi = sorted((d1, d2))
    assert f(lo) >= 0.0
    assert f(hi) >= f(lo) - 1e-12


@given(deadline=st.floats(min_value=1.0, max_value=1e4))
@pytest.mark.parametrize("cls", ALL_DEADLINE_COSTS)
def test_cost_functions_start_at_zero(cls, deadline):
    assert cls(deadline)(0.0) == 0.0
