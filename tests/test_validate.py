"""Unit tests for the schedule invariant validator."""

import pytest

from repro.baselines.etrain import ETrainStrategy
from repro.baselines.immediate import ImmediateStrategy
from repro.core.packet import Heartbeat, TransmissionRecord
from repro.core.profiles import weibo_profile
from repro.core.scheduler import SchedulerConfig
from repro.heartbeat.apps import make_generator
from repro.radio.energy import EnergyBreakdown
from repro.sim.engine import Simulation
from repro.sim.results import SimulationResult
from repro.sim.validate import InvalidScheduleError, assert_valid, validate_result

from tests.conftest import make_packet


def fake_result(records=(), packets=(), heartbeats=(), energy=None):
    return SimulationResult(
        strategy_name="fake",
        horizon=100.0,
        records=list(records),
        packets=list(packets),
        heartbeats=list(heartbeats),
        energy=energy or EnergyBreakdown(transmission=1.0, tail=1.0),
    )


def rec(start, duration=1.0, kind="data", packet_ids=()):
    return TransmissionRecord(
        start=start, duration=duration, size_bytes=100, kind=kind,
        packet_ids=tuple(packet_ids),
    )


class TestDetectsViolations:
    def test_overlapping_bursts(self):
        result = fake_result(records=[rec(0.0, 5.0), rec(3.0, 1.0)])
        assert any("overlaps" in v for v in validate_result(result))

    def test_out_of_order_bursts(self):
        result = fake_result(records=[rec(10.0, 0.5), rec(1.0, 0.5)])
        assert any("out of order" in v or "overlaps" in v for v in validate_result(result))

    def test_causality_violation(self):
        p = make_packet(arrival=50.0)
        p.scheduled_time = 10.0
        result = fake_result(
            packets=[p], records=[rec(10.0, packet_ids=(p.packet_id,))]
        )
        assert any("before arrival" in v for v in validate_result(result))

    def test_unscheduled_packet(self):
        p = make_packet()
        result = fake_result(packets=[p])
        assert any("never scheduled" in v for v in validate_result(result))

    def test_packet_carried_twice(self):
        p = make_packet(arrival=0.0)
        p.scheduled_time = 1.0
        result = fake_result(
            packets=[p],
            records=[
                rec(1.0, packet_ids=(p.packet_id,)),
                rec(5.0, packet_ids=(p.packet_id,)),
            ],
        )
        assert any("carried by 2" in v for v in validate_result(result))

    def test_missing_heartbeat_carrier(self):
        hb = Heartbeat(app_id="qq", seq=0, time=10.0, size_bytes=378)
        result = fake_result(heartbeats=[hb])
        assert any("carrier bursts" in v for v in validate_result(result))

    def test_early_heartbeat(self):
        hb = Heartbeat(app_id="qq", seq=0, time=10.0, size_bytes=378)
        result = fake_result(
            heartbeats=[hb], records=[rec(5.0, kind="heartbeat")]
        )
        assert any("departs before" in v for v in validate_result(result))

    def test_assert_valid_raises(self):
        p = make_packet()
        with pytest.raises(InvalidScheduleError):
            assert_valid(fake_result(packets=[p]))


class TestRealRunsAreClean:
    @pytest.mark.parametrize(
        "strategy_factory",
        [
            ImmediateStrategy,
            lambda: ETrainStrategy([weibo_profile()], SchedulerConfig(theta=0.5)),
        ],
    )
    def test_simulation_output_validates(self, strategy_factory):
        packets = [make_packet(arrival=float(i * 13 + 2)) for i in range(30)]
        sim = Simulation(
            strategy_factory(),
            [make_generator("qq"), make_generator("wechat", 97.0)],
            packets,
            horizon=600.0,
        )
        assert_valid(sim.run())


class TestDayLongTolerances:
    """Regression for the absolute-epsilon bug: at day scale (t ~ 86 400 s)
    float64 rounding routinely exceeds 1e-9 *absolute* while being far
    below 1e-9 *relative*; the validator must accept the former noise and
    still flag genuine violations of the same magnitude class."""

    def test_last_bit_rounding_at_day_scale_is_not_a_violation(self):
        a = rec(86_400.0, duration=10.0)
        # Burst b starts 1e-8 s "inside" a's end — pure accumulated
        # rounding at this magnitude (one ulp is ~1.5e-11), yet more
        # than the old absolute 1e-9 epsilon tolerated.
        b = rec(86_410.0 - 1e-8, duration=1.0)
        violations = validate_result(fake_result(records=[a, b]))
        assert not any("overlaps" in v for v in violations)

    def test_real_overlap_at_day_scale_is_still_flagged(self):
        a = rec(86_400.0, duration=10.0)
        b = rec(86_409.0, duration=1.0)  # a full second inside burst a
        violations = validate_result(fake_result(records=[a, b]))
        assert any("overlaps" in v for v in violations)

    def test_causality_rounding_at_day_scale_is_not_a_violation(self):
        p = make_packet(arrival=86_400.0)
        p.scheduled_time = 86_400.0 - 1e-8
        violations = validate_result(
            fake_result(packets=[p], records=[rec(86_400.0, packet_ids=(p.packet_id,))])
        )
        assert not any("before arrival" in v for v in violations)

    def test_real_causality_violation_at_day_scale_is_still_flagged(self):
        p = make_packet(arrival=86_400.0)
        p.scheduled_time = 86_399.0
        violations = validate_result(
            fake_result(packets=[p], records=[rec(86_399.0, packet_ids=(p.packet_id,))])
        )
        assert any("before arrival" in v for v in violations)

    def test_heartbeat_rounding_at_day_scale_is_not_a_violation(self):
        from repro.core.packet import Heartbeat

        hb = Heartbeat(app_id="qq", seq=0, time=86_400.0, size_bytes=378)
        violations = validate_result(
            fake_result(
                heartbeats=[hb],
                records=[rec(86_400.0 - 1e-8, kind="heartbeat")],
            )
        )
        assert not any("departs before" in v for v in violations)

    def test_day_long_simulations_validate_clean(self):
        """End-to-end regression: a full day of simulated time, every
        strategy — the workload that exposed the absolute-epsilon bug."""
        from repro.sim.engine import Simulation
        from repro.sim.parallel import ScenarioSpec, StrategySpec

        scenario = ScenarioSpec(seed=0, horizon=86_400.0).build()
        for name, params in (
            ("immediate", {}),
            ("etrain", {"theta": 1.0}),
        ):
            strategy = StrategySpec.make(name, **params).build(scenario)
            result = Simulation(
                strategy,
                scenario.train_generators,
                scenario.fresh_packets(),
                power_model=scenario.power_model,
                bandwidth=scenario.bandwidth,
                horizon=scenario.horizon,
                slot=scenario.slot,
            ).run()
            assert_valid(result)  # raises on any invariant violation
