"""Unit tests for the schedule invariant validator."""

import pytest

from repro.baselines.etrain import ETrainStrategy
from repro.baselines.immediate import ImmediateStrategy
from repro.core.packet import Heartbeat, TransmissionRecord
from repro.core.profiles import weibo_profile
from repro.core.scheduler import SchedulerConfig
from repro.heartbeat.apps import make_generator
from repro.radio.energy import EnergyBreakdown
from repro.sim.engine import Simulation
from repro.sim.results import SimulationResult
from repro.sim.validate import InvalidScheduleError, assert_valid, validate_result

from tests.conftest import make_packet


def fake_result(records=(), packets=(), heartbeats=(), energy=None):
    return SimulationResult(
        strategy_name="fake",
        horizon=100.0,
        records=list(records),
        packets=list(packets),
        heartbeats=list(heartbeats),
        energy=energy or EnergyBreakdown(transmission=1.0, tail=1.0),
    )


def rec(start, duration=1.0, kind="data", packet_ids=()):
    return TransmissionRecord(
        start=start, duration=duration, size_bytes=100, kind=kind,
        packet_ids=tuple(packet_ids),
    )


class TestDetectsViolations:
    def test_overlapping_bursts(self):
        result = fake_result(records=[rec(0.0, 5.0), rec(3.0, 1.0)])
        assert any("overlaps" in v for v in validate_result(result))

    def test_out_of_order_bursts(self):
        result = fake_result(records=[rec(10.0, 0.5), rec(1.0, 0.5)])
        assert any("out of order" in v or "overlaps" in v for v in validate_result(result))

    def test_causality_violation(self):
        p = make_packet(arrival=50.0)
        p.scheduled_time = 10.0
        result = fake_result(
            packets=[p], records=[rec(10.0, packet_ids=(p.packet_id,))]
        )
        assert any("before arrival" in v for v in validate_result(result))

    def test_unscheduled_packet(self):
        p = make_packet()
        result = fake_result(packets=[p])
        assert any("never scheduled" in v for v in validate_result(result))

    def test_packet_carried_twice(self):
        p = make_packet(arrival=0.0)
        p.scheduled_time = 1.0
        result = fake_result(
            packets=[p],
            records=[
                rec(1.0, packet_ids=(p.packet_id,)),
                rec(5.0, packet_ids=(p.packet_id,)),
            ],
        )
        assert any("carried by 2" in v for v in validate_result(result))

    def test_missing_heartbeat_carrier(self):
        hb = Heartbeat(app_id="qq", seq=0, time=10.0, size_bytes=378)
        result = fake_result(heartbeats=[hb])
        assert any("carrier bursts" in v for v in validate_result(result))

    def test_early_heartbeat(self):
        hb = Heartbeat(app_id="qq", seq=0, time=10.0, size_bytes=378)
        result = fake_result(
            heartbeats=[hb], records=[rec(5.0, kind="heartbeat")]
        )
        assert any("departs before" in v for v in validate_result(result))

    def test_assert_valid_raises(self):
        p = make_packet()
        with pytest.raises(InvalidScheduleError):
            assert_valid(fake_result(packets=[p]))


class TestRealRunsAreClean:
    @pytest.mark.parametrize(
        "strategy_factory",
        [
            ImmediateStrategy,
            lambda: ETrainStrategy([weibo_profile()], SchedulerConfig(theta=0.5)),
        ],
    )
    def test_simulation_output_validates(self, strategy_factory):
        packets = [make_packet(arrival=float(i * 13 + 2)) for i in range(30)]
        sim = Simulation(
            strategy_factory(),
            [make_generator("qq"), make_generator("wechat", 97.0)],
            packets,
            horizon=600.0,
        )
        assert_valid(sim.run())
