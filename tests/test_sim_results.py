"""Unit tests for simulation results and metrics."""

import pytest

from repro.core.packet import Heartbeat, TransmissionRecord
from repro.radio.energy import EnergyBreakdown
from repro.sim.results import AppStats, SimulationResult

from tests.conftest import make_packet


def result(packets=(), records=(), flushed=0):
    return SimulationResult(
        strategy_name="test",
        horizon=100.0,
        records=list(records),
        packets=list(packets),
        heartbeats=[],
        energy=EnergyBreakdown(transmission=1.0, tail=9.0),
        flushed_packets=flushed,
    )


def scheduled_packet(app="weibo", arrival=0.0, scheduled=10.0, deadline=30.0):
    p = make_packet(app_id=app, arrival=arrival, deadline=deadline)
    p.scheduled_time = scheduled
    return p


class TestMetrics:
    def test_total_and_tail_energy(self):
        r = result()
        assert r.total_energy == 10.0
        assert r.tail_energy == 9.0

    def test_normalized_delay(self):
        r = result([scheduled_packet(scheduled=10.0), scheduled_packet(scheduled=20.0)])
        assert r.normalized_delay == pytest.approx(15.0)

    def test_normalized_delay_empty(self):
        assert result().normalized_delay == 0.0

    def test_unscheduled_excluded_from_delay(self):
        r = result([scheduled_packet(scheduled=10.0), make_packet()])
        assert r.normalized_delay == pytest.approx(10.0)

    def test_violation_ratio(self):
        r = result(
            [
                scheduled_packet(scheduled=10.0, deadline=30.0),
                scheduled_packet(scheduled=50.0, deadline=30.0),
            ]
        )
        assert r.deadline_violation_ratio == pytest.approx(0.5)

    def test_piggyback_ratio(self):
        p1 = scheduled_packet()
        p2 = scheduled_packet()
        records = [
            TransmissionRecord(
                start=10.0,
                duration=0.1,
                size_bytes=100,
                kind="piggyback",
                packet_ids=(p1.packet_id,),
            )
        ]
        r = result([p1, p2], records)
        assert r.piggyback_ratio == pytest.approx(0.5)

    def test_summary_keys(self):
        summary = result().summary()
        assert "total_energy_j" in summary
        assert "deadline_violation_ratio" in summary


class TestMetricsCache:
    """Derived metrics come from one pass, computed once."""

    def test_repeated_summary_does_not_rescan(self):
        p1 = scheduled_packet()
        p2 = scheduled_packet()
        records = [
            TransmissionRecord(
                start=10.0,
                duration=0.1,
                size_bytes=100,
                kind="piggyback",
                packet_ids=(p1.packet_id,),
            )
        ]
        r = result([p1, p2], records)
        first = r.summary()
        # Poison the underlying lists: a re-scan would now change every
        # packet/record-derived metric (or crash on the bogus entries).
        r.packets.append(scheduled_packet(scheduled=90.0, deadline=1.0))
        r.packets.append(object())
        r.records.append(object())
        assert r.summary() == first
        assert r.piggyback_ratio == first["piggyback_ratio"]
        assert r.normalized_delay == first["normalized_delay_s"]
        assert r.burst_count == int(first["bursts"])
        assert "weibo" in r.app_stats()

    def test_app_stats_returns_copy(self):
        r = result([scheduled_packet()])
        stats = r.app_stats()
        stats.clear()
        assert "weibo" in r.app_stats()


class TestAppStats:
    def test_per_app_breakdown(self):
        packets = [
            scheduled_packet(app="weibo", scheduled=10.0),
            scheduled_packet(app="weibo", scheduled=40.0),
            scheduled_packet(app="mail", scheduled=5.0, deadline=60.0),
        ]
        stats = result(packets).app_stats()
        assert stats["weibo"].packets == 2
        assert stats["weibo"].mean_delay == pytest.approx(25.0)
        assert stats["weibo"].max_delay == pytest.approx(40.0)
        assert stats["weibo"].violations == 1
        assert stats["weibo"].violation_ratio == pytest.approx(0.5)
        assert stats["mail"].violations == 0

    def test_appstats_empty_ratio(self):
        s = AppStats(app_id="x", packets=0, mean_delay=0, max_delay=0, violations=0)
        assert s.violation_ratio == 0.0
