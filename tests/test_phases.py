"""Unit + property tests for heartbeat phase analysis/optimisation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.heartbeat.phases import (
    expected_wait,
    merged_gap_stats,
    optimize_phases,
)


class TestGapStats:
    def test_single_train_uniform_gaps(self):
        stats = merged_gap_stats([300.0], [0.0])
        assert stats.mean == pytest.approx(300.0)
        assert stats.stdev == pytest.approx(0.0, abs=1e-9)
        # Uniform gaps: expected wait = gap / 2.
        assert stats.expected_wait == pytest.approx(150.0)

    def test_aligned_trains_high_wait(self):
        """Same cycle, same phase: merged process looks like one train."""
        aligned = merged_gap_stats([300.0, 300.0], [0.0, 0.0])
        spread = merged_gap_stats([300.0, 300.0], [0.0, 150.0])
        assert spread.expected_wait < aligned.expected_wait
        assert spread.expected_wait == pytest.approx(75.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            merged_gap_stats([], [])
        with pytest.raises(ValueError):
            merged_gap_stats([300.0], [0.0, 1.0])


class TestExpectedWait:
    def test_length_biased_formula(self):
        """Two trains at 300 s, offset 100 s: gaps alternate 100/200."""
        wait = expected_wait([300.0, 300.0], [0.0, 100.0])
        # E[gap²]/(2 E[gap]) = (100² + 200²)/2 / (2 · 150) = 83.33; the
        # finite horizon leaves an odd gap count, hence the tolerance.
        assert wait == pytest.approx((100**2 + 200**2) / 2 / 300.0, rel=0.02)

    def test_paper_trains_default_phases_reasonable(self):
        wait = expected_wait([300.0, 270.0, 240.0], [0.0, 97.0, 194.0])
        assert 30.0 < wait < 80.0


class TestOptimize:
    def test_wait_objective_spreads_trains(self):
        phases, value = optimize_phases([300.0, 300.0], objective="wait", grid=6)
        # Optimal offset for two equal trains is half a cycle: wait 75 s.
        assert value == pytest.approx(75.0)
        assert phases[0] == 0.0
        assert phases[1] == pytest.approx(150.0)

    def test_align_objective_merges_trains(self):
        phases, value = optimize_phases([300.0, 300.0], objective="align", grid=6)
        assert phases[1] == pytest.approx(0.0)

    def test_optimized_wait_never_worse_than_zero_phases(self):
        cycles = [300.0, 270.0, 240.0]
        _, optimized = optimize_phases(cycles, objective="wait", grid=6)
        naive = expected_wait(cycles, [0.0, 0.0, 0.0])
        assert optimized <= naive + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            optimize_phases([300.0], objective="nope")
        with pytest.raises(ValueError):
            optimize_phases([], objective="wait")
        with pytest.raises(ValueError):
            optimize_phases([300.0], grid=0)


@given(
    cycle=st.floats(min_value=60.0, max_value=600.0),
    offset_frac=st.floats(min_value=0.0, max_value=0.99),
)
@settings(max_examples=40, deadline=None)
def test_wait_bounded_by_largest_gap(cycle, offset_frac):
    """Expected wait never exceeds the longest merged gap."""
    phases = [0.0, cycle * offset_frac]
    stats = merged_gap_stats([cycle, cycle], phases)
    assert stats.expected_wait <= stats.maximum + 1e-9
    assert stats.expected_wait >= stats.mean / 2 - 1e-9
