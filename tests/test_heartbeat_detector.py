"""Unit + property tests for offline heartbeat-cycle detection."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.heartbeat.detector import (
    CycleStage,
    detect_cycle,
    detect_cycle_stages,
    is_doubling_pattern,
)
from repro.heartbeat.generators import DoublingCycleGenerator


class TestDetectCycle:
    def test_perfect_cycle(self):
        times = [i * 270.0 for i in range(10)]
        assert detect_cycle(times) == pytest.approx(270.0)

    def test_too_few_samples(self):
        assert detect_cycle([0.0, 270.0]) is None

    def test_tolerates_small_jitter(self):
        times = [0.0, 301.0, 599.0, 902.0, 1199.0]
        cycle = detect_cycle(times)
        assert cycle is not None
        assert cycle == pytest.approx(300.0, rel=0.02)

    def test_folds_missed_beats(self):
        times = [0.0, 300.0, 900.0, 1200.0, 1500.0, 1800.0]
        assert detect_cycle(times) == pytest.approx(300.0)

    def test_rejects_doubling_stream(self):
        gen = DoublingCycleGenerator()
        times = [h.time for h in gen.heartbeats_until(3000.0)]
        assert detect_cycle(times) is None

    def test_rejects_nonincreasing_times(self):
        with pytest.raises(ValueError):
            detect_cycle([0.0, 10.0, 10.0, 20.0])


class TestDetectStages:
    def test_single_stage_for_fixed_cycle(self):
        times = [i * 240.0 for i in range(8)]
        stages = detect_cycle_stages(times)
        assert len(stages) == 1
        assert stages[0].cycle == pytest.approx(240.0)
        assert stages[0].count == 7

    def test_doubling_staircase(self):
        gen = DoublingCycleGenerator()
        times = [h.time for h in gen.heartbeats_until(4000.0)]
        stages = detect_cycle_stages(times)
        cycles = [s.cycle for s in stages]
        assert cycles[0] == pytest.approx(60.0)
        assert cycles[1] == pytest.approx(120.0)
        assert cycles[2] == pytest.approx(240.0)

    def test_empty_and_single(self):
        assert detect_cycle_stages([]) == []
        assert detect_cycle_stages([5.0]) == []

    def test_stage_validation(self):
        with pytest.raises(ValueError):
            CycleStage(cycle=0.0, count=1)
        with pytest.raises(ValueError):
            CycleStage(cycle=10.0, count=0)


class TestDoublingPattern:
    def test_detects_doubling(self):
        gen = DoublingCycleGenerator()
        times = [h.time for h in gen.heartbeats_until(4000.0)]
        assert is_doubling_pattern(detect_cycle_stages(times))

    def test_single_stage_not_doubling(self):
        assert not is_doubling_pattern([CycleStage(cycle=300.0, count=5)])

    def test_non_doubling_ratio(self):
        stages = [CycleStage(60.0, 6), CycleStage(90.0, 6)]
        assert not is_doubling_pattern(stages)


@given(
    cycle=st.floats(min_value=10.0, max_value=2000.0),
    n=st.integers(min_value=3, max_value=30),
    phase=st.floats(min_value=0.0, max_value=100.0),
)
@settings(max_examples=80, deadline=None)
def test_detector_recovers_any_fixed_cycle(cycle, n, phase):
    """Round-trip: generator cycle → capture times → detected cycle."""
    times = [phase + i * cycle for i in range(n)]
    assert detect_cycle(times) == pytest.approx(cycle, rel=1e-9)
