"""Shape tests for the sensitivity sweeps (small horizons)."""

import pytest

from repro.experiments.sensitivity import (
    sweep_heartbeat_cycle,
    sweep_heartbeat_jitter,
    sweep_tail_length,
)


class TestCycleSweep:
    def test_delay_grows_with_cycle(self):
        rows = sweep_heartbeat_cycle((60.0, 600.0), horizon=1800.0)
        assert rows[1].etrain_delay_s > rows[0].etrain_delay_s

    def test_saving_pct_grows_with_cycle(self):
        """Calmer trains: fewer heartbeat tails, so relative saving vs
        the (heartbeat-inclusive) baseline rises."""
        rows = sweep_heartbeat_cycle((60.0, 600.0), horizon=1800.0)
        assert rows[1].saving_pct > rows[0].saving_pct

    def test_savings_positive_everywhere(self):
        for r in sweep_heartbeat_cycle((60.0, 300.0, 900.0), horizon=1800.0):
            assert r.saving_j > 0


class TestTailSweep:
    def test_baseline_energy_grows_with_tail(self):
        rows = sweep_tail_length((0.5, 1.0, 2.0), horizon=1800.0)
        energies = [r.baseline_j for r in rows]
        assert energies == sorted(energies)

    def test_absolute_saving_grows_up_to_measured_tail(self):
        rows = sweep_tail_length((0.25, 0.5, 1.0), horizon=1800.0)
        savings = [r.saving_j for r in rows]
        assert savings == sorted(savings)

    def test_savings_positive_everywhere(self):
        for r in sweep_tail_length((0.25, 1.0, 2.0), horizon=1800.0):
            assert r.saving_j > 0


class TestJitterSweep:
    def test_savings_robust_to_jitter(self):
        """The hook-driven design reacts to observed departures, so even
        60 s of jitter must not halve the savings."""
        rows = sweep_heartbeat_jitter((0.0, 60.0), horizon=1800.0)
        clean, jittered = rows
        assert jittered.saving_j > 0.5 * clean.saving_j

    def test_zero_jitter_matches_default_scenario(self):
        rows = sweep_heartbeat_jitter((0.0,), horizon=1800.0)
        assert rows[0].knob == 0.0
        assert rows[0].saving_j > 0
