"""Golden-metrics snapshot for the paper's reference setup.

``tests/data/golden_metrics.json`` pins the full ``summary()`` dict of
``default_scenario(seed=0)`` (7200 s, Wuhan trace, Galaxy S4 power)
under the baseline, the paper's scheduling algorithms, and the
literature-derived families (lazy-circuit, harvesting-lazy,
common-deadline, AoI-download), along with each job's content hash.  Any engine, workload, radio or seeding change that
shifts these numbers — however slightly — fails here and must either be
a deliberate, reviewed re-baselining of the snapshot or a bug.

Regenerate after an intentional change with::

    PYTHONPATH=src python -c "
    import json
    from repro.sim.parallel import JobSpec, ScenarioSpec, run_job
    from tests.test_golden_metrics import GOLDEN_PATH, GOLDEN_STRATEGIES, GOLDEN_SCENARIO
    golden = {
        label: {'job_hash': (job := JobSpec(s, GOLDEN_SCENARIO)).content_hash(),
                'summary': run_job(job)}
        for label, s in GOLDEN_STRATEGIES.items()}
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2, sort_keys=True))"
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.sim.parallel import JobSpec, ScenarioSpec, StrategySpec, run_job

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_metrics.json"

GOLDEN_STRATEGIES = {
    "immediate": StrategySpec.make("immediate"),
    "etrain_theta0.2": StrategySpec.make("etrain", theta=0.2),
    "peres_omega0.5": StrategySpec.make("peres", omega=0.5),
    "etime_v200000": StrategySpec.make("etime", v=200_000.0),
    "lazy_circuit_b60000": StrategySpec.make(
        "lazy_circuit", target_batch_bytes=60_000
    ),
    "harvest_lazy_w0.85": StrategySpec.make("harvest_lazy", watermark=0.85),
    "common_deadline_r300": StrategySpec.make("common_deadline", round_s=300.0),
    "aoi_download_t120": StrategySpec.make("aoi_download", threshold_s=120.0),
}

GOLDEN_SCENARIO = ScenarioSpec(seed=0, horizon=7200.0)


def _golden():
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


def test_snapshot_covers_all_reference_strategies():
    assert sorted(_golden()) == sorted(GOLDEN_STRATEGIES)


@pytest.mark.parametrize("label", sorted(GOLDEN_STRATEGIES))
def test_summary_matches_golden_snapshot(label):
    job = JobSpec(GOLDEN_STRATEGIES[label], GOLDEN_SCENARIO)
    expected = _golden()[label]

    # The job-spec hash pins the *inputs*: a hash change means the cache
    # key space moved and old caches silently miss.
    assert job.content_hash() == expected["job_hash"]

    summary = run_job(job)
    assert sorted(summary) == sorted(expected["summary"])
    for key, value in expected["summary"].items():
        assert summary[key] == pytest.approx(value, rel=1e-9), (
            f"{label}.{key} drifted from the golden snapshot"
        )


@pytest.mark.parametrize("label", sorted(GOLDEN_STRATEGIES))
def test_dense_reference_path_matches_golden_snapshot(label):
    """The dense loop must reproduce the same snapshot as the default
    event-horizon loop — one golden file pins both engine paths."""
    from repro.sim.runner import run_strategy

    scenario = GOLDEN_SCENARIO.build()
    strategy = GOLDEN_STRATEGIES[label].build(scenario)
    summary = run_strategy(strategy, scenario, dense=True).summary()
    expected = _golden()[label]["summary"]
    assert sorted(summary) == sorted(expected)
    for key, value in expected.items():
        assert summary[key] == pytest.approx(value, rel=1e-9), (
            f"dense-path {label}.{key} drifted from the golden snapshot"
        )


def test_golden_snapshot_sanity():
    """The snapshot itself must tell the paper's story."""
    golden = {k: v["summary"] for k, v in _golden().items()}
    # eTrain saves substantially over the baseline (paper: ~40-77 %).
    assert (
        golden["etrain_theta0.2"]["total_energy_j"]
        < 0.5 * golden["immediate"]["total_energy_j"]
    )
    # The baseline serves (nearly) immediately; eTrain trades delay.
    assert golden["immediate"]["normalized_delay_s"] < 5.0
    assert golden["etrain_theta0.2"]["normalized_delay_s"] > 10.0
    # Every strategy transmits the same packet population.
    packet_counts = {s["packets"] for s in golden.values()}
    assert len(packet_counts) == 1
