"""FleetChunkSummary: streaming aggregation algebra.

The fleet runner merges thousands of chunk summaries in arbitrary
association order, serializes them across process boundaries as JSON,
and answers percentile queries from fixed-bin sketches.  These tests pin
the algebra (associativity, identity), the sketch semantics (upper-edge
percentiles, clipping), and the wire format.
"""

import json

import numpy as np
import pytest

from repro.sim.fleet.aggregate import (
    DELAY_BINS,
    ENERGY_BIN_J,
    ENERGY_BINS,
    FleetChunkSummary,
    histogram_counts,
)


def random_summary(rng):
    return FleetChunkSummary(
        devices=int(rng.integers(1, 100)),
        packets=int(rng.integers(0, 1000)),
        bursts=int(rng.integers(0, 500)),
        heartbeats=int(rng.integers(0, 400)),
        piggyback_hits=int(rng.integers(0, 300)),
        delay_sum=float(rng.uniform(0, 1e4)),
        delay_cost_sum=float(rng.uniform(0, 1e3)),
        violations=int(rng.integers(0, 50)),
        energy_total_j=float(rng.uniform(0, 1e5)),
        energy_tail_j=float(rng.uniform(0, 5e4)),
        energy_tx_j=float(rng.uniform(0, 5e4)),
        energy_hist=rng.integers(0, 20, size=ENERGY_BINS).astype(np.int64),
        delay_hist=rng.integers(0, 20, size=DELAY_BINS).astype(np.int64),
    )


def assert_equal(a: FleetChunkSummary, b: FleetChunkSummary):
    assert a.devices == b.devices
    assert a.packets == b.packets
    assert a.energy_total_j == pytest.approx(b.energy_total_j, rel=1e-12)
    assert a.delay_cost_sum == pytest.approx(b.delay_cost_sum, rel=1e-12)
    np.testing.assert_array_equal(a.energy_hist, b.energy_hist)
    np.testing.assert_array_equal(a.delay_hist, b.delay_hist)


def test_merge_associative_and_commutative():
    rng = np.random.default_rng(0)
    a, b, c = (random_summary(rng) for _ in range(3))
    assert_equal((a + b) + c, a + (b + c))
    assert_equal(a + b, b + a)


def test_merge_identity():
    rng = np.random.default_rng(1)
    a = random_summary(rng)
    assert_equal(a + FleetChunkSummary(), a)


def test_merge_all_matches_pairwise():
    rng = np.random.default_rng(2)
    parts = [random_summary(rng) for _ in range(7)]
    folded = parts[0]
    for p in parts[1:]:
        folded = folded + p
    assert_equal(FleetChunkSummary.merge_all(parts), folded)


def test_merge_does_not_mutate_inputs():
    rng = np.random.default_rng(3)
    a, b = random_summary(rng), random_summary(rng)
    a_hist = a.energy_hist.copy()
    _ = a + b
    np.testing.assert_array_equal(a.energy_hist, a_hist)


def test_histogram_counts_bins_and_clips():
    values = np.array([0.0, 0.5, 1.9, 2.0, 99.0, 1e9, -3.0])
    counts = histogram_counts(values, bin_width=2.0, n_bins=4)
    assert counts.shape == (4,)
    # bins: [0,2) [2,4) [4,6) [6,inf) — overflow and negatives clip to edges
    assert counts[0] == 4  # 0.0, 0.5, 1.9, and -3.0 clipped up
    assert counts[1] == 1  # 2.0
    assert counts[3] == 2  # 99.0 and 1e9 clipped down
    assert counts.sum() == values.size


def test_energy_percentiles_known_distribution():
    # 100 devices at exactly one bin each: bin i holds device i.
    s = FleetChunkSummary(devices=100)
    s.energy_hist[:100] = 1
    # percentile reports the upper edge of the bin where the cumulative
    # count crosses q% of the population
    assert s.energy_percentile_j(50) == pytest.approx(50 * ENERGY_BIN_J)
    assert s.energy_percentile_j(95) == pytest.approx(95 * ENERGY_BIN_J)


def test_percentile_empty_is_zero():
    assert FleetChunkSummary().energy_percentile_j(95) == 0.0
    assert FleetChunkSummary().delay_percentile_s(50) == 0.0


def test_dict_roundtrip_is_json_safe():
    rng = np.random.default_rng(4)
    a = random_summary(rng)
    wire = json.loads(json.dumps(a.to_dict()))
    assert_equal(FleetChunkSummary.from_dict(wire), a)


def test_summary_keys_and_ratios():
    s = FleetChunkSummary(
        devices=10,
        packets=100,
        bursts=40,
        heartbeats=50,
        piggyback_hits=25,
        delay_sum=200.0,
        delay_cost_sum=30.0,
        violations=5,
        energy_total_j=1000.0,
        energy_tail_j=700.0,
        energy_tx_j=300.0,
    )
    out = s.summary()
    assert out["energy_per_device_j"] == pytest.approx(100.0)
    assert out["normalized_delay_s"] == pytest.approx(2.0)
    assert out["deadline_violation_ratio"] == pytest.approx(0.05)
    assert out["piggyback_ratio"] == pytest.approx(0.25)  # hits / packets
    assert out["delay_cost_per_device"] == pytest.approx(3.0)
    for key in (
        "devices",
        "total_energy_j",
        "tail_energy_j",
        "transmission_energy_j",
        "energy_p50_j",
        "energy_p95_j",
        "delay_p50_s",
        "delay_p95_s",
        "delay_cost_total",
    ):
        assert key in out
