"""Unit tests for metrics, E-D panels and table formatting."""

import pytest

from repro.analysis.ed_panel import (
    EDCurve,
    EDPoint,
    dominates,
    interpolate_energy_at_delay,
    sweep,
)
from repro.analysis.metrics import compare_results, energy_saving, relative_saving
from repro.analysis.summarize import format_mapping, format_table
from repro.baselines.immediate import ImmediateStrategy
from repro.radio.energy import EnergyBreakdown
from repro.sim.results import SimulationResult
from repro.sim.runner import default_scenario


def fake_result(name, energy, delay=10.0):
    return SimulationResult(
        strategy_name=name,
        horizon=100.0,
        records=[],
        packets=[],
        heartbeats=[],
        energy=EnergyBreakdown(transmission=0.0, tail=energy),
    )


class TestMetrics:
    def test_energy_saving(self):
        base = fake_result("baseline", 100.0)
        cand = fake_result("etrain", 60.0)
        assert energy_saving(base, cand) == pytest.approx(40.0)
        assert relative_saving(base, cand) == pytest.approx(0.4)

    def test_relative_saving_zero_baseline(self):
        assert relative_saving(fake_result("b", 0.0), fake_result("c", 0.0)) == 0.0

    def test_compare_results(self):
        rows = compare_results(
            [fake_result("baseline", 100.0), fake_result("etrain", 75.0)]
        )
        etrain_row = next(r for r in rows if r.strategy == "etrain")
        assert etrain_row.saving_vs_baseline_j == pytest.approx(25.0)
        assert etrain_row.saving_vs_baseline_pct == pytest.approx(25.0)

    def test_compare_requires_baseline(self):
        with pytest.raises(ValueError):
            compare_results([fake_result("etrain", 10.0)])


class TestEDPanel:
    def curve(self):
        return EDCurve(
            label="x",
            points=[
                EDPoint(knob=0.0, energy_j=100.0, delay_s=10.0),
                EDPoint(knob=1.0, energy_j=80.0, delay_s=20.0),
                EDPoint(knob=2.0, energy_j=60.0, delay_s=40.0),
            ],
        )

    def test_interpolation(self):
        assert interpolate_energy_at_delay(self.curve(), 15.0) == pytest.approx(90.0)
        assert interpolate_energy_at_delay(self.curve(), 30.0) == pytest.approx(70.0)

    def test_interpolation_at_points(self):
        assert interpolate_energy_at_delay(self.curve(), 10.0) == pytest.approx(100.0)

    def test_interpolation_outside_range(self):
        assert interpolate_energy_at_delay(self.curve(), 5.0) is None
        assert interpolate_energy_at_delay(self.curve(), 50.0) is None

    def test_dominates(self):
        better = EDCurve(
            label="y",
            points=[
                EDPoint(knob=0.0, energy_j=90.0, delay_s=10.0),
                EDPoint(knob=1.0, energy_j=50.0, delay_s=40.0),
            ],
        )
        assert dominates(better, self.curve(), delays=[15.0, 25.0, 35.0])
        assert not dominates(self.curve(), better, delays=[15.0, 25.0, 35.0])

    def test_dominates_requires_overlap(self):
        far = EDCurve(label="z", points=[EDPoint(knob=0, energy_j=1, delay_s=1000.0)])
        assert not dominates(far, self.curve(), delays=[15.0])

    def test_min_max_energy(self):
        assert self.curve().min_energy == 60.0
        assert self.curve().max_energy == 100.0

    def test_sweep_runs_strategy_per_knob(self):
        scenario = default_scenario(horizon=600.0)
        curve = sweep(
            "baseline-sweep",
            scenario,
            lambda knob: ImmediateStrategy(),
            [0.0, 1.0],
        )
        assert len(curve.points) == 2
        assert curve.points[0].energy_j == pytest.approx(curve.points[1].energy_j)


class TestFormatting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.345], [10, 20.0]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "2.35" in out
        assert "---" in lines[1]

    def test_format_table_title(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_format_table_ragged_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_mapping(self):
        out = format_mapping({"alpha": 1.5, "b": 2})
        assert "alpha  1.50" in out

    def test_format_mapping_empty(self):
        assert format_mapping({}, title="t") == "t"
