"""Observability is free: instrumentation must never change results.

The tracer derives the event stream from the finished
:class:`~repro.sim.results.SimulationResult` rather than hooking the
decision loop, so an instrumented run and an uninstrumented run of the
same scenario must be *bit-identical* — same summaries, same burst
records, same packet schedule.  These tests pin that for every
registered strategy, and pin the companion claim: replaying the trace
alone (:func:`repro.obs.replay.replay_events`) reproduces the run's
summary metrics exactly, including after a JSONL round-trip.

The strategy list and the run/fingerprint helpers come from the shared
conformance table (``tests/strategy_conformance.py``); this file keeps
the full-length (2h-horizon, default-parameter) sweep while the
conformance suite covers each row's declared parameter sets.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.packet import Packet, reset_packet_ids
from repro.core.profiles import weibo_profile
from repro.obs import (
    JsonlRecorder,
    ListRecorder,
    metrics_scope,
    read_jsonl,
    replay_events,
    verify_trace,
)
from repro.obs.events import app_cost_table
from repro.obs.tracer import emit_simulation_trace
from repro.sim.engine import Simulation
from repro.sim.parallel.specs import StrategySpec
from repro.sim.runner import default_scenario

from tests.strategy_conformance import (
    ALL_STRATEGIES,
    record_fingerprint,
    run_scenario,
    schedule_fingerprint,
)

pytestmark = pytest.mark.obs

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


class TestInstrumentedRunsAreBitIdentical:
    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_summary_records_and_schedule_match(self, name):
        plain, _ = run_scenario(name, instrument=False)
        traced, events = run_scenario(name, instrument=True)
        assert traced.summary() == plain.summary()
        assert record_fingerprint(traced) == record_fingerprint(plain)
        assert schedule_fingerprint(traced) == schedule_fingerprint(plain)
        assert events, "instrumented run must have produced a trace"

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_trace_replay_is_exact(self, name):
        _, events = run_scenario(name, instrument=True)
        ok, replayed, recorded, mismatches = verify_trace(events)
        assert ok, f"{name}: replay mismatches: {mismatches}"
        # Exact equality, not approx: same keys, same doubles.
        for key, value in replayed.items():
            assert recorded[key] == value


class TestJsonlRoundTrip:
    @pytest.mark.parametrize("name", ["etrain", "immediate"])
    def test_replay_exact_after_file_round_trip(self, name, tmp_path):
        _, events = run_scenario(name, instrument=True)
        path = tmp_path / "run.jsonl"
        with JsonlRecorder(path) as recorder:
            for event in events:
                recorder.emit(event)
        ok, _, _, mismatches = verify_trace(read_jsonl(path))
        assert ok, f"{name}: mismatches after JSONL round trip: {mismatches}"

    def test_identical_runs_write_identical_bytes(self, tmp_path):
        paths = []
        for i in range(2):
            _, events = run_scenario("etrain", instrument=True)
            path = tmp_path / f"run{i}.jsonl"
            with JsonlRecorder(path) as recorder:
                for event in events:
                    recorder.emit(event)
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()


workloads = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=600.0),  # arrival
        st.integers(min_value=100, max_value=50_000),  # size
    ),
    min_size=1,
    max_size=25,
)


def build_packets(spec):
    reset_packet_ids()
    return [
        Packet(app_id="weibo", arrival_time=a, size_bytes=s, deadline=30.0)
        for a, s in sorted(spec)
    ]


def small_sim(spec, instrument):
    from repro.baselines.etrain import ETrainStrategy
    from repro.core.scheduler import SchedulerConfig
    from repro.heartbeat.apps import make_generator

    recorder = ListRecorder() if instrument else None
    sim = Simulation(
        ETrainStrategy([weibo_profile()], SchedulerConfig(theta=0.5)),
        [make_generator("qq")],
        build_packets(spec),
        horizon=700.0,
        recorder=recorder,
        trace_app_costs=app_cost_table([weibo_profile()]) if instrument else None,
    )
    return sim.run(), recorder


class TestPropertyEquivalence:
    @SETTINGS
    @given(spec=workloads)
    def test_random_workloads_unchanged_and_replayable(self, spec):
        plain, _ = small_sim(spec, instrument=False)
        traced, recorder = small_sim(spec, instrument=True)
        assert traced.summary() == plain.summary()
        assert record_fingerprint(traced) == record_fingerprint(plain)
        ok, _, _, mismatches = verify_trace(recorder.events)
        assert ok, f"replay mismatches: {mismatches}"

    @SETTINGS
    @given(spec=workloads)
    def test_replay_summary_matches_result(self, spec):
        """Replay agrees with the result object itself, not just the
        run_end event the tracer wrote."""
        result, recorder = small_sim(spec, instrument=True)
        replayed = replay_events(recorder.events)
        summary = result.summary()
        for key in (
            "total_energy_j",
            "tail_energy_j",
            "transmission_energy_j",
            "normalized_delay_s",
            "deadline_violation_ratio",
            "piggyback_ratio",
            "bursts",
            "packets",
        ):
            assert replayed[key] == summary[key]


class TestTracerIsPostRun:
    def test_trace_emission_is_repeatable(self):
        """The tracer reads the result without consuming it: emitting
        twice yields the same events twice."""
        scenario = default_scenario(seed=0, horizon=3600.0)
        sim = Simulation(
            StrategySpec.make("etrain").build(scenario),
            scenario.train_generators,
            scenario.fresh_packets(),
            power_model=scenario.power_model,
            bandwidth=scenario.bandwidth,
            horizon=scenario.horizon,
            slot=scenario.slot,
        )
        result = sim.run()
        first, second = ListRecorder(), ListRecorder()
        costs = app_cost_table(scenario.profiles)
        for rec in (first, second):
            emit_simulation_trace(
                rec,
                result,
                power_model=scenario.power_model,
                slot=scenario.slot,
                app_costs=costs,
            )
        assert first.events == second.events
