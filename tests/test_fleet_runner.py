"""FleetSpec / FleetChunkSpec / run_fleet: executor integration.

Fleet chunks ride the generic experiment executor as just another job
type (duck-typed ``run_in_worker``), so everything the executor promises
— caching keyed on content hashes, worker-pool equivalence, progress —
must hold for them too.  Plus the transparent scalar fallback for
strategies the vectorized engine does not cover (peres etc.).
"""

import dataclasses
import json

import pytest

from repro.sim.fleet.aggregate import FleetChunkSummary
from repro.sim.fleet.channel import ChannelTable, SharedChannel
from repro.sim.fleet.runner import FleetRunResult, peak_rss_bytes, run_fleet
from repro.sim.fleet.spec import FleetChunkSpec, FleetSpec, fleet_supports
from repro.sim.parallel.executor import ExperimentExecutor
from repro.sim.parallel.specs import run_job

SMALL = dict(horizon=300.0, seed=0)


def small_spec(devices=6, chunk_size=3, strategy="etrain", **kw):
    return FleetSpec.make(
        devices, strategy, chunk_size=chunk_size, **{**SMALL, **kw}
    )


# ---------------------------------------------------------------------------
# fleet_supports
# ---------------------------------------------------------------------------


def test_fleet_supports_matrix():
    assert fleet_supports("etrain")
    assert fleet_supports("immediate")
    assert fleet_supports("periodic", {"period": 30.0})
    assert fleet_supports("tailender")
    # registry-vectorized baselines (ISSUE 7)
    assert fleet_supports("peres")
    assert fleet_supports("etime")
    assert fleet_supports("adaptive", {"target_delay": 30.0})
    assert fleet_supports("fixed_batch")
    # the last scalar-only strategy gained a kernel (ISSUE 8)
    assert fleet_supports("channel_aware")
    assert fleet_supports("channel_aware", {"quality_threshold": 1.5})
    # engine assumptions
    assert not fleet_supports("etrain", {"k": 3})
    assert not fleet_supports("etrain", {"slot": 0.5})
    assert not fleet_supports("etrain", power_model="galaxy_s4_fast_dormancy")
    assert not fleet_supports("etrain", bandwidth="nope")


# ---------------------------------------------------------------------------
# Spec hashing / shape
# ---------------------------------------------------------------------------


def test_chunk_specs_cover_fleet_exactly():
    spec = small_spec(devices=10, chunk_size=4)
    chunks = spec.chunk_specs()
    assert spec.n_chunks == 3
    assert [c.n_devices for c in chunks] == [4, 4, 2]
    assert [c.device_offset for c in chunks] == [0, 4, 8]
    assert all(c.strategy == "etrain" for c in chunks)
    assert chunks[0].tag == "etrain fleet chunk 1/3"


def test_chunk_hash_ignores_tag_and_channel():
    spec = small_spec()
    a = spec.chunk_specs()[0]
    b = dataclasses.replace(a, tag="renamed")
    table = ChannelTable.from_model(spec.bandwidth_model(), spec.horizon)
    shared = SharedChannel.publish(table)
    try:
        c = dataclasses.replace(a, channel=shared.handle)
        assert a.content_hash() == b.content_hash() == c.content_hash()
    finally:
        shared.close()
        shared.unlink()


def test_chunk_hash_sensitive_to_scenario():
    base = small_spec().chunk_specs()[0]
    for change in (
        {"seed": 1},
        {"horizon": 600.0},
        {"device_offset": 3},
        {"n_devices": 5},
        {"strategy": "immediate"},
        {"params": (("theta", 0.5),)},
        {"phase_mode": "random"},
    ):
        assert base.content_hash() != dataclasses.replace(
            base, **change
        ).content_hash(), change


def test_chunk_to_dict_is_json_safe_and_excludes_channel():
    chunk = small_spec().chunk_specs()[0]
    doc = json.loads(json.dumps(chunk.to_dict()))
    assert "channel" not in doc
    assert doc["n_devices"] == chunk.n_devices


def test_spec_validation():
    with pytest.raises(ValueError):
        FleetSpec.make(0)
    with pytest.raises(ValueError):
        FleetSpec.make(4, chunk_size=0)
    with pytest.raises(KeyError):
        FleetSpec.make(4, "not_a_strategy")
    with pytest.raises(ValueError):
        FleetSpec.make(4, phase_mode="sideways")


# ---------------------------------------------------------------------------
# run_fleet end to end
# ---------------------------------------------------------------------------


def test_run_fleet_serial_vectorized():
    result = run_fleet(small_spec())
    assert isinstance(result, FleetRunResult)
    assert result.vectorized
    assert result.chunks == 2
    assert result.summary.devices == 6
    assert result.summary.energy_total_j > 0
    assert result.devices_per_sec > 0
    assert "vectorized" in result.describe()


def test_run_fleet_chunking_invariant():
    whole = run_fleet(small_spec(devices=6, chunk_size=6)).summary
    split = run_fleet(small_spec(devices=6, chunk_size=2)).summary
    assert whole.devices == split.devices
    assert whole.packets == split.packets
    assert whole.energy_total_j == pytest.approx(
        split.energy_total_j, rel=1e-9
    )


def test_run_fleet_workers_match_serial():
    spec = small_spec(devices=4, chunk_size=2)
    serial = run_fleet(spec).summary
    pooled = run_fleet(spec, workers=2).summary
    assert pooled.devices == serial.devices
    assert pooled.energy_total_j == pytest.approx(serial.energy_total_j, rel=1e-12)
    assert pooled.delay_cost_sum == pytest.approx(serial.delay_cost_sum, rel=1e-12)


def test_run_fleet_caches_chunks(tmp_path):
    spec = small_spec()
    cold = run_fleet(spec, cache_dir=tmp_path / "cache")
    warm = run_fleet(spec, cache_dir=tmp_path / "cache")
    assert cold.cached_chunks == 0
    assert warm.cached_chunks == warm.chunks == 2
    assert warm.summary.energy_total_j == pytest.approx(
        cold.summary.energy_total_j, rel=1e-12
    )


def test_run_fleet_peres_vectorized():
    """peres moved off the scalar fallback when it gained a kernel."""
    result = run_fleet(small_spec(devices=2, chunk_size=2, strategy="peres"))
    assert result.vectorized
    assert result.summary.devices == 2
    assert result.summary.energy_total_j > 0


def test_run_fleet_channel_aware_vectorized():
    """channel_aware moved off the scalar fallback when it gained a
    kernel (ISSUE 8) — the last scalar-only strategy."""
    result = run_fleet(small_spec(devices=2, chunk_size=2, strategy="channel_aware"))
    assert result.vectorized
    assert result.summary.devices == 2
    assert result.summary.energy_total_j > 0


def test_run_fleet_scalar_fallback_visibility():
    """Configurations the engine can't cover (etrain with a k-limited
    drain) still run — and announce themselves via the
    fleet.scalar_fallback counter and a fleet_fallback trace event."""

    class Recorder:
        def __init__(self):
            self.events = []

        def emit(self, event):
            self.events.append(dict(event))

    recorder = Recorder()
    result = run_fleet(
        small_spec(devices=2, chunk_size=2, strategy="etrain", params={"k": 2}),
        recorder=recorder,
    )
    assert not result.vectorized
    assert result.summary.devices == 2
    assert result.metrics["fleet.scalar_fallback"]["value"] == result.chunks
    fallback = [e for e in recorder.events if e["ev"] == "fleet_fallback"]
    assert len(fallback) == 1
    assert fallback[0]["strategy"] == "etrain"
    assert fallback[0]["chunks"] == result.chunks


def test_chunk_spec_through_generic_run_job():
    """`run_job` dispatches any spec carrying run_in_worker — the hook the
    executor uses — without importing the fleet package itself."""
    chunk = small_spec(devices=2, chunk_size=2).chunk_specs()[0]
    summary = run_job(chunk)
    merged = FleetChunkSummary.from_dict(summary)
    assert merged.devices == 2


def test_executor_runs_fleet_chunks_directly():
    chunks = small_spec(devices=4, chunk_size=2).chunk_specs()
    results = ExperimentExecutor().run(chunks)
    assert len(results) == 2
    total = FleetChunkSummary.merge_all(
        [FleetChunkSummary.from_dict(r.summary) for r in results]
    )
    assert total.devices == 4


def test_peak_rss_positive():
    assert peak_rss_bytes() > 0
    assert peak_rss_bytes(include_children=False) > 0
