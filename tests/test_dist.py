"""Distributed executor tests: wire fidelity and placement invariance.

The wire-protocol tests pin the job/result encoding (a spec must survive
a JSON round trip with its content hash intact — that hash is the cache
key, the journal key and the lease key, so any drift silently corrupts
all three).  The end-to-end tests boot a real coordinator with real
spawned worker processes over localhost TCP and assert the property the
whole subsystem exists to preserve: results are byte-identical to a
serial in-process run, whatever the placement.

Host-failure scenarios (kill -9 of workers and of the coordinator) live
in ``tests/test_failure_injection.py`` with the other ``-m faults``
scenarios.
"""

import json

import pytest

from repro.sim.dist import (
    DIST_PROTOCOL_VERSION,
    DistConfig,
    DistExecutor,
    job_from_wire,
    job_to_wire,
    result_hash,
)
from repro.sim.parallel import ScenarioSpec, StrategySpec, seed_grid
from repro.sim.parallel.executor import ExperimentExecutor

pytestmark = pytest.mark.dist


def _wire_round_trip(spec):
    """Encode, push through real JSON bytes, rebuild."""
    wire = json.loads(json.dumps(job_to_wire(spec)))
    return job_from_wire(wire)


def _grid(horizon=240.0, seeds=(1, 2)):
    return seed_grid(
        [StrategySpec.make("immediate"), StrategySpec.make("etrain")],
        list(seeds),
        ScenarioSpec(horizon=horizon),
    )


class TestWireProtocol:
    def test_job_spec_survives_the_wire_hash_intact(self):
        for spec in _grid():
            rebuilt = _wire_round_trip(spec)
            assert rebuilt.content_hash() == spec.content_hash()
            assert rebuilt.to_dict() == spec.to_dict()

    def test_fleet_chunk_survives_the_wire_hash_intact(self):
        from repro.sim.fleet.spec import FleetSpec

        spec = FleetSpec.make(64, "etrain", chunk_size=16, horizon=600.0)
        for chunk in spec.chunk_specs(channel=object()):
            rebuilt = _wire_round_trip(chunk)
            assert rebuilt.content_hash() == chunk.content_hash()
            # Runtime plumbing never crosses the wire: the worker
            # rebuilds the channel table locally (placement invariance).
            assert rebuilt.channel is None
            assert rebuilt.tag == ""

    def test_version_skew_fails_loudly(self):
        job = job_to_wire(_grid()[0])
        job["version"] = -1
        with pytest.raises(ValueError, match="version skew"):
            job_from_wire(job)

        from repro.sim.fleet.spec import FleetSpec

        chunk = job_to_wire(FleetSpec.make(16).chunk_specs()[0])
        chunk["version"] = -1
        with pytest.raises(ValueError, match="version skew"):
            job_from_wire(chunk)

    def test_non_dict_wire_rejected(self):
        with pytest.raises(ValueError, match="must be a dict"):
            job_from_wire("not a job")

    def test_result_hash_covers_content_not_timing(self):
        summary = {"energy": 1.25, "delay": 3.0}
        metrics = {"executor.jobs": {"kind": "counter", "value": 1.0}}
        h = result_hash("k" * 64, summary, metrics)
        assert h == result_hash("k" * 64, dict(summary), dict(metrics))
        assert h != result_hash("j" * 64, summary, metrics)
        assert h != result_hash("k" * 64, {**summary, "energy": 1.26}, metrics)

    def test_protocol_version_is_pinned(self):
        # Bumping the version is a compatibility event: the worker hello
        # handshake rejects mismatches, so this must be deliberate.
        assert DIST_PROTOCOL_VERSION == 1


class TestPlacementInvariance:
    """Serial, single-worker and two-worker runs are interchangeable."""

    def test_sweep_matches_serial_bit_for_bit(self, tmp_path):
        jobs = _grid()
        serial = ExperimentExecutor(
            workers=None, cache_dir=tmp_path / "serial"
        ).run(jobs)
        executor = DistExecutor(
            spawn_workers=2,
            config=DistConfig(min_workers=2),
            cache_dir=tmp_path / "dist",
        )
        dist = executor.run(jobs)
        assert [r.summary for r in dist] == [r.summary for r in serial]
        assert executor.stats.jobs_total == len(jobs)
        assert executor.stats.worker_failures == 0
        assert executor.dispatch_wall > 0.0

    def test_fleet_merge_matches_serial_bit_for_bit(self, tmp_path):
        from repro.sim.fleet.runner import run_fleet
        from repro.sim.fleet.spec import FleetSpec

        spec = FleetSpec.make(64, "etrain", chunk_size=16, horizon=600.0)
        serial = run_fleet(spec, cache_dir=tmp_path / "serial")

        def make_executor(**common):
            return DistExecutor(
                spawn_workers=2, config=DistConfig(min_workers=2), **common
            )

        dist = run_fleet(
            spec, cache_dir=tmp_path / "dist", make_executor=make_executor
        )
        assert dist.summary.to_dict() == serial.summary.to_dict()
        assert dist.chunks == serial.chunks

    def test_second_run_is_all_cache_hits_no_workers(self, tmp_path):
        """A fully warmed cache resolves without opening a single port:
        the parent executor skips dispatch entirely on zero misses."""
        jobs = _grid(seeds=(1,))
        cache = tmp_path / "cache"
        first = DistExecutor(
            spawn_workers=1, config=DistConfig(min_workers=1), cache_dir=cache
        ).run(jobs)
        warm = DistExecutor(
            spawn_workers=1, config=DistConfig(min_workers=1), cache_dir=cache
        )
        second = warm.run(jobs)
        assert [r.summary for r in second] == [r.summary for r in first]
        assert all(r.cached for r in second)
        assert warm.stats.cache_hits == len(jobs)
        assert warm.dispatch_wall == 0.0
