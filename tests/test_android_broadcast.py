"""Unit tests for the simulated broadcast bus."""

import pytest

from repro.android.broadcast import Actions, BroadcastBus, BroadcastReceiver, Intent


class Collector(BroadcastReceiver):
    def __init__(self):
        self.received = []

    def on_receive(self, intent):
        self.received.append(intent)


class TestIntent:
    def test_get_extra(self):
        intent = Intent(action="x", extras={"a": 1})
        assert intent.get("a") == 1
        assert intent.get("b", "default") == "default"

    def test_frozen(self):
        intent = Intent(action="x")
        with pytest.raises(AttributeError):
            intent.action = "y"  # type: ignore[misc]


class TestBus:
    def test_one_to_many_delivery(self):
        bus = BroadcastBus()
        a, b = Collector(), Collector()
        bus.register(Actions.TRANSMIT, a)
        bus.register(Actions.TRANSMIT, b)
        reached = bus.send_action(Actions.TRANSMIT, packet_ids=(1,))
        assert reached == 2
        assert len(a.received) == 1 and len(b.received) == 1

    def test_action_isolation(self):
        bus = BroadcastBus()
        a = Collector()
        bus.register(Actions.TRANSMIT, a)
        bus.send_action(Actions.HEARTBEAT, app_id="qq")
        assert a.received == []

    def test_no_receivers(self):
        bus = BroadcastBus()
        assert bus.send_action(Actions.TRANSMIT) == 0

    def test_unregister(self):
        bus = BroadcastBus()
        a = Collector()
        bus.register(Actions.TRANSMIT, a)
        bus.unregister(Actions.TRANSMIT, a)
        bus.send_action(Actions.TRANSMIT)
        assert a.received == []

    def test_unregister_missing_raises(self):
        bus = BroadcastBus()
        with pytest.raises(KeyError):
            bus.unregister(Actions.TRANSMIT, Collector())

    def test_receiver_count(self):
        bus = BroadcastBus()
        assert bus.receiver_count(Actions.TRANSMIT) == 0
        bus.register(Actions.TRANSMIT, Collector())
        assert bus.receiver_count(Actions.TRANSMIT) == 1

    def test_plain_callable_receiver(self):
        bus = BroadcastBus()
        seen = []
        bus.register("custom", seen.append)
        bus.send(Intent(action="custom", extras={"k": "v"}))
        assert seen[0].get("k") == "v"

    def test_delivered_counter(self):
        bus = BroadcastBus()
        bus.register("a", Collector())
        bus.register("a", Collector())
        bus.send_action("a")
        assert bus.delivered == 2
