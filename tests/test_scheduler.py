"""Unit tests for Algorithm 1 (the eTrain online scheduler)."""

import pytest

from repro.core.profiles import mail_profile, weibo_profile
from repro.core.scheduler import ETrainScheduler, SchedulerConfig

from tests.conftest import make_packet


def scheduler(theta=0.2, k=None, profiles=None):
    if profiles is None:
        profiles = [weibo_profile(), mail_profile()]
    return ETrainScheduler(profiles, SchedulerConfig(theta=theta, k=k))


class TestConfig:
    def test_defaults(self):
        cfg = SchedulerConfig()
        assert cfg.theta == 0.2
        assert cfg.k is None
        assert cfg.slot == 1.0

    def test_rejects_negative_theta(self):
        with pytest.raises(ValueError):
            SchedulerConfig(theta=-0.1)

    def test_rejects_zero_k(self):
        with pytest.raises(ValueError):
            SchedulerConfig(k=0)

    def test_rejects_zero_slot(self):
        with pytest.raises(ValueError):
            SchedulerConfig(slot=0.0)


class TestRegistration:
    def test_register_duplicate_rejected(self):
        s = scheduler()
        with pytest.raises(ValueError):
            s.register_app(weibo_profile())

    def test_unregister_returns_leftovers(self):
        s = scheduler()
        p = make_packet(app_id="weibo")
        s.on_packet_arrival(p)
        leftovers = s.unregister_app("weibo")
        assert leftovers == [p]
        with pytest.raises(KeyError):
            s.unregister_app("weibo")

    def test_arrival_for_unknown_app_rejected(self):
        s = scheduler()
        with pytest.raises(KeyError):
            s.on_packet_arrival(make_packet(app_id="nope"))


class TestDecide:
    def test_below_threshold_no_heartbeat_does_nothing(self):
        s = scheduler(theta=5.0)
        s.on_packet_arrival(make_packet(app_id="weibo", arrival=0.0))
        decision = s.decide(1.0, heartbeat_present=False)
        assert decision.selected == ()
        assert decision.budget == 0
        assert s.waiting_count == 1

    def test_heartbeat_drains_everything_with_k_none(self):
        s = scheduler(theta=5.0, k=None)
        for i in range(4):
            s.on_packet_arrival(make_packet(app_id="weibo", arrival=float(i)))
        decision = s.decide(10.0, heartbeat_present=True)
        assert len(decision.selected) == 4
        assert s.waiting_count == 0
        assert len(s.tx_queue) == 4

    def test_heartbeat_respects_k(self):
        s = scheduler(theta=5.0, k=2)
        for i in range(4):
            s.on_packet_arrival(make_packet(app_id="weibo", arrival=float(i)))
        decision = s.decide(10.0, heartbeat_present=True)
        assert len(decision.selected) == 2
        assert s.waiting_count == 2

    def test_threshold_crossing_selects_one(self):
        s = scheduler(theta=0.2)
        s.on_packet_arrival(make_packet(app_id="weibo", arrival=0.0))
        # Weibo cost reaches 0.2 at t = 6 (deadline 30).
        decision = s.decide(7.0, heartbeat_present=False)
        assert len(decision.selected) == 1
        assert decision.budget == 1

    def test_zero_cost_packets_wait_for_heartbeats(self):
        """Mail has zero cost before its deadline: it must not be sent on
        a non-heartbeat slot even when another app trips the threshold."""
        s = scheduler(theta=0.1)
        mail = make_packet(app_id="mail", arrival=0.0, deadline=60.0)
        weibo = make_packet(app_id="weibo", arrival=0.0)
        s.on_packet_arrival(mail)
        s.on_packet_arrival(weibo)
        decision = s.decide(10.0, heartbeat_present=False)
        assert decision.selected == (weibo,)
        assert s.queues["mail"].head() is mail

    def test_mail_rides_heartbeat_as_free_rider(self):
        s = scheduler(theta=10.0)
        mail = make_packet(app_id="mail", arrival=0.0, deadline=60.0)
        s.on_packet_arrival(mail)
        decision = s.decide(5.0, heartbeat_present=True)
        assert decision.selected == (mail,)

    def test_instantaneous_cost_sums_queues(self):
        s = scheduler()
        s.on_packet_arrival(make_packet(app_id="weibo", arrival=0.0))
        s.on_packet_arrival(make_packet(app_id="weibo", arrival=0.0))
        assert s.instantaneous_cost(15.0) == pytest.approx(1.0)

    def test_decisions_recorded(self):
        s = scheduler()
        s.decide(0.0, heartbeat_present=False)
        s.decide(1.0, heartbeat_present=True)
        assert len(s.decisions) == 2
        assert s.decisions[1].heartbeat_slot

    def test_selected_packets_move_to_tx_queue(self):
        s = scheduler(theta=0.0)
        p = make_packet(app_id="weibo", arrival=0.0)
        s.on_packet_arrival(p)
        s.decide(5.0, heartbeat_present=False)
        assert s.tx_queue.drain() == [p]

    def test_empty_queue_heartbeat_selects_nothing(self):
        s = scheduler()
        decision = s.decide(0.0, heartbeat_present=True)
        assert decision.selected == ()


class TestFlush:
    def test_flush_drains_all_queues(self):
        s = scheduler(theta=100.0)
        for app in ("weibo", "mail"):
            s.on_packet_arrival(make_packet(app_id=app, arrival=0.0))
        flushed = s.flush(1000.0)
        assert len(flushed) == 2
        assert s.waiting_count == 0
        assert len(s.tx_queue) == 2

    def test_flush_empty_is_noop(self):
        assert scheduler().flush(0.0) == []


class TestCausality:
    def test_packets_never_scheduled_before_arrival(self):
        """decide() at time t only sees packets with t_a <= t (the caller
        delivers arrivals first), so tx_queue times respect causality."""
        s = scheduler(theta=0.0)
        p = make_packet(app_id="weibo", arrival=5.0)
        s.on_packet_arrival(p)
        decision = s.decide(6.0, heartbeat_present=True)
        assert p in decision.selected
        assert decision.time >= p.arrival_time
