"""Unit + property tests for packet-size models."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.workload.sizes import FixedSize, TruncatedNormalSize, UniformSize


class TestFixed:
    def test_constant(self):
        model = FixedSize(5_000)
        rng = random.Random(0)
        assert {model.sample(rng) for _ in range(10)} == {5_000}

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            FixedSize(0)


class TestTruncatedNormal:
    def test_respects_minimum(self):
        model = TruncatedNormalSize(mean=5_000, minimum=1_000)
        samples = model.sample_many(2_000, seed=1)
        assert min(samples) >= 1_000

    def test_mean_approximates(self):
        model = TruncatedNormalSize(mean=5_000, minimum=1_000)
        samples = model.sample_many(20_000, seed=2)
        empirical = sum(samples) / len(samples)
        # Truncation pulls the mean slightly above the nominal mean.
        assert 4_800 <= empirical <= 5_800

    def test_default_sigma_quarter_mean(self):
        model = TruncatedNormalSize(mean=8_000, minimum=1_000)
        assert model.sigma == pytest.approx(2_000.0)

    def test_explicit_sigma(self):
        model = TruncatedNormalSize(mean=8_000, minimum=1_000, sigma=10.0)
        assert model.sigma == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TruncatedNormalSize(mean=0, minimum=1)
        with pytest.raises(ValueError):
            TruncatedNormalSize(mean=100, minimum=200)

    def test_deterministic_per_seed(self):
        model = TruncatedNormalSize(mean=5_000, minimum=1_000)
        assert model.sample_many(50, seed=7) == model.sample_many(50, seed=7)

    def test_paper_cargo_parameters_sane(self):
        """The three paper distributions produce sizes in their bands."""
        for mean, minimum in ((5_000, 1_000), (2_000, 100), (100_000, 10_000)):
            model = TruncatedNormalSize(mean=mean, minimum=minimum)
            samples = model.sample_many(500, seed=3)
            assert min(samples) >= minimum
            assert max(samples) < mean * 3


class TestUniform:
    def test_bounds(self):
        model = UniformSize(10, 20)
        samples = model.sample_many(500, seed=0)
        assert min(samples) >= 10 and max(samples) <= 20

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformSize(0, 10)
        with pytest.raises(ValueError):
            UniformSize(20, 10)


@given(
    mean=st.integers(min_value=100, max_value=100_000),
    frac=st.floats(min_value=0.1, max_value=1.0),
)
@settings(max_examples=40, deadline=None)
def test_truncated_normal_always_above_minimum(mean, frac):
    minimum = max(1, int(mean * frac))
    model = TruncatedNormalSize(mean=mean, minimum=minimum)
    assert all(s >= minimum for s in model.sample_many(100, seed=11))
