"""Additional engine coverage: slot sizes, flush modes, downlink flow."""

import pytest

from repro.bandwidth.models import ConstantBandwidth
from repro.baselines.etrain import ETrainStrategy
from repro.baselines.immediate import ImmediateStrategy
from repro.core.packet import Packet
from repro.core.profiles import weibo_profile
from repro.core.scheduler import SchedulerConfig
from repro.heartbeat.apps import make_generator
from repro.sim.engine import Simulation
from repro.sim.validate import assert_valid

from tests.conftest import make_packet


class TestSlotSizes:
    @pytest.mark.parametrize("slot", [0.5, 1.0, 2.0])
    def test_any_slot_size_validates(self, slot):
        packets = [make_packet(arrival=3.7 * i + 1.1) for i in range(20)]
        sim = Simulation(
            ETrainStrategy([weibo_profile()], SchedulerConfig(theta=0.5)),
            [make_generator("qq")],
            packets,
            horizon=400.0,
            slot=slot,
        )
        assert_valid(sim.run())

    def test_smaller_slots_do_not_change_heartbeat_times(self):
        def run(slot):
            sim = Simulation(
                ImmediateStrategy(),
                [make_generator("qq")],
                [],
                horizon=700.0,
                slot=slot,
            )
            result = sim.run()
            return [r.start for r in result.records]

        assert run(0.5) == run(2.0) == [0.0, 300.0, 600.0]

    def test_decision_count_scales_with_slot(self):
        def decisions(slot):
            sim = Simulation(
                ImmediateStrategy(), [], [], horizon=100.0, slot=slot
            )
            return sim.run().decisions

        assert decisions(1.0) == 100
        assert decisions(2.0) == 50


class TestFlushModes:
    def test_flush_disabled_leaves_packets_unscheduled(self):
        strategy = ETrainStrategy(
            [weibo_profile()], SchedulerConfig(theta=1e9)
        )
        p = make_packet(arrival=10.0)
        sim = Simulation(
            strategy, [], [p], horizon=100.0, flush_at_end=False
        )
        result = sim.run()
        assert not p.is_scheduled
        # The strategy still holds it (visible to the caller).
        assert strategy.waiting_count == 1

    def test_flush_counts_reported(self):
        strategy = ETrainStrategy(
            [weibo_profile()], SchedulerConfig(theta=1e9)
        )
        packets = [make_packet(arrival=float(i)) for i in range(5)]
        sim = Simulation(strategy, [], packets, horizon=100.0)
        result = sim.run()
        assert result.flushed_packets == 5


class TestDownlinkThroughEngine:
    def test_mixed_direction_workload_validates(self):
        packets = [
            Packet(
                app_id="weibo",
                arrival_time=float(i * 17 + 2),
                size_bytes=2_000,
                deadline=30.0,
                direction="down" if i % 3 == 0 else "up",
            )
            for i in range(15)
        ]
        sim = Simulation(
            ETrainStrategy([weibo_profile()], SchedulerConfig(theta=0.5)),
            [make_generator("qq")],
            packets,
            bandwidth=ConstantBandwidth(50_000.0),
            horizon=400.0,
        )
        result = sim.run()
        assert_valid(result)
        assert all(p.is_scheduled for p in packets)

    def test_downlink_transfers_faster(self):
        up = Packet(app_id="weibo", arrival_time=5.0, size_bytes=60_000)
        down = Packet(
            app_id="weibo", arrival_time=100.0, size_bytes=60_000,
            direction="down",
        )
        sim = Simulation(
            ImmediateStrategy(),
            [],
            [up, down],
            bandwidth=ConstantBandwidth(20_000.0),
            horizon=200.0,
        )
        result = sim.run()
        up_rec = next(r for r in result.records if up.packet_id in r.packet_ids)
        down_rec = next(r for r in result.records if down.packet_id in r.packet_ids)
        assert down_rec.duration == pytest.approx(up_rec.duration / 3.0)
