"""Unit tests for the deterministic fault-injection harness."""

import json
import os

import pytest

from repro.faults import (
    CRASH_EXIT_CODE,
    FAULTS_ENV_VAR,
    FaultPlan,
    leak_segment,
    truncate_tail,
)
from repro.sim.fleet.channel import SHM_DIR, cleanup_stale_segments

pytestmark = pytest.mark.faults


class TestFaultPlanDecisions:
    def test_no_faults_by_default(self):
        plan = FaultPlan()
        assert plan.action("anything") is None
        assert plan.crashes_for(["a", "b", "c"]) == []
        assert plan.hangs_for(["a", "b", "c"]) == []

    def test_decisions_are_deterministic(self):
        keys = [f"job-{i}" for i in range(200)]
        a = FaultPlan(seed=7, crash_prob=0.3, hang_prob=0.2)
        b = FaultPlan(seed=7, crash_prob=0.3, hang_prob=0.2)
        assert a.crashes_for(keys) == b.crashes_for(keys)
        assert a.hangs_for(keys) == b.hangs_for(keys)
        assert [a.action(k) for k in keys] == [b.action(k) for k in keys]

    def test_seed_changes_the_selection(self):
        keys = [f"job-{i}" for i in range(200)]
        a = FaultPlan(seed=1, crash_prob=0.3)
        b = FaultPlan(seed=2, crash_prob=0.3)
        assert a.crashes_for(keys) != b.crashes_for(keys)

    def test_probability_roughly_respected(self):
        keys = [f"job-{i}" for i in range(2000)]
        plan = FaultPlan(seed=0, crash_prob=0.25)
        frac = len(plan.crashes_for(keys)) / len(keys)
        assert 0.2 < frac < 0.3

    def test_crash_wins_over_hang(self):
        plan = FaultPlan(seed=0, crash_prob=1.0, hang_prob=1.0)
        assert plan.action("k") == "crash"

    def test_attempts_past_budget_are_clean(self):
        plan = FaultPlan(seed=0, crash_prob=1.0)
        assert plan.action("k", attempt=1) == "crash"
        assert plan.action("k", attempt=2) is None  # max_attempt=1 default

    def test_max_attempt_extends_faulting(self):
        plan = FaultPlan(seed=0, crash_prob=1.0, max_attempt=3)
        assert [plan.action("k", attempt=a) for a in (1, 2, 3, 4)] == [
            "crash", "crash", "crash", None,
        ]

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_prob=1.5)
        with pytest.raises(ValueError):
            FaultPlan(hang_prob=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(hang_seconds=-1.0)

    def test_inject_noop_when_clean(self):
        # Must not exit or sleep for an unfaulted key.
        FaultPlan(seed=0).inject("k")


class TestFaultPlanSerialisation:
    def test_dict_round_trip(self):
        plan = FaultPlan(seed=3, crash_prob=0.2, hang_prob=0.1, hang_seconds=5.0)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_env_round_trip(self):
        plan = FaultPlan(seed=9, crash_prob=0.4)
        env = {FAULTS_ENV_VAR: plan.to_env()}
        assert FaultPlan.from_env(env) == plan

    def test_env_unset_or_blank_is_none(self):
        assert FaultPlan.from_env({}) is None
        assert FaultPlan.from_env({FAULTS_ENV_VAR: "  "}) is None

    def test_env_payload_is_plain_json(self):
        doc = json.loads(FaultPlan(seed=1, crash_prob=0.5).to_env())
        assert doc["seed"] == 1 and doc["crash_prob"] == 0.5

    def test_parse_shorthand(self):
        plan = FaultPlan.parse("crash=0.2,hang=0.1,seed=3,hang_seconds=2,max_attempt=2")
        assert plan == FaultPlan(
            seed=3, crash_prob=0.2, hang_prob=0.1, hang_seconds=2.0, max_attempt=2
        )

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("explode=1")
        with pytest.raises(ValueError):
            FaultPlan.parse("crash")

    def test_crash_exit_code_is_distinctive(self):
        assert CRASH_EXIT_CODE not in (0, 1, 2)


class TestTruncateTail:
    def test_chops_exactly_n_bytes(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_bytes(b"0123456789")
        assert truncate_tail(path, 4) == 6
        assert path.read_bytes() == b"012345"

    def test_truncating_past_start_empties(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_bytes(b"abc")
        assert truncate_tail(path, 99) == 0
        assert path.read_bytes() == b""

    def test_rejects_negative(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_bytes(b"abc")
        with pytest.raises(ValueError):
            truncate_tail(path, -1)


needs_dev_shm = pytest.mark.skipif(
    not SHM_DIR.is_dir(), reason="no /dev/shm on this platform"
)


@needs_dev_shm
class TestLeakAndSweep:
    def test_leaked_segment_is_swept(self):
        name = leak_segment()
        try:
            assert (SHM_DIR / name).exists()
            removed = cleanup_stale_segments()
            assert name in removed
            assert not (SHM_DIR / name).exists()
        finally:
            (SHM_DIR / name).unlink(missing_ok=True)

    def test_live_pid_segment_survives_default_sweep(self):
        name = leak_segment(pid=os.getpid())
        try:
            assert name not in cleanup_stale_segments()
            assert (SHM_DIR / name).exists()
            # include_live force-sweeps it.
            assert name in cleanup_stale_segments(include_live=True)
        finally:
            (SHM_DIR / name).unlink(missing_ok=True)
