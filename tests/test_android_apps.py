"""Unit tests for the simulated Android runtime and app framework."""

import pytest

from repro.android.apps import CargoApp, TrainApp
from repro.android.broadcast import Actions
from repro.android.runtime import AndroidSystem
from repro.core.profiles import weibo_profile
from repro.heartbeat.apps import known_train_profile


@pytest.fixture
def system():
    return AndroidSystem()


class TestRuntime:
    def test_clock_advances(self, system):
        system.advance_to(100.0)
        assert system.now == 100.0

    def test_clock_never_goes_back(self, system):
        system.advance_to(10.0)
        with pytest.raises(ValueError):
            system.advance_to(5.0)

    def test_alarms_fire_in_time_order(self, system):
        order = []
        system.alarm_manager.set_exact(5.0, lambda t: order.append(("a", t)))
        system.alarm_manager.set_exact(2.0, lambda t: order.append(("b", t)))
        system.run_until(10.0)
        assert order == [("b", 2.0), ("a", 5.0)]

    def test_clock_visible_inside_callbacks(self, system):
        inside = []
        system.alarm_manager.set_exact(7.0, lambda t: inside.append(system.now))
        system.run_until(10.0)
        assert inside == [7.0]


class TestTrainApp:
    def test_heartbeats_at_cycle(self, system):
        app = TrainApp(known_train_profile("qq"), system)
        app.start()
        system.run_until(700.0)
        assert [hb.time for hb in app.sent] == [0.0, 300.0, 600.0]
        assert [hb.seq for hb in app.sent] == [0, 1, 2]

    def test_radio_records_heartbeats(self, system):
        app = TrainApp(known_train_profile("whatsapp"), system)
        app.start()
        system.run_until(300.0)
        kinds = [r.kind for r in system.radio.records]
        assert kinds == ["heartbeat", "heartbeat"]

    def test_stop_kills_daemon(self, system):
        app = TrainApp(known_train_profile("qq"), system)
        app.start()
        system.run_until(100.0)
        app.stop()
        system.run_until(1000.0)
        assert len(app.sent) == 1
        assert not app.running

    def test_start_idempotent(self, system):
        app = TrainApp(known_train_profile("qq"), system)
        app.start()
        app.start()
        system.run_until(10.0)
        assert len(app.sent) == 1


class TestCargoApp:
    def test_register_announces_profile(self, system):
        profiles = []
        system.broadcast.register(
            Actions.REGISTER, lambda i: profiles.append(i.get("profile"))
        )
        app = CargoApp(weibo_profile(), system)
        app.register()
        assert profiles and profiles[0].app_id == "weibo"

    def test_register_idempotent(self, system):
        count = []
        system.broadcast.register(Actions.REGISTER, lambda i: count.append(1))
        app = CargoApp(weibo_profile(), system)
        app.register()
        app.register()
        assert len(count) == 1

    def test_submit_broadcasts_request(self, system):
        requests = []
        system.broadcast.register(
            Actions.SUBMIT_REQUEST, lambda i: requests.append(i.get("packet"))
        )
        app = CargoApp(weibo_profile(), system)
        app.register()
        packet = app.submit(1_500)
        assert requests == [packet]
        assert app.pending_count == 1
        assert packet.deadline == weibo_profile().deadline

    def test_transmit_intent_triggers_radio(self, system):
        app = CargoApp(weibo_profile(), system)
        app.register()
        packet = app.submit(1_500)
        system.broadcast.send_action(Actions.TRANSMIT, packet_ids=(packet.packet_id,))
        assert app.pending_count == 0
        assert app.transmitted == [packet]
        assert system.radio.records[-1].kind == "data"

    def test_transmit_ignores_foreign_ids(self, system):
        app = CargoApp(weibo_profile(), system)
        app.register()
        app.submit(1_500)
        system.broadcast.send_action(Actions.TRANSMIT, packet_ids=(999,))
        assert app.pending_count == 1
        assert app.transmitted == []

    def test_direct_mode_bypasses_etrain(self, system):
        app = CargoApp(weibo_profile(), system, direct_mode=True)
        app.register()  # no-op
        packet = app.submit(1_500)
        assert app.transmitted == [packet]
        assert system.radio.records[-1].kind == "data"
        assert app.pending_count == 0
