"""Shape tests for every experiment module (small horizons).

These check the *qualitative* claims each figure makes; the benchmark
suite re-runs them at the paper's full scale.
"""

import pytest

from repro.experiments import fig1, fig2, fig3, fig4, fig6, fig7, fig8, fig10, fig11, table1
from repro.sim.runner import default_scenario


class TestFig1:
    def test_heartbeat_energy_grows_with_apps(self):
        rows = fig1.run_fig1a(hours=2.0)
        energies = [r.heartbeat_energy_j for r in rows]
        assert energies[0] == 0.0
        assert energies == sorted(energies)

    def test_heartbeats_dominate_standby_with_three_apps(self):
        """Paper: ~87 % of standby energy goes to heartbeats (3 apps)."""
        rows = fig1.run_fig1a(hours=4.0)
        assert rows[3].heartbeat_fraction > 0.7

    def test_scatter_has_three_apps(self):
        scatter = fig1.run_fig1b(hours=1.0)
        assert {app for _, _, app in scatter} == {"qq", "wechat", "whatsapp"}

    def test_rejects_bad_hours(self):
        with pytest.raises(ValueError):
            fig1.run_fig1a(hours=0.0)


class TestFig2:
    def test_piggybacking_saves_energy(self):
        result = fig2.run_fig2()
        assert result.with_energy_j < result.without_energy_j

    def test_saving_in_paper_band(self):
        """Paper: ~40 % on the power trace; accept a generous band."""
        result = fig2.run_fig2()
        assert 0.2 <= result.absolute_saving_fraction <= 0.6

    def test_traces_same_length(self):
        result = fig2.run_fig2()
        assert len(result.without_trace) == len(result.with_trace)

    def test_piggyback_case_has_two_power_peaks_only(self):
        """Scattered case has 7 bursts; piggybacked only 2."""
        result = fig2.run_fig2()

        def bursts(trace):
            high = [w > 0.9 for w in trace.watts]
            return sum(1 for a, b in zip(high, high[1:]) if b and not a) + (
                1 if high[0] else 0
            )

        assert bursts(result.with_trace) < bursts(result.without_trace)


class TestFig3:
    def test_fixed_apps_detected(self):
        patterns = fig3.run_fig3(duration=3600.0)
        assert patterns["qq"].detected_cell == "300s"
        assert patterns["wechat"].detected_cell == "270s"
        assert patterns["whatsapp"].detected_cell == "240s"
        assert patterns["renren"].detected_cell == "300s"

    def test_netease_doubling_detected(self):
        patterns = fig3.run_fig3(duration=3600.0)
        assert patterns["netease"].report.doubling

    def test_data_traffic_does_not_perturb_timing(self):
        with_data = fig3.run_fig3(duration=3600.0, with_data_traffic=True)
        without = fig3.run_fig3(duration=3600.0, with_data_traffic=False)
        assert with_data["qq"].heartbeat_times == without["qq"].heartbeat_times


class TestFig4:
    def test_state_sequence(self):
        _, dwells = fig4.run_fig4()
        labels = [d.state for d in dwells]
        assert labels == ["IDLE", "DCH(tx)", "DCH", "FACH", "IDLE"]

    def test_dwell_durations_match_model(self, power_model):
        _, dwells = fig4.run_fig4()
        by_label = {d.state: d for d in dwells}
        assert by_label["DCH"].duration == pytest.approx(power_model.delta_dch)
        assert by_label["FACH"].duration == pytest.approx(power_model.delta_fach)

    def test_power_levels_ordered(self):
        _, dwells = fig4.run_fig4()
        by_label = {d.state: d.power_w for d in dwells}
        assert by_label["DCH"] > by_label["FACH"] > by_label["IDLE"]


class TestFig6:
    def test_three_curves(self):
        curves = fig6.run_fig6()
        assert len(curves) == 3

    def test_shapes(self):
        curves = fig6.run_fig6(deadline=60.0)
        mail = dict(curves["f1 (mail)"].samples)
        weibo = dict(curves["f2 (weibo)"].samples)
        # Mail free before deadline; weibo capped at 2 after.
        assert all(c == 0.0 for d, c in curves["f1 (mail)"].samples if d < 60.0)
        assert max(c for _, c in curves["f2 (weibo)"].samples) == pytest.approx(2.0)

    def test_rejects_bad_steps(self):
        with pytest.raises(ValueError):
            fig6.run_fig6(steps=1)


@pytest.fixture(scope="module")
def small_scenario():
    return default_scenario(horizon=1800.0)


class TestFig7:
    def test_theta_tradeoff(self, small_scenario):
        curve = fig7.run_fig7a(small_scenario, theta_values=[0.0, 3.0])
        low, high = curve.points
        assert high.energy_j <= low.energy_j
        assert high.delay_s >= low.delay_s

    def test_larger_k_no_worse_delay_at_saturation(self, small_scenario):
        panel = fig7.run_fig7b(
            small_scenario, k_values=(2, 8), theta_values=[2.0]
        )
        assert panel[8].points[0].delay_s <= panel[2].points[0].delay_s + 1e-6


class TestFig8:
    def test_etrain_beats_baseline(self, small_scenario):
        curves = fig8.run_fig8a(
            small_scenario,
            theta_grid=(1.0,),
            omega_grid=(0.2,),
            v_grid=(40_000.0,),
        )
        baseline_energy = curves["baseline"].points[0].energy_j
        assert curves["eTrain"].min_energy < baseline_energy

    def test_rate_rows_structure(self):
        rows = fig8.run_fig8b(
            rates=(0.04, 0.12),
            horizon=1200.0,
            theta_grid=(1.0, 3.0),
            omega_grid=(0.2,),
            v_grid=(40_000.0,),
        )
        assert [r.rate for r in rows] == [0.04, 0.12]
        # Baseline energy grows with arrival rate.
        assert rows[1].baseline_j > rows[0].baseline_j


class TestFig10:
    def test_more_trains_less_delay(self):
        rows = fig10.run_fig10a(horizon=1800.0)
        with_trains = [r for r in rows if r.train_count >= 1]
        assert with_trains[-1].mean_delay_s < with_trains[0].mean_delay_s

    def test_heartbeat_energy_monotone_in_trains(self):
        rows = fig10.run_fig10a(horizon=1800.0)
        hb = [r.heartbeat_energy_j for r in rows]
        assert hb == sorted(hb)

    def test_cargo_energy_saved_vs_null(self):
        """With eTrain and trains, cargo costs less than unscheduled NULL."""
        rows = fig10.run_fig10a(horizon=1800.0)
        null_cargo = rows[0].cargo_energy_j
        assert all(r.cargo_energy_j < null_cargo for r in rows[1:])

    def test_theta_sweep_delay_rises(self):
        runs = fig10.run_fig10b((0.1, 0.5), horizon=1800.0)
        assert runs[1].mean_delay_s > runs[0].mean_delay_s

    def test_deadline_sweep_energy_falls(self):
        pairs = fig10.run_fig10c((10.0, 180.0), horizon=1800.0)
        assert pairs[1][1].total_energy_j < pairs[0][1].total_energy_j

    def test_run_controlled_validates(self):
        with pytest.raises(ValueError):
            fig10.run_controlled(train_count=5)


class TestFig11:
    def test_savings_positive_and_ordered(self):
        rows = fig11.run_fig11(sessions_per_class=2, seed=0)
        by_class = {r.activity.value: r for r in rows}
        assert all(r.saved_j > 0 for r in rows)
        # Paper: active users save the most joules, inactive the least.
        assert by_class["active"].saved_j > by_class["inactive"].saved_j

    def test_energy_without_scales_with_activity(self):
        rows = fig11.run_fig11(sessions_per_class=2, seed=1)
        by_class = {r.activity.value: r for r in rows}
        assert (
            by_class["active"].energy_without_j
            > by_class["moderate"].energy_without_j
            > by_class["inactive"].energy_without_j
        )

    def test_rejects_zero_sessions(self):
        with pytest.raises(ValueError):
            fig11.run_fig11(sessions_per_class=0)


class TestTable1:
    def test_android_cells(self):
        reports = table1.run_table1(android_duration=3600.0, ios_duration=4 * 3600.0)
        s4 = reports["Samsung GALAXY S IV"]
        assert s4["wechat"].cycle_cell == "270s"
        assert s4["whatsapp"].cycle_cell == "240s"
        assert s4["qq"].cycle_cell == "300s"
        assert s4["netease"].cycle_cell == "60-480s"

    def test_ios_all_apns(self):
        reports = table1.run_table1(android_duration=3600.0, ios_duration=4 * 3600.0)
        ios = reports["iPhone 4/iPhone 5"]
        assert all(r.cycle_cell == "1800s" for r in ios.values())

    def test_android_devices_agree(self):
        reports = table1.run_table1(android_duration=3600.0, ios_duration=4 * 3600.0)
        devices = [d for d in reports if d != "iPhone 4/iPhone 5"]
        cells = [
            {app: r.cycle_cell for app, r in reports[d].items()} for d in devices
        ]
        assert all(c == cells[0] for c in cells)
