"""Property suites for the literature-derived strategy families.

Each new baseline's *defining* invariant, checked over randomized
workloads (hypothesis) and both engine paths:

* ``harvest_lazy`` — the harvesting battery never goes negative: every
  standalone burst the engine emitted was affordable at its slot, the
  drained total reconciles exactly with the burst records, and energy
  is conserved (you cannot spend charge that was never harvested).
* ``common_deadline`` — no packet's burst starts after its assigned
  common deadline (round boundary), whenever that deadline falls inside
  the simulated horizon.
* ``aoi_download`` — delivering resets the age: ``last_generation``
  tracks the freshest released arrival, and the run's ``aoi`` column
  equals an independent recomputation of the sawtooth integral from the
  delivery schedule.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines.aoi_download import AoiDownloadStrategy
from repro.baselines.common_deadline import CommonDeadlineStrategy
from repro.baselines.harvest_lazy import HarvestLazyStrategy
from repro.baselines.lazy_circuit import LazyCircuitStrategy
from repro.core.packet import Packet, reset_packet_ids
from repro.core.profiles import weibo_profile
from repro.heartbeat.apps import make_generator
from repro.sim.battery import HarvestingBattery
from repro.sim.engine import Simulation
from repro.sim.results import compute_aoi

pytestmark = pytest.mark.strategies

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

HORIZON = 700.0

workloads = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=600.0),  # arrival
        st.integers(min_value=100, max_value=50_000),  # size
        st.sampled_from([None, 10.0, 30.0, 120.0]),  # deadline
    ),
    min_size=1,
    max_size=25,
)


def build_packets(spec) -> List[Packet]:
    reset_packet_ids()
    return [
        Packet(app_id="weibo", arrival_time=a, size_bytes=s, deadline=d)
        for a, s, d in sorted(spec, key=lambda x: (x[0], x[1]))
    ]


def run_sim(strategy, spec, *, dense: bool = False, horizon: float = HORIZON):
    sim = Simulation(
        strategy,
        [make_generator("qq")],
        build_packets(spec),
        horizon=horizon,
        dense=dense,
    )
    return sim.run()


class TestHarvestLazyBatteryInvariant:
    @SETTINGS
    @given(
        spec=workloads,
        seed=st.integers(min_value=0, max_value=999),
        initial=st.sampled_from([0.0, 1.0, 20.0]),
        rate=st.sampled_from([0.0, 0.01, 0.05, 0.5]),
    )
    def test_battery_never_negative_and_reconciles(
        self, spec, seed, initial, rate
    ):
        battery = HarvestingBattery(
            initial_j=initial, harvest_rate_max=rate, seed=seed
        )
        strategy = HarvestLazyStrategy(
            [weibo_profile()], watermark=0.85, battery=battery
        )
        result = run_sim(strategy, spec)
        # Never negative, at any probe time including the horizon.
        assert battery.stored_at(HORIZON) >= 0.0
        # Exactly the standalone data bursts drained the store, and the
        # drained total reconciles with the records (same fold order).
        data = [r for r in result.records if r.kind == "data"]
        assert battery.drains == len(data)
        assert battery.drained_j == sum(
            battery.tx_cost(r.size_bytes) for r in data
        )
        # Energy conservation: can't spend what was never available.
        assert (
            battery.drained_j
            <= battery.harvested(HORIZON) + initial + 1e-9
        )

    @SETTINGS
    @given(spec=workloads, seed=st.integers(min_value=0, max_value=99))
    def test_starved_battery_still_delivers_via_heartbeats(self, spec, seed):
        """With zero harvest and zero charge, standalone bursts are
        impossible — every delivery must ride a heartbeat or the flush,
        and the store stays at exactly zero."""
        battery = HarvestingBattery(
            initial_j=0.0, harvest_rate_max=0.0, seed=seed
        )
        strategy = HarvestLazyStrategy([weibo_profile()], battery=battery)
        result = run_sim(strategy, spec)
        assert battery.drains == 0
        assert battery.stored_at(HORIZON) == 0.0
        assert all(r.kind != "data" for r in result.records)

    @SETTINGS
    @given(spec=workloads, seed=st.integers(min_value=0, max_value=99))
    def test_dense_and_event_paths_agree(self, spec, seed):
        def make():
            return HarvestLazyStrategy(
                [weibo_profile()],
                battery=HarvestingBattery(harvest_rate_max=0.5, seed=seed),
            )

        dense = run_sim(make(), spec, dense=True)
        event = run_sim(make(), spec, dense=False)
        assert event.summary() == dense.summary()
        assert event.decisions == dense.decisions


class TestCommonDeadlineInvariant:
    @SETTINGS
    @given(spec=workloads, round_s=st.sampled_from([20.0, 60.0, 300.0]))
    def test_never_transmits_after_assigned_deadline(self, spec, round_s):
        strategy = CommonDeadlineStrategy(round_s=round_s)
        result = run_sim(strategy, spec)
        starts = {}
        for r in result.records:
            for pid in r.packet_ids:
                starts[pid] = r.start
        for p in result.packets:
            if not p.is_scheduled:
                continue
            due = strategy.assigned[p.packet_id]
            if due > HORIZON:
                # Round boundary past the horizon: the end-of-run flush
                # may legally release it early.
                continue
            assert starts[p.packet_id] <= due + 1e-9, (
                f"packet {p.packet_id} (arrived {p.arrival_time}) started "
                f"at {starts[p.packet_id]} after its common deadline {due}"
            )

    @SETTINGS
    @given(spec=workloads, round_s=st.sampled_from([20.0, 60.0, 300.0]))
    def test_deadlines_are_round_boundaries_with_lead(self, spec, round_s):
        strategy = CommonDeadlineStrategy(round_s=round_s)
        run_sim(strategy, spec)
        lead = CommonDeadlineStrategy.LEAD_SLOTS * strategy.slot
        packets = {p.packet_id: p for p in build_packets(spec)}
        assert set(strategy.assigned) == set(packets)
        for pid, due in strategy.assigned.items():
            k = due / round_s
            assert abs(k - round(k)) < 1e-9, f"{due} is not a round boundary"
            assert due >= packets[pid].arrival_time + lead - 1e-9


def naive_aoi(deliveries: List[Tuple[float, float]], horizon: float) -> float:
    """O(n) trapezoid recomputation of the AoI sawtooth average."""
    if horizon <= 0:
        return 0.0
    points = sorted((min(d, horizon), g) for d, g in deliveries)
    area = 0.0
    t, u = 0.0, 0.0
    for d, g in points:
        if d > t:
            area += (d - t) * ((t - u) + (d - u)) / 2.0
            t = d
        u = max(u, g)
    area += (horizon - t) * ((t - u) + (horizon - u)) / 2.0
    return area / horizon


class TestAoiDownloadInvariant:
    @SETTINGS
    @given(spec=workloads, threshold=st.sampled_from([5.0, 60.0, 200.0]))
    def test_age_resets_at_delivery(self, spec, threshold):
        strategy = AoiDownloadStrategy(threshold_s=threshold)
        result = run_sim(strategy, spec)
        # Every packet is delivered eventually (flush releases the rest),
        # and the tracked generation is the freshest delivered arrival.
        delivered = [p for p in result.packets if p.is_scheduled]
        assert len(delivered) == len(result.packets)
        assert strategy.last_generation == max(
            p.arrival_time for p in delivered
        )
        # The strategy's own queue is empty: the age clock has reset.
        assert strategy.waiting_count == 0

    @SETTINGS
    @given(spec=workloads, threshold=st.sampled_from([5.0, 60.0, 200.0]))
    def test_aoi_column_matches_independent_recompute(self, spec, threshold):
        result = run_sim(AoiDownloadStrategy(threshold_s=threshold), spec)
        deliveries = [
            (p.scheduled_time, p.arrival_time)
            for p in result.packets
            if p.is_scheduled
        ]
        expected = naive_aoi(deliveries, HORIZON)
        assert math.isclose(result.aoi, expected, rel_tol=1e-9, abs_tol=1e-9)
        assert result.summary()["aoi_s"] == result.aoi

    def test_compute_aoi_is_order_independent(self):
        pairs = [(30.0, 10.0), (12.0, 3.0), (50.0, 49.0), (75.0, 20.0)]
        forward = compute_aoi(pairs, 100.0)
        assert compute_aoi(list(reversed(pairs)), 100.0) == forward
        assert math.isclose(forward, naive_aoi(pairs, 100.0), rel_tol=1e-12)

    def test_no_deliveries_age_grows_linearly(self):
        # Age ramps 0 → horizon, averaging horizon/2.
        assert compute_aoi([], 200.0) == 100.0


class TestLazyCircuitTrigger:
    def test_byte_knee_releases_without_deadline_pressure(self):
        strategy = LazyCircuitStrategy(
            [weibo_profile()], target_batch_bytes=10_000, default_deadline=600.0
        )
        reset_packet_ids()
        strategy.on_arrival(
            Packet(app_id="weibo", arrival_time=0.0, size_bytes=6_000), 0.0
        )
        assert strategy.decide(1.0, False) == []
        assert strategy.decision_horizon(1.0) > 1.0
        strategy.on_arrival(
            Packet(app_id="weibo", arrival_time=2.0, size_bytes=6_000), 2.0
        )
        # Knee crossed: the horizon collapses and the next decide fires.
        assert strategy.decision_horizon(2.0) == 2.0
        released = strategy.decide(3.0, False)
        assert len(released) == 2
        assert strategy.waiting_count == 0
