"""Unit tests for the bandwidth trace container and the synthetic trace."""

import pytest

from repro.bandwidth.synth import synthesize_regime, wuhan_bandwidth_model, wuhan_trace
from repro.bandwidth.trace import BandwidthTrace

import random


class TestBandwidthTrace:
    def test_stats(self):
        t = BandwidthTrace([100.0, 200.0, 300.0])
        assert t.mean == pytest.approx(200.0)
        assert t.median == pytest.approx(200.0)
        assert t.stdev == pytest.approx(100.0)
        assert t.duration == 3.0

    def test_single_sample_stdev(self):
        assert BandwidthTrace([100.0]).stdev == 0.0

    def test_cv(self):
        flat = BandwidthTrace([100.0, 100.0])
        assert flat.coefficient_of_variation == 0.0

    def test_outage_fraction(self):
        t = BandwidthTrace([500.0, 2000.0, 100.0, 3000.0])
        assert t.outage_fraction(threshold=1000.0) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            BandwidthTrace([])
        with pytest.raises(ValueError):
            BandwidthTrace([-1.0])

    def test_csv_roundtrip(self, tmp_path):
        t = BandwidthTrace([123.456, 789.0], description="test")
        path = tmp_path / "bw.csv"
        t.save_csv(path)
        loaded = BandwidthTrace.load_csv(path)
        assert loaded.samples == pytest.approx(t.samples, abs=1e-3)

    def test_load_empty_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            BandwidthTrace.load_csv(path)

    def test_to_model(self):
        t = BandwidthTrace([100.0, 200.0])
        model = t.to_model()
        assert model.rate_at(1.5) == 200.0


class TestSynthRegime:
    def test_length(self):
        rng = random.Random(0)
        samples = synthesize_regime(
            rng, 100, median_rate=1e5, sigma=0.5, fade_prob=0.01,
            fade_depth=0.1, fade_duration_mean=5.0,
        )
        assert len(samples) == 100
        assert all(s >= 0 for s in samples)

    def test_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            synthesize_regime(
                rng, -1, median_rate=1e5, sigma=0.5, fade_prob=0.01,
                fade_depth=0.1, fade_duration_mean=5.0,
            )
        with pytest.raises(ValueError):
            synthesize_regime(
                rng, 10, median_rate=1e5, sigma=0.5, fade_prob=0.01,
                fade_depth=0.0, fade_duration_mean=5.0,
            )


class TestWuhanTrace:
    def test_paper_duration(self):
        trace = wuhan_trace()
        assert len(trace) == 7200

    def test_deterministic_per_seed(self):
        assert wuhan_trace(seed=1).samples == wuhan_trace(seed=1).samples
        assert wuhan_trace(seed=1).samples != wuhan_trace(seed=2).samples

    def test_two_regime_structure(self):
        """The campus half is steadier and faster than the bus half."""
        trace = wuhan_trace()
        bus = trace.samples[: int(7200 * 0.46)]
        campus = trace.samples[int(7200 * 0.46):]
        import statistics

        assert statistics.median(campus) > statistics.median(bus)
        bus_cv = statistics.stdev(bus) / statistics.fmean(bus)
        campus_cv = statistics.stdev(campus) / statistics.fmean(campus)
        assert campus_cv < bus_cv

    def test_realistic_3g_range(self):
        """Mean uplink in tens-to-hundreds of KB/s, with real variance."""
        trace = wuhan_trace()
        assert 30_000 < trace.mean < 500_000
        assert trace.coefficient_of_variation > 0.3

    def test_model_wraps(self):
        model = wuhan_bandwidth_model(duration=100, wrap=True)
        assert model.rate_at(0.0) == model.rate_at(100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            wuhan_trace(duration=0)
        with pytest.raises(ValueError):
            wuhan_trace(bus_fraction=1.5)
