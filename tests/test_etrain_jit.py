"""The Θ-cost step's three implementations are bit-identical twins.

The etrain fleet kernel's dominant phase folds per-app closed-form delay
costs into a per-device P(t) array.  Three interchangeable
implementations exist:

* :func:`repro.sim.fleet.engine._theta_costs_numpy` — the reference
  (grouped NumPy expressions, sequential per-app fold);
* :func:`repro.sim.fleet.engine._theta_costs_loops` — a scalar-loop
  twin written op-for-op like the NumPy expressions; it is the *source*
  numba compiles when ``ETRAIN_JIT`` asks for the JIT path (njit
  defaults: no fastmath, no FMA contraction → same IEEE ops);
* the chunk-bound closure :func:`~repro.sim.fleet.engine._theta_step_for`
  builds — the per-app row fold the kernel actually runs.

Because the vectorized-vs-scalar equivalence suite certifies the NumPy
path, *bit-identity* here transitively certifies the loop twin and the
closure (and, where numba is installed, the compiled variant).  The env
flag's resolution logic is covered with and without numba present.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.fleet import engine

try:
    import numba  # noqa: F401

    HAVE_NUMBA = True
except ImportError:
    HAVE_NUMBA = False


def random_case(rng):
    A = int(rng.integers(1, 5))
    D = int(rng.integers(1, 33))
    kinds = rng.integers(0, 3, size=A).astype(np.int64)
    dls = rng.uniform(5.0, 120.0, size=A)
    u = float(rng.uniform(0.0, 7200.0))
    n_pre = rng.integers(0, 40, size=(A, D)).astype(np.float64)
    n_post = rng.integers(0, 40, size=(A, D)).astype(np.float64)
    s_pre = rng.uniform(0.0, 7200.0, size=(A, D)) * n_pre
    s_post = rng.uniform(0.0, 7200.0, size=(A, D)) * n_post
    return u, kinds, dls, n_pre, s_pre, n_post, s_post


def run_impl(impl, case):
    u, kinds, dls, n_pre, s_pre, n_post, s_post = case
    out = np.full(n_pre.shape[1], np.nan)
    impl(u, kinds, dls, n_pre, s_pre, n_post, s_post, out)
    return out


def run_closure(case):
    u, kinds, dls, n_pre, s_pre, n_post, s_post = case
    out = np.full(n_pre.shape[1], np.nan)
    step = engine._theta_step_for(kinds, dls)
    step(u, n_pre, s_pre, n_post, s_post, out)
    return out


class TestBitIdentity:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_loops_twin_matches_numpy_bitwise(self, seed):
        case = random_case(np.random.default_rng(seed))
        ref = run_impl(engine._theta_costs_numpy, case)
        loops = run_impl(engine._theta_costs_loops, case)
        np.testing.assert_array_equal(
            ref.view(np.uint64), loops.view(np.uint64)
        )

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_chunk_closure_matches_numpy_bitwise(self, seed):
        case = random_case(np.random.default_rng(seed))
        ref = run_impl(engine._theta_costs_numpy, case)
        closed = run_closure(case)
        np.testing.assert_array_equal(
            ref.view(np.uint64), closed.view(np.uint64)
        )

    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
    def test_njit_matches_numpy_bitwise(self):
        compiled = numba.njit(cache=False)(engine._theta_costs_loops)
        rng = np.random.default_rng(123)
        for _ in range(25):
            case = random_case(rng)
            ref = run_impl(engine._theta_costs_numpy, case)
            jitted = run_impl(compiled, case)
            np.testing.assert_array_equal(
                ref.view(np.uint64), jitted.view(np.uint64)
            )


class TestFlagResolution:
    @pytest.fixture(autouse=True)
    def _restore(self):
        before = os.environ.get("ETRAIN_JIT")
        yield
        if before is None:
            os.environ.pop("ETRAIN_JIT", None)
        else:
            os.environ["ETRAIN_JIT"] = before
        engine._reset_theta_impl()

    @pytest.mark.parametrize("value", ["", "0", "false", "off", "False"])
    def test_flag_off_values(self, value):
        os.environ["ETRAIN_JIT"] = value
        assert not engine.etrain_jit_requested()
        engine._reset_theta_impl()
        assert not engine.etrain_jit_active()
        assert engine._theta_costs_impl() is engine._theta_costs_numpy

    def test_flag_unset(self):
        os.environ.pop("ETRAIN_JIT", None)
        assert not engine.etrain_jit_requested()
        engine._reset_theta_impl()
        assert engine._theta_costs_impl() is engine._theta_costs_numpy

    def test_flag_on_resolves_without_crashing(self):
        """With numba absent the request degrades to NumPy silently; with
        numba present the resolved step must be the compiled one."""
        os.environ["ETRAIN_JIT"] = "1"
        assert engine.etrain_jit_requested()
        engine._reset_theta_impl()
        impl = engine._theta_costs_impl()
        if HAVE_NUMBA:
            assert engine.etrain_jit_active()
            assert impl is not engine._theta_costs_numpy
        else:
            assert not engine.etrain_jit_active()
            assert impl is engine._theta_costs_numpy

    def test_jit_flag_simulation_matches_default(self):
        """A whole etrain chunk under ETRAIN_JIT=1 equals the default
        path — exactly when numba is absent (same NumPy code), and to
        bit-identity of the Θ step when it is present."""
        from repro.bandwidth.synth import wuhan_bandwidth_model
        from repro.radio.power_model import GALAXY_S4_3G
        from repro.sim.fleet.accounting import summarize_chunk
        from repro.sim.fleet.channel import ChannelTable
        from repro.sim.fleet.workload import synthesize_fleet

        w = synthesize_fleet(3, 450.0, seed=5)
        table = ChannelTable.from_model(wuhan_bandwidth_model(), 450.0)

        os.environ.pop("ETRAIN_JIT", None)
        engine._reset_theta_impl()
        base = summarize_chunk(
            engine.simulate_fleet_chunk(w, table, strategy="etrain"),
            GALAXY_S4_3G,
        ).to_dict()

        os.environ["ETRAIN_JIT"] = "1"
        engine._reset_theta_impl()
        jit = summarize_chunk(
            engine.simulate_fleet_chunk(w, table, strategy="etrain"),
            GALAXY_S4_3G,
        ).to_dict()
        assert jit == base
