"""Unit tests for ASCII plotting and report generation."""

import pytest

from repro.analysis.plot import ascii_bars, ascii_scatter
from repro.analysis.report import generate_report, write_report
from repro.cli import main


class TestAsciiBars:
    def test_bars_scale_to_peak(self):
        out = ascii_bars({"a": 100.0, "b": 50.0}, width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_values_shown(self):
        out = ascii_bars({"x": 12.34}, unit=" J")
        assert "12.3 J" in out

    def test_title(self):
        out = ascii_bars({"x": 1.0}, title="Energy")
        assert out.splitlines()[0] == "Energy"

    def test_zero_value_bar(self):
        out = ascii_bars({"zero": 0.0, "one": 1.0}, width=10)
        assert "|" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_bars({})
        with pytest.raises(ValueError):
            ascii_bars({"x": -1.0})
        with pytest.raises(ValueError):
            ascii_bars({"x": 1.0}, width=0)


class TestAsciiScatter:
    def test_plots_all_series_markers(self):
        out = ascii_scatter(
            {"one": [(0.0, 0.0), (1.0, 1.0)], "two": [(0.5, 0.5)]}
        )
        assert "o" in out and "+" in out
        assert "o=one" in out and "+=two" in out

    def test_extremes_on_border(self):
        out = ascii_scatter({"s": [(0.0, 0.0), (10.0, 10.0)]}, width=20, height=6)
        lines = [l for l in out.splitlines() if l.strip().startswith("|")]
        assert "o" in lines[0]  # max y at the top row
        assert "o" in lines[-1]  # min y at the bottom row

    def test_degenerate_single_point(self):
        out = ascii_scatter({"s": [(5.0, 5.0)]})
        assert "o" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_scatter({})
        with pytest.raises(ValueError):
            ascii_scatter({"s": [(0, 0)]}, width=2, height=2)


class TestReport:
    def test_generate_selected(self):
        report = generate_report(["fig6"], quick=True)
        assert "# eTrain reproduction report" in report
        assert "## fig6" in report
        assert "delay cost functions" in report

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            generate_report(["nope"])

    def test_write_report(self, tmp_path):
        path = write_report(tmp_path / "r.md", ["fig6"], quick=True)
        assert path.exists()
        assert "fig6" in path.read_text()

    def test_cli_report_command(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main(["report", "--out", str(out), "--only", "fig6"]) == 0
        assert out.exists()
