"""Unit tests for promotion delay / fast-dormancy modelling."""

import pytest

from repro.bandwidth.models import ConstantBandwidth
from repro.radio.interface import RadioInterface
from repro.radio.power_model import (
    GALAXY_S4_3G,
    GALAXY_S4_FAST_DORMANCY,
    PowerModel,
)


class TestFastDormancyModel:
    def test_tail_is_tiny(self):
        assert GALAXY_S4_FAST_DORMANCY.tail_time < 2.0
        assert GALAXY_S4_FAST_DORMANCY.full_tail_energy < 1.0

    def test_promotion_parameters(self):
        assert GALAXY_S4_FAST_DORMANCY.promotion_delay > 0
        assert GALAXY_S4_FAST_DORMANCY.promotion_energy > 0

    def test_base_model_has_no_promotion(self):
        assert GALAXY_S4_3G.promotion_delay == 0.0
        assert GALAXY_S4_3G.promotion_energy == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerModel(promotion_delay=-1.0)
        with pytest.raises(ValueError):
            PowerModel(promotion_energy=-1.0)


class TestColdStarts:
    def radio(self):
        return RadioInterface(GALAXY_S4_FAST_DORMANCY, ConstantBandwidth(100_000.0))

    def test_first_burst_is_cold(self):
        radio = self.radio()
        record = radio.transmit(10.0, 1_000, "data")
        assert radio.cold_starts == 1
        # Promotion delay folded into the burst duration.
        assert record.duration == pytest.approx(1.5 + 0.01)

    def test_burst_within_tail_is_warm(self):
        radio = self.radio()
        first = radio.transmit(0.0, 1_000, "data")
        record = radio.transmit(first.end + 0.5, 1_000, "data")  # tail is 1.5 s
        assert radio.cold_starts == 1
        assert record.duration == pytest.approx(0.01)

    def test_burst_after_tail_is_cold_again(self):
        radio = self.radio()
        radio.transmit(0.0, 1_000, "data")
        radio.transmit(100.0, 1_000, "data")
        assert radio.cold_starts == 2

    def test_signaling_energy_in_breakdown(self):
        radio = self.radio()
        radio.transmit(0.0, 1_000, "data")
        radio.transmit(100.0, 1_000, "data")
        breakdown = radio.energy_breakdown()
        assert breakdown.signaling == pytest.approx(2 * 1.2)
        assert breakdown.total == pytest.approx(
            breakdown.transmission + breakdown.tail + breakdown.signaling
        )

    def test_no_promotion_accounting_for_base_model(self):
        radio = RadioInterface(GALAXY_S4_3G, ConstantBandwidth(100_000.0))
        radio.transmit(0.0, 1_000, "data")
        radio.transmit(100.0, 1_000, "data")
        assert radio.cold_starts == 0
        assert radio.energy_breakdown().signaling == 0.0


class TestTradeoff:
    def test_fast_dormancy_cheaper_for_sparse_singletons(self):
        """Isolated bursts: cutting the tail wins despite promotions."""
        normal = RadioInterface(GALAXY_S4_3G, ConstantBandwidth(100_000.0))
        fast = RadioInterface(
            GALAXY_S4_FAST_DORMANCY, ConstantBandwidth(100_000.0)
        )
        for t in range(0, 1000, 100):
            normal.transmit(float(t), 2_000, "data")
            fast.transmit(float(t), 2_000, "data")
        assert fast.total_energy() < normal.total_energy()

    def test_fast_dormancy_worse_for_chained_bursts(self):
        """Closely spaced bursts: promotions pile up, keeping the tail
        wins — the paper's Sec. VII argument in one assertion."""
        normal = RadioInterface(GALAXY_S4_3G, ConstantBandwidth(100_000.0))
        fast = RadioInterface(
            GALAXY_S4_FAST_DORMANCY, ConstantBandwidth(100_000.0)
        )
        t_normal = t_fast = 0.0
        for _ in range(30):
            r = normal.transmit(t_normal, 2_000, "data")
            t_normal = r.end + 2.0  # inside the 17.5 s tail: no re-promotion
            r = fast.transmit(t_fast, 2_000, "data")
            t_fast = r.end + 2.0  # past the 1.5 s tail: cold every time
        assert fast.cold_starts == 30
        assert normal.total_energy() < fast.total_energy()
