"""Property-based engine invariants (issue: parallel runner test suite).

Whatever the strategy, seed, slot size or horizon, one simulation run
must conserve its inputs:

* every cargo packet is transmitted exactly once — its id appears in
  exactly one transmission record (flushed leftovers included);
* the analytic energy total equals the per-record recomputation
  (transmission + capped-gap tail + cold-start signaling);
* heartbeats are never dropped, delayed out of order, or duplicated.

These are checked over a randomized grid of strategies and engine
parameters via hypothesis, plus deterministic unit tests for the
decision-slot arithmetic and packet-id stability fixes.
"""

from __future__ import annotations

import math
from typing import List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.base import TransmissionStrategy
from repro.core.packet import Packet
from repro.sim.engine import Simulation
from repro.sim.parallel import ScenarioSpec, StrategySpec
from repro.sim.runner import default_scenario, run_strategy

#: Strategy specs spanning the warm-gated, channel-timed and trivial
#: families (channel_aware exercises estimator noise inside workers).
STRATEGY_SPECS = [
    StrategySpec.make("immediate"),
    StrategySpec.make("etrain", theta=1.0),
    StrategySpec.make("etrain", theta=0.2, warm_gate=False),
    StrategySpec.make("peres", omega=0.4),
    StrategySpec.make("etime", v=40_000.0),
    StrategySpec.make("periodic", period=45.0),
    StrategySpec.make("tailender"),
]


def _run(strategy_spec: StrategySpec, scenario_spec: ScenarioSpec):
    scenario = scenario_spec.build()
    strategy = strategy_spec.build(scenario)
    return run_strategy(strategy, scenario)


@st.composite
def _cases(draw):
    strategy = draw(st.sampled_from(STRATEGY_SPECS))
    seed = draw(st.integers(min_value=0, max_value=40))
    horizon = draw(st.sampled_from([240.0, 450.0, 600.0]))
    slot = draw(st.sampled_from([0.25, 0.5, 1.0, 1.5]))
    return strategy, ScenarioSpec(seed=seed, horizon=horizon, slot=slot)


@settings(max_examples=25, deadline=None)
@given(case=_cases())
def test_every_packet_transmitted_exactly_once(case):
    """Packet conservation: each id in exactly one record, flush included."""
    strategy_spec, scenario_spec = case
    result = _run(strategy_spec, scenario_spec)

    transmitted: List[int] = []
    for record in result.records:
        transmitted.extend(record.packet_ids)

    expected = sorted(p.packet_id for p in result.packets)
    assert sorted(transmitted) == expected
    assert len(set(transmitted)) == len(transmitted)
    # Everything the engine force-flushed still went over the radio.
    assert result.flushed_packets <= len(result.packets)
    assert all(p.is_scheduled for p in result.packets)


@settings(max_examples=25, deadline=None)
@given(case=_cases())
def test_energy_total_matches_per_record_recomputation(case):
    """The analytic total is exactly the sum of per-record energies."""
    strategy_spec, scenario_spec = case
    result = _run(strategy_spec, scenario_spec)
    scenario = scenario_spec.build()
    pm = scenario.power_model

    records = result.records
    for a, b in zip(records, records[1:]):
        assert b.start >= a.start
        assert b.start >= a.end - 1e-9  # the radio serialises bursts

    recomputed = 0.0
    for i, record in enumerate(records):
        recomputed += pm.transmission_energy(record.duration)
        gap = (
            records[i + 1].start - record.end
            if i + 1 < len(records)
            else math.inf
        )
        recomputed += pm.tail_energy(min(max(0.0, gap), pm.tail_time))
    # Cold-start signaling (promotion energy) is counted separately from
    # the burst log; fold it in from the breakdown's own field.
    recomputed += result.energy.signaling

    assert result.total_energy == pytest.approx(recomputed, rel=1e-12, abs=1e-9)
    assert result.energy.total == pytest.approx(
        result.energy.transmission + result.energy.tail + result.energy.signaling
    )


@settings(max_examples=25, deadline=None)
@given(case=_cases())
def test_heartbeats_never_dropped_or_reordered(case):
    """Each heartbeat rides exactly one burst, in departure order."""
    strategy_spec, scenario_spec = case
    result = _run(strategy_spec, scenario_spec)

    times = [hb.time for hb in result.heartbeats]
    assert times == sorted(times)

    # Greedily match heartbeats to carrying records in order: every
    # heartbeat must find its own later-or-equal burst that lists its
    # app, with record indices strictly increasing (no sharing, no
    # reordering).  Bare heartbeats yield "heartbeat" records; uplink
    # piggybacks carry the heartbeat app first in ``app_ids``.
    carrying = [
        r for r in result.records if r.kind in ("heartbeat", "piggyback")
    ]
    idx = 0
    for hb in result.heartbeats:
        while idx < len(carrying) and not (
            carrying[idx].start >= hb.time - 1e-9
            and hb.app_id in carrying[idx].app_ids
        ):
            idx += 1
        assert idx < len(carrying), f"heartbeat at t={hb.time} was dropped"
        idx += 1


# ---------------------------------------------------------------------------
# Decision-slot arithmetic (issue satellite: epsilon fix in
# Simulation._is_decision_slot)
# ---------------------------------------------------------------------------


class _ProbeStrategy(TransmissionStrategy):
    """Records every decision time; never holds or releases packets."""

    name = "probe"

    def __init__(self, granularity: float) -> None:
        self.slot = granularity
        self.decide_times: List[float] = []

    def on_arrival(self, packet: Packet, now: float) -> None:
        pass

    def decide(self, now: float, heartbeat_present: bool) -> List[Packet]:
        self.decide_times.append(now)
        return []


def _decision_times(engine_slot: float, granularity: float, horizon: float):
    probe = _ProbeStrategy(granularity)
    Simulation(
        probe, [], [], horizon=horizon, slot=engine_slot, flush_at_end=False
    ).run()
    return probe.decide_times


@pytest.mark.parametrize("engine_slot", [0.25, 0.5, 1.5])
def test_decision_each_slot_when_granularity_not_coarser(engine_slot):
    """granularity <= slot: the strategy decides every engine slot."""
    times = _decision_times(engine_slot, granularity=engine_slot, horizon=30.0)
    expected = [i * engine_slot for i in range(int(round(30.0 / engine_slot)))]
    assert times == pytest.approx(expected)


@pytest.mark.parametrize(
    "engine_slot,granularity",
    [(0.25, 1.0), (0.5, 60.0), (1.5, 60.0), (0.25, 0.3), (1.0, 60.0)],
)
def test_decisions_align_to_granularity(engine_slot, granularity):
    """One decision per granularity period, in the first covering slot."""
    horizon = 240.0
    times = _decision_times(engine_slot, granularity, horizon)
    # Expected: for each multiple m*g < horizon, the first slot start >= m*g.
    expected = []
    m = 0
    while m * granularity < horizon - 1e-9:
        point = m * granularity
        slot_index = math.ceil(point / engine_slot - 1e-9)
        start = slot_index * engine_slot
        if start < horizon:
            expected.append(start)
        m += 1
    assert times == pytest.approx(sorted(set(expected)))


def test_decision_slots_immune_to_float_drift():
    """0.1-style slots accumulate float error; every period still decides."""
    times = _decision_times(engine_slot=0.1, granularity=0.5, horizon=50.0)
    # 100 decision points (0.0, 0.5, ..., 49.5), none skipped or doubled.
    assert len(times) == 100
    diffs = [b - a for a, b in zip(times, times[1:])]
    assert all(d == pytest.approx(0.5, abs=1e-6) for d in diffs)


# ---------------------------------------------------------------------------
# Packet-id stability (issue satellite: Scenario.fresh_packets drift)
# ---------------------------------------------------------------------------


def test_fresh_packets_preserve_packet_ids():
    scenario = default_scenario(seed=3, horizon=600.0)
    original = [p.packet_id for p in scenario.packets]
    assert [p.packet_id for p in scenario.fresh_packets()] == original
    # And again: repeated copies never consume the global id counter.
    assert [p.packet_id for p in scenario.fresh_packets()] == original


def test_consecutive_runs_see_identical_packet_ids():
    """Two run_strategy calls on one scenario transmit the same ids."""
    scenario = default_scenario(seed=1, horizon=600.0)
    spec = StrategySpec.make("etrain", theta=1.0)

    def transmitted_ids():
        result = run_strategy(spec.build(scenario), scenario)
        return sorted(
            pid for record in result.records for pid in record.packet_ids
        )

    first, second = transmitted_ids(), transmitted_ids()
    assert first == second
    assert first == sorted(p.packet_id for p in scenario.packets)
