"""Unit tests for the heartbeat monitor (observation + prediction)."""

import pytest

from repro.heartbeat.monitor import HeartbeatMonitor


class TestObservation:
    def test_observe_and_listeners(self):
        mon = HeartbeatMonitor()
        seen = []
        mon.add_listener(lambda app, t: seen.append((app, t)))
        mon.observe("qq", 0.0)
        mon.observe("qq", 300.0)
        assert seen == [("qq", 0.0), ("qq", 300.0)]

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            HeartbeatMonitor().observe("qq", -1.0)

    def test_rejects_out_of_order(self):
        mon = HeartbeatMonitor()
        mon.observe("qq", 300.0)
        with pytest.raises(ValueError):
            mon.observe("qq", 100.0)

    def test_app_ids(self):
        mon = HeartbeatMonitor()
        mon.observe("b", 0.0)
        mon.observe("a", 1.0)
        assert mon.app_ids == ["a", "b"]

    def test_has_active_trains(self):
        mon = HeartbeatMonitor()
        assert not mon.has_active_trains()
        mon.declare_app("qq")
        assert mon.has_active_trains()


class TestCycleLearning:
    def test_learns_fixed_cycle(self):
        mon = HeartbeatMonitor()
        for t in (0.0, 300.0, 600.0, 900.0):
            mon.observe("qq", t)
        assert mon.cycle_of("qq") == pytest.approx(300.0)

    def test_folds_missed_observations(self):
        """A missed beat shows up as a 2x gap; learning folds it down."""
        mon = HeartbeatMonitor()
        for t in (0.0, 300.0, 900.0, 1200.0, 1500.0):  # 600 gap = miss
            mon.observe("qq", t)
        assert mon.cycle_of("qq") == pytest.approx(300.0)

    def test_declared_cycle_overrides_learning(self):
        mon = HeartbeatMonitor()
        mon.declare_app("qq", cycle=300.0)
        mon.observe("qq", 0.0)
        assert mon.cycle_of("qq") == 300.0

    def test_declare_rejects_bad_cycle(self):
        with pytest.raises(ValueError):
            HeartbeatMonitor().declare_app("qq", cycle=0.0)

    def test_unknown_cycle_none(self):
        mon = HeartbeatMonitor()
        mon.observe("qq", 0.0)  # one observation: no gaps yet
        assert mon.cycle_of("qq") is None
        assert mon.cycle_of("ghost") is None


class TestPrediction:
    def test_predict_next_simple(self):
        mon = HeartbeatMonitor()
        for t in (0.0, 300.0, 600.0):
            mon.observe("qq", t)
        assert mon.predict_next("qq", 700.0) == pytest.approx(900.0)

    def test_predict_spans_missed_beats(self):
        mon = HeartbeatMonitor()
        for t in (0.0, 300.0):
            mon.observe("qq", t)
        # Ask far in the future: prediction extrapolates n cycles.
        assert mon.predict_next("qq", 1000.0) == pytest.approx(1200.0)

    def test_predict_strictly_future(self):
        mon = HeartbeatMonitor()
        for t in (0.0, 300.0):
            mon.observe("qq", t)
        assert mon.predict_next("qq", 300.0) == pytest.approx(600.0)

    def test_predict_unknown_app(self):
        assert HeartbeatMonitor().predict_next("qq", 0.0) is None

    def test_predict_with_declared_cycle_single_observation(self):
        mon = HeartbeatMonitor()
        mon.declare_app("qq", cycle=300.0)
        mon.observe("qq", 100.0)
        assert mon.predict_next("qq", 150.0) == pytest.approx(400.0)

    def test_predict_next_any_picks_earliest(self):
        mon = HeartbeatMonitor()
        mon.declare_app("qq", cycle=300.0)
        mon.declare_app("whatsapp", cycle=240.0)
        mon.observe("qq", 0.0)
        mon.observe("whatsapp", 0.0)
        best = mon.predict_next_any(10.0)
        assert best == ("whatsapp", pytest.approx(240.0))

    def test_predict_next_any_empty(self):
        assert HeartbeatMonitor().predict_next_any(0.0) is None
