"""Session store and admission control under adversarial interleavings.

Hypothesis drives random interleavings of open/event/close/evict across
large device-id spaces and checks the store's contract:

* lookup is a single dict probe (O(1) per device) and always returns
  the session registered under exactly that id — no cross-device
  leakage of packets, heartbeats or decision state;
* LRU eviction never drops a session with pending cargo, and reports
  ``sessions_exhausted`` (retryable) when every resident session owes
  packets;
* the inbox sheds deterministically at the watermark — same offered
  sequence, same accepted/shed split, every time — and its
  ``retry_after`` hint is a pure function of the backlog.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bandwidth.models import ConstantBandwidth
from repro.serve.batcher import Inbox
from repro.serve.protocol import ProtocolError
from repro.serve.sessions import DeviceSession, SessionStore

pytestmark = pytest.mark.serve

SETTINGS = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

_BW = ConstantBandwidth(100_000.0)


def make_session(device):
    return DeviceSession(
        device, strategy="etrain", horizon=120.0, slot=1.0, bandwidth=_BW
    )


class TestSessionIsolation:
    @given(
        n_devices=st.integers(min_value=2, max_value=12),
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=11),  # device index
                st.sampled_from(["cargo", "hb"]),
            ),
            min_size=1,
            max_size=60,
        ),
    )
    @SETTINGS
    def test_no_cross_device_leakage(self, n_devices, ops):
        """Interleaved events land only in their own device's session."""
        store = SessionStore(capacity=4096)
        clocks = {}
        sent = {}
        for d in range(n_devices):
            dev = f"dev-{d}"
            store.put(dev, make_session(dev))
            clocks[dev] = 0.0
            sent[dev] = 0
        for device_index, kind in ops:
            dev = f"dev-{device_index % n_devices}"
            session = store.get(dev)
            t = clocks[dev]
            if kind == "cargo":
                session.on_cargo(t, "mail", 500, deadline=30.0)
                sent[dev] += 1
            else:
                session.on_heartbeat(t, "qq", 0, 120)
            clocks[dev] = t + 1.0
        for d in range(n_devices):
            dev = f"dev-{d}"
            session = store.get(dev)
            assert session.device == dev
            assert len(session.packets) == sent[dev]
            # Packet ids are session-local and gapless: proof no packet
            # crossed sessions in either direction.
            assert [p.packet_id for p in session.packets] == list(
                range(sent[dev])
            )
            assert all(p.app_id == "mail" for p in session.packets)

    def test_lookup_is_single_dict_probe(self):
        """get() cost does not depend on the population size."""
        store = SessionStore(capacity=5000)
        for d in range(3000):
            store.put(f"dev-{d}", make_session(f"dev-{d}"))
        # A store-wide scan would be O(n); the contract is one hash probe
        # plus an O(1) LRU move. Count dict operations via a tracing dict
        # stand-in for the timing assertion (timings flake in CI).
        probes = []
        real = store._sessions

        class Tracing(dict):
            def __getitem__(self, key):
                probes.append(key)
                return real[key]

        tracing = Tracing()
        store._sessions = tracing
        try:
            with pytest.raises(ProtocolError):
                store.get("absent")
        finally:
            store._sessions = real
        assert probes == ["absent"]

    @given(ops=st.lists(st.integers(min_value=0, max_value=9999), max_size=40))
    @SETTINGS
    def test_open_close_interleaving_keeps_store_consistent(self, ops):
        """Random open/close/touch traffic never corrupts membership."""
        store = SessionStore(capacity=64)
        alive = set()
        for op in ops:
            dev = f"dev-{op % 20}"
            action = op % 3
            if action == 0 and dev not in alive:
                store.put(dev, make_session(dev))
                alive.add(dev)
            elif action == 1 and dev in alive:
                store.pop(dev)
                alive.discard(dev)
            elif dev in alive:
                assert store.get(dev).device == dev
        assert set(store.devices()) == alive
        assert len(store) == len(alive)


class TestEviction:
    def test_eviction_prefers_lru_idle_session(self):
        store = SessionStore(capacity=2)
        store.put("a", make_session("a"))
        store.put("b", make_session("b"))
        store.get("a")  # b becomes least-recently-used
        evicted = store.put("c", make_session("c"))
        assert evicted == "b"
        assert set(store.devices()) == {"a", "c"}
        assert store.evictions == 1

    def test_eviction_never_drops_pending_cargo(self):
        store = SessionStore(capacity=2)
        loaded = make_session("loaded")
        # Cargo with no heartbeat yet: eTrain parks it in its queue.
        loaded.on_cargo(0.0, "mail", 500, deadline=30.0)
        assert loaded.pending_cargo > 0
        store.put("loaded", loaded)
        store.put("idle", make_session("idle"))
        store.get("loaded")  # "idle" is now LRU *and* safe to drop
        store.get("idle")  # ...no: re-touch makes "loaded" LRU again
        evicted = store.put("new", make_session("new"))
        # LRU order alone would pick "loaded"; the cargo guard skips it.
        assert evicted == "idle"
        assert "loaded" in store

    def test_all_sessions_loaded_is_retryable_exhaustion(self):
        store = SessionStore(capacity=2)
        for dev in ("a", "b"):
            session = make_session(dev)
            session.on_cargo(0.0, "mail", 500, deadline=30.0)
            store.put(dev, session)
        with pytest.raises(ProtocolError) as excinfo:
            store.put("c", make_session("c"))
        assert excinfo.value.code == "sessions_exhausted"
        assert excinfo.value.retryable
        # The failed put must not have half-registered the new session.
        assert set(store.devices()) == {"a", "b"}

    @given(
        capacity=st.integers(min_value=1, max_value=8),
        loaded_mask=st.lists(st.booleans(), min_size=12, max_size=12),
    )
    @SETTINGS
    def test_thousands_of_opens_never_lose_cargo(self, capacity, loaded_mask):
        """Churning device ids through a tiny store: cargo survives."""
        store = SessionStore(capacity=capacity)
        cargo_holders = set()
        for i, loaded in enumerate(loaded_mask):
            dev = f"dev-{i}"
            session = make_session(dev)
            if loaded:
                session.on_cargo(0.0, "mail", 500, deadline=30.0)
            try:
                store.put(dev, session)
            except ProtocolError as exc:
                assert exc.code == "sessions_exhausted"
                continue
            if loaded:
                cargo_holders.add(dev)
        # Every cargo-holding session that was admitted is still there.
        resident = set(store.devices())
        assert cargo_holders <= resident
        for dev in cargo_holders:
            assert store.get(dev).pending_cargo > 0


class TestSessionOrdering:
    def test_out_of_order_event_rejected(self):
        session = make_session("d")
        session.on_heartbeat(10.0, "qq", 0, 120)
        with pytest.raises(ProtocolError) as excinfo:
            session.on_cargo(9.0, "mail", 500)
        assert excinfo.value.code == "out_of_order"

    def test_event_past_horizon_rejected(self):
        session = make_session("d")
        with pytest.raises(ProtocolError) as excinfo:
            session.on_heartbeat(120.0, "qq", 0, 120)
        assert excinfo.value.code == "past_horizon"

    def test_close_is_terminal(self):
        session = make_session("d")
        session.close()
        with pytest.raises(ProtocolError) as excinfo:
            session.on_heartbeat(1.0, "qq", 0, 120)
        assert excinfo.value.code == "session_closed"
        with pytest.raises(ProtocolError):
            session.close()

    def test_unknown_app_rejected_without_state_change(self):
        session = make_session("d")
        with pytest.raises(ProtocolError):
            session.on_cargo(0.0, "no-such-app", 500)
        assert session.packets == []
        assert session.pending_cargo == 0


class TestInboxShedding:
    @given(
        capacity=st.integers(min_value=1, max_value=32),
        offers=st.integers(min_value=0, max_value=120),
        drains=st.lists(
            st.integers(min_value=1, max_value=16), max_size=8
        ),
    )
    @SETTINGS
    def test_deterministic_watermark_shedding(self, capacity, offers, drains):
        """Two inboxes fed the same sequence shed the same frames."""

        def run():
            inbox = Inbox(capacity=capacity)
            accepted = []
            drain_iter = iter(drains + [0] * offers)
            for i in range(offers):
                if inbox.offer(i):
                    accepted.append(i)
                if i % 7 == 3:  # interleave some drains, deterministically
                    inbox.drain(next(drain_iter) or 1)
            return accepted, inbox.accepted, inbox.shed, len(inbox)

        assert run() == run()
        accepted, n_accepted, n_shed, backlog = run()
        assert n_accepted + n_shed == offers
        assert backlog <= capacity

    def test_watermark_below_capacity_sheds_early(self):
        inbox = Inbox(capacity=10, watermark=3)
        results = [inbox.offer(i) for i in range(5)]
        assert results == [True, True, True, False, False]
        assert inbox.shed == 2
        assert len(inbox) == 3

    def test_retry_after_is_pure_function_of_backlog(self):
        inbox = Inbox(capacity=10, watermark=3, retry_cost_s=0.001)
        for i in range(3):
            inbox.offer(i)
        assert inbox.retry_after() == inbox.retry_after() == 0.003
        inbox.drain(2)
        assert inbox.retry_after() == 0.001

    def test_drain_is_fifo(self):
        inbox = Inbox(capacity=10)
        for i in range(6):
            inbox.offer(i)
        assert inbox.drain(4) == [0, 1, 2, 3]
        assert inbox.drain(4) == [4, 5]
        assert inbox.drain(4) == []
