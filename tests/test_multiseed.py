"""Unit tests for multi-seed replication statistics."""

import pytest

from repro.analysis.multiseed import (
    MetricSummary,
    replicate,
    replicate_strategy,
    summarize,
)
from repro.baselines.immediate import ImmediateStrategy


class TestSummarize:
    def test_basic_stats(self):
        s = summarize("energy", [10.0, 12.0, 14.0])
        assert s.mean == pytest.approx(12.0)
        assert s.minimum == 10.0 and s.maximum == 14.0
        assert s.n == 3
        assert s.stdev == pytest.approx(2.0)

    def test_single_value(self):
        s = summarize("x", [5.0])
        assert s.stdev == 0.0
        assert s.ci95_half_width == 0.0

    def test_ci_shrinks_with_n(self):
        narrow = summarize("x", [1.0, 2.0] * 10)
        wide = summarize("x", [1.0, 2.0])
        assert narrow.ci95_half_width < wide.ci95_half_width

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize("x", [])

    def test_str_format(self):
        assert "±" in str(summarize("x", [1.0, 2.0]))


class TestReplicate:
    def test_collects_all_keys(self):
        out = replicate(lambda seed: {"a": seed, "b": seed * 2}, seeds=[1, 2, 3])
        assert out["a"].mean == pytest.approx(2.0)
        assert out["b"].mean == pytest.approx(4.0)
        assert out["a"].n == 3

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(lambda s: {"a": 1.0}, seeds=[])


class TestReplicateStrategy:
    def test_runs_across_seeds(self):
        out = replicate_strategy(
            lambda scenario: ImmediateStrategy(),
            seeds=(0, 1, 2),
            horizon=900.0,
        )
        assert out["total_energy_j"].n == 3
        assert out["total_energy_j"].mean > 0
        # Different seeds give different traces: nonzero spread.
        assert out["total_energy_j"].stdev > 0
