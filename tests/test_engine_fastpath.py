"""Dense-vs-event engine equivalence: the fast path must be bit-identical.

The event-horizon loop (``Simulation(dense=False)``, the default) earns
its speedup purely by *not visiting* slots where provably nothing can
happen; every slot it does visit runs the same expressions in the same
order as the dense reference loop.  These tests enforce the contract at
full strength — exact float equality of every record, energy total,
per-packet timestamp and summary metric — across every registered
baseline on the golden scenario plus a battery of randomized scenarios,
including non-dyadic slot grids where the engine's exact-arithmetic
shortcuts must stand down.  The strategy list and the run/compare
helpers come from the shared conformance table
(``tests/strategy_conformance.py``), so new baselines enroll here
automatically.
"""

from __future__ import annotations

import math
from typing import List

import pytest

from repro.baselines.base import TransmissionStrategy
from repro.core.packet import Packet
from repro.sim.engine import DecisionWindow, Simulation
from repro.sim.parallel import STRATEGY_BUILDERS
from repro.sim.runner import Scenario, default_scenario

from tests.strategy_conformance import (
    ALL_STRATEGIES,
    assert_bit_identical,
    conformance_scenarios,
    run_both,
)

_SCENARIOS = conformance_scenarios(21)


@pytest.mark.parametrize("name", ALL_STRATEGIES)
def test_golden_scenario_equivalence(name):
    scenario = default_scenario(seed=0)
    dense, event = run_both(name, scenario)
    assert_bit_identical(dense, event)


@pytest.mark.parametrize("name", ALL_STRATEGIES)
def test_randomized_scenario_equivalence(name):
    for scenario in _SCENARIOS:
        dense, event = run_both(name, scenario)
        try:
            assert_bit_identical(dense, event)
        except AssertionError:  # pragma: no cover - diagnostic context
            spec = (
                f"seed-ish scenario horizon={scenario.horizon} "
                f"slot={scenario.slot} trains={len(scenario.train_generators)}"
            )
            raise AssertionError(f"{name} diverged on {spec}") from None


def _simulate(strategy: TransmissionStrategy, scenario: Scenario, dense: bool):
    sim = Simulation(
        strategy,
        scenario.train_generators,
        scenario.fresh_packets(),
        power_model=scenario.power_model,
        bandwidth=scenario.bandwidth,
        horizon=scenario.horizon,
        slot=scenario.slot,
        dense=dense,
    )
    return sim, sim.run()


class TestSlotSkipping:
    """The event loop must actually skip, and only when allowed."""

    def test_sparse_strategy_visits_few_slots(self):
        scenario = default_scenario(seed=0)
        strategy = STRATEGY_BUILDERS["periodic"](scenario, period=300.0)
        sim, _ = _simulate(strategy, scenario, dense=False)
        n_slots = int(math.ceil(scenario.horizon / scenario.slot))
        assert sim.loop_iterations < n_slots / 10

    def test_dense_flag_forces_reference_loop(self):
        scenario = default_scenario(seed=0)
        strategy = STRATEGY_BUILDERS["periodic"](scenario, period=300.0)
        sim, _ = _simulate(strategy, scenario, dense=True)
        assert sim.loop_iterations == int(
            math.ceil(scenario.horizon / scenario.slot)
        )

    def test_default_protocol_strategy_runs_dense(self):
        """PerES keeps the base never-idle/no-horizon protocol, so the
        engine detects there is nothing to skip and steps densely."""
        scenario = default_scenario(seed=0)
        strategy = STRATEGY_BUILDERS["peres"](scenario)
        sim, _ = _simulate(strategy, scenario, dense=False)
        assert sim.loop_iterations == int(
            math.ceil(scenario.horizon / scenario.slot)
        )


class ClockKeepingPeriodic(TransmissionStrategy):
    """Periodic releaser that reconstructs its full decision clock.

    Keeps the base never-idle protocol but promises quiet periods via
    ``decision_horizon`` and replays the skipped decision times through
    ``on_decisions_skipped`` — the strategy-visible clock must therefore
    be identical under both engine paths.
    """

    def __init__(self, period: float = 45.0, granularity: float = 3.0) -> None:
        self.slot = granularity
        self.period = period
        self.name = "clock-keeper"
        self._queue: List[Packet] = []
        self._last_fire = 0.0
        self.clock: List[float] = []

    def on_arrival(self, packet: Packet, now: float) -> None:
        self._queue.append(packet)

    @property
    def waiting_count(self) -> int:
        return len(self._queue)

    def decide(self, now: float, heartbeat_present: bool) -> List[Packet]:
        self.clock.append(now)
        if now - self._last_fire + 1e-9 < self.period:
            return []
        self._last_fire = now
        released, self._queue = self._queue, []
        return released

    def flush(self, now: float) -> List[Packet]:
        released, self._queue = self._queue, []
        return released

    def decision_horizon(self, now: float) -> float:
        return self._last_fire + self.period - 1e-9 - 1e-6 * max(
            self.period, 1.0
        )

    def on_decisions_skipped(self, window: DecisionWindow) -> None:
        self.clock.extend(window.times())


class TestDecisionWindowReplay:
    """on_decisions_skipped hands back exactly the elided decision times."""

    @pytest.mark.parametrize(
        "slot,period,granularity",
        [
            (1.0, 45.0, 3.0),  # exact grid, grid-backed windows
            (1.0, 45.0, 1.0),  # exact grid, every slot decides
            (0.3, 45.0, 2.1),  # inexact grid, times-backed windows
            (0.7, 30.0, 0.7),  # inexact grid, every slot decides
        ],
    )
    def test_clock_identical_across_paths(self, slot, period, granularity):
        scenario = default_scenario(seed=3, horizon=900.0, train_count=2)
        scenario.slot = slot
        keeper_dense = ClockKeepingPeriodic(period, granularity)
        keeper_event = ClockKeepingPeriodic(period, granularity)
        _, dense = _simulate(keeper_dense, scenario, dense=True)
        sim, event = _simulate(keeper_event, scenario, dense=False)
        assert_bit_identical(dense, event)
        assert keeper_event.clock == keeper_dense.clock
        # The replayed clock must cover every decision the engine counted.
        assert len(keeper_dense.clock) == dense.decisions
        if granularity > slot:
            n_slots = int(math.ceil(scenario.horizon / scenario.slot))
            assert sim.loop_iterations < n_slots

    def test_decision_window_times_roundtrip(self):
        """Grid- and times-backed windows agree on their contents."""
        # slot=1, granularity=3: multiples 2..6 are served at t=6..18.
        grid = DecisionWindow.from_grid(1.0, 3.0, 3e-9, 2, 1, 6)
        assert grid.count == 5
        assert grid.times() == [6.0, 9.0, 12.0, 15.0, 18.0]
        times = DecisionWindow.from_times(grid.times())
        assert times.count == grid.count
        assert times.times() == grid.times()
        for probe in [0.0, 5.9, 6.0, 6.1, 14.9, 15.0, 18.0, 18.1, 100.0]:
            assert grid.first_at_or_after(probe) == times.first_at_or_after(
                probe
            )
            assert grid.next_after(probe) == times.next_after(probe)
