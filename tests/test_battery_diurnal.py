"""Unit tests for the battery model, diurnal workload and day experiment."""

import pytest

from repro.sim.battery import GALAXY_S4_BATTERY, Battery
from repro.workload.diurnal import (
    DAY_SECONDS,
    DiurnalProfile,
    NonHomogeneousPoisson,
)


class TestBattery:
    def test_capacity_joules(self):
        # 1700 mAh at 3.7 V = 1.7 * 3600 * 3.7 J = 22644 J.
        assert GALAXY_S4_BATTERY.capacity_joules == pytest.approx(22_644.0)

    def test_paper_heartbeat_arithmetic(self):
        """Sec. II-D: 12+ heartbeats/hour × 10.91 J over 10 h is ≥6 % of
        the 1700 mAh battery."""
        heartbeat_energy = 12 * 10.91 * 10
        assert GALAXY_S4_BATTERY.percent_used(heartbeat_energy) >= 5.7

    def test_percent_used(self):
        b = Battery(capacity_mah=1000.0, voltage=3.6)
        assert b.percent_used(b.capacity_joules / 2) == pytest.approx(50.0)

    def test_lifetime_hours(self):
        b = Battery(capacity_mah=1000.0, voltage=3.6)
        # 12960 J / 0.36 W = 36000 s = 10 h.
        assert b.lifetime_hours(0.36) == pytest.approx(10.0)

    def test_standby_hours_equivalent(self):
        hours = GALAXY_S4_BATTERY.standby_hours_equivalent(648.0, 0.018)
        assert hours == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Battery(capacity_mah=0.0)
        with pytest.raises(ValueError):
            GALAXY_S4_BATTERY.fraction_used(-1.0)
        with pytest.raises(ValueError):
            GALAXY_S4_BATTERY.lifetime_hours(0.0)


class TestDiurnalProfile:
    def test_mean_multiplier_near_one(self):
        profile = DiurnalProfile()
        samples = [profile.multiplier(i * 600.0) for i in range(144)]
        assert sum(samples) / len(samples) == pytest.approx(1.0, rel=0.01)

    def test_night_quieter_than_evening(self):
        profile = DiurnalProfile()
        night = profile.multiplier(4 * 3600.0)  # 4 AM
        evening = profile.multiplier(21 * 3600.0)  # 9 PM
        assert evening > 3 * night

    def test_periodic_across_days(self):
        profile = DiurnalProfile()
        assert profile.multiplier(3600.0) == pytest.approx(
            profile.multiplier(DAY_SECONDS + 3600.0)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalProfile(night_floor=1.5)


class TestNHPP:
    def test_deterministic_per_seed(self):
        a = NonHomogeneousPoisson(100.0, seed=3).arrivals(0.0, DAY_SECONDS)
        b = NonHomogeneousPoisson(100.0, seed=3).arrivals(0.0, DAY_SECONDS)
        assert a == b

    def test_daily_average_rate_preserved(self):
        proc = NonHomogeneousPoisson(100.0, seed=1)
        arrivals = proc.arrivals(0.0, DAY_SECONDS)
        empirical_rate = len(arrivals) / DAY_SECONDS
        assert empirical_rate == pytest.approx(0.01, rel=0.12)

    def test_diurnal_concentration(self):
        """More arrivals in the evening window than overnight."""
        arrivals = NonHomogeneousPoisson(60.0, seed=2).arrivals(0.0, DAY_SECONDS)
        night = sum(1 for t in arrivals if 2 * 3600 <= t < 6 * 3600)
        evening = sum(1 for t in arrivals if 19 * 3600 <= t < 23 * 3600)
        assert evening > 2 * night

    def test_sorted_and_in_window(self):
        arrivals = NonHomogeneousPoisson(50.0, seed=0).arrivals(100.0, 5000.0)
        assert arrivals == sorted(arrivals)
        assert all(100.0 <= t < 5000.0 for t in arrivals)

    def test_validation(self):
        with pytest.raises(ValueError):
            NonHomogeneousPoisson(0.0)


class TestDaylong:
    def test_day_scenario_and_run(self):
        from repro.experiments.daylong import build_day_scenario, run_daylong

        scenario = build_day_scenario(seed=0)
        assert scenario.horizon == DAY_SECONDS
        assert 100 < len(scenario.packets) < 3000

        baseline, etrain = run_daylong(seed=0)
        assert etrain.energy_j < baseline.energy_j
        assert 0 < etrain.battery_pct < baseline.battery_pct < 150
        assert etrain.mean_delay_s > baseline.mean_delay_s

    def test_rate_scale_validation(self):
        from repro.experiments.daylong import build_day_scenario

        with pytest.raises(ValueError):
            build_day_scenario(rate_scale=0.0)
