"""Server-vs-batch equivalence: the tentpole oracle of `repro.serve`.

Replaying a fleet workload's per-device event streams through the
serving stack must be *bit-identical* to the batch run of the same
arrays — same burst sequence (starts, durations, sizes, kinds, packet
ids), same decision counts, same per-device fleet aggregates — because
server and simulator execute the same decision kernel
(:mod:`repro.sim.decision`).  Checked three ways:

* in-process :class:`~repro.serve.server.ServeApp` replay vs the scalar
  reference path (`simulate_reference_chunk`) for every vectorized
  strategy **and** a scalar-fallback one (peres) — exact equality,
  survives a JSON round-trip (canonical wire encoding);
* the merged serve aggregates vs the *vectorized* fleet engine at the
  fleet suite's own tolerance (rtol 1e-6), closing the triangle
  serve == scalar == vectorized;
* one strategy over real TCP against a live :class:`EtrainServer`,
  certifying that framing, admission control and micro-batching do not
  perturb the numbers.

Plus a hypothesis purity check of the extracted
:func:`repro.sim.decision.decide` step: same (state, event) in, same
outcome out, caller's state never mutated.
"""

import asyncio
import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bandwidth.models import ConstantBandwidth
from repro.bandwidth.synth import wuhan_bandwidth_model
from repro.radio.power_model import GALAXY_S4_3G
from repro.serve.loadgen import device_frames
from repro.serve.server import EtrainServer, ServeApp, ServeConfig
from repro.sim.fleet.aggregate import FleetChunkSummary
from repro.sim.fleet.reference import (
    _device_scenario,
    reference_profiles,
    summarize_scalar_result,
)
from repro.sim.fleet.workload import synthesize_fleet
from repro.sim.parallel.specs import STRATEGY_BUILDERS
from repro.sim.runner import run_strategy

pytestmark = pytest.mark.serve

#: Strategies certified bit-identical through per-device sessions.
#: (peres is registry-vectorized since ISSUE 7 but still exercises the
#: scalar decision engine here — sessions always run the scalar path.
#: harvest_lazy additionally threads a HarvestingBattery through the
#: session's DecisionState: the scalar-fallback battery gating must be
#: identical between a served device and the batch engine, drain for
#: drain.)
STRATEGIES = [
    "etrain",
    "immediate",
    "periodic",
    "tailender",
    "peres",
    "adaptive",
    "harvest_lazy",
    "common_deadline",
    "aoi_download",
]

_BW = wuhan_bandwidth_model()
_WORKLOAD = synthesize_fleet(3, 450.0, seed=7)
_PROFILES = reference_profiles(_WORKLOAD)


def batch_device_run(workload, device, strategy):
    """Ground truth: one device through the scalar batch engine."""
    scenario = _device_scenario(workload, device, _PROFILES, _BW, GALAXY_S4_3G)
    strat = STRATEGY_BUILDERS[strategy](scenario)
    return run_strategy(strat, scenario)


def tx_key(record):
    return (
        record.start,
        record.duration,
        record.size_bytes,
        record.kind,
        tuple(record.app_ids),
        tuple(record.packet_ids),
    )


def wire_tx_key(tx):
    return (
        tx["start"],
        tx["duration"],
        tx["size"],
        tx["kind"],
        tuple(tx["apps"]),
        tuple(tx["packet_ids"]),
    )


def replay_device(app, workload, device, strategy):
    """Drive one device's stream through a ServeApp; collect tx + close."""
    streamed = []
    close = None
    for frame in device_frames(workload, device, strategy=strategy):
        # Round-trip through the wire encoding: what a TCP client sees.
        response = json.loads(json.dumps(app.handle(frame)))
        assert response["ok"], response
        streamed.extend(wire_tx_key(tx) for tx in response.get("tx", []))
        if response["op"] == "close":
            close = response
    assert close is not None
    return streamed, close


class TestServeMatchesBatchScalar:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_bit_identical_per_device(self, strategy):
        app = ServeApp(ServeConfig())
        merged = FleetChunkSummary()
        for device in range(_WORKLOAD.n_devices):
            batch = batch_device_run(_WORKLOAD, device, strategy)
            streamed, close = replay_device(app, _WORKLOAD, device, strategy)
            # Burst-for-burst: starts, durations, sizes, kinds, packet ids.
            assert streamed == [tx_key(r) for r in batch.records]
            assert close["decisions"] == batch.decisions
            assert close["summary"] == batch.summary()
            batch_fleet = summarize_scalar_result(batch, _PROFILES)
            assert close["fleet"] == json.loads(
                json.dumps(batch_fleet.to_dict())
            )
            merged = merged.merge(FleetChunkSummary.from_dict(close["fleet"]))
        # The store drained: every session was closed and removed.
        assert len(app.store) == 0
        assert merged.devices == _WORKLOAD.n_devices

    @pytest.mark.parametrize("strategy", ["etrain", "immediate"])
    def test_merged_aggregates_match_vectorized_fleet(self, strategy):
        from repro.sim.fleet.accounting import summarize_chunk
        from repro.sim.fleet.channel import ChannelTable
        from repro.sim.fleet.engine import simulate_fleet_chunk

        app = ServeApp(ServeConfig())
        merged = FleetChunkSummary()
        for device in range(_WORKLOAD.n_devices):
            _, close = replay_device(app, _WORKLOAD, device, strategy)
            merged = merged.merge(FleetChunkSummary.from_dict(close["fleet"]))
        table = ChannelTable.from_model(_BW, _WORKLOAD.horizon)
        raw = simulate_fleet_chunk(_WORKLOAD, table, strategy=strategy)
        vec = summarize_chunk(raw, GALAXY_S4_3G).summary()
        srv = merged.summary()
        for key in ("total_energy_j", "piggyback_ratio", "packets", "bursts"):
            np.testing.assert_allclose(srv[key], vec[key], rtol=1e-6)


class TestBatchOp:
    """The bulk decision path: ``batch`` frames vs the fleet engine.

    ISSUE 7 satellite: serve-vs-batch parity for the batched path —
    one ``batch`` request must return (modulo JSON round-trip) exactly
    the vectorized engine's chunk summary, coalesced ranges must answer
    bit-identically to serving each range alone, and the merged bulk
    aggregates must meet the scalar-session replay at the fleet suite's
    tolerance.
    """

    HORIZON = 450.0
    SEED = 7

    @staticmethod
    def _engine_summary(devices, strategy, device_offset=0):
        from repro.bandwidth.synth import wuhan_bandwidth_model as bw_model
        from repro.sim.fleet.accounting import summarize_chunk
        from repro.sim.fleet.channel import ChannelTable
        from repro.sim.fleet.engine import simulate_fleet_chunk

        w = synthesize_fleet(
            devices, TestBatchOp.HORIZON, TestBatchOp.SEED,
            device_offset=device_offset,
        )
        table = ChannelTable.from_model(bw_model(), TestBatchOp.HORIZON)
        raw = simulate_fleet_chunk(w, table, strategy=strategy)
        return summarize_chunk(raw, GALAXY_S4_3G)

    def _batch_frame(self, devices, offset=0, strategy="etrain"):
        return {
            "op": "batch",
            "strategy": strategy,
            "devices": devices,
            "device_offset": offset,
            "horizon": self.HORIZON,
            "seed": self.SEED,
        }

    def test_batch_matches_fleet_engine_exactly(self):
        app = ServeApp(ServeConfig())
        response = json.loads(
            json.dumps(app.handle(self._batch_frame(5)))
        )
        assert response["ok"], response
        assert response["coalesced"] == 1
        engine = self._engine_summary(5, "etrain")
        assert response["fleet"] == json.loads(json.dumps(engine.to_dict()))
        assert response["packets"] == engine.packets
        assert response["bursts"] == engine.bursts

    def test_coalesced_ranges_bit_identical_to_lone_requests(self):
        app = ServeApp(ServeConfig())
        split = [self._batch_frame(3, 0), self._batch_frame(2, 3)]
        fused = app.handle_batch([dict(f) for f in split])
        assert [r["coalesced"] for r in fused] == [2, 2]
        lone = [app.handle(dict(f)) for f in split]
        for f, l in zip(fused, lone):
            assert f["fleet"] == l["fleet"]
        # And each lone range is itself the engine run of that range.
        for f, (n, off) in zip(fused, ((3, 0), (2, 3))):
            assert f["fleet"] == self._engine_summary(n, "etrain", off).to_dict()
        # Merging the slices == merging standalone chunk runs (exact);
        # vs the unsplit 5-device chunk only the merge's association
        # order differs, so floats agree to round-off.
        merged = FleetChunkSummary.from_dict(fused[0]["fleet"]).merge(
            FleetChunkSummary.from_dict(fused[1]["fleet"])
        )
        standalone = self._engine_summary(3, "etrain", 0).merge(
            self._engine_summary(2, "etrain", 3)
        )
        assert merged.to_dict() == standalone.to_dict()
        whole = self._engine_summary(5, "etrain")
        assert merged.packets == whole.packets
        assert merged.bursts == whole.bursts
        assert merged.delay_sum == pytest.approx(whole.delay_sum, rel=1e-9)
        assert merged.energy_total_j == pytest.approx(
            whole.energy_total_j, rel=1e-9
        )

    def test_batch_meets_scalar_sessions(self):
        """Close the triangle: bulk == engine == per-device sessions."""
        app = ServeApp(ServeConfig())
        bulk = app.handle(
            {
                "op": "batch",
                "strategy": "etrain",
                "devices": _WORKLOAD.n_devices,
                "horizon": _WORKLOAD.horizon,
                "seed": 7,
            }
        )
        merged = FleetChunkSummary()
        for device in range(_WORKLOAD.n_devices):
            _, close = replay_device(app, _WORKLOAD, device, "etrain")
            merged = merged.merge(FleetChunkSummary.from_dict(close["fleet"]))
        srv = merged.summary()
        blk = FleetChunkSummary.from_dict(bulk["fleet"]).summary()
        for key in ("total_energy_j", "piggyback_ratio", "packets", "bursts"):
            np.testing.assert_allclose(blk[key], srv[key], rtol=1e-6)

    def test_batch_runs_channel_aware(self):
        """channel_aware gained a fleet kernel (ISSUE 8), so the bulk
        path now serves it like any other vectorized strategy."""
        app = ServeApp(ServeConfig())
        response = app.handle(self._batch_frame(2, strategy="channel_aware"))
        assert response["ok"], response
        engine = self._engine_summary(2, "channel_aware")
        assert response["fleet"] == json.loads(json.dumps(engine.to_dict()))

    def test_batch_rejects_scalar_only_strategy(self, monkeypatch):
        """No built-in strategy is scalar-only anymore; the guard stays
        for future strategies, exercised with a kernel deregistered."""
        from repro.sim.fleet import registry

        monkeypatch.delitem(registry._KERNELS, "channel_aware")
        app = ServeApp(ServeConfig())
        response = app.handle(self._batch_frame(2, strategy="channel_aware"))
        assert not response["ok"]
        assert response["error"]["code"] == "scalar_only"

    def test_mixed_micro_batch_answers_everything_in_order(self):
        app = ServeApp(ServeConfig())
        frames = [
            dict(self._batch_frame(2, 0), id=0),
            {"op": "hello", "id": 1},
            dict(self._batch_frame(2, 2), id=2),
        ]
        responses = app.handle_batch(frames)
        assert [r["id"] for r in responses] == [0, 1, 2]
        assert all(r["ok"] for r in responses)
        # The hello broke contiguity: no fusion across it.
        assert responses[0]["coalesced"] == 1
        assert responses[2]["coalesced"] == 1

    def test_bulk_loadgen_over_tcp(self):
        """Bulk frames through the live stack coalesce and aggregate."""
        from repro.serve.loadgen import LoadgenConfig, run_loadgen
        from repro.serve.server import EtrainServer

        async def _run():
            server = EtrainServer(ServeConfig())
            await server.start()
            try:
                return await run_loadgen(
                    LoadgenConfig(
                        port=server.port,
                        devices=4,
                        horizon=self.HORIZON,
                        seed=self.SEED,
                        bulk=True,
                        bulk_ranges=2,
                    )
                )
            finally:
                await server.stop()

        report = asyncio.run(_run())
        engine = self._engine_summary(4, "etrain")
        assert report["packets"] == engine.packets
        assert report["bursts"] == engine.bursts
        assert report["requests"] == 2


class TestServeOverTcp:
    def test_live_server_bit_identical(self):
        """The full stack — sockets, framing, inbox, batcher — changes nothing."""
        strategy = "etrain"

        async def replay_over_tcp():
            server = EtrainServer(ServeConfig())
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                out = {}
                for device in range(_WORKLOAD.n_devices):
                    frames = device_frames(_WORKLOAD, device, strategy=strategy)
                    for frame in frames:
                        writer.write(
                            (json.dumps(frame) + "\n").encode("utf-8")
                        )
                    await writer.drain()
                    streamed, close = [], None
                    buf = b""
                    got = 0
                    while got < len(frames):
                        data = await reader.read(65536)
                        assert data, "server closed early"
                        buf += data
                        *lines, buf = buf.split(b"\n")
                        for line in lines:
                            response = json.loads(line)
                            assert response["ok"], response
                            got += 1
                            streamed.extend(
                                wire_tx_key(tx)
                                for tx in response.get("tx", [])
                            )
                            if response["op"] == "close":
                                close = response
                    out[device] = (streamed, close)
                writer.close()
                await writer.wait_closed()
                return out
            finally:
                await server.stop()

        by_device = asyncio.run(replay_over_tcp())
        for device in range(_WORKLOAD.n_devices):
            batch = batch_device_run(_WORKLOAD, device, strategy)
            streamed, close = by_device[device]
            assert streamed == [tx_key(r) for r in batch.records]
            assert close["decisions"] == batch.decisions
            assert close["summary"] == json.loads(
                json.dumps(batch.summary())
            )


class TestMetricsEndpoint:
    """The ``--metrics-port`` introspection listener (plain HTTP GET)."""

    def test_snapshot_reflects_served_traffic(self):
        from repro.obs.metrics import MetricsRegistry, metrics_scope

        async def _run():
            server = EtrainServer(ServeConfig(metrics_port=0))
            await server.start()
            try:
                assert server.metrics_port not in (None, 0)
                # Serve one frame so the counters have something to say.
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b'{"op": "hello"}\n')
                await writer.drain()
                assert json.loads(await reader.readline())["ok"]
                writer.close()
                await writer.wait_closed()

                # A GET from a plain socket speaking minimal HTTP/1.1.
                mr, mw = await asyncio.open_connection(
                    "127.0.0.1", server.metrics_port
                )
                mw.write(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
                await mw.drain()
                raw = await mr.read()
                mw.close()
                await mw.wait_closed()

                # And a non-GET is refused without a snapshot.
                pr, pw = await asyncio.open_connection(
                    "127.0.0.1", server.metrics_port
                )
                pw.write(b"POST / HTTP/1.1\r\nHost: x\r\n\r\n")
                await pw.drain()
                refused = await pr.read()
                pw.close()
                await pw.wait_closed()
                return raw, refused
            finally:
                await server.stop()

        with metrics_scope(MetricsRegistry()):
            raw, refused = asyncio.run(_run())
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK")
        assert b"Content-Type: application/json" in head
        snapshot = json.loads(body)
        assert snapshot["requests"] == 1
        assert snapshot["errors"] == 0
        assert snapshot["sessions"] == 0
        assert snapshot["inbox"]["accepted"] == 1
        assert snapshot["inbox"]["shed"] == 0
        assert snapshot["inbox"]["backlog"] == 0
        assert snapshot["metrics"]["serve.frames"]["value"] == 1.0
        assert refused.startswith(b"HTTP/1.1 405")

    def test_disabled_by_default(self):
        async def _run():
            server = EtrainServer(ServeConfig())
            await server.start()
            try:
                return server.metrics_port
            finally:
                await server.stop()

        assert asyncio.run(_run()) is None

    def test_cli_flag_reaches_the_config(self):
        from repro.cli import build_serve_parser

        args = build_serve_parser().parse_args(["--metrics-port", "9100"])
        assert args.metrics_port == 9100
        assert build_serve_parser().parse_args([]).metrics_port is None


class TestDecidePurity:
    """The extracted decide() step is a pure function of (state, event)."""

    @staticmethod
    def make_state(strategy_name="etrain"):
        from repro.radio.interface import RadioInterface
        from repro.sim.decision import DecisionState

        class _Scenario:
            profiles = _PROFILES
            bandwidth = ConstantBandwidth(100_000.0)

            def estimator(self, *, lag=2.0, noise=0.3, seed=0):
                from repro.baselines.base import BandwidthEstimator

                return BandwidthEstimator(
                    self.bandwidth, lag=lag, noise=noise, seed=seed
                )

        strategy = STRATEGY_BUILDERS[strategy_name](_Scenario())
        radio = RadioInterface(GALAXY_S4_3G, ConstantBandwidth(100_000.0))
        return DecisionState(
            strategy=strategy,
            radio=radio,
            slot=1.0,
            granularity=max(strategy.slot, 1.0),
            warm_window=radio.power_model.tail_time,
        )

    @given(
        arrivals=st.lists(
            st.tuples(
                st.integers(min_value=100, max_value=20_000),  # size
                st.floats(min_value=5.0, max_value=60.0),  # deadline
            ),
            max_size=4,
        ),
        heartbeat=st.booleans(),
        slots=st.integers(min_value=0, max_value=5),
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_same_inputs_same_outcome_no_mutation(
        self, arrivals, heartbeat, slots
    ):
        from repro.core.packet import Heartbeat, Packet
        from repro.sim.decision import SlotEvent, advance, decide

        state = self.make_state()
        # Walk the state forward so purity holds mid-session, not just at t=0.
        for i in range(slots):
            advance(state, SlotEvent(float(i)))
        t = float(slots)
        packets = tuple(
            Packet(
                app_id=_PROFILES[0].app_id,
                arrival_time=t,
                size_bytes=size,
                deadline=deadline,
                packet_id=i,
            )
            for i, (size, deadline) in enumerate(arrivals)
        )
        hbs = (
            (Heartbeat(app_id="qq", seq=0, time=t + 0.25, size_bytes=120),)
            if heartbeat
            else ()
        )
        event = SlotEvent(t, packets, hbs)

        before_records = list(state.radio.records)
        before_pending = state.pending_cargo
        before_decisions = state.decisions

        outcome1, state1 = decide(state, event)
        outcome2, state2 = decide(state, event)

        # Deterministic: identical outcomes and successor states.
        assert outcome1 == outcome2
        assert state1.decisions == state2.decisions
        assert state1.pending_cargo == state2.pending_cargo
        assert [tx_key(r) for r in state1.radio.records] == [
            tx_key(r) for r in state2.radio.records
        ]
        # Pure: the caller's state and packets were never touched.
        assert list(state.radio.records) == before_records
        assert state.pending_cargo == before_pending
        assert state.decisions == before_decisions
        assert all(p.scheduled_time is None for p in packets)
        # And the successor genuinely advanced.
        assert state1.decisions >= before_decisions

    def test_decide_matches_advance(self):
        from repro.core.packet import Packet
        from repro.sim.decision import SlotEvent, advance, decide

        event = SlotEvent(
            0.0,
            (
                Packet(
                    app_id=_PROFILES[0].app_id,
                    arrival_time=0.0,
                    size_bytes=5_000,
                    deadline=30.0,
                    packet_id=0,
                ),
            ),
        )
        pure_outcome, _ = decide(self.make_state("immediate"), event)
        mutable = self.make_state("immediate")
        inplace_outcome = advance(mutable, event)
        assert pure_outcome == inplace_outcome
