"""Golden wire transcripts: the serve protocol itself is pinned.

``tests/data/golden_serve_requests.jsonl`` and
``golden_serve_responses.jsonl`` hold the full canonical NDJSON
transcript of a fixed 5-minute, two-device session (seed 11, eTrain +
immediate) through :class:`repro.serve.server.ServeApp`.

Two layers of pinning, mirroring the obs-trace pins:

* **requests** are compared byte-for-byte — the client side of the
  protocol is fully deterministic and canonical encoding makes the
  bytes unique;
* **responses** are compared byte-for-byte after projecting each frame
  onto its op's *declared field set*
  (:data:`repro.serve.protocol.CORE_RESPONSE_FIELDS` +
  :data:`~repro.serve.protocol.OP_RESPONSE_FIELDS`), so adding new
  response fields later (an additive schema change) never breaks the
  pin — only changing decision semantics, renaming/removing a declared
  field, or bumping :data:`~repro.serve.protocol.PROTOCOL_VERSION`
  does.  A separate check asserts every live response still carries
  all declared fields.

Regenerate after an intentional semantic change with::

    PYTHONPATH=src python tests/test_serve_golden.py --regen
"""

import json
import pathlib

import pytest

from repro.serve.protocol import (
    CORE_RESPONSE_FIELDS,
    OP_RESPONSE_FIELDS,
    PROTOCOL_VERSION,
    encode_frame,
)
from repro.serve.server import ServeApp, ServeConfig

pytestmark = pytest.mark.serve

DATA = pathlib.Path(__file__).parent / "data"
REQUESTS_PIN = DATA / "golden_serve_requests.jsonl"
RESPONSES_PIN = DATA / "golden_serve_responses.jsonl"

#: The pinned scenario: two devices, 5 minutes, distinct strategies.
SEED = 11
HORIZON = 300.0
STRATEGIES = ("etrain", "immediate")


def build_transcript():
    """Replay the pinned session; return (request_bytes, responses)."""
    from repro.serve.loadgen import device_frames
    from repro.sim.fleet.workload import synthesize_fleet

    workload = synthesize_fleet(len(STRATEGIES), HORIZON, seed=SEED)
    app = ServeApp(ServeConfig())
    request_blobs = []
    responses = []
    next_id = 0
    frames = [{"op": "hello"}]
    for device, strategy in enumerate(STRATEGIES):
        frames.extend(device_frames(workload, device, strategy=strategy))
    for frame in frames:
        frame = dict(frame)
        frame["id"] = next_id
        next_id += 1
        request_blobs.append(encode_frame(frame))
        responses.append(app.handle(frame))
    return b"".join(request_blobs), responses


def project_response(response):
    """A response reduced to its op's declared (pinned) field set."""
    declared = CORE_RESPONSE_FIELDS + OP_RESPONSE_FIELDS.get(
        response.get("op"), ()
    ) + ("id",)
    return {k: response[k] for k in declared if k in response}


def encode_projected(responses):
    return b"".join(encode_frame(project_response(r)) for r in responses)


class TestGoldenTranscripts:
    def test_request_stream_byte_identical(self):
        requests, _ = build_transcript()
        assert requests == REQUESTS_PIN.read_bytes(), (
            "client request stream changed; if intentional, regenerate "
            "with: PYTHONPATH=src python tests/test_serve_golden.py --regen"
        )

    def test_response_stream_byte_identical_on_declared_fields(self):
        _, responses = build_transcript()
        pinned = [
            json.loads(line)
            for line in RESPONSES_PIN.read_bytes().splitlines()
        ]
        assert encode_projected(responses) == encode_projected(pinned), (
            "serve responses changed on declared fields; if intentional, "
            "regenerate with: "
            "PYTHONPATH=src python tests/test_serve_golden.py --regen"
        )

    def test_pinned_protocol_version(self):
        pinned_hello = json.loads(RESPONSES_PIN.read_bytes().splitlines()[0])
        assert pinned_hello["op"] == "hello"
        assert pinned_hello["proto"] == PROTOCOL_VERSION, (
            "protocol version bumped: regenerate the golden transcripts "
            "and review the breaking change"
        )


class TestSchemaContract:
    def test_every_response_carries_declared_fields(self):
        """Additive contract: declared fields are a floor, never missing."""
        _, responses = build_transcript()
        assert len(responses) > 40  # two devices' worth of events
        for response in responses:
            assert response["ok"] is True
            declared = CORE_RESPONSE_FIELDS + OP_RESPONSE_FIELDS[response["op"]]
            missing = [k for k in declared if k not in response]
            assert not missing, (response["op"], missing)

    def test_canonical_encoding_is_stable(self):
        """Key order and float formatting cannot drift frame to frame."""
        frame = {"b": 1.5, "a": [1, 2], "op": "event"}
        assert encode_frame(frame) == encode_frame(dict(reversed(frame.items())))
        assert encode_frame(frame).endswith(b"\n")

    def test_error_responses_carry_error_contract(self):
        from repro.serve.protocol import ERROR_RESPONSE_FIELDS

        app = ServeApp(ServeConfig())
        for bad in (
            {"op": "event", "device": "ghost", "kind": "hb", "t": 0.0},
            {"op": "nope"},
            {"op": "close", "device": "ghost"},
        ):
            response = app.handle(bad)
            assert response["ok"] is False
            for key in ERROR_RESPONSE_FIELDS:
                assert key in response
            assert response["error"]["code"]
            assert response["error"]["message"]


def regenerate():
    requests, responses = build_transcript()
    REQUESTS_PIN.write_bytes(requests)
    RESPONSES_PIN.write_bytes(b"".join(encode_frame(r) for r in responses))
    print(f"wrote {REQUESTS_PIN} ({len(requests)} bytes)")
    print(f"wrote {RESPONSES_PIN} ({len(responses)} frames)")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        regenerate()
    else:
        print("usage: python tests/test_serve_golden.py --regen")
