"""Failure-injection tests: the system degrades gracefully, not wrongly."""

import pytest

from repro.bandwidth.models import ConstantBandwidth, TraceBandwidth
from repro.baselines.etrain import ETrainStrategy
from repro.baselines.immediate import ImmediateStrategy
from repro.core.profiles import weibo_profile
from repro.core.scheduler import SchedulerConfig
from repro.heartbeat.apps import make_generator
from repro.heartbeat.generators import JitteredCycleGenerator
from repro.heartbeat.monitor import HeartbeatMonitor
from repro.sim.engine import Simulation

from tests.conftest import make_packet


def etrain(theta=0.5):
    return ETrainStrategy([weibo_profile()], SchedulerConfig(theta=theta))


class TestNoTrains:
    def test_etrain_without_heartbeats_still_delivers(self):
        """No trains: nothing to piggyback on, but the horizon flush and
        threshold dribble must still deliver every packet."""
        packets = [make_packet(arrival=float(i * 20)) for i in range(10)]
        sim = Simulation(etrain(), [], packets, horizon=400.0)
        result = sim.run()
        assert all(p.is_scheduled for p in packets)
        # Delivered-byte conservation: with no heartbeat trains, every
        # byte the radio moved is a cargo byte — no more, no less.
        delivered = sum(r.size_bytes for r in result.records)
        assert delivered == sum(p.size_bytes for p in packets)
        # And every packet id appears in exactly one burst.
        carried = [pid for r in result.records for pid in r.packet_ids]
        assert sorted(carried) == sorted(p.packet_id for p in packets)

    def test_fleet_engine_without_trains_conserves_bytes(self):
        """Fleet counterpart: ``trains=[]`` must still schedule every
        packet, and the burst rows' bytes must sum to the workload's."""
        import numpy as np

        from repro.bandwidth.synth import wuhan_bandwidth_model
        from repro.sim.fleet.channel import ChannelTable
        from repro.sim.fleet.engine import simulate_fleet_chunk
        from repro.sim.fleet.workload import synthesize_fleet

        horizon = 1800.0
        workload = synthesize_fleet(16, horizon, seed=7, trains=[])
        table = ChannelTable.from_model(wuhan_bandwidth_model(), horizon)
        raw = simulate_fleet_chunk(workload, table, strategy="etrain")

        # Every packet mapped to a valid burst row (the map is total).
        assert raw.pk_burst.shape[0] == workload.n_packets
        assert (raw.pk_burst >= 0).all()
        assert (raw.pk_burst < raw.burst_dev.shape[0]).all()
        # Byte conservation, chunk-wide and per device.
        workload_bytes = int(sum(int(s.sum()) for s in workload.sizes))
        assert int(raw.burst_size.sum()) == workload_bytes
        per_dev_burst = np.bincount(
            raw.burst_dev, weights=raw.burst_size, minlength=raw.n_devices
        )
        per_dev_pkt = np.bincount(
            raw.pk_dev, weights=raw.pk_size, minlength=raw.n_devices
        )
        assert np.array_equal(per_dev_burst, per_dev_pkt)

    def test_empty_workload_with_trains(self):
        sim = Simulation(etrain(), [make_generator("qq")], [], horizon=700.0)
        result = sim.run()
        assert result.burst_count == 3  # heartbeats only
        assert result.normalized_delay == 0.0


class TestJitteredHeartbeats:
    def test_jittered_trains_still_enable_savings(self):
        """Heartbeat jitter (alarm slack) must not break piggybacking."""
        packets = [make_packet(arrival=float(17 * i + 3)) for i in range(40)]
        jittered = [
            JitteredCycleGenerator(make_generator("qq"), max_jitter=10.0, seed=3)
        ]
        sim = Simulation(etrain(theta=1.0), jittered, list(packets), horizon=900.0)
        result = sim.run()

        baseline_packets = [
            make_packet(arrival=p.arrival_time, size=p.size_bytes) for p in packets
        ]
        base = Simulation(
            ImmediateStrategy(), jittered, baseline_packets, horizon=900.0
        ).run()
        assert result.total_energy < base.total_energy

    def test_monitor_tolerates_jitter(self):
        mon = HeartbeatMonitor()
        gen = JitteredCycleGenerator(make_generator("qq"), max_jitter=5.0, seed=1)
        for hb in gen.heartbeats_until(3000.0):
            mon.observe("qq", hb.time)
        cycle = mon.cycle_of("qq")
        assert cycle == pytest.approx(300.0, rel=0.05)


class TestChannelOutages:
    def test_zero_bandwidth_interval_delays_but_delivers(self):
        """A mid-run outage stretches transmissions across it."""
        samples = [100_000.0] * 100 + [0.0] * 50 + [100_000.0] * 400
        bw = TraceBandwidth(samples)
        p = make_packet(arrival=99.0, size=150_000)
        sim = Simulation(ImmediateStrategy(), [], [p], bandwidth=bw, horizon=500.0)
        result = sim.run()
        record = result.records[0]
        # 100 KB fits in the first second; the rest waits out the outage.
        assert record.end > 150.0
        assert p.is_scheduled

    def test_pathological_outage_raises_cleanly(self):
        bw = TraceBandwidth([0.0])
        p = make_packet(arrival=0.0, size=1_000)
        sim = Simulation(ImmediateStrategy(), [], [p], bandwidth=bw, horizon=10.0)
        with pytest.raises(RuntimeError):
            sim.run()


class TestDegenerateWorkloads:
    def test_burst_of_simultaneous_arrivals(self):
        packets = [make_packet(arrival=10.0) for _ in range(50)]
        sim = Simulation(
            etrain(theta=1e9),  # selection only at heartbeats (k = inf)
            [make_generator("qq")],
            packets,
            horizon=700.0,
        )
        result = sim.run()
        assert all(p.is_scheduled for p in packets)
        # All 50 ride the t=300 heartbeat: 3 bursts total.
        assert result.burst_count == 3
        assert result.piggyback_ratio == 1.0

    def test_packet_arriving_at_horizon_boundary(self):
        p = make_packet(arrival=99.999)
        sim = Simulation(ImmediateStrategy(), [], [p], horizon=100.0)
        result = sim.run()
        assert p.is_scheduled
        assert result.flushed_packets == 1

    def test_huge_packet_on_slow_channel(self):
        p = make_packet(arrival=0.0, size=1_000_000)
        sim = Simulation(
            ImmediateStrategy(),
            [],
            [p],
            bandwidth=ConstantBandwidth(10_000.0),
            horizon=300.0,
        )
        result = sim.run()
        assert result.records[0].duration == pytest.approx(100.0)


class TestMonitorRobustness:
    def test_missed_heartbeats_do_not_break_prediction(self):
        mon = HeartbeatMonitor()
        # Observe beats 0, 1, 3, 4 (beat 2 missed).
        for t in (0.0, 300.0, 900.0, 1200.0):
            mon.observe("qq", t)
        assert mon.predict_next("qq", 1250.0) == pytest.approx(1500.0)

    def test_irregular_app_gives_conservative_cycle(self):
        mon = HeartbeatMonitor()
        for t in (0.0, 100.0, 350.0, 380.0, 800.0):
            mon.observe("qq", t)
        # Whatever is learned must still produce a future prediction.
        predicted = mon.predict_next("qq", 900.0)
        assert predicted is None or predicted > 900.0
