"""Failure-injection tests: the system degrades gracefully, not wrongly.

The first half exercises *simulation-level* adversity (missing trains,
channel outages, degenerate workloads).  The second half (``-m faults``)
exercises *execution-level* adversity through :mod:`repro.faults`:
kill -9 mid-sweep then ``--resume``, injected hangs hitting the timeout
path, injected crashes surfacing in the retry metrics, and shared-memory
leaks swept by ``etrain fleet --cleanup-shm``.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.bandwidth.models import ConstantBandwidth, TraceBandwidth
from repro.baselines.etrain import ETrainStrategy
from repro.baselines.immediate import ImmediateStrategy
from repro.core.profiles import weibo_profile
from repro.core.scheduler import SchedulerConfig
from repro.heartbeat.apps import make_generator
from repro.heartbeat.generators import JitteredCycleGenerator
from repro.heartbeat.monitor import HeartbeatMonitor
from repro.sim.engine import Simulation

from tests.conftest import make_packet


def etrain(theta=0.5):
    return ETrainStrategy([weibo_profile()], SchedulerConfig(theta=theta))


class TestNoTrains:
    def test_etrain_without_heartbeats_still_delivers(self):
        """No trains: nothing to piggyback on, but the horizon flush and
        threshold dribble must still deliver every packet."""
        packets = [make_packet(arrival=float(i * 20)) for i in range(10)]
        sim = Simulation(etrain(), [], packets, horizon=400.0)
        result = sim.run()
        assert all(p.is_scheduled for p in packets)
        # Delivered-byte conservation: with no heartbeat trains, every
        # byte the radio moved is a cargo byte — no more, no less.
        delivered = sum(r.size_bytes for r in result.records)
        assert delivered == sum(p.size_bytes for p in packets)
        # And every packet id appears in exactly one burst.
        carried = [pid for r in result.records for pid in r.packet_ids]
        assert sorted(carried) == sorted(p.packet_id for p in packets)

    def test_fleet_engine_without_trains_conserves_bytes(self):
        """Fleet counterpart: ``trains=[]`` must still schedule every
        packet, and the burst rows' bytes must sum to the workload's."""
        import numpy as np

        from repro.bandwidth.synth import wuhan_bandwidth_model
        from repro.sim.fleet.channel import ChannelTable
        from repro.sim.fleet.engine import simulate_fleet_chunk
        from repro.sim.fleet.workload import synthesize_fleet

        horizon = 1800.0
        workload = synthesize_fleet(16, horizon, seed=7, trains=[])
        table = ChannelTable.from_model(wuhan_bandwidth_model(), horizon)
        raw = simulate_fleet_chunk(workload, table, strategy="etrain")

        # Every packet mapped to a valid burst row (the map is total).
        assert raw.pk_burst.shape[0] == workload.n_packets
        assert (raw.pk_burst >= 0).all()
        assert (raw.pk_burst < raw.burst_dev.shape[0]).all()
        # Byte conservation, chunk-wide and per device.
        workload_bytes = int(sum(int(s.sum()) for s in workload.sizes))
        assert int(raw.burst_size.sum()) == workload_bytes
        per_dev_burst = np.bincount(
            raw.burst_dev, weights=raw.burst_size, minlength=raw.n_devices
        )
        per_dev_pkt = np.bincount(
            raw.pk_dev, weights=raw.pk_size, minlength=raw.n_devices
        )
        assert np.array_equal(per_dev_burst, per_dev_pkt)

    def test_empty_workload_with_trains(self):
        sim = Simulation(etrain(), [make_generator("qq")], [], horizon=700.0)
        result = sim.run()
        assert result.burst_count == 3  # heartbeats only
        assert result.normalized_delay == 0.0


class TestJitteredHeartbeats:
    def test_jittered_trains_still_enable_savings(self):
        """Heartbeat jitter (alarm slack) must not break piggybacking."""
        packets = [make_packet(arrival=float(17 * i + 3)) for i in range(40)]
        jittered = [
            JitteredCycleGenerator(make_generator("qq"), max_jitter=10.0, seed=3)
        ]
        sim = Simulation(etrain(theta=1.0), jittered, list(packets), horizon=900.0)
        result = sim.run()

        baseline_packets = [
            make_packet(arrival=p.arrival_time, size=p.size_bytes) for p in packets
        ]
        base = Simulation(
            ImmediateStrategy(), jittered, baseline_packets, horizon=900.0
        ).run()
        assert result.total_energy < base.total_energy

    def test_monitor_tolerates_jitter(self):
        mon = HeartbeatMonitor()
        gen = JitteredCycleGenerator(make_generator("qq"), max_jitter=5.0, seed=1)
        for hb in gen.heartbeats_until(3000.0):
            mon.observe("qq", hb.time)
        cycle = mon.cycle_of("qq")
        assert cycle == pytest.approx(300.0, rel=0.05)


class TestChannelOutages:
    def test_zero_bandwidth_interval_delays_but_delivers(self):
        """A mid-run outage stretches transmissions across it."""
        samples = [100_000.0] * 100 + [0.0] * 50 + [100_000.0] * 400
        bw = TraceBandwidth(samples)
        p = make_packet(arrival=99.0, size=150_000)
        sim = Simulation(ImmediateStrategy(), [], [p], bandwidth=bw, horizon=500.0)
        result = sim.run()
        record = result.records[0]
        # 100 KB fits in the first second; the rest waits out the outage.
        assert record.end > 150.0
        assert p.is_scheduled

    def test_pathological_outage_raises_cleanly(self):
        bw = TraceBandwidth([0.0])
        p = make_packet(arrival=0.0, size=1_000)
        sim = Simulation(ImmediateStrategy(), [], [p], bandwidth=bw, horizon=10.0)
        with pytest.raises(RuntimeError):
            sim.run()


class TestDegenerateWorkloads:
    def test_burst_of_simultaneous_arrivals(self):
        packets = [make_packet(arrival=10.0) for _ in range(50)]
        sim = Simulation(
            etrain(theta=1e9),  # selection only at heartbeats (k = inf)
            [make_generator("qq")],
            packets,
            horizon=700.0,
        )
        result = sim.run()
        assert all(p.is_scheduled for p in packets)
        # All 50 ride the t=300 heartbeat: 3 bursts total.
        assert result.burst_count == 3
        assert result.piggyback_ratio == 1.0

    def test_packet_arriving_at_horizon_boundary(self):
        p = make_packet(arrival=99.999)
        sim = Simulation(ImmediateStrategy(), [], [p], horizon=100.0)
        result = sim.run()
        assert p.is_scheduled
        assert result.flushed_packets == 1

    def test_huge_packet_on_slow_channel(self):
        p = make_packet(arrival=0.0, size=1_000_000)
        sim = Simulation(
            ImmediateStrategy(),
            [],
            [p],
            bandwidth=ConstantBandwidth(10_000.0),
            horizon=300.0,
        )
        result = sim.run()
        assert result.records[0].duration == pytest.approx(100.0)


class TestMonitorRobustness:
    def test_missed_heartbeats_do_not_break_prediction(self):
        mon = HeartbeatMonitor()
        # Observe beats 0, 1, 3, 4 (beat 2 missed).
        for t in (0.0, 300.0, 900.0, 1200.0):
            mon.observe("qq", t)
        assert mon.predict_next("qq", 1250.0) == pytest.approx(1500.0)

    def test_irregular_app_gives_conservative_cycle(self):
        mon = HeartbeatMonitor()
        for t in (0.0, 100.0, 350.0, 380.0, 800.0):
            mon.observe("qq", t)
        # Whatever is learned must still produce a future prediction.
        predicted = mon.predict_next("qq", 900.0)
        assert predicted is None or predicted > 900.0


# ---------------------------------------------------------------------------
# Execution-layer fault injection (repro.faults): the scenarios below
# drive the real CLI, some in subprocesses that get SIGKILLed mid-run.
# ---------------------------------------------------------------------------

_SRC = str(Path(__file__).resolve().parents[1] / "src")


def _cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _spawn_cli(args, cwd):
    """Start ``etrain <args>`` in its own session (so killpg is clean)."""
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        cwd=cwd,
        env=_cli_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        start_new_session=True,
    )


def _run_cli(args, cwd):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        cwd=cwd,
        env=_cli_env(),
        capture_output=True,
        text=True,
        timeout=300,
    )


def _sweep_table(stdout: str):
    """The deterministic region of sweep output: title through data rows.

    The trailing stats/cache lines carry wall times and hit counts that
    legitimately differ between runs, so byte-identity is asserted on
    the result table only.
    """
    lines = stdout.splitlines()
    start = next(i for i, l in enumerate(lines) if l.startswith("Sweep:"))
    table = []
    for line in lines[start:]:
        if " wall," in line or line.startswith("cache:"):
            break
        table.append(line)
    assert len(table) >= 3, f"no table in output:\n{stdout}"
    return table


def _sweep_grid(horizon=1200.0):
    from repro.sim.parallel import ScenarioSpec, StrategySpec, seed_grid

    return seed_grid(
        [StrategySpec.make("immediate"), StrategySpec.make("etrain")],
        [0, 1, 2],
        ScenarioSpec(horizon=horizon),
    )


SWEEP_ARGS = [
    "sweep", "--strategies", "immediate,etrain", "--seeds", "3",
    "--horizon", "1200", "--workers", "2", "--quiet",
]


@pytest.mark.faults
class TestKillNineThenResume:
    def test_sigkill_mid_sweep_then_resume_is_bit_identical(self, tmp_path):
        """ISSUE acceptance: SIGKILL a sweep partway, ``--resume`` it, and
        the final table must be byte-identical to a never-killed run."""
        from repro.faults import FaultPlan
        from repro.sim.parallel import run_key_of

        jobs = _sweep_grid()
        keys = [j.content_hash() for j in jobs]
        # A plan that hangs about half the grid — but not the first two
        # jobs, so the two workers are guaranteed to complete (and
        # journal) some cells before both wedge on hung ones.
        for seed in range(2000):
            plan = FaultPlan(seed=seed, hang_prob=0.5, hang_seconds=300.0)
            hangs = set(plan.hangs_for(keys))
            if 2 <= len(hangs) <= 4 and keys[0] not in hangs and keys[1] not in hangs:
                break
        else:  # pragma: no cover - seed search failed
            pytest.fail("no suitable hang plan found")

        cache = tmp_path / "cache"
        journal = cache / "journal" / f"{run_key_of(keys)[:16]}.jsonl"
        victim = _spawn_cli(
            SWEEP_ARGS
            + ["--cache-dir", str(cache), "--faults",
               f"hang=0.5,seed={seed},hang_seconds=300"],
            tmp_path,
        )
        try:
            # Wait until some (but not all) cells are journalled, i.e.
            # the run is genuinely mid-flight, then kill -9 the session.
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if journal.exists():
                    done = len(journal.read_text().splitlines()) - 1  # - header
                    if done >= 2:
                        break
                if victim.poll() is not None:  # pragma: no cover
                    pytest.fail(f"sweep exited early: {victim.communicate()}")
                time.sleep(0.05)
            else:  # pragma: no cover - machine pathologically slow
                pytest.fail("sweep never reached mid-run state")
            os.killpg(victim.pid, signal.SIGKILL)
        finally:
            victim.wait(timeout=60)
            victim.stdout.close()
            victim.stderr.close()
        assert victim.returncode == -signal.SIGKILL

        partial = len(journal.read_text().splitlines()) - 1
        assert 0 < partial < len(jobs)  # killed mid-run, not before/after

        resumed = _run_cli(
            SWEEP_ARGS + ["--cache-dir", str(cache), "--resume"], tmp_path
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "resuming:" in resumed.stdout

        reference = _run_cli(
            SWEEP_ARGS + ["--cache-dir", str(tmp_path / "fresh-cache")], tmp_path
        )
        assert reference.returncode == 0, reference.stderr
        assert _sweep_table(resumed.stdout) == _sweep_table(reference.stdout)

    def test_resume_without_cache_dir_is_an_error(self, tmp_path):
        from repro.cli import main

        assert main(["sweep", "--seeds", "1", "--resume"]) == 2

    def test_resume_refuses_a_different_grid(self, tmp_path):
        from repro.cli import main
        from repro.sim.parallel import RunJournal, run_key_of

        # Plant a journal for some other grid under this run's key path.
        keys = [j.content_hash() for j in _sweep_grid(horizon=240.0)]
        path = (
            tmp_path / "cache" / "journal" / f"{run_key_of(keys)[:16]}.jsonl"
        )
        RunJournal.attach(path, "deadbeef" * 8, 1).close()
        code = main(
            ["sweep", "--strategies", "immediate,etrain", "--seeds", "3",
             "--horizon", "240", "--quiet",
             "--cache-dir", str(tmp_path / "cache"), "--resume"]
        )
        assert code == 2


@pytest.mark.faults
class TestInjectedHangHitsTimeout:
    def test_cli_timeout_path(self, tmp_path, capsys):
        """ISSUE acceptance: an injected hang trips --job-timeout, the
        worker is killed, and the retried run still exits 0."""
        from repro.cli import main

        code = main(
            ["sweep", "--strategies", "immediate", "--seeds", "2",
             "--horizon", "240", "--workers", "2", "--quiet",
             "--faults", "hang=1,seed=0,hang_seconds=60",
             "--job-timeout", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "timeout(s)" in out and "survived" in out


@pytest.mark.faults
class TestRetryMetricsMatchInjection:
    def test_crash_counts_surface_in_metrics_out(self, tmp_path):
        """ISSUE acceptance: seeded crashes complete the sweep, and the
        metrics JSON reports exactly the injected failure count."""
        from repro.cli import main
        from repro.faults import FaultPlan

        jobs = _sweep_grid(horizon=240.0)
        keys = [j.content_hash() for j in jobs]
        for seed in range(2000):
            plan = FaultPlan(seed=seed, crash_prob=0.2)
            if len(plan.crashes_for(keys)) == 1:
                break
        else:  # pragma: no cover
            pytest.fail("no single-crash plan found")
        metrics_path = tmp_path / "metrics.json"
        code = main(
            ["sweep", "--strategies", "immediate,etrain", "--seeds", "3",
             "--horizon", "240", "--workers", "2", "--quiet",
             "--faults", f"crash=0.2,seed={seed}",
             "--metrics-out", str(metrics_path)]
        )
        assert code == 0
        metrics = json.loads(metrics_path.read_text())
        # One injected crash == one pool break == one worker failure.
        assert metrics["executor.worker_failures"]["value"] == 1
        assert metrics["executor.retries"]["value"] >= 1
        assert metrics["executor.jobs"]["value"] == len(jobs)


@pytest.mark.faults
@pytest.mark.skipif(
    not Path("/dev/shm").is_dir(), reason="no /dev/shm on this platform"
)
class TestShmLeakAndSweep:
    def test_killed_fleet_run_leaks_then_cleanup_shm_sweeps(self, tmp_path):
        """ISSUE acceptance: a SIGKILLed fleet run orphans its etrain-*
        segments; ``etrain fleet --cleanup-shm`` removes them all."""
        from repro.sim.fleet.channel import SHM_DIR, SHM_PREFIX

        victim = _spawn_cli(
            ["fleet", "--devices", "64", "--chunk-size", "16",
             "--workers", "2", "--quiet",
             "--faults", "hang=1,seed=0,hang_seconds=300"],
            tmp_path,
        )
        mine = f"{SHM_PREFIX}{victim.pid}-"
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                leaked = [p.name for p in SHM_DIR.glob(mine + "*")]
                if leaked:
                    break
                if victim.poll() is not None:  # pragma: no cover
                    pytest.fail(f"fleet exited early: {victim.communicate()}")
                time.sleep(0.05)
            else:  # pragma: no cover
                pytest.fail("fleet never published its channel table")
            os.killpg(victim.pid, signal.SIGKILL)
        finally:
            victim.wait(timeout=60)
            victim.stdout.close()
            victim.stderr.close()

        # The kill orphaned the segments (nothing unlinked them)...
        assert [p.name for p in SHM_DIR.glob(mine + "*")] == leaked
        # ...and the cleanup command sweeps every one of them.
        swept = _run_cli(["fleet", "--cleanup-shm"], tmp_path)
        assert swept.returncode == 0
        for name in leaked:
            assert f"removed stale shm segment {name}" in swept.stdout
        assert list(SHM_DIR.glob(mine + "*")) == []


@pytest.mark.faults
class TestTornFiles:
    def _record_trace(self, tmp_path):
        from repro.cli import main

        trace = tmp_path / "run.jsonl"
        assert main(
            ["record", "--strategy", "immediate", "--horizon", "120",
             "--trace-out", str(trace)]
        ) == 0
        return trace

    def test_torn_trace_raises_truncated_error(self, tmp_path, capsys):
        from repro.faults import truncate_tail
        from repro.obs import TruncatedTraceError, read_jsonl

        trace = self._record_trace(tmp_path)
        capsys.readouterr()
        intact = read_jsonl(trace)
        truncate_tail(trace, 5)
        with pytest.raises(TruncatedTraceError) as exc_info:
            read_jsonl(trace)
        # The intact prefix is everything but the torn final event.
        assert exc_info.value.events == intact[:-1]
        assert exc_info.value.valid_lines == len(intact) - 1

    def test_stripped_final_newline_is_not_truncation(self, tmp_path, capsys):
        """Only the newline is gone: every event is intact, so the trace
        must still load (editors and external tools strip final newlines)."""
        from repro.faults import truncate_tail
        from repro.obs import read_jsonl

        trace = self._record_trace(tmp_path)
        capsys.readouterr()
        intact = read_jsonl(trace)
        truncate_tail(trace, 1)  # exactly the trailing "\n"
        assert read_jsonl(trace) == intact

    def test_trace_replay_reports_truncation_with_exit_3(self, tmp_path, capsys):
        from repro.cli import main
        from repro.faults import truncate_tail

        trace = self._record_trace(tmp_path)
        truncate_tail(trace, 5)
        capsys.readouterr()
        assert main(["trace-replay", str(trace)]) == 3
        err = capsys.readouterr().err
        assert "truncated trace" in err and "torn tail" in err

    def test_intact_trace_still_replays_clean(self, tmp_path, capsys):
        from repro.cli import main

        trace = self._record_trace(tmp_path)
        assert main(["trace-replay", str(trace)]) == 0

    def test_truncated_cache_entry_is_a_miss(self, tmp_path):
        from repro.faults import truncate_tail
        from repro.sim.parallel import ResultCache

        cache = ResultCache(tmp_path / "cache")
        key = "ab" + "0" * 62
        cache.put(key, {"summary": {"x": 1.0}})
        truncate_tail(cache._path(key), 8)
        assert cache.get(key) is None  # torn entry reads as a miss


# ---------------------------------------------------------------------------
# Host-level failures (repro.sim.dist): worker *processes* die mid-chunk
# and the coordinator itself is SIGKILLed mid-journal-append.  Same
# recovery contract as pool workers: requeue, retry accounting, resume
# byte-identity.
# ---------------------------------------------------------------------------

DIST_SWEEP_ARGS = [
    "sweep", "--strategies", "immediate,etrain", "--seeds", "3",
    "--horizon", "1200", "--workers-remote", "2", "--quiet",
]


@pytest.mark.faults
@pytest.mark.dist
class TestDistWorkerDeathMidChunk:
    def test_injected_crash_kills_worker_host_then_respawn_is_bit_identical(
        self, tmp_path
    ):
        """An injected crash takes a whole worker *process* (host-death
        analogue: the TCP connection drops mid-lease).  The coordinator
        must revoke, respawn, retry — and the table must match a serial
        run byte for byte."""
        from repro.faults import FaultPlan

        jobs = _sweep_grid(horizon=240.0)
        keys = [j.content_hash() for j in jobs]
        for seed in range(2000):
            plan = FaultPlan(seed=seed, crash_prob=0.2)
            if len(plan.crashes_for(keys)) == 1:
                break
        else:  # pragma: no cover
            pytest.fail("no single-crash plan found")

        args = ["sweep", "--strategies", "immediate,etrain", "--seeds", "3",
                "--horizon", "240", "--quiet"]
        metrics_path = tmp_path / "metrics.json"
        crashed = _run_cli(
            args + ["--workers-remote", "2",
                    "--faults", f"crash=0.2,seed={seed}",
                    "--metrics-out", str(metrics_path)],
            tmp_path,
        )
        assert crashed.returncode == 0, crashed.stderr
        reference = _run_cli(args, tmp_path)
        assert reference.returncode == 0, reference.stderr
        assert _sweep_table(crashed.stdout) == _sweep_table(reference.stdout)

        metrics = json.loads(metrics_path.read_text())
        # One crashed worker == one lost connection == one host failure,
        # one respawn, and at least the crashed job retried.
        assert metrics["executor.worker_failures"]["value"] >= 1
        assert metrics["executor.pool_rebuilds"]["value"] >= 1
        assert metrics["executor.retries"]["value"] >= 1
        assert metrics["executor.jobs"]["value"] == len(jobs)


@pytest.mark.faults
@pytest.mark.dist
class TestDistCoordinatorKillThenResume:
    def test_sigkill_coordinator_mid_run_then_resume_is_bit_identical(
        self, tmp_path
    ):
        """Kill -9 the *coordinator* (journal owner) mid-run, tear the
        journal's tail mid-append, then ``--resume --workers-remote``:
        the table must be byte-identical to a never-killed serial run."""
        from repro.faults import FaultPlan, truncate_tail
        from repro.sim.parallel import run_key_of

        jobs = _sweep_grid()
        keys = [j.content_hash() for j in jobs]
        # Hangs wedge remote workers (they heartbeat through the hang,
        # so nothing times out) while the non-hung jobs complete and
        # journal — the run is then genuinely mid-flight forever.
        for seed in range(2000):
            plan = FaultPlan(seed=seed, hang_prob=0.5, hang_seconds=300.0)
            hangs = set(plan.hangs_for(keys))
            if 2 <= len(hangs) <= 4 and keys[0] not in hangs and keys[1] not in hangs:
                break
        else:  # pragma: no cover - seed search failed
            pytest.fail("no suitable hang plan found")

        cache = tmp_path / "cache"
        journal = cache / "journal" / f"{run_key_of(keys)[:16]}.jsonl"
        victim = _spawn_cli(
            DIST_SWEEP_ARGS
            + ["--cache-dir", str(cache), "--faults",
               f"hang=0.5,seed={seed},hang_seconds=300"],
            tmp_path,
        )
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if journal.exists():
                    done = len(journal.read_text().splitlines()) - 1  # - header
                    if done >= 2:
                        break
                if victim.poll() is not None:  # pragma: no cover
                    pytest.fail(f"sweep exited early: {victim.communicate()}")
                time.sleep(0.05)
            else:  # pragma: no cover - machine pathologically slow
                pytest.fail("sweep never reached mid-run state")
            # The whole process group: coordinator AND its spawned
            # workers (they inherit the session), like a host reboot.
            os.killpg(victim.pid, signal.SIGKILL)
        finally:
            victim.wait(timeout=60)
            victim.stdout.close()
            victim.stderr.close()
        assert victim.returncode == -signal.SIGKILL

        partial = len(journal.read_text().splitlines()) - 1
        assert 0 < partial < len(jobs)
        # Tear the last journal append in half — the kill landing
        # mid-write.  attach() must truncate the torn tail and resume.
        truncate_tail(journal, 5)

        resumed = _run_cli(
            DIST_SWEEP_ARGS + ["--cache-dir", str(cache), "--resume"], tmp_path
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "resuming:" in resumed.stdout

        reference = _run_cli(
            SWEEP_ARGS + ["--cache-dir", str(tmp_path / "fresh-cache")], tmp_path
        )
        assert reference.returncode == 0, reference.stderr
        assert _sweep_table(resumed.stdout) == _sweep_table(reference.stdout)

