"""Unit tests for every comparator strategy."""

import pytest

from repro.bandwidth.models import ConstantBandwidth, TraceBandwidth
from repro.baselines.base import BandwidthEstimator
from repro.baselines.etime import ETimeStrategy
from repro.baselines.fixed_batch import PeriodicBatchStrategy
from repro.baselines.immediate import ImmediateStrategy
from repro.baselines.peres import PerESStrategy
from repro.baselines.tailender import TailEnderStrategy
from repro.core.profiles import mail_profile, weibo_profile

from tests.conftest import make_packet


def estimator(rate=100_000.0, noise=0.0, lag=0.0):
    return BandwidthEstimator(ConstantBandwidth(rate), noise=noise, lag=lag)


class TestBandwidthEstimator:
    def test_perfect_estimate(self):
        est = estimator(rate=5_000.0)
        assert est.estimate(10.0) == 5_000.0

    def test_lag_reads_past_rate(self):
        bw = TraceBandwidth([100.0, 200.0, 300.0])
        est = BandwidthEstimator(bw, lag=1.0, noise=0.0)
        assert est.estimate(2.5) == 200.0

    def test_noise_bounded_and_deterministic(self):
        est1 = BandwidthEstimator(ConstantBandwidth(1_000.0), noise=0.3, seed=1)
        est2 = BandwidthEstimator(ConstantBandwidth(1_000.0), noise=0.3, seed=1)
        for t in range(20):
            e = est1.estimate(float(t))
            assert 700.0 - 1e-6 <= e <= 1300.0 + 1e-6
            assert e == est2.estimate(float(t))

    def test_running_average(self):
        est = estimator(rate=1_000.0)
        assert est.running_average() is None
        est.record(0.0)
        est.record(1.0)
        assert est.running_average() == pytest.approx(1_000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BandwidthEstimator(ConstantBandwidth(1.0), lag=-1.0)
        with pytest.raises(ValueError):
            BandwidthEstimator(ConstantBandwidth(1.0), noise=-0.1)


class TestImmediate:
    def test_releases_everything_next_decide(self):
        s = ImmediateStrategy()
        p = make_packet()
        s.on_arrival(p, 0.0)
        assert s.waiting_count == 1
        assert s.decide(1.0, False) == [p]
        assert s.waiting_count == 0

    def test_flush(self):
        s = ImmediateStrategy()
        p = make_packet()
        s.on_arrival(p, 0.0)
        assert s.flush(10.0) == [p]


class TestETime:
    def test_holds_until_backlog_score(self):
        s = ETimeStrategy(estimator(), v=1_000_000.0)
        s.on_arrival(make_packet(size=1_000), 0.0)
        assert s.decide(0.0, False) == []
        assert s.waiting_count == 1

    def test_releases_on_large_backlog(self):
        s = ETimeStrategy(estimator(), v=10_000.0)
        for _ in range(20):
            s.on_arrival(make_packet(size=1_000), 0.0)
        released = s.decide(60.0, False)
        assert len(released) == 20

    def test_ignores_heartbeats(self):
        s = ETimeStrategy(estimator(), v=1e12)
        s.on_arrival(make_packet(size=100), 0.0)
        assert s.decide(0.0, True) == []

    def test_channel_quality_modulates(self):
        """A good channel (relative to average) triggers release sooner."""
        bw = TraceBandwidth([100.0] * 100 + [1_000.0] * 100)
        est = BandwidthEstimator(bw, lag=0.0, noise=0.0)
        s = ETimeStrategy(est, v=15_000.0, slot=60.0)
        s.on_arrival(make_packet(size=2_000), 0.0)
        assert s.decide(0.0, False) == []  # quality 1.0: 2000 < 15000
        assert s.decide(60.0, False) == []
        released = s.decide(120.0, False)  # rate jumps 10x vs average
        assert released == [] or len(released) == 1  # quality-gated

    def test_validation(self):
        with pytest.raises(ValueError):
            ETimeStrategy(estimator(), v=-1.0)
        with pytest.raises(ValueError):
            ETimeStrategy(estimator(), slot=0.0)

    def test_backlog_bytes(self):
        s = ETimeStrategy(estimator())
        s.on_arrival(make_packet(size=500), 0.0)
        s.on_arrival(make_packet(size=700), 0.0)
        assert s.backlog_bytes == 1_200


class TestPerES:
    def profiles(self):
        return [weibo_profile(), mail_profile()]

    def test_deadline_pressure_forces_full_release(self):
        s = PerESStrategy(self.profiles(), estimator(), omega=0.5, v_init=1e9)
        a = make_packet(app_id="weibo", arrival=0.0, deadline=30.0)
        b = make_packet(app_id="weibo", arrival=20.0, deadline=30.0)
        s.on_arrival(a, 0.0)
        s.on_arrival(b, 20.0)
        assert s.decide(25.0, False) == []
        released = s.decide(29.5, False)
        assert set(released) == {a, b}

    def test_v_adapts_down_when_costly(self):
        s = PerESStrategy(self.profiles(), estimator(), omega=0.01, v_init=100.0)
        p = make_packet(app_id="weibo", arrival=0.0, deadline=30.0)
        s.on_arrival(p, 0.0)
        s.decide(29.5, False)  # forced release with high cost
        assert s.v < 100.0

    def test_v_adapts_up_when_cheap(self):
        s = PerESStrategy(self.profiles(), estimator(), omega=10.0, v_init=0.001)
        p = make_packet(app_id="weibo", arrival=0.0, deadline=30.0)
        s.on_arrival(p, 0.0)
        s.decide(1.0, False)  # cheap release (cost ~0.03)
        assert s.v > 0.001

    def test_unknown_app_rejected(self):
        s = PerESStrategy(self.profiles(), estimator())
        with pytest.raises(KeyError):
            s.on_arrival(make_packet(app_id="nope"), 0.0)

    def test_instantaneous_cost(self):
        s = PerESStrategy(self.profiles(), estimator())
        s.on_arrival(make_packet(app_id="weibo", arrival=0.0), 0.0)
        assert s.instantaneous_cost(15.0) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            PerESStrategy(self.profiles(), estimator(), omega=-1.0)
        with pytest.raises(ValueError):
            PerESStrategy(self.profiles(), estimator(), v_init=0.0)


class TestTailEnder:
    def test_waits_until_earliest_deadline(self):
        s = TailEnderStrategy([weibo_profile()])
        a = make_packet(arrival=0.0, deadline=30.0)
        b = make_packet(arrival=10.0, deadline=30.0)
        s.on_arrival(a, 0.0)
        s.on_arrival(b, 10.0)
        assert s.decide(20.0, False) == []
        released = s.decide(29.5, False)
        assert set(released) == {a, b}

    def test_earliest_due(self):
        s = TailEnderStrategy()
        assert s.earliest_due() is None
        s.on_arrival(make_packet(arrival=5.0, deadline=30.0), 5.0)
        assert s.earliest_due() == pytest.approx(35.0)

    def test_default_deadline_for_unprofiled(self):
        s = TailEnderStrategy(default_deadline=40.0)
        p = make_packet(deadline=None)
        p.deadline = None
        s.on_arrival(p, 0.0)
        assert s.earliest_due() == pytest.approx(40.0)

    def test_slack_fires_early(self):
        s = TailEnderStrategy(slack=5.0)
        s.on_arrival(make_packet(arrival=0.0, deadline=30.0), 0.0)
        released = s.decide(25.0, False)
        assert len(released) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            TailEnderStrategy(default_deadline=0.0)
        with pytest.raises(ValueError):
            TailEnderStrategy(slack=-1.0)


class TestPeriodicBatch:
    def test_fires_on_period(self):
        s = PeriodicBatchStrategy(period=60.0)
        p = make_packet()
        s.on_arrival(p, 0.0)
        assert s.decide(30.0, False) == []
        assert s.decide(60.0, False) == [p]

    def test_empty_period_fires_nothing(self):
        s = PeriodicBatchStrategy(period=10.0)
        assert s.decide(10.0, False) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicBatchStrategy(period=0.0)


class TestCommonInterface:
    @pytest.mark.parametrize(
        "factory",
        [
            ImmediateStrategy,
            lambda: ETimeStrategy(estimator()),
            lambda: PerESStrategy([weibo_profile()], estimator()),
            lambda: TailEnderStrategy([weibo_profile()]),
            lambda: PeriodicBatchStrategy(),
        ],
    )
    def test_flush_empties(self, factory):
        s = factory()
        s.on_arrival(make_packet(app_id="weibo"), 0.0)
        flushed = s.flush(1e6)
        assert len(flushed) == 1
        assert s.waiting_count == 0
