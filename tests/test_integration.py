"""Cross-module integration tests: the full stack working together."""

import pytest

from repro.analysis.metrics import compare_results, relative_saving
from repro.bandwidth.synth import wuhan_bandwidth_model
from repro.baselines.etime import ETimeStrategy
from repro.baselines.etrain import ETrainStrategy
from repro.baselines.immediate import ImmediateStrategy
from repro.baselines.peres import PerESStrategy
from repro.baselines.tailender import TailEnderStrategy
from repro.core.offline import evaluate_schedule, greedy_offline
from repro.core.scheduler import SchedulerConfig
from repro.measurement.power_monitor import PowerMonitor
from repro.sim.engine import Simulation
from repro.sim.runner import default_scenario, run_strategy


@pytest.fixture(scope="module")
def scenario():
    return default_scenario(horizon=3600.0)


class TestHeadlineClaims:
    """The paper's central quantitative claims, at test scale."""

    def test_etrain_saves_double_digit_energy_vs_baseline(self, scenario):
        baseline = run_strategy(ImmediateStrategy(), scenario)
        etrain = run_strategy(
            ETrainStrategy(scenario.profiles, SchedulerConfig(theta=1.0)), scenario
        )
        saving = relative_saving(baseline, etrain)
        # Paper: 12-33 % total savings on device, larger in simulation.
        assert saving > 0.12

    def test_etrain_beats_etime_at_comparable_delay(self, scenario):
        etrain = run_strategy(
            ETrainStrategy(scenario.profiles, SchedulerConfig(theta=1.0)), scenario
        )
        etime = run_strategy(
            ETimeStrategy(scenario.estimator(), v=40_000.0), scenario
        )
        if abs(etrain.normalized_delay - etime.normalized_delay) < 30.0:
            assert etrain.total_energy < etime.total_energy

    def test_etrain_beats_peres_on_energy(self, scenario):
        etrain = run_strategy(
            ETrainStrategy(scenario.profiles, SchedulerConfig(theta=1.0)), scenario
        )
        peres = run_strategy(
            PerESStrategy(scenario.profiles, scenario.estimator(), omega=0.4),
            scenario,
        )
        assert etrain.total_energy < peres.total_energy

    def test_aggregation_reduces_burst_count(self, scenario):
        baseline = run_strategy(ImmediateStrategy(), scenario)
        etrain = run_strategy(
            ETrainStrategy(scenario.profiles, SchedulerConfig(theta=1.0)), scenario
        )
        assert etrain.burst_count < baseline.burst_count

    def test_comparison_table_built_from_runs(self, scenario):
        results = [
            run_strategy(ImmediateStrategy(), scenario),
            run_strategy(
                ETrainStrategy(scenario.profiles, SchedulerConfig(theta=1.0)),
                scenario,
            ),
            run_strategy(TailEnderStrategy(scenario.profiles), scenario),
        ]
        rows = compare_results(results)
        assert len(rows) == 3
        etrain_row = next(r for r in rows if "eTrain" in r.strategy)
        assert etrain_row.saving_vs_baseline_j > 0

    def test_tailender_between_baseline_and_etrain(self, scenario):
        """Batching alone helps; heartbeat alignment helps more."""
        baseline = run_strategy(ImmediateStrategy(), scenario)
        tailender = run_strategy(TailEnderStrategy(scenario.profiles), scenario)
        etrain = run_strategy(
            ETrainStrategy(scenario.profiles, SchedulerConfig(theta=1.0)), scenario
        )
        assert tailender.total_energy < baseline.total_energy
        assert etrain.total_energy < tailender.total_energy


class TestEnergyAccountingConsistency:
    def test_simulation_energy_equals_rrc_integral(self, scenario):
        strategy = ETrainStrategy(scenario.profiles, SchedulerConfig(theta=0.5))
        sim = Simulation(
            strategy,
            scenario.train_generators,
            scenario.fresh_packets(),
            bandwidth=scenario.bandwidth,
            power_model=scenario.power_model,
            horizon=scenario.horizon,
        )
        result = sim.run()
        assert result.total_energy == pytest.approx(sim.radio.rrc.energy(), rel=1e-6)

    def test_power_monitor_agrees_with_accounting(self, scenario):
        strategy = ImmediateStrategy()
        sim = Simulation(
            strategy,
            scenario.train_generators,
            scenario.fresh_packets()[:40],
            bandwidth=scenario.bandwidth,
            power_model=scenario.power_model,
            horizon=1200.0,
        )
        result = sim.run()
        monitor = PowerMonitor(interval=0.05)
        horizon = max(r.end for r in result.records) + scenario.power_model.tail_time
        measured = monitor.measure_energy(
            sim.radio.rrc, horizon=horizon, above_idle=True
        )
        assert measured == pytest.approx(result.total_energy, rel=0.02)


class TestOfflineOnlineBridge:
    def test_online_schedule_evaluates_consistently(self, scenario):
        """Feed the online schedule through the offline evaluator: its
        energy must be within a few percent of the simulator's own
        accounting (burst merging differs slightly at slot boundaries)."""
        strategy = ETrainStrategy(scenario.profiles, SchedulerConfig(theta=1.0))
        sub = default_scenario(horizon=1200.0)
        result = run_strategy(
            ETrainStrategy(sub.profiles, SchedulerConfig(theta=1.0)), sub
        )
        scheduled = [p for p in result.packets if p.is_scheduled]
        assignment = {p.packet_id: p.scheduled_time for p in scheduled}
        costs = {pr.app_id: pr.cost_function for pr in sub.profiles}
        offline_view = evaluate_schedule(
            scheduled, assignment, result.heartbeats, costs,
            power_model=sub.power_model, bandwidth=sub.bandwidth,
        )
        assert offline_view.total_energy == pytest.approx(
            result.total_energy, rel=0.25
        )

    def test_greedy_offline_beats_immediate(self):
        sub = default_scenario(horizon=1200.0)
        costs = {pr.app_id: pr.cost_function for pr in sub.profiles}
        packets = sub.fresh_packets()
        from repro.heartbeat.generators import merge_heartbeats

        heartbeats = merge_heartbeats(sub.train_generators, 1200.0)
        deferred = greedy_offline(
            packets, heartbeats, costs, delay_budget=1e9,
            power_model=sub.power_model, bandwidth=sub.bandwidth,
        )
        immediate = evaluate_schedule(
            packets,
            {p.packet_id: p.arrival_time for p in packets},
            heartbeats,
            costs,
            power_model=sub.power_model,
            bandwidth=sub.bandwidth,
        )
        assert deferred.total_energy < immediate.total_energy


class TestRealisticChannel:
    def test_wuhan_trace_drives_simulation(self):
        scenario = default_scenario(
            horizon=1800.0, bandwidth=wuhan_bandwidth_model()
        )
        result = run_strategy(ImmediateStrategy(), scenario)
        durations = [r.duration for r in result.records if r.kind == "data"]
        # Variable bandwidth produces variable transmission durations.
        assert max(durations) > min(durations)
