"""Unit tests for the slotted simulation engine."""

import pytest

from repro.bandwidth.models import ConstantBandwidth
from repro.baselines.etrain import ETrainStrategy
from repro.baselines.immediate import ImmediateStrategy
from repro.core.profiles import mail_profile, weibo_profile
from repro.core.scheduler import SchedulerConfig
from repro.heartbeat.apps import make_generator
from repro.sim.engine import Simulation

from tests.conftest import make_packet


def run(strategy, packets, trains=(), horizon=1000.0, bandwidth=None):
    sim = Simulation(
        strategy,
        [make_generator(app) for app in trains],
        packets,
        bandwidth=bandwidth or ConstantBandwidth(100_000.0),
        horizon=horizon,
    )
    return sim.run()


class TestBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            Simulation(ImmediateStrategy(), [], [], horizon=0.0)
        with pytest.raises(ValueError):
            Simulation(ImmediateStrategy(), [], [], slot=0.0)

    def test_empty_run(self):
        result = run(ImmediateStrategy(), [])
        assert result.total_energy == 0.0
        assert result.burst_count == 0

    def test_heartbeats_transmitted_at_departure_times(self):
        result = run(ImmediateStrategy(), [], trains=("qq",), horizon=700.0)
        hb_records = [r for r in result.records if r.kind == "heartbeat"]
        assert [r.start for r in hb_records] == [0.0, 300.0, 600.0]

    def test_immediate_strategy_transmits_next_slot(self):
        p = make_packet(arrival=4.3)
        result = run(ImmediateStrategy(), [p])
        assert p.scheduled_time == pytest.approx(5.0)

    def test_all_packets_accounted(self):
        packets = [make_packet(arrival=float(i * 7)) for i in range(20)]
        result = run(ImmediateStrategy(), packets)
        assert all(p.is_scheduled for p in packets)
        assert result.flushed_packets == 0

    def test_flush_at_horizon(self):
        """Packets a hoarding strategy never releases are flushed."""
        strategy = ETrainStrategy(
            [weibo_profile()], SchedulerConfig(theta=1e9, k=None)
        )
        p = make_packet(arrival=10.0)
        result = run(strategy, [p], horizon=100.0)  # no trains, theta huge
        assert result.flushed_packets == 1
        assert p.is_scheduled
        assert p.scheduled_time == pytest.approx(100.0)


class TestPiggybacking:
    def test_etrain_piggybacks_on_heartbeats(self):
        strategy = ETrainStrategy(
            [weibo_profile(), mail_profile()], SchedulerConfig(theta=0.2)
        )
        packets = [
            make_packet(app_id="mail", arrival=50.0, deadline=600.0),
            make_packet(app_id="mail", arrival=100.0, deadline=600.0),
        ]
        result = run(strategy, packets, trains=("qq",), horizon=700.0)
        piggy = [r for r in result.records if r.kind == "piggyback"]
        assert piggy, "mail should ride a heartbeat"
        assert result.piggyback_ratio == 1.0

    def test_warm_gate_holds_cold_releases(self):
        """With no heartbeat and a cold radio, eTrain's selected packets
        wait in Q_TX instead of buying a fresh tail."""
        strategy = ETrainStrategy([weibo_profile()], SchedulerConfig(theta=0.0))
        p = make_packet(arrival=50.0)
        result = run(strategy, [p], trains=("qq",), horizon=700.0)
        # The packet was selected at ~51 s but the radio went cold at
        # ~17.5 s; it must ride the t=300 heartbeat.
        assert p.scheduled_time == pytest.approx(300.0)

    def test_warm_gate_disabled_transmits_immediately(self):
        strategy = ETrainStrategy(
            [weibo_profile()], SchedulerConfig(theta=0.0), warm_gate=False
        )
        p = make_packet(arrival=50.0)
        result = run(strategy, [p], trains=("qq",), horizon=700.0)
        # Arrival at the slot-50 boundary is visible to that slot's
        # decision; with theta=0 it transmits right there.
        assert p.scheduled_time == pytest.approx(50.0)

    def test_multiple_heartbeats_same_slot_serialised(self):
        """Coincident heartbeats from different apps must not crash and
        must serialise on the radio."""
        result = run(
            ImmediateStrategy(),
            [],
            trains=("qq", "renren"),  # both 300 s, same phase
            horizon=700.0,
        )
        starts = [r.start for r in result.records]
        assert starts == sorted(starts)
        assert len(result.records) == 6


class TestDecisionGranularity:
    def test_strategy_slot_respected(self):
        class CountingStrategy(ImmediateStrategy):
            slot = 60.0
            # Counting decide calls is observable state, so this strategy
            # must not advertise idleness (the engine would legitimately
            # skip the calls otherwise).
            is_idle = False

            def __init__(self):
                super().__init__()
                self.decide_times = []

            def decide(self, now, heartbeat_present):
                self.decide_times.append(now)
                return super().decide(now, heartbeat_present)

        strategy = CountingStrategy()
        run(strategy, [], horizon=300.0)
        assert strategy.decide_times == [0.0, 60.0, 120.0, 180.0, 240.0]

    def test_skipped_decisions_still_counted(self):
        """An idle-capable strategy skips decide() calls but the result's
        decision count must match the dense schedule."""
        result = run(ImmediateStrategy(), [], horizon=300.0)
        assert result.decisions == 300


class TestCausality:
    def test_no_packet_scheduled_before_arrival(self):
        strategy = ETrainStrategy([weibo_profile()], SchedulerConfig(theta=0.0))
        packets = [make_packet(arrival=10.5 * i + 3.2) for i in range(30)]
        result = run(strategy, packets, trains=("qq", "whatsapp"), horizon=500.0)
        for p in packets:
            assert p.scheduled_time is not None
            assert p.scheduled_time >= p.arrival_time

    def test_records_never_overlap(self):
        strategy = ETrainStrategy([weibo_profile()], SchedulerConfig(theta=0.0))
        packets = [make_packet(arrival=float(i)) for i in range(50)]
        result = run(strategy, packets, trains=("qq",), horizon=300.0)
        for a, b in zip(result.records, result.records[1:]):
            assert b.start >= a.end - 1e-9
