"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.bandwidth.models import ConstantBandwidth
from repro.core.packet import Packet, reset_packet_ids
from repro.core.profiles import cloud_profile, mail_profile, weibo_profile
from repro.radio.power_model import GALAXY_S4_3G, PowerModel


@pytest.fixture(autouse=True)
def _fresh_packet_ids():
    """Deterministic packet ids per test."""
    reset_packet_ids()
    yield
    reset_packet_ids()


@pytest.fixture
def power_model() -> PowerModel:
    """The paper's Galaxy S4 3G constants."""
    return GALAXY_S4_3G


@pytest.fixture
def flat_channel() -> ConstantBandwidth:
    """100 KB/s constant uplink."""
    return ConstantBandwidth(100_000.0)


@pytest.fixture
def cargo_profiles():
    """The paper's three cargo apps at the reference rate."""
    return [mail_profile(), weibo_profile(), cloud_profile()]


def make_packet(
    app_id: str = "weibo",
    arrival: float = 0.0,
    size: int = 2_000,
    deadline: float = 30.0,
) -> Packet:
    """Convenience packet constructor used across test modules."""
    return Packet(
        app_id=app_id, arrival_time=arrival, size_bytes=size, deadline=deadline
    )
