"""Unit tests for the checkpoint/resume run journal."""

import json

import pytest

from repro.faults import truncate_tail
from repro.sim.parallel import JournalMismatchError, RunJournal, run_key_of

pytestmark = pytest.mark.faults

KEY = run_key_of(["a", "b", "c"])


class TestFreshJournal:
    def test_records_and_dedupes(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal.attach(path, KEY, 3) as journal:
            journal.record("a", tag="first")
            journal.record("a", tag="dup ignored")
            journal.record("b")
        lines = path.read_text().splitlines()
        assert len(lines) == 3  # header + two unique keys
        header = json.loads(lines[0])
        assert header["run_key"] == KEY and header["jobs"] == 3
        assert json.loads(lines[1]) == {"key": "a", "tag": "first"}

    def test_attach_without_resume_truncates(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal.attach(path, KEY, 3) as journal:
            journal.record("a")
        with RunJournal.attach(path, KEY, 3, resume=False) as journal:
            assert journal.completed == set()
        assert len(path.read_text().splitlines()) == 1  # header only


class TestResume:
    def test_resume_loads_completed_keys(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal.attach(path, KEY, 3) as journal:
            journal.record("a")
            journal.record("b")
        with RunJournal.attach(path, KEY, 3, resume=True) as journal:
            assert journal.completed == {"a", "b"}
            assert journal.resumed_jobs == 2
            assert "2/3" in journal.describe()
            journal.record("c")
        with RunJournal.attach(path, KEY, 3, resume=True) as journal:
            assert journal.completed == {"a", "b", "c"}

    def test_resume_drops_torn_tail(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal.attach(path, KEY, 3) as journal:
            journal.record("a")
            journal.record("b")
        truncate_tail(path, 5)  # kill -9 mid-append: b's line is torn
        with RunJournal.attach(path, KEY, 3, resume=True) as journal:
            assert journal.completed == {"a"}
            assert journal.torn_bytes > 0
            assert "torn" in journal.describe()
            journal.record("b")
        # The rewritten tail is intact JSONL again.
        records = [json.loads(l) for l in path.read_text().splitlines()]
        assert [r.get("key") for r in records[1:]] == ["a", "b"]

    def test_resume_other_grid_refuses(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal.attach(path, KEY, 3):
            pass
        with pytest.raises(JournalMismatchError):
            RunJournal.attach(path, run_key_of(["x"]), 1, resume=True)

    def test_resume_over_garbage_starts_fresh(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text("this is not a journal\n")
        with RunJournal.attach(path, KEY, 3, resume=True) as journal:
            assert journal.completed == set()
        header = json.loads(path.read_text().splitlines()[0])
        assert header["run_key"] == KEY

    def test_resume_missing_file_starts_fresh(self, tmp_path):
        path = tmp_path / "sub" / "j.jsonl"
        with RunJournal.attach(path, KEY, 3, resume=True) as journal:
            assert journal.completed == set()
        assert path.exists()


class TestRunKey:
    def test_order_sensitive(self):
        assert run_key_of(["a", "b"]) != run_key_of(["b", "a"])

    def test_stable(self):
        assert run_key_of(["a", "b"]) == run_key_of(iter(["a", "b"]))
