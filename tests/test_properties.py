"""System-level property-based tests (hypothesis).

These encode the invariants DESIGN.md promises: scheduler causality and
budget compliance, energy-accounting consistency, aggregation dominance,
and offline-bound sanity — over randomly generated workloads.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bandwidth.models import ConstantBandwidth
from repro.baselines.etrain import ETrainStrategy
from repro.baselines.immediate import ImmediateStrategy
from repro.core.packet import Packet, reset_packet_ids
from repro.core.profiles import weibo_profile
from repro.core.scheduler import ETrainScheduler, SchedulerConfig
from repro.heartbeat.apps import make_generator
from repro.sim.engine import Simulation

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

workloads = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=500.0),  # arrival
        st.integers(min_value=100, max_value=50_000),  # size
    ),
    min_size=1,
    max_size=30,
)


def build_packets(spec):
    reset_packet_ids()
    return [
        Packet(app_id="weibo", arrival_time=a, size_bytes=s, deadline=30.0)
        for a, s in sorted(spec)
    ]


@given(spec=workloads, theta=st.floats(min_value=0.0, max_value=5.0))
@SETTINGS
def test_etrain_simulation_invariants(spec, theta):
    """Causality, serialisation and complete delivery for any workload."""
    packets = build_packets(spec)
    strategy = ETrainStrategy([weibo_profile()], SchedulerConfig(theta=theta))
    sim = Simulation(
        strategy,
        [make_generator("qq")],
        packets,
        bandwidth=ConstantBandwidth(100_000.0),
        horizon=600.0,
    )
    result = sim.run()

    # The full invariant battery: causality, serialisation, delivery,
    # heartbeat departures, energy-attribution consistency.
    from repro.sim.validate import assert_valid

    assert_valid(result)

    # Plus: analytic energy equals the RRC timeline integral.
    assert result.total_energy == pytest.approx(sim.radio.rrc.energy(), rel=1e-6)


@given(spec=workloads)
@SETTINGS
def test_heartbeat_only_etrain_loses_at_most_one_tail_to_immediate(spec):
    """In the heartbeat-only regime (theta -> inf: no dribbles, pure
    piggybacking) eTrain can only lose to the immediate baseline
    through the horizon flush — at most one extra full tail.

    The inter-burst tail function is concave with E(0)=0, hence
    subadditive: inserting the baseline's extra bursts into the shared
    heartbeat chain never lowers total tail energy.  (At *finite* theta
    the claim is false — hypothesis found K=1 dribble chains of
    simultaneous packets costing more than one immediate batch — which
    is why this property pins the theta=inf regime only.)"""
    packets_a = build_packets(spec)
    strategy = ETrainStrategy([weibo_profile()], SchedulerConfig(theta=1e9))
    result_a = Simulation(
        strategy,
        [make_generator("qq")],
        packets_a,
        bandwidth=ConstantBandwidth(100_000.0),
        horizon=600.0,
    ).run()

    packets_b = build_packets(spec)
    result_b = Simulation(
        ImmediateStrategy(),
        [make_generator("qq")],
        packets_b,
        bandwidth=ConstantBandwidth(100_000.0),
        horizon=600.0,
    ).run()
    from repro.radio.power_model import GALAXY_S4_3G

    slack = GALAXY_S4_3G.full_tail_energy + 2.0
    assert result_a.total_energy <= result_b.total_energy + slack


@given(
    spec=workloads,
    k=st.one_of(st.none(), st.integers(min_value=1, max_value=10)),
    theta=st.floats(min_value=0.0, max_value=3.0),
)
@SETTINGS
def test_scheduler_budget_compliance(spec, k, theta):
    """Algorithm 1 never selects more than K(t) packets per slot."""
    scheduler = ETrainScheduler([weibo_profile()], SchedulerConfig(theta=theta, k=k))
    packets = build_packets(spec)
    idx = 0
    for t in range(0, 600):
        now = float(t)
        while idx < len(packets) and packets[idx].arrival_time <= now:
            scheduler.on_packet_arrival(packets[idx])
            idx += 1
        heartbeat = t % 60 == 0
        decision = scheduler.decide(now, heartbeat)
        if heartbeat:
            budget = k if k is not None else 10**9
        else:
            budget = 1 if decision.budget else 0
        assert len(decision.selected) <= (budget if budget else 1)
        if not heartbeat and decision.instantaneous_cost < theta:
            assert decision.selected == ()
    scheduler.flush(600.0)
    assert scheduler.waiting_count == 0


@given(
    gaps=st.lists(st.floats(min_value=0.5, max_value=120.0), min_size=2, max_size=10)
)
@SETTINGS
def test_merging_bursts_never_increases_energy(gaps):
    """Replacing two adjacent bursts by one merged burst at the earlier
    time never increases total energy (the aggregation premise)."""
    from repro.core.packet import TransmissionRecord
    from repro.radio.energy import EnergyAccountant

    acc = EnergyAccountant()
    starts = []
    t = 0.0
    for g in gaps:
        starts.append(t)
        t += g
    separate = [
        TransmissionRecord(start=s, duration=0.2, size_bytes=100, kind="data")
        for s in starts
    ]
    merged = [
        TransmissionRecord(
            start=starts[0], duration=0.2 * len(starts), size_bytes=100 * len(starts),
            kind="data",
        )
    ]
    assert acc.total_energy(merged) <= acc.total_energy(separate) + 1e-9
