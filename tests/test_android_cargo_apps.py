"""Unit tests for the three evaluation cargo apps."""

import pytest

from repro.android.cargo_apps import ETrainCloud, ETrainMail, LunaWeibo
from repro.android.runtime import AndroidSystem
from repro.workload.user_traces import ActivityClass, BehaviorType, generate_session


@pytest.fixture
def system():
    return AndroidSystem()


class TestDefaults:
    def test_profiles(self, system):
        assert ETrainMail(system).app_id == "mail"
        assert LunaWeibo(system).app_id == "weibo"
        assert ETrainCloud(system).app_id == "cloud"

    def test_cloud_sizes_large(self, system):
        cloud = ETrainCloud(system)
        assert cloud.profile.mean_size_bytes == 100_000


class TestScheduledWorkloads:
    def test_schedule_submissions(self, system):
        mail = ETrainMail(system)
        mail.direct_mode = True
        mail.schedule_submissions([5.0, 15.0], [1_000, 2_000])
        system.run_until(20.0)
        assert len(mail.transmitted) == 2
        assert [p.size_bytes for p in mail.transmitted] == [1_000, 2_000]
        assert [p.arrival_time for p in mail.transmitted] == [5.0, 15.0]

    def test_schedule_submissions_validates(self, system):
        with pytest.raises(ValueError):
            ETrainMail(system).schedule_submissions([1.0], [1, 2])

    def test_schedule_poisson_deterministic(self, system):
        mail = ETrainMail(system)
        mail.direct_mode = True
        n = mail.schedule_poisson(2_000.0, seed=1)
        system.run_until(2_000.0)
        assert len(mail.transmitted) == n

        other_system = AndroidSystem()
        mail2 = ETrainMail(other_system)
        mail2.direct_mode = True
        assert mail2.schedule_poisson(2_000.0, seed=1) == n

    def test_poisson_sizes_respect_profile(self, system):
        weibo = LunaWeibo(system)
        weibo.direct_mode = True
        weibo.schedule_poisson(5_000.0, seed=0)
        system.run_until(5_000.0)
        assert all(p.size_bytes >= 100 for p in weibo.transmitted)


class TestTraceReplay:
    def test_replay_counts_network_events(self, system):
        records = generate_session("u1", ActivityClass.MODERATE, seed=0)
        expected = sum(
            1
            for r in records
            if r.behavior in (BehaviorType.UPLOAD, BehaviorType.REFRESH)
            and r.packet_size > 0
        )
        weibo = LunaWeibo(system)
        weibo.direct_mode = True
        n = weibo.replay_trace(records)
        assert n == expected
        system.run_until(700.0)
        assert len(weibo.transmitted) == expected

    def test_replay_preserves_sizes(self, system):
        records = generate_session("u1", ActivityClass.INACTIVE, seed=1)
        weibo = LunaWeibo(system)
        weibo.direct_mode = True
        weibo.replay_trace(records)
        system.run_until(700.0)
        uploads = [r.packet_size for r in records if r.behavior is BehaviorType.UPLOAD]
        transmitted_sizes = [p.size_bytes for p in weibo.transmitted]
        for size in uploads:
            assert size in transmitted_sizes
