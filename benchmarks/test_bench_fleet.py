"""Fleet engine bench — batched NumPy chunks vs the per-device loop.

Wraps :mod:`repro.sim.fleet.perf` (the ``etrain bench --suite fleet``
harness) in the benchmark suite's idiom.  The committed baseline lives
in ``BENCH_fleet.json`` and CI gates regressions with ``etrain bench
--suite fleet --mode smoke --check``; here we time one run, print the
throughput table, and assert the acceptance floor for the paper-default
strategy: the eTrain fleet path must beat the per-device scalar loop by
at least :data:`~repro.sim.fleet.perf.FLEET_SPEEDUP_FLOOR` (20×).

All tests are ``smoke``-marked (seconds-long at the smoke horizon).
"""

from __future__ import annotations

import dataclasses

import pytest

from benchmarks.conftest import bench_horizon, run_once
from repro.sim.fleet.perf import FLEET_BENCH_CASES, FLEET_SPEEDUP_FLOOR, run_fleet_case


def _case(name: str):
    case = next(c for c in FLEET_BENCH_CASES if c.name == name)
    return dataclasses.replace(case, horizon=bench_horizon(case.horizon))


def _report_row(report, title, row):
    report(
        f"{title}\n"
        f"  fleet  {row['devices']:6d} devices in {row['fleet_s']:6.2f} s "
        f"({row['fleet_devices_per_s']:8.0f} dev/s)\n"
        f"  scalar {row['scalar_devices']:6d} devices in {row['scalar_s']:6.2f} s "
        f"({row['scalar_devices_per_s']:8.1f} dev/s)\n"
        f"  speedup {row['speedup']:.1f}x"
    )


@pytest.mark.smoke
def test_etrain_fleet_clears_speedup_floor(benchmark, report):
    row = run_once(benchmark, run_fleet_case, _case("etrain_fleet_2h"), 1)
    _report_row(report, "Fleet engine [etrain, paper-default scenario]", row)
    assert row["speedup"] >= FLEET_SPEEDUP_FLOOR
    assert row["energy_per_device_j"] > 0


@pytest.mark.smoke
def test_immediate_fleet_beats_scalar(benchmark, report):
    row = run_once(benchmark, run_fleet_case, _case("immediate_fleet_2h"), 1)
    _report_row(report, "Fleet engine [immediate]", row)
    # No 20x floor here: the scalar immediate path is itself fast.  The
    # vectorized path must simply win clearly.
    assert row["speedup"] > 2.0
