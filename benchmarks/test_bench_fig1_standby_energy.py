"""Fig. 1 bench — 4-hour standby energy vs. number of IM apps.

Paper: with 3 IM apps on 3G, ~87 % of the ~2000 J standby budget goes to
heartbeat transmissions; Fig. 1(b) shows ~once-a-minute merged heartbeat
traffic from the three apps.
"""

from benchmarks.conftest import run_once
from repro.analysis.summarize import format_table
from repro.experiments.fig1 import run_fig1a, run_fig1b


def test_fig1a_standby_energy(benchmark, report):
    rows = run_once(benchmark, run_fig1a, hours=4.0)

    report(
        format_table(
            ["IM apps", "heartbeats", "hb energy (J)", "total (J)", "hb share"],
            [
                [r.im_apps, r.heartbeats, r.heartbeat_energy_j, r.total_j,
                 f"{100 * r.heartbeat_fraction:.0f}%"]
                for r in rows
            ],
            title="Fig. 1(a) [paper: ~2000 J total, ~87% heartbeats at 3 apps]",
        )
    )

    # Shape: heartbeat energy grows with app count and dominates standby.
    energies = [r.heartbeat_energy_j for r in rows]
    assert energies == sorted(energies) and energies[0] == 0.0
    assert rows[3].heartbeat_fraction > 0.75
    # Magnitude: same order as the paper's ~1700-2000 J.
    assert 800.0 <= rows[3].total_j <= 3000.0


def test_fig1b_heartbeat_scatter(benchmark, report):
    scatter = run_once(benchmark, run_fig1b, hours=4.0)
    per_app = {}
    for _, size, app in scatter:
        per_app.setdefault(app, []).append(size)
    report(
        "Fig. 1(b): heartbeats in 4 h — "
        + ", ".join(f"{app}: {len(sizes)} x {sizes[0]} B" for app, sizes in per_app.items())
    )
    # Three apps, paper sizes, ~once-a-minute combined (162 in 4 h).
    assert set(per_app) == {"qq", "wechat", "whatsapp"}
    assert len(scatter) > 120
    assert per_app["qq"][0] == 378
