"""Multi-seed stability bench — the headline result with error bars.

Every other bench runs one seed; this one replicates the eTrain-vs-
baseline comparison across seeds and asserts the saving is not a lucky
draw: the 95 % confidence intervals of the two strategies' energies must
be disjoint.
"""

from benchmarks.conftest import run_once
from repro.analysis.multiseed import replicate_strategy
from repro.baselines.etrain import ETrainStrategy
from repro.baselines.immediate import ImmediateStrategy
from repro.core.scheduler import SchedulerConfig

SEEDS = tuple(range(8))
HORIZON = 3600.0


def _replicate_both():
    baseline = replicate_strategy(
        lambda scenario: ImmediateStrategy(), seeds=SEEDS, horizon=HORIZON
    )
    etrain = replicate_strategy(
        lambda scenario: ETrainStrategy(
            scenario.profiles, SchedulerConfig(theta=1.0)
        ),
        seeds=SEEDS,
        horizon=HORIZON,
    )
    return baseline, etrain


def test_multiseed_saving_is_significant(benchmark, report):
    baseline, etrain = run_once(benchmark, _replicate_both)

    b = baseline["total_energy_j"]
    e = etrain["total_energy_j"]
    report(
        f"{len(SEEDS)} seeds, {HORIZON:.0f} s horizon\n"
        f"  baseline energy: {b.mean:7.1f} ± {b.ci95_half_width:5.1f} J\n"
        f"  eTrain energy:   {e.mean:7.1f} ± {e.ci95_half_width:5.1f} J\n"
        f"  mean saving:     {b.mean - e.mean:7.1f} J "
        f"({100 * (1 - e.mean / b.mean):.0f}%)\n"
        f"  eTrain delay:    {etrain['normalized_delay_s'].mean:5.1f} ± "
        f"{etrain['normalized_delay_s'].ci95_half_width:4.1f} s"
    )

    # CI separation: eTrain's upper bound below baseline's lower bound.
    assert e.mean + e.ci95_half_width < b.mean - b.ci95_half_width
    # The relative saving is stable: every seed saved.
    assert e.maximum < b.minimum
    # Spread sanity: the CI is a small fraction of the mean.
    assert e.ci95_half_width < 0.25 * e.mean
