"""Shared helpers for the benchmark suite.

Each benchmark regenerates one of the paper's tables/figures at full
scale, prints the rows/series it produces (so `pytest benchmarks/
--benchmark-only -s` reproduces the evaluation section), and asserts the
paper's qualitative shape.  `benchmark.pedantic(..., rounds=1)` is used
throughout: the experiments are deterministic, multi-second computations
— we want one timed, reported run, not a statistics loop.

**Smoke mode** — CI and pre-commit runs don't want multi-minute
figure regeneration.  Either select only the ``smoke``-marked
benchmarks (``pytest benchmarks -m smoke``) or set
``ETRAIN_BENCH_SMOKE=1``, which additionally skips every full-scale
benchmark and shrinks ``bench_horizon()`` to seconds-long runs.
"""

from __future__ import annotations

import os

import pytest

#: Env knob: truthy value = smoke mode (tiny horizons, smoke-only set).
SMOKE = os.environ.get("ETRAIN_BENCH_SMOKE", "") not in ("", "0")


def bench_horizon(full: float = 7200.0, smoke: float = 450.0) -> float:
    """The horizon a benchmark should simulate in the current mode."""
    return smoke if SMOKE else full


def pytest_collection_modifyitems(config, items):
    if not SMOKE:
        return
    skip_full = pytest.mark.skip(
        reason="ETRAIN_BENCH_SMOKE is set: running smoke-marked benchmarks only"
    )
    for item in items:
        if "smoke" not in item.keywords:
            item.add_marker(skip_full)


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def report(capsys):
    """Print a block even under pytest's capture (visible with -s or -rA)."""

    def _print(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _print
