"""Shared helpers for the benchmark suite.

Each benchmark regenerates one of the paper's tables/figures at full
scale, prints the rows/series it produces (so `pytest benchmarks/
--benchmark-only -s` reproduces the evaluation section), and asserts the
paper's qualitative shape.  `benchmark.pedantic(..., rounds=1)` is used
throughout: the experiments are deterministic, multi-second computations
— we want one timed, reported run, not a statistics loop.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def report(capsys):
    """Print a block even under pytest's capture (visible with -s or -rA)."""

    def _print(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _print
