"""Sensitivity benches — eTrain's savings as the environment varies.

Full-scale versions of the cycle / tail / jitter sweeps, with the
paper-level reading for each: piggybacking needs calm-enough trains to
beat the heartbeat floor, scales with carrier tail length, and is
insensitive to alarm jitter (the monitor reacts to observed departures).
"""

from benchmarks.conftest import run_once
from repro.analysis.summarize import format_table
from repro.experiments.sensitivity import (
    sweep_heartbeat_cycle,
    sweep_heartbeat_jitter,
    sweep_tail_length,
)


def _table(title, knob, rows):
    return format_table(
        [knob, "baseline (J)", "eTrain (J)", "saving (%)", "delay (s)"],
        [[r.knob, r.baseline_j, r.etrain_j, r.saving_pct, r.etrain_delay_s]
         for r in rows],
        title=title,
    )


def test_sensitivity_heartbeat_cycle(benchmark, report):
    rows = run_once(benchmark, sweep_heartbeat_cycle, horizon=7200.0)
    report(_table("Sensitivity: shared heartbeat cycle", "cycle (s)", rows))

    delays = [r.etrain_delay_s for r in rows]
    savings_pct = [r.saving_pct for r in rows]
    assert delays == sorted(delays)
    assert savings_pct == sorted(savings_pct)
    assert all(r.saving_j > 0 for r in rows)


def test_sensitivity_tail_length(benchmark, report):
    rows = run_once(benchmark, sweep_tail_length, horizon=7200.0)
    report(_table("Sensitivity: tail-timer scale", "scale", rows))

    base = [r.baseline_j for r in rows]
    assert base == sorted(base)
    # Absolute saving grows through the measured operating point.
    up_to_measured = [r.saving_j for r in rows if r.knob <= 1.0]
    assert up_to_measured == sorted(up_to_measured)
    assert all(r.saving_j > 0 for r in rows)


def test_sensitivity_heartbeat_jitter(benchmark, report):
    rows = run_once(benchmark, sweep_heartbeat_jitter, horizon=7200.0)
    report(_table("Sensitivity: heartbeat jitter", "jitter (s)", rows))

    clean = rows[0]
    for r in rows[1:]:
        # Jitter up to a minute erodes savings by well under half.
        assert r.saving_j > 0.6 * clean.saving_j
