"""Day-long battery bench — the introduction's arithmetic, simulated.

Not a paper figure, but the paper's motivating numbers: heartbeats cost
"at least 6 % of battery capacity per 10 hours for one app" and the
3-app standby waste "corresponds to roughly 10 hours of standby time".
This bench runs a full diurnal 24-hour day on the reference 1700 mAh
battery and reports eTrain's saving in battery percent.
"""

from benchmarks.conftest import run_once
from repro.experiments.daylong import run_daylong
from repro.sim.battery import GALAXY_S4_BATTERY


def test_daylong_battery(benchmark, report):
    baseline, etrain = run_once(benchmark, run_daylong, seed=0)

    saved = baseline.energy_j - etrain.energy_j
    report(
        "24-hour diurnal day, 1700 mAh battery\n"
        f"  baseline: {baseline.energy_j:8.0f} J = {baseline.battery_pct:5.1f}% "
        f"battery, delay {baseline.mean_delay_s:.1f} s\n"
        f"  eTrain:   {etrain.energy_j:8.0f} J = {etrain.battery_pct:5.1f}% "
        f"battery, delay {etrain.mean_delay_s:.1f} s\n"
        f"  saved:    {saved:8.0f} J = "
        f"{GALAXY_S4_BATTERY.percent_used(saved):.1f}% of the battery/day"
    )

    # Radio activity is a double-digit share of the battery per day.
    assert baseline.battery_pct > 20.0
    # eTrain reclaims a double-digit battery percentage.
    assert GALAXY_S4_BATTERY.percent_used(saved) > 10.0
    # Delay cost stays within the deadline regime (~1 heartbeat wait).
    assert etrain.mean_delay_s < 120.0
