"""Fig. 8 bench — eTrain vs. baseline, PerES and eTime.

Paper, panel (a): on the E-D panel at λ = 0.08, eTrain dominates.
Panel (b): at a fixed normalized delay (~55 s), baseline energy rises
with λ then flattens (~2600 J) as tails overlap; eTrain saves the most
at every rate (628–1650 J), and eTime beats PerES.
"""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.ed_panel import interpolate_energy_at_delay
from repro.analysis.summarize import format_table
from repro.experiments.fig8 import run_fig8a, run_fig8b
from repro.sim.runner import default_scenario


def test_fig8a_ed_panel(benchmark, report):
    scenario = default_scenario(horizon=7200.0)
    curves = run_once(benchmark, run_fig8a, scenario)

    rows = []
    for name, curve in curves.items():
        for p in curve.sorted_by_delay():
            rows.append([name, p.knob, p.energy_j, p.delay_s, p.violation_ratio])
    report(
        format_table(
            ["strategy", "knob", "energy (J)", "delay (s)", "violations"],
            rows,
            title="Fig. 8(a) [paper: eTrain dominates the E-D panel]",
        )
    )

    baseline = curves["baseline"].points[0].energy_j
    # Everyone beats the baseline somewhere; eTrain beats it everywhere.
    assert curves["eTrain"].max_energy < baseline
    # eTrain dominates eTime at every delay both curves can reach.
    for delay in (60.0, 65.0, 70.0):
        etrain = interpolate_energy_at_delay(curves["eTrain"], delay)
        etime = interpolate_energy_at_delay(curves["eTime"], delay)
        if etrain is not None and etime is not None:
            assert etrain < etime
    # eTrain's best point beats PerES's best point.
    assert curves["eTrain"].min_energy < curves["PerES"].min_energy


def test_fig8b_energy_vs_arrival_rate(benchmark, report):
    rows = run_once(benchmark, run_fig8b)

    report(
        format_table(
            ["lambda", "baseline (J)", "eTrain (J)", "PerES (J)", "eTime (J)",
             "eTrain saving (J)"],
            [[r.rate, r.baseline_j, r.etrain_j, r.peres_j, r.etime_j,
              r.etrain_saving_j] for r in rows],
            title="Fig. 8(b) [paper: baseline flattens ~2600 J; eTrain saves "
            "628-1650 J; eTime beats PerES]",
        )
    )

    # Baseline grows with rate, with slowing increments (tail overlap).
    base = [r.baseline_j for r in rows]
    assert base == sorted(base)
    increments = [b - a for a, b in zip(base, base[1:])]
    assert increments[-1] < increments[0]
    # eTrain wins at every rate, with growing absolute savings.
    for r in rows:
        assert r.etrain_j < r.baseline_j
        assert r.etrain_j < r.peres_j
        assert r.etrain_j < r.etime_j
    savings = [r.etrain_saving_j for r in rows]
    assert savings[-1] > savings[0]
    # eTime beats PerES (both rely on estimation; PerES's deadline
    # pressure forces more scattered bursts).
    mid = rows[len(rows) // 2]
    assert mid.etime_j < mid.peres_j
