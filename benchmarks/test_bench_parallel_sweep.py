"""Parallel sweep bench — executor throughput, determinism and caching.

Times the parallel experiment executor on the canonical comparison grid
(4 strategies x seeds) and checks, under the timer, the properties the
experiment layer leans on: pool == serial bit-identical summaries and
zero simulations on a warm cache.

All three tests are ``smoke``-marked: with ``ETRAIN_BENCH_SMOKE=1`` (or
``-m smoke``) they are the benchmark suite's seconds-long CI subset.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_horizon, run_once
from repro.sim.parallel import (
    ExperimentExecutor,
    ScenarioSpec,
    StrategySpec,
    seed_grid,
)

GRID_STRATEGIES = [
    StrategySpec.make("immediate"),
    StrategySpec.make("etrain", theta=1.0),
    StrategySpec.make("peres", omega=0.4),
    StrategySpec.make("etime", v=40_000.0),
]


def _jobs(seeds: int = 3):
    scenario = ScenarioSpec(horizon=bench_horizon(1800.0, 300.0))
    return seed_grid(GRID_STRATEGIES, list(range(seeds)), scenario)


@pytest.mark.smoke
def test_serial_grid_throughput(benchmark, report):
    executor = ExperimentExecutor()
    results = run_once(benchmark, executor.run, _jobs())
    assert len(results) == 12
    report(executor.stats.describe())


@pytest.mark.smoke
def test_pooled_grid_matches_serial(benchmark, report):
    jobs = _jobs()
    serial = ExperimentExecutor().run(jobs)
    pooled_executor = ExperimentExecutor(workers=2)
    pooled = run_once(benchmark, pooled_executor.run, jobs)

    assert [r.summary for r in pooled] == [r.summary for r in serial]
    report(pooled_executor.stats.describe())


@pytest.mark.smoke
def test_warm_cache_grid_runs_no_simulations(benchmark, report, tmp_path):
    jobs = _jobs()
    ExperimentExecutor(cache_dir=tmp_path / "cache").run(jobs)  # cold fill

    warm = ExperimentExecutor(cache_dir=tmp_path / "cache")
    results = run_once(benchmark, warm.run, jobs)
    assert warm.stats.jobs_run == 0
    assert warm.stats.cache_hits == len(jobs)
    assert all(r.cached for r in results)
    report(warm.stats.describe())
