"""Fig. 4 bench — power-state transitions around one heartbeat.

Paper (Galaxy S4, TD-SCDMA): IDLE → DCH (transmission + 10 s linger) →
FACH (7.5 s) → IDLE, with a full tail costing ~10.91 J.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.fig4 import run_fig4
from repro.radio.power_model import GALAXY_S4_3G


def test_fig4_power_state_timeline(benchmark, report):
    trace, dwells = run_once(benchmark, run_fig4)

    lines = ["Fig. 4 [paper: DCH 10 s, FACH 7.5 s, tail ~10.91 J]"]
    for d in dwells:
        lines.append(
            f"  {d.start:7.2f}-{d.end:7.2f}s {d.state:8s} {1000 * d.power_w:5.0f} mW"
        )
    lines.append(f"  full tail energy: {GALAXY_S4_3G.full_tail_energy:.2f} J")
    report("\n".join(lines))

    labels = [d.state for d in dwells]
    assert labels == ["IDLE", "DCH(tx)", "DCH", "FACH", "IDLE"]
    by_label = {d.state: d for d in dwells}
    assert by_label["DCH"].duration == pytest.approx(10.0)
    assert by_label["FACH"].duration == pytest.approx(7.5)
    assert 9.0 <= GALAXY_S4_3G.full_tail_energy <= 11.5
    # 10 Hz sampling, as the paper's power tool.
    assert trace.interval == pytest.approx(0.1)
