"""Engine fast-path bench — the event-horizon loop vs the dense reference.

Wraps :mod:`repro.sim.perf` (the ``etrain bench`` harness) in the
benchmark suite's idiom: timed once, printed, and shape-asserted.  The
hard ≥5×/≥10× speedup claims live in the committed ``BENCH_engine.json``
baseline and are gated in CI by ``etrain bench --mode smoke --check``;
here we only assert the direction (the event loop must actually win and
actually skip), so a noisy CI box cannot flake the suite.

All tests are ``smoke``-marked: they are part of the seconds-long CI
subset (``-m smoke`` / ``ETRAIN_BENCH_SMOKE=1``).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.sim.perf import BENCH_CASES, run_case


def _case(name: str):
    return next(c for c in BENCH_CASES if c.name == name)


@pytest.mark.smoke
def test_sparse_strategy_engine_speedup(benchmark, report):
    row = run_once(benchmark, run_case, _case("periodic300_2h"), 3)
    report(
        "Engine fast path [periodic(300 s), 2 h scenario]\n"
        f"  dense {row['dense_s'] * 1e3:7.2f} ms over {row['dense_iterations']} slots\n"
        f"  event {row['event_s'] * 1e3:7.2f} ms over {row['event_iterations']} slots\n"
        f"  speedup {row['speedup']:.2f}x"
    )
    # run_case itself asserts dense/event summaries are bit-identical.
    assert row["speedup"] > 1.5
    assert row["event_iterations"] < row["dense_iterations"] / 10


@pytest.mark.smoke
def test_daylong_horizon_engine_speedup(benchmark, report):
    row = run_once(benchmark, run_case, _case("periodic600_day"), 2)
    report(
        "Engine fast path [periodic(600 s), 24 h horizon]\n"
        f"  dense {row['dense_s'] * 1e3:7.2f} ms over {row['dense_iterations']} slots\n"
        f"  event {row['event_s'] * 1e3:7.2f} ms over {row['event_iterations']} slots\n"
        f"  speedup {row['speedup']:.2f}x"
    )
    assert row["speedup"] > 3.0
    assert row["event_iterations"] < row["dense_iterations"] / 100
