"""Observability overhead bench: off means off, and merges obey algebra.

The tracing/metrics layer promises *zero overhead when disabled*: a run
with ``recorder=None`` outside any :func:`~repro.obs.metrics.metrics_scope`
does one registry gate-check per ``run()`` — never per slot, packet or
burst — and touches no tracer code at all.  Three angles pin that:

* **Structural** — monkeypatched seams prove the disabled path performs
  exactly one ``current_registry()`` lookup per run and zero tracer calls.
* **Microbench** — the gate's measured per-run cost is bounded against
  the measured run time: far under the 5% budget the CI gate allows.
* **Macro sanity** — interleaved best-of-N timing shows a disabled run
  is not slower than a fully instrumented one (which does strictly more
  work) beyond a 5% noise margin.

The second half pins the metrics algebra the executor and fleet
aggregation rely on: registry merge is associative and commutative, so
totals are independent of chunk ordering, scheduling and cache state.

All tests are ``smoke``- and ``obs``-marked (seconds-long; part of the
CI subset and the ``-m obs`` lane).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import run_once
from repro.obs import ListRecorder, MetricsRegistry, metrics_scope
from repro.obs.events import app_cost_table
from repro.obs.metrics import current_registry
from repro.sim.engine import Simulation
from repro.sim.parallel.specs import StrategySpec
from repro.sim.runner import default_scenario

pytestmark = [pytest.mark.smoke, pytest.mark.obs]

#: The CI gate's budget for disabled-instrumentation overhead.
OVERHEAD_BUDGET = 0.05


def make_sim(scenario, *, instrument: bool) -> Simulation:
    return Simulation(
        StrategySpec.make("etrain").build(scenario),
        scenario.train_generators,
        scenario.fresh_packets(),
        power_model=scenario.power_model,
        bandwidth=scenario.bandwidth,
        horizon=scenario.horizon,
        slot=scenario.slot,
        recorder=ListRecorder() if instrument else None,
        trace_app_costs=app_cost_table(scenario.profiles) if instrument else None,
    )


class TestDisabledPathIsStructurallyFree:
    def test_one_gate_check_per_run_and_no_tracer(self, monkeypatch):
        """A disabled run makes exactly one registry lookup and never
        imports into the tracer — O(1) per run, not O(slots)."""
        import repro.obs.metrics as metrics_mod
        import repro.obs.tracer as tracer_mod

        calls = []
        real = metrics_mod.current_registry
        monkeypatch.setattr(
            metrics_mod, "current_registry", lambda: calls.append(1) or real()
        )

        def boom(*args, **kwargs):
            raise AssertionError("tracer invoked on a disabled run")

        monkeypatch.setattr(tracer_mod, "emit_simulation_trace", boom)

        scenario = default_scenario(seed=0, horizon=3600.0)
        result = make_sim(scenario, instrument=False).run()
        assert result.burst_count > 0
        assert len(calls) == 1

    def test_outside_scope_registry_is_none(self):
        assert current_registry() is None


class TestDisabledOverheadWithinBudget:
    def test_gate_cost_bounded_by_budget(self, benchmark, report):
        """Measured per-run cost of the disabled-path gate (one
        ``current_registry()`` + one ``perf_counter()``) against the
        measured run time: orders of magnitude under the 5% budget."""
        scenario = default_scenario(seed=0, horizon=7200.0)

        def one_run():
            return make_sim(scenario, instrument=False).run()

        t0 = time.perf_counter()
        result = run_once(benchmark, one_run)
        run_s = time.perf_counter() - t0
        assert result.burst_count > 0

        n = 10_000
        t0 = time.perf_counter()
        for _ in range(n):
            current_registry()
            time.perf_counter()
        gate_s = (time.perf_counter() - t0) / n

        report(
            "Disabled-instrumentation gate cost [etrain, 2 h scenario]\n"
            f"  run          {run_s * 1e3:9.3f} ms\n"
            f"  gate         {gate_s * 1e9:9.1f} ns/run\n"
            f"  overhead     {gate_s / run_s:9.2%} (budget {OVERHEAD_BUDGET:.0%})"
        )
        assert gate_s / run_s < OVERHEAD_BUDGET

    def test_disabled_not_slower_than_enabled(self, report):
        """Interleaved best-of-N: the disabled path must not cost more
        than the enabled path (which does strictly more work) plus noise
        — i.e. disabling instrumentation actually disables it."""
        scenario = default_scenario(seed=0, horizon=7200.0)
        off_s = on_s = float("inf")
        for _ in range(7):
            sim = make_sim(scenario, instrument=False)
            t0 = time.perf_counter()
            sim.run()
            off_s = min(off_s, time.perf_counter() - t0)
            with metrics_scope():
                sim = make_sim(scenario, instrument=True)
                t0 = time.perf_counter()
                sim.run()
                on_s = min(on_s, time.perf_counter() - t0)
        report(
            "Disabled vs enabled run [etrain, 2 h scenario, best of 7]\n"
            f"  disabled {off_s * 1e3:8.2f} ms\n"
            f"  enabled  {on_s * 1e3:8.2f} ms\n"
            f"  ratio    {off_s / on_s:8.3f}"
        )
        assert off_s <= on_s * (1.0 + OVERHEAD_BUDGET)


def chunk_registries(seeds):
    """One registry per 'chunk': a short instrumented run per seed."""
    registries = []
    for seed in seeds:
        scenario = default_scenario(seed=seed, horizon=900.0)
        with metrics_scope() as registry:
            make_sim(scenario, instrument=False).run()
        registries.append(registry)
    return registries


def merged(registries):
    """Fold fresh copies left-to-right (merge mutates the receiver)."""
    out = MetricsRegistry()
    for r in registries:
        out.merge(MetricsRegistry.from_dict(r.to_dict()))
    return out.to_dict()


class TestMetricsMergeAlgebra:
    def test_merge_is_commutative_and_associative(self):
        a, b, c = chunk_registries([0, 1, 2])
        assert merged([a, b]) == merged([b, a])
        ab_then_c = MetricsRegistry.from_dict(merged([a, b]))
        bc = MetricsRegistry.from_dict(merged([b, c]))
        left = merged([ab_then_c, c])
        right = merged([MetricsRegistry.from_dict(a.to_dict()), bc])
        assert left == right

    def test_totals_independent_of_chunk_ordering(self):
        registries = chunk_registries([0, 1, 2, 3])
        forward = merged(registries)
        reverse = merged(list(reversed(registries)))
        shuffled = merged([registries[2], registries[0], registries[3], registries[1]])
        assert forward == reverse == shuffled
        assert forward["engine.runs"]["value"] == 4

    def test_executor_totals_independent_of_job_order(self):
        """End to end: the executor's merged metrics are identical for
        the same grid submitted in opposite orders."""
        from repro.sim.parallel.executor import ExperimentExecutor
        from repro.sim.parallel.specs import JobSpec, ScenarioSpec

        jobs = [
            JobSpec(
                scenario=ScenarioSpec(seed=seed, horizon=900.0),
                strategy=StrategySpec.make(name),
            )
            for seed in (0, 1)
            for name in ("etrain", "immediate")
        ]
        def deterministic_view(registry):
            # Wall-clock histogram sums/extremes vary run to run; the
            # counters and observation counts must not.
            view = {}
            for name, data in registry.to_dict().items():
                if data["kind"] == "histogram":
                    view[name] = {"count": data["count"], "counts": data["counts"]}
                else:
                    view[name] = data
            return view

        forward = ExperimentExecutor()
        forward.run(jobs)
        backward = ExperimentExecutor()
        backward.run(list(reversed(jobs)))
        assert deterministic_view(forward.metrics) == deterministic_view(
            backward.metrics
        )
