"""Fig. 10 bench — controlled experiments on the simulated device.

Paper: (a) eTrain saves ~45 % of cargo energy at any train count and
12–33 % of total energy; delay halves from 1 to 3 trains.  (b) Θ from
0.1 to 0.5 cuts device energy ~30 % while delay rises 48 → 62 s.
(c) Larger shared deadlines buy more savings.
"""

from benchmarks.conftest import run_once
from repro.analysis.summarize import format_table
from repro.experiments.fig10 import run_fig10a, run_fig10b, run_fig10c


def test_fig10a_train_count(benchmark, report):
    rows = run_once(benchmark, run_fig10a, horizon=7200.0)

    report(
        format_table(
            ["trains", "hb energy (J)", "cargo energy (J)", "total (J)", "delay (s)"],
            [[r.train_count, r.heartbeat_energy_j, r.cargo_energy_j,
              r.total_energy_j, r.mean_delay_s] for r in rows],
            title="Fig. 10(a) [paper: ~45% cargo saving; delay halves 1->3 trains]",
        )
    )

    null_cargo = rows[0].cargo_energy_j
    with_trains = rows[1:]
    # Cargo energy saving vs. unscheduled NULL at every train count.
    for r in with_trains:
        assert (null_cargo - r.cargo_energy_j) / null_cargo > 0.3
    # Heartbeat energy grows with train count.
    hb = [r.heartbeat_energy_j for r in rows]
    assert hb == sorted(hb) and hb[0] == 0.0
    # Delay shrinks substantially from 1 train to 3 trains.
    assert with_trains[-1].mean_delay_s < 0.7 * with_trains[0].mean_delay_s


def test_fig10b_theta_on_device(benchmark, report):
    thetas = (0.1, 0.2, 0.3, 0.4, 0.5)
    runs = run_once(benchmark, run_fig10b, thetas, horizon=7200.0)

    report(
        format_table(
            ["theta", "total (J)", "delay (s)"],
            [[t, r.total_energy_j, r.mean_delay_s] for t, r in zip(thetas, runs)],
            title="Fig. 10(b) [paper: 1200 -> 850 J (~30%), delay 48 -> 62 s]",
        )
    )

    # Shape: endpoints — less energy, more delay at theta=0.5 vs 0.1.
    assert runs[-1].total_energy_j < runs[0].total_energy_j
    assert runs[-1].mean_delay_s > runs[0].mean_delay_s
    # Delay monotone across the sweep.
    delays = [r.mean_delay_s for r in runs]
    assert delays == sorted(delays)


def test_fig10c_deadline_sweep(benchmark, report):
    deadlines = (10.0, 30.0, 60.0, 120.0, 180.0)
    pairs = run_once(benchmark, run_fig10c, deadlines, horizon=7200.0)

    report(
        format_table(
            ["deadline (s)", "total (J)", "delay (s)"],
            [[d, r.total_energy_j, r.mean_delay_s] for d, r in pairs],
            title="Fig. 10(c) [paper: larger deadline -> more energy saving]",
        )
    )

    energies = [r.total_energy_j for _, r in pairs]
    # Larger deadlines never cost more, and the extremes differ clearly.
    for a, b in zip(energies, energies[1:]):
        assert b <= a * 1.03
    assert energies[-1] < 0.9 * energies[0]
