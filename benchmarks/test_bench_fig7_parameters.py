"""Fig. 7 bench — parameter analysis of the online algorithm.

Paper, panel (a): sweeping Θ from 0 to 3 (k = 20, λ = 0.08) cuts the
2-hour energy by ~40 % while mean delay grows ~4x (18 → 70 s).
Panel (b): larger k reaches the same energy at lower delay, with
diminishing returns past k ≈ 8.
"""

from benchmarks.conftest import run_once
from repro.analysis.summarize import format_table
from repro.experiments.fig7 import run_fig7a, run_fig7b
from repro.sim.runner import default_scenario


def test_fig7a_theta_sweep(benchmark, report):
    scenario = default_scenario(horizon=7200.0)
    curve = run_once(benchmark, run_fig7a, scenario)

    report(
        format_table(
            ["theta", "energy (J)", "delay (s)", "violations"],
            [[p.knob, p.energy_j, p.delay_s, p.violation_ratio] for p in curve.points],
            title="Fig. 7(a) [paper: >1000 J -> ~600 J, delay 18 -> 70 s]",
        )
    )

    first, last = curve.points[0], curve.points[-1]
    # Shape: energy falls, delay rises, monotonically end to end.
    assert last.energy_j < first.energy_j
    assert last.delay_s > first.delay_s
    # Magnitude: a substantial relative energy drop across the sweep
    # (paper: ~40 %; see EXPERIMENTS.md for why ours is smaller).
    assert (first.energy_j - last.energy_j) / first.energy_j > 0.2
    # Near-monotone in between (allow small seed noise).
    energies = [p.energy_j for p in curve.points]
    for a, b in zip(energies, energies[1:]):
        assert b <= a * 1.03


def test_fig7b_k_panel(benchmark, report):
    scenario = default_scenario(horizon=7200.0)
    panel = run_once(
        benchmark,
        run_fig7b,
        scenario,
        k_values=(2, 4, 8, 16),
        theta_values=[0.0, 1.0, 2.0, 3.0],
    )

    rows = []
    for k, curve in panel.items():
        for p in curve.points:
            rows.append([k, p.knob, p.energy_j, p.delay_s])
    report(
        format_table(
            ["k", "theta", "energy (J)", "delay (s)"],
            rows,
            title="Fig. 7(b) [paper: k up -> same energy at less delay; "
            "diminishing past k=8]",
        )
    )

    # At the saturated end (theta=3), larger k gives no worse delay.
    end_delay = {k: curve.points[-1].delay_s for k, curve in panel.items()}
    assert end_delay[8] <= end_delay[2] + 1e-6
    assert end_delay[16] <= end_delay[4] + 1e-6
    # Diminishing returns: the 8 -> 16 improvement is tiny vs. 2 -> 8.
    gain_2_to_8 = end_delay[2] - end_delay[8]
    gain_8_to_16 = end_delay[8] - end_delay[16]
    assert gain_8_to_16 <= max(gain_2_to_8, 1.0)
