"""Fig. 3 bench — heartbeat patterns of real apps under data traffic.

Paper: QQ/WeChat/WhatsApp/RenRen hold fixed cycles (300/270/240/300 s)
even with messages and pictures flowing; NetEase starts at 60 s and
doubles after every 6 beats up to 480 s.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig3 import run_fig3


def test_fig3_patterns_with_data_traffic(benchmark, report):
    patterns = run_once(benchmark, run_fig3, duration=7200.0)

    lines = ["Fig. 3 [paper: fixed cycles unaffected by data; NetEase doubles]"]
    for app, pattern in patterns.items():
        lines.append(
            f"  {app:10s} beats={len(pattern.heartbeat_times):3d} "
            f"detected={pattern.detected_cell}"
        )
    report("\n".join(lines))

    assert patterns["qq"].detected_cell == "300s"
    assert patterns["wechat"].detected_cell == "270s"
    assert patterns["whatsapp"].detected_cell == "240s"
    assert patterns["renren"].detected_cell == "300s"
    assert patterns["netease"].report.doubling
    stages = patterns["netease"].report.stages
    assert abs(stages[0].cycle - 60.0) < 3.0
    assert abs(max(s.cycle for s in stages) - 480.0) < 25.0
