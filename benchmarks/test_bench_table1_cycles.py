"""Table 1 bench — heartbeat cycles per device/app from captured traffic.

Paper: per-app cycles on Android (WeChat 270 s, WhatsApp 240 s, QQ 300 s,
RenRen 300 s, NetEase 60–480 s) identical across three devices; on iOS
everything rides APNS's 1800 s connection.
"""

from benchmarks.conftest import run_once
from repro.experiments.table1 import run_table1
from repro.measurement.analyze import format_cycle_table


def test_table1_cycle_recovery(benchmark, report):
    reports = run_once(benchmark, run_table1)

    report(
        "Table 1 [recovered from synthetic captures]\n"
        + format_cycle_table(reports)
    )

    expected_android = {
        "wechat": "270s",
        "whatsapp": "240s",
        "qq": "300s",
        "renren": "300s",
        "netease": "60-480s",
    }
    for device in ("HTC Sensation Z710e", "Samsung Note II", "Samsung GALAXY S IV"):
        cells = {app: r.cycle_cell for app, r in reports[device].items()}
        assert cells == expected_android

    ios = reports["iPhone 4/iPhone 5"]
    assert set(ios) == set(expected_android)
    assert all(r.cycle_cell == "1800s" for r in ios.values())
