"""Ablation benches — isolating the design choices behind eTrain's win.

Not figures from the paper, but direct probes of its arguments:
Sec. VII's case against fast dormancy, Sec. IV's case for channel
obliviousness, and DESIGN.md's Q_TX-gate and consolidation questions.
"""

from benchmarks.conftest import run_once
from repro.analysis.summarize import format_table
from repro.experiments.ablations import (
    ablation_channel_aware,
    ablation_consolidated_push,
    ablation_estimator_quality,
    ablation_fast_dormancy,
    ablation_heartbeat_coalescing,
    ablation_radio_technology,
    ablation_train_phases,
    ablation_warm_gate,
)
from repro.sim.runner import default_scenario


def _table(title, rows):
    return format_table(
        ["configuration", "energy (J)", "delay (s)", "violations", "bursts"],
        [[r.label, r.energy_j, r.delay_s, r.violation_ratio, r.bursts] for r in rows],
        title=title,
    )


def test_ablation_warm_gate(benchmark, report):
    scenario = default_scenario(horizon=7200.0)
    rows = run_once(benchmark, ablation_warm_gate, scenario)
    report(_table("Ablation: Q_TX radio-resource gate", rows))

    by_label = {r.label: r for r in rows}
    gated = by_label["eTrain, radio-resource-gated Q_TX"]
    immediate_qtx = by_label["eTrain, serve-immediately Q_TX"]
    baseline = by_label["baseline"]
    # Both eTrain variants beat the baseline; the gate is the big lever.
    assert immediate_qtx.energy_j < baseline.energy_j
    assert gated.energy_j < immediate_qtx.energy_j * 0.75
    # The gate trades delay for that energy.
    assert gated.delay_s > immediate_qtx.delay_s


def test_ablation_fast_dormancy(benchmark, report):
    rows = run_once(benchmark, ablation_fast_dormancy, horizon=7200.0)
    report(_table("Ablation: fast dormancy vs keeping the tail", rows))

    by_label = {r.label: r for r in rows}
    normal = by_label["baseline, normal tail"]
    fast = by_label["baseline, fast dormancy"]
    etrain = by_label["eTrain, normal tail"]
    # Fast dormancy does cut baseline energy substantially...
    assert fast.energy_j < 0.7 * normal.energy_j
    # ...but eTrain beats it while keeping the tail mechanism intact
    # (Sec. VII's argument), at the price of delay.
    assert etrain.energy_j < fast.energy_j


def test_ablation_estimator_quality(benchmark, report):
    scenario = default_scenario(horizon=7200.0)
    rows = run_once(
        benchmark, ablation_estimator_quality, scenario, noise_levels=(0.0, 0.3, 0.9)
    )
    report(_table("Ablation: bandwidth-estimator quality", rows))

    etrain = rows[0]
    etimes = [r for r in rows if r.label.startswith("eTime")]
    peress = [r for r in rows if r.label.startswith("PerES")]
    # eTrain (one row) beats every comparator configuration on energy at
    # its operating point — channel obliviousness costs nothing here.
    for r in etimes + peress:
        assert etrain.energy_j < r.energy_j
    # The comparators' outcomes move with estimator quality (they depend
    # on it); eTrain has no estimator to perturb.
    energies = {round(r.energy_j, 3) for r in etimes}
    assert len(energies) > 1


def test_ablation_channel_aware_extension(benchmark, report):
    scenario = default_scenario(horizon=7200.0)
    rows = run_once(benchmark, ablation_channel_aware, scenario)
    report(_table("Ablation: channel-aware extension (future work)", rows))

    plain, aware = rows
    # The extension must not hurt much, and whatever it buys is small —
    # the finding that justifies the paper's channel obliviousness.
    assert aware.energy_j < plain.energy_j * 1.10
    assert abs(aware.energy_j - plain.energy_j) < 0.25 * plain.energy_j


def test_ablation_radio_technology(benchmark, report):
    rows = run_once(benchmark, ablation_radio_technology, horizon=7200.0)
    report(_table("Ablation: radio technology (3G / LTE / WiFi)", rows))

    by_label = {r.label: r for r in rows}

    def saving(tech):
        base = by_label[f"baseline, {tech}"].energy_j
        etrain = by_label[f"eTrain, {tech}"].energy_j
        return base - etrain

    # Piggybacking pays on both cellular generations...
    assert saving("3G (Galaxy S4)") > 1000.0
    assert saving("LTE (cat-4, DRX)") > 500.0
    # ...and all but vanishes on tail-free WiFi (absolute joules).
    assert saving("WiFi (PSM)") < 0.2 * saving("3G (Galaxy S4)")
    # Baselines order by tail cost: 3G > LTE > WiFi.
    assert (
        by_label["baseline, 3G (Galaxy S4)"].energy_j
        > by_label["baseline, LTE (cat-4, DRX)"].energy_j
        > by_label["baseline, WiFi (PSM)"].energy_j
    )


def test_ablation_train_phases(benchmark, report):
    rows = run_once(benchmark, ablation_train_phases, horizon=7200.0)
    report(_table("Ablation: heartbeat phases", rows))

    aligned, default, optimized = rows
    # Spreading phases cuts the piggyback wait; the optimiser is at
    # least as good as the library's default stagger.
    assert optimized.delay_s < aligned.delay_s
    assert optimized.delay_s <= default.delay_s + 1.0
    # And it never costs extra energy.
    assert optimized.energy_j <= aligned.energy_j * 1.05


def test_ablation_heartbeat_coalescing(benchmark, report):
    rows = run_once(benchmark, ablation_heartbeat_coalescing, horizon=7200.0)
    report(
        _table("Ablation: heartbeat coalescing (breaking constraint 5)", rows)
    )

    energies = [r.energy_j for r in rows]
    delays = [r.delay_s for r in rows]
    # More slack monotonically saves energy and costs delay.
    for a, b in zip(energies, energies[1:]):
        assert b <= a * 1.02
    assert delays[-1] > delays[0]
    # The reproduction-relevant reading: a keep-alive-safe slack (15 s)
    # buys little over honouring constraint (5) — piggybacking already
    # captured most of the opportunity.
    nominal, small_slack = rows[0], rows[1]
    assert (nominal.energy_j - small_slack.energy_j) < 0.15 * nominal.energy_j


def test_ablation_consolidated_push(benchmark, report):
    rows = run_once(benchmark, ablation_consolidated_push, horizon=7200.0)
    report(_table("Ablation: consolidated push channel", rows))

    per_app, gcm, apns = rows
    # Fewer trains: monotonically less energy but monotonically more
    # delay — the iOS/Android trade behind Table 1.
    assert apns.energy_j < gcm.energy_j < per_app.energy_j
    assert apns.delay_s > gcm.delay_s > per_app.delay_s
    # The APNS-style 1800 s channel makes most deadlines unmeetable.
    assert apns.violation_ratio > 0.9
