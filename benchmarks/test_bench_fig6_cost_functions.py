"""Fig. 6 bench — the delay-cost profile functions f1/f2/f3."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.fig6 import run_fig6


def test_fig6_cost_function_shapes(benchmark, report):
    curves = run_once(benchmark, run_fig6, deadline=60.0, steps=241)

    lines = ["Fig. 6 [f1 mail, f2 weibo, f3 cloud; deadline 60 s]"]
    for label, curve in curves.items():
        picks = [curve.samples[i] for i in (0, 80, 120, 240)]
        lines.append(
            f"  {label:11s} " + "  ".join(f"f({d:5.1f})={c:5.2f}" for d, c in picks)
        )
    report("\n".join(lines))

    mail = dict(curves["f1 (mail)"].samples)
    weibo = dict(curves["f2 (weibo)"].samples)
    cloud = dict(curves["f3 (cloud)"].samples)
    grid = sorted(mail)

    # f1: exactly zero before the deadline, then (d/D - 1).
    assert all(mail[d] == 0.0 for d in grid if d <= 60.0)
    assert mail[180.0] == pytest.approx(2.0)
    # f2: linear to 1 at the deadline, plateau 2 after.
    assert weibo[30.0] == pytest.approx(0.5)
    assert weibo[180.0] == pytest.approx(2.0)
    # f3: 3x slope after the deadline.
    assert cloud[180.0] == pytest.approx(7.0)
    # All non-decreasing.
    for curve in curves.values():
        costs = [c for _, c in curve.samples]
        assert costs == sorted(costs)
