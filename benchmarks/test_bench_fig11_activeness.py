"""Fig. 11 bench — savings by user activeness.

Paper: replaying 10-minute Luna Weibo sessions with 3 trains, eTrain
saves 227.92 J (23.1 %) for active users, 134.47 J (19.4 %) for moderate
and 63.23 J (13.3 %) for inactive — more uploads, more cargo to
piggyback, more absolute savings.
"""

from benchmarks.conftest import run_once
from repro.analysis.summarize import format_table
from repro.experiments.fig11 import run_fig11
from repro.workload.user_traces import ActivityClass


def test_fig11_user_activeness(benchmark, report):
    rows = run_once(benchmark, run_fig11, sessions_per_class=8)

    report(
        format_table(
            ["class", "without (J)", "with (J)", "saved (J)", "saved (%)"],
            [[r.activity.value, r.energy_without_j, r.energy_with_j,
              r.saved_j, r.saved_pct] for r in rows],
            title="Fig. 11 [paper: active 227.9 J (23.1%), moderate 134.5 J "
            "(19.4%), inactive 63.2 J (13.3%)]",
        )
    )

    by_class = {r.activity: r for r in rows}
    active = by_class[ActivityClass.ACTIVE]
    moderate = by_class[ActivityClass.MODERATE]
    inactive = by_class[ActivityClass.INACTIVE]

    # Positive savings everywhere.
    for r in rows:
        assert r.saved_j > 0
    # Absolute savings ordered by activeness (the paper's headline).
    assert active.saved_j > moderate.saved_j > inactive.saved_j
    # Baseline energy also ordered (more activity, more traffic).
    assert (
        active.energy_without_j
        > moderate.energy_without_j
        > inactive.energy_without_j
    )
    # Relative savings clearly positive but below total energy; the
    # simulated device has no CPU/screen overhead, so percentages run
    # higher than the paper's 13-23 % (see EXPERIMENTS.md).
    assert 0.05 <= active.saved_pct / 100.0 <= 0.8
