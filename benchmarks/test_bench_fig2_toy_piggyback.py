"""Fig. 2 bench — the toy piggybacking example.

Paper: five 5-KB emails scattered across one heartbeat cycle vs.
aggregated onto the second heartbeat; the power trace shows ~40 % of the
cycle's energy saved.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig2 import run_fig2


def test_fig2_toy_example(benchmark, report):
    result = run_once(benchmark, run_fig2)

    report(
        "Fig. 2 [paper: ~40% power-trace saving]\n"
        f"  scattered:   {result.without_energy_j:7.2f} J extra "
        f"({result.without_trace.energy():7.2f} J absolute)\n"
        f"  piggybacked: {result.with_energy_j:7.2f} J extra "
        f"({result.with_trace.energy():7.2f} J absolute)\n"
        f"  extra-energy saving: {100 * result.saving_fraction:.0f}%  "
        f"power-trace saving: {100 * result.absolute_saving_fraction:.0f}%"
    )

    # Shape: piggybacking wins decisively.
    assert result.with_energy_j < result.without_energy_j
    # Magnitude: power-trace saving in the paper's neighbourhood (~40 %).
    assert 0.25 <= result.absolute_saving_fraction <= 0.55
    # The scattered case pays roughly one tail per email.
    assert result.saving_fraction > 0.5
