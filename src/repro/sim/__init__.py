"""Simulation engine: slotted runner, results, power traces, scenarios."""

from repro.sim.battery import GALAXY_S4_BATTERY, Battery
from repro.sim.engine import Simulation
from repro.sim.parallel import (
    ExecutorStats,
    ExperimentExecutor,
    JobResult,
    JobSpec,
    ScenarioSpec,
    StrategySpec,
)
from repro.sim.power_trace import PowerTrace, sample_power_trace
from repro.sim.results import AppStats, SimulationResult
from repro.sim.runner import Scenario, default_scenario, run_strategy
from repro.sim.validate import InvalidScheduleError, assert_valid, validate_result

__all__ = [
    "GALAXY_S4_BATTERY",
    "Battery",
    "Simulation",
    "ExecutorStats",
    "ExperimentExecutor",
    "JobResult",
    "JobSpec",
    "ScenarioSpec",
    "StrategySpec",
    "PowerTrace",
    "sample_power_trace",
    "AppStats",
    "SimulationResult",
    "Scenario",
    "default_scenario",
    "run_strategy",
    "InvalidScheduleError",
    "assert_valid",
    "validate_result",
]
