"""Single-run engine microbenchmarks: dense loop vs event-horizon loop.

The event engine's claim is *performance at zero semantic cost*: both
paths must produce bit-identical results, with the event path skipping
the empty slots.  This harness measures that speedup on a fixed set of
scenario/strategy cases and writes a machine-readable baseline
(``BENCH_engine.json``) that CI compares against.

Only ``Simulation.run()`` is timed — scenario synthesis, packet copying
and strategy construction happen outside the timed region — and each
measurement is the best of ``repeats`` runs, which is robust against
scheduler noise on shared machines.  The committed baseline stores the
dense/event *ratio* per case (machine-independent to first order), not
absolute times.

Usage::

    etrain bench                               # full suite -> BENCH_engine.json
    etrain bench --mode smoke --check BENCH_engine.json
    PYTHONPATH=src python -m repro.sim.perf    # same as `etrain bench`
"""

from __future__ import annotations

import gc
import json
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.baselines.base import TransmissionStrategy
from repro.sim.engine import Simulation
from repro.sim.runner import Scenario, default_scenario

__all__ = [
    "BenchCase",
    "BENCH_CASES",
    "run_case",
    "run_benchmarks",
    "check_results",
    "load_baseline",
    "write_results",
]

#: Schema version of the benchmark JSON document.
BENCH_VERSION = 1


@dataclass(frozen=True)
class BenchCase:
    """One (scenario, strategy) benchmark cell."""

    name: str
    seed: int
    horizon: float
    train_count: int
    make_strategy: Callable[[Scenario], TransmissionStrategy]
    #: Included in ``--mode smoke`` (CI) runs.
    smoke: bool = False


def _immediate(scenario: Scenario) -> TransmissionStrategy:
    from repro.baselines.immediate import ImmediateStrategy

    return ImmediateStrategy()


def _periodic(period: float) -> Callable[[Scenario], TransmissionStrategy]:
    def make(scenario: Scenario) -> TransmissionStrategy:
        from repro.baselines.fixed_batch import PeriodicBatchStrategy

        return PeriodicBatchStrategy(period=period)

    return make


def _tailender(scenario: Scenario) -> TransmissionStrategy:
    from repro.baselines.tailender import TailEnderStrategy

    return TailEnderStrategy(profiles=scenario.profiles)


def _etime(scenario: Scenario) -> TransmissionStrategy:
    from repro.baselines.etime import ETimeStrategy

    return ETimeStrategy(scenario.estimator(), v=200_000.0)


#: The benchmark suite.  The 2-hour cases match the paper's default
#: Sec. VI-A scenario; the day-long single-train case is where slot
#: skipping pays off most (sparse decisions over 86,400 slots).
BENCH_CASES: List[BenchCase] = [
    BenchCase("immediate_2h", 0, 7200.0, 3, _immediate, smoke=True),
    BenchCase("periodic60_2h", 0, 7200.0, 3, _periodic(60.0)),
    BenchCase("periodic300_2h", 0, 7200.0, 3, _periodic(300.0), smoke=True),
    BenchCase("tailender_2h", 0, 7200.0, 3, _tailender),
    BenchCase("etime_2h", 0, 7200.0, 3, _etime),
    BenchCase("periodic600_day", 0, 86400.0, 1, _periodic(600.0), smoke=True),
]


def _timed_run(case: BenchCase, scenario: Scenario, dense: bool) -> tuple:
    """One ``Simulation.run()`` with only the run itself timed."""
    sim = Simulation(
        case.make_strategy(scenario),
        scenario.train_generators,
        scenario.fresh_packets(),
        power_model=scenario.power_model,
        bandwidth=scenario.bandwidth,
        horizon=scenario.horizon,
        slot=scenario.slot,
        dense=dense,
    )
    gc.collect()
    t0 = time.perf_counter()
    result = sim.run()
    elapsed = time.perf_counter() - t0
    return elapsed, sim.loop_iterations, result.summary()


def run_case(case: BenchCase, repeats: int = 3) -> Dict[str, object]:
    """Benchmark one case; also asserts dense/event bit-equality.

    Dense and event runs are interleaved (and the collector held off —
    a mid-run GC pass over the packet graph dwarfs a millisecond-scale
    signal) so slow machine-state drift hits both paths alike instead of
    skewing the ratio; each side's time is its best over ``repeats``.

    The returned row carries a ``"phases"`` table (wall/CPU per pipeline
    phase, accumulated over repeats — see
    :class:`~repro.obs.profiling.PhaseProfiler`).  The baseline
    comparator only reads ``name``/``speedup``, so the field is additive.
    """
    from repro.obs.profiling import PhaseProfiler

    profiler = PhaseProfiler()
    with profiler.phase("synthesize"):
        scenario = default_scenario(
            seed=case.seed, horizon=case.horizon, train_count=case.train_count
        )
    dense_s = event_s = float("inf")
    dense_iters = event_iters = 0
    dense_summary: Dict[str, float] = {}
    event_summary: Dict[str, float] = {}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            with profiler.phase("dense_run"):
                elapsed, dense_iters, dense_summary = _timed_run(
                    case, scenario, True
                )
            dense_s = min(dense_s, elapsed)
            with profiler.phase("event_run"):
                elapsed, event_iters, event_summary = _timed_run(
                    case, scenario, False
                )
            event_s = min(event_s, elapsed)
    finally:
        if gc_was_enabled:
            gc.enable()
    if event_summary != dense_summary:
        raise AssertionError(
            f"{case.name}: event summary diverged from dense reference:\n"
            f"  dense: {dense_summary}\n  event: {event_summary}"
        )
    return {
        "name": case.name,
        "seed": case.seed,
        "horizon": case.horizon,
        "train_count": case.train_count,
        "smoke": case.smoke,
        "dense_s": dense_s,
        "event_s": event_s,
        "speedup": dense_s / event_s if event_s > 0 else float("inf"),
        "dense_iterations": dense_iters,
        "event_iterations": event_iters,
        "phases": profiler.as_dict(),
    }


def run_benchmarks(
    mode: str = "full",
    repeats: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Run the suite and return the benchmark document."""
    if mode not in ("full", "smoke"):
        raise ValueError(f"mode must be 'full' or 'smoke', got {mode!r}")
    if repeats is None:
        # Event-path runs are a handful of milliseconds, so the best-of
        # needs enough repeats to shake off scheduler noise.
        repeats = 15 if mode == "full" else 10
    cases = [c for c in BENCH_CASES if mode == "full" or c.smoke]
    rows: List[Dict[str, object]] = []
    for case in cases:
        row = run_case(case, repeats=repeats)
        rows.append(row)
        if progress is not None:
            progress(
                f"{row['name']:18s} dense {row['dense_s'] * 1e3:8.1f} ms  "
                f"event {row['event_s'] * 1e3:8.1f} ms  "
                f"speedup {row['speedup']:6.2f}x  "
                f"({row['event_iterations']}/{row['dense_iterations']} slots)"
            )
    return {
        "version": BENCH_VERSION,
        "mode": mode,
        "repeats": repeats,
        "python": sys.version.split()[0],
        "cases": rows,
    }


def load_baseline(path: str) -> Dict[str, object]:
    """Read a previously written benchmark document."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def write_results(path: str, results: Dict[str, object]) -> None:
    """Write a benchmark document as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")


def check_results(
    results: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = 0.25,
) -> List[str]:
    """Compare observed speedups against the baseline's.

    A case fails when its observed dense/event speedup drops more than
    ``tolerance`` (fractional) below the baseline speedup.  Only the
    ratio is compared — absolute times are machine-dependent.  Cases
    missing from either side are skipped (smoke runs cover a subset).
    """
    base_by_name = {c["name"]: c for c in baseline.get("cases", [])}
    failures: List[str] = []
    for row in results["cases"]:
        base = base_by_name.get(row["name"])
        if base is None:
            continue
        floor = base["speedup"] * (1.0 - tolerance)
        if row["speedup"] < floor:
            failures.append(
                f"{row['name']}: speedup {row['speedup']:.2f}x fell below "
                f"{floor:.2f}x (baseline {base['speedup']:.2f}x "
                f"- {tolerance:.0%} tolerance)"
            )
    return failures


if __name__ == "__main__":
    from repro.cli import main

    sys.exit(main(["bench"] + sys.argv[1:]))
