"""Fleet-engine benchmarks: devices/second, vectorized vs scalar loop.

Mirrors :mod:`repro.sim.perf` (the dense-vs-event engine suite) for the
fleet path: each case simulates ``devices`` devices through
:func:`~repro.sim.fleet.engine.simulate_fleet_chunk` and a small
reference population through the per-device scalar loop
(:func:`~repro.sim.fleet.reference.simulate_reference_chunk`), and
records the *throughput ratio*

    speedup = (devices / fleet_s) / (scalar_devices / scalar_s)

which is machine-independent to first order — both paths run the same
Python/NumPy stack on the same machine.  ``BENCH_fleet.json`` commits the
ratios; CI re-runs the smoke subset and fails on >25% regression, plus a
hard floor of 20x for the eTrain case (the paper-default strategy the
``etrain fleet`` CLI runs).

Workload synthesis and channel-table construction happen outside the
timed region on both sides: the comparison is engine against engine.
Peak RSS is recorded per case for the memory-bound documentation in
``docs/performance.md``.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.sim.perf import BENCH_VERSION, check_results, load_baseline, write_results

__all__ = [
    "FLEET_SPEEDUP_FLOOR",
    "BASELINE_SPEEDUP_FLOOR",
    "FleetBenchCase",
    "FLEET_BENCH_CASES",
    "run_fleet_case",
    "run_fleet_benchmarks",
    "check_results",
    "load_baseline",
    "write_results",
]

#: Hard acceptance floor for the eTrain fleet case (ISSUE acceptance
#: criterion; the CI smoke test asserts it independently of baselines).
FLEET_SPEEDUP_FLOOR = 20.0

#: Floor for the newly vectorized baseline kernels (peres/etime): the
#: acceptance bar is >=10x over their scalar strategies.
BASELINE_SPEEDUP_FLOOR = 10.0


@dataclass(frozen=True)
class FleetBenchCase:
    """One fleet-vs-scalar throughput cell."""

    name: str
    strategy: str
    devices: int  # fleet population for the vectorized side
    scalar_devices: int  # reference population for the scalar side
    horizon: float = 7200.0
    seed: int = 0
    params: tuple = ()
    smoke: bool = False
    #: Assert speedup >= floor for this case.
    gate: bool = False
    #: Per-case absolute speedup floor (only checked when ``gate``).
    floor: float = FLEET_SPEEDUP_FLOOR


#: eTrain needs a real per-slot loop, so its vectorized side amortizes a
#: fixed ~0.3 ms/slot cost — benchmark it at a population large enough
#: (4096) that the per-device signal dominates.  The loop-free strategies
#: scale near-linearly and run at larger populations.
FLEET_BENCH_CASES: List[FleetBenchCase] = [
    FleetBenchCase(
        "etrain_fleet_2h", "etrain", 4096, 4, smoke=True, gate=True
    ),
    # Full-mode only: the loop-free strategies' scalar sides are quick
    # but noisy at CI-sized populations, so a 25% gate on them would
    # flake; the gated etrain case alone rides the smoke subset.
    FleetBenchCase("immediate_fleet_2h", "immediate", 8192, 4),
    FleetBenchCase("periodic60_fleet_2h", "periodic", 8192, 4),
    FleetBenchCase("tailender_fleet_2h", "tailender", 4096, 4),
    # Newly vectorized baseline kernels (this is the registry payoff):
    # gated at the >=10x acceptance floor; their scalar sides are slow
    # (tens of devices/s), so two reference devices keep CI snappy.
    FleetBenchCase(
        "peres_fleet_2h",
        "peres",
        4096,
        2,
        smoke=True,
        gate=True,
        floor=BASELINE_SPEEDUP_FLOOR,
    ),
    FleetBenchCase(
        "etime_fleet_2h",
        "etime",
        4096,
        2,
        smoke=True,
        gate=True,
        floor=BASELINE_SPEEDUP_FLOOR,
    ),
    FleetBenchCase(
        "adaptive_fleet_2h",
        "adaptive",
        2048,
        2,
        params=(("target_delay", 30.0),),
    ),
    FleetBenchCase("fixed_batch_fleet_2h", "fixed_batch", 8192, 4),
    # channel_aware (ISSUE 8): the last strategy off the scalar fallback.
    # Same slot-loop engine as etrain plus the deferral buffers; gated
    # at the baseline-kernel floor (its scalar side is estimator-heavy).
    FleetBenchCase(
        "channel_aware_fleet_2h",
        "channel_aware",
        2048,
        2,
        gate=True,
        floor=BASELINE_SPEEDUP_FLOOR,
    ),
]


def run_fleet_case(case: FleetBenchCase, repeats: int = 2) -> Dict[str, object]:
    """Benchmark one case; simulation only is timed (best of ``repeats``).

    The row's ``"phases"`` table breaks the pipeline into workload
    synthesis, channel-table construction, fleet simulation, aggregation
    and the scalar reference run (wall/CPU, accumulated over repeats);
    the baseline comparator ignores it, so the field is additive.
    """
    from repro.bandwidth.synth import wuhan_bandwidth_model
    from repro.obs.profiling import PhaseProfiler
    from repro.radio.power_model import GALAXY_S4_3G
    from repro.sim.fleet.accounting import summarize_chunk
    from repro.sim.fleet.channel import ChannelTable
    from repro.sim.fleet.engine import simulate_fleet_chunk
    from repro.sim.fleet.reference import simulate_reference_chunk
    from repro.sim.fleet.runner import peak_rss_bytes
    from repro.sim.fleet.workload import synthesize_fleet

    profiler = PhaseProfiler()
    bw = wuhan_bandwidth_model()
    rss_before = peak_rss_bytes(include_children=False)
    with profiler.phase("channel_table"):
        table = ChannelTable.from_model(bw, case.horizon)
    with profiler.phase("workload_synthesis"):
        fleet_w = synthesize_fleet(case.devices, case.horizon, case.seed)
        scalar_w = synthesize_fleet(case.scalar_devices, case.horizon, case.seed)
    params = dict(case.params)

    fleet_s = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        with profiler.phase("fleet_sim"):
            raw = simulate_fleet_chunk(
                fleet_w, table, strategy=case.strategy, params=dict(params)
            )
        with profiler.phase("aggregation"):
            summary = summarize_chunk(raw, GALAXY_S4_3G)
        fleet_s = min(fleet_s, time.perf_counter() - t0)

    scalar_s = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        with profiler.phase("scalar_sim"):
            simulate_reference_chunk(
                scalar_w, bw, strategy=case.strategy, params=dict(params)
            )
        scalar_s = min(scalar_s, time.perf_counter() - t0)

    fleet_rate = case.devices / fleet_s
    scalar_rate = case.scalar_devices / scalar_s
    return {
        "name": case.name,
        "strategy": case.strategy,
        "devices": case.devices,
        "scalar_devices": case.scalar_devices,
        "horizon": case.horizon,
        "seed": case.seed,
        "smoke": case.smoke,
        "gate": case.gate,
        "floor": case.floor,
        "fleet_s": fleet_s,
        "scalar_s": scalar_s,
        "fleet_devices_per_s": fleet_rate,
        "scalar_devices_per_s": scalar_rate,
        "speedup": fleet_rate / scalar_rate if scalar_rate > 0 else float("inf"),
        "energy_per_device_j": summary.energy_total_j / max(summary.devices, 1),
        "peak_rss_bytes": peak_rss_bytes(include_children=False),
        # How much this case *grew* the process peak (ru_maxrss is
        # monotone, so per-case absolutes mostly echo the biggest
        # earlier case; the delta is what this case itself added).
        "peak_rss_delta_bytes": max(
            0, peak_rss_bytes(include_children=False) - rss_before
        ),
        "phases": profiler.as_dict(),
    }


def run_fleet_benchmarks(
    mode: str = "full",
    repeats: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Run the fleet suite and return the benchmark document."""
    if mode not in ("full", "smoke"):
        raise ValueError(f"mode must be 'full' or 'smoke', got {mode!r}")
    if repeats is None:
        # Fleet runs are seconds each; a couple of repeats suffices.
        repeats = 2 if mode == "full" else 1
    cases = [c for c in FLEET_BENCH_CASES if mode == "full" or c.smoke]
    rows: List[Dict[str, object]] = []
    for case in cases:
        row = run_fleet_case(case, repeats=repeats)
        rows.append(row)
        if progress is not None:
            progress(
                f"{row['name']:20s} fleet {row['fleet_devices_per_s']:8.0f} dev/s  "
                f"scalar {row['scalar_devices_per_s']:6.1f} dev/s  "
                f"speedup {row['speedup']:7.1f}x  "
                f"(rss {row['peak_rss_bytes'] / 2**20:.0f} MiB)"
            )
    return {
        "version": BENCH_VERSION,
        "suite": "fleet",
        "mode": mode,
        "repeats": repeats,
        "python": sys.version.split()[0],
        "cases": rows,
    }


def check_floor(results: Dict[str, object]) -> List[str]:
    """Gated cases must clear their absolute speedup floor."""
    failures = []
    for row in results["cases"]:
        floor = float(row.get("floor", FLEET_SPEEDUP_FLOOR))
        if row.get("gate") and row["speedup"] < floor:
            failures.append(
                f"{row['name']}: speedup {row['speedup']:.1f}x below the "
                f"{floor:.0f}x acceptance floor"
            )
    return failures


if __name__ == "__main__":
    from repro.cli import main

    sys.exit(main(["bench", "--suite", "fleet"] + sys.argv[1:]))
