"""Declarative fleet jobs: chunked, hashable, pool-dispatchable.

A fleet run is described by a :class:`FleetSpec` — population size,
strategy, scenario knobs — and splits into :class:`FleetChunkSpec`\\ s of
``chunk_size`` devices.  Chunk specs plug into
:class:`repro.sim.parallel.ExperimentExecutor` like any
:class:`~repro.sim.parallel.specs.JobSpec`: they hash their content for
the result cache and carry their own worker entry point
(:meth:`FleetChunkSpec.run_in_worker`), which ``run_job`` dispatches to
via duck typing so the scalar job path never imports NumPy.

Chunking is free of simulation effects: per-device RNG streams are keyed
by global device index (see :mod:`repro.sim.fleet.workload`), so any
``chunk_size`` partitions the same fleet into the same devices.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.fleet.registry import has_kernel

__all__ = ["FLEET_CACHE_VERSION", "FleetSpec", "FleetChunkSpec", "fleet_supports"]

#: Bumped whenever fleet-path changes may shift summary numbers.
#: v2: peres/etime/adaptive/fixed_batch gained vectorized kernels, so
#: configurations that previously cached scalar-fallback summaries now
#: run the fleet engine (identical within tolerance, not bit-for-bit).
#: v3: channel_aware gained a vectorized kernel (the last scalar-only
#: strategy), moving its cached summaries off the fallback path too.
FLEET_CACHE_VERSION = 3

_BANDWIDTHS = ("wuhan", "constant")


def fleet_supports(
    strategy: str,
    params: Optional[Dict[str, Any]] = None,
    *,
    power_model: str = "galaxy_s4_3g",
    bandwidth: str = "wuhan",
) -> bool:
    """Whether the vectorized engine covers this configuration.

    False means :meth:`FleetChunkSpec.run_in_worker` transparently falls
    back to the per-device scalar engine (same summaries, scalar speed).
    """
    from repro.sim.parallel.specs import POWER_MODELS

    if not has_kernel(strategy):
        return False
    if bandwidth not in _BANDWIDTHS:
        return False
    pm = POWER_MODELS.get(power_model)
    if pm is None or pm.promotion_delay != 0.0 or pm.promotion_energy != 0.0:
        return False
    params = dict(params or {})
    if strategy == "etrain":
        if params.get("k") is not None:
            return False
        if float(params.get("slot", 1.0)) != 1.0:
            return False
    return True


@dataclass(frozen=True)
class _FleetFields:
    """Scenario knobs shared by the fleet spec and its chunks."""

    strategy: str = "etrain"
    params: Tuple[Tuple[str, Any], ...] = ()
    seed: int = 0
    horizon: float = 7200.0
    rate: Optional[float] = None  # total cargo packet rate; None = Sec. VI-A default
    power_model: str = "galaxy_s4_3g"
    phase_mode: str = "fixed"
    bandwidth: str = "wuhan"
    bandwidth_rate: Optional[float] = None  # bytes/s, for bandwidth="constant"

    def __post_init__(self) -> None:
        from repro.sim.parallel.specs import POWER_MODELS, STRATEGY_BUILDERS

        if self.strategy not in STRATEGY_BUILDERS:
            raise KeyError(
                f"unknown strategy {self.strategy!r}; "
                f"known: {sorted(STRATEGY_BUILDERS)}"
            )
        if self.power_model not in POWER_MODELS:
            raise KeyError(f"unknown power model {self.power_model!r}")
        if self.bandwidth not in _BANDWIDTHS:
            raise ValueError(f"bandwidth must be one of {_BANDWIDTHS}")
        if self.bandwidth == "constant" and not self.bandwidth_rate:
            raise ValueError("bandwidth='constant' needs bandwidth_rate > 0")
        if self.phase_mode not in ("fixed", "random"):
            raise ValueError(f"phase_mode must be 'fixed' or 'random'")
        if self.horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {self.horizon}")

    @property
    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    @property
    def vectorized(self) -> bool:
        return fleet_supports(
            self.strategy,
            self.param_dict,
            power_model=self.power_model,
            bandwidth=self.bandwidth,
        )

    def bandwidth_model(self):
        """Materialize the (deterministic) bandwidth model."""
        if self.bandwidth == "constant":
            from repro.bandwidth.models import ConstantBandwidth

            return ConstantBandwidth(rate=float(self.bandwidth_rate))
        from repro.bandwidth.synth import wuhan_bandwidth_model

        return wuhan_bandwidth_model()

    def profiles(self):
        """Cargo profiles (rate-scaled when ``rate`` is set)."""
        from repro.core.profiles import DEFAULT_CARGO_PROFILES
        from repro.workload.cargo import profiles_for_total_rate

        if self.rate is not None:
            return profiles_for_total_rate(self.rate)
        return DEFAULT_CARGO_PROFILES()


@dataclass(frozen=True)
class FleetChunkSpec(_FleetFields):
    """One contiguous device range of a fleet, as an executor job.

    ``channel`` optionally names a published shared-memory channel table
    (see :class:`repro.sim.fleet.channel.SharedChannel`); without it the
    worker flattens the bandwidth model itself.  The handle is runtime
    plumbing, not simulation input, so it is excluded from the content
    hash and the cached spec dict.
    """

    n_devices: int = 0
    device_offset: int = 0
    channel: Optional[Any] = None  # SharedChannelHandle; hash-exempt
    tag: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.n_devices < 1:
            raise ValueError(f"chunk needs n_devices >= 1, got {self.n_devices}")
        if self.device_offset < 0:
            raise ValueError(f"device_offset must be >= 0")

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form for hashing and cache metadata (no handle)."""
        return {
            "version": FLEET_CACHE_VERSION,
            "kind": "fleet_chunk",
            "strategy": self.strategy,
            "params": {k: v for k, v in self.params},
            "seed": self.seed,
            "horizon": self.horizon,
            "rate": self.rate,
            "power_model": self.power_model,
            "phase_mode": self.phase_mode,
            "bandwidth": self.bandwidth,
            "bandwidth_rate": self.bandwidth_rate,
            "n_devices": self.n_devices,
            "device_offset": self.device_offset,
        }

    def content_hash(self) -> str:
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        if self.tag:
            return self.tag
        lo = self.device_offset
        return f"{self.strategy} fleet devices [{lo}, {lo + self.n_devices})"

    def run_in_worker(self) -> Dict[str, Any]:
        """Synthesize, simulate and reduce this chunk; the pool entry point.

        Pure function of the spec's hashed fields: the shared-channel
        handle only short-circuits rebuilding the same prefix table.
        Returns ``FleetChunkSummary.to_dict()`` (JSON-serializable).
        """
        from repro.sim.fleet.workload import synthesize_fleet

        workload = synthesize_fleet(
            self.n_devices,
            self.horizon,
            self.seed,
            device_offset=self.device_offset,
            profiles=self.profiles(),
            phase_mode=self.phase_mode,
        )
        if self.vectorized:
            summary = self._run_vectorized(workload)
        else:
            summary = self._run_reference(workload)
        return summary.to_dict()

    def _run_vectorized(self, workload):
        from repro.sim.fleet.accounting import summarize_chunk
        from repro.sim.fleet.channel import ChannelTable, SharedChannel
        from repro.sim.fleet.engine import simulate_fleet_chunk
        from repro.sim.parallel.specs import POWER_MODELS

        pm = POWER_MODELS[self.power_model]
        shared = None
        if self.channel is not None:
            shared = SharedChannel.attach(self.channel)
            table = shared.table
        else:
            table = ChannelTable.from_model(self.bandwidth_model(), self.horizon)
        try:
            raw = simulate_fleet_chunk(
                workload,
                table,
                strategy=self.strategy,
                params=self.param_dict,
                power_model=pm,
            )
            return summarize_chunk(raw, pm)
        finally:
            if shared is not None:
                shared.close()

    def _run_reference(self, workload):
        from repro.sim.fleet.reference import simulate_reference_chunk
        from repro.sim.parallel.specs import POWER_MODELS

        return simulate_reference_chunk(
            workload,
            self.bandwidth_model(),
            strategy=self.strategy,
            params=self.param_dict,
            power_model=POWER_MODELS[self.power_model],
            profiles=self.profiles(),
        )


@dataclass(frozen=True)
class FleetSpec(_FleetFields):
    """A whole fleet run: population size plus chunking policy."""

    devices: int = 8192
    chunk_size: int = 8192

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.devices < 1:
            raise ValueError(f"devices must be >= 1, got {self.devices}")
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")

    @classmethod
    def make(cls, devices: int, strategy: str = "etrain", **kw: Any) -> "FleetSpec":
        params = kw.pop("params", None)
        if isinstance(params, dict):
            params = tuple(sorted(params.items()))
        return cls(
            devices=devices, strategy=strategy, params=params or (), **kw
        )

    @property
    def n_chunks(self) -> int:
        return (self.devices + self.chunk_size - 1) // self.chunk_size

    def chunk_specs(self, channel=None) -> List[FleetChunkSpec]:
        """Split into executor jobs (optionally wired to a shared channel)."""
        fields = {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(_FleetFields)
        }
        chunks = []
        n = self.n_chunks
        for k in range(n):
            lo = k * self.chunk_size
            hi = min(lo + self.chunk_size, self.devices)
            chunks.append(
                FleetChunkSpec(
                    n_devices=hi - lo,
                    device_offset=lo,
                    channel=channel,
                    tag=f"{self.strategy} fleet chunk {k + 1}/{n}",
                    **fields,
                )
            )
        return chunks

    def content_hash(self) -> str:
        payload = {
            "version": FLEET_CACHE_VERSION,
            "kind": "fleet",
            "devices": self.devices,
            "chunk_size": self.chunk_size,
            "strategy": self.strategy,
            "params": {k: v for k, v in self.params},
            "seed": self.seed,
            "horizon": self.horizon,
            "rate": self.rate,
            "power_model": self.power_model,
            "phase_mode": self.phase_mode,
            "bandwidth": self.bandwidth,
            "bandwidth_rate": self.bandwidth_rate,
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
