"""Vectorized slot dynamics over device columns.

One :class:`~repro.sim.engine.Simulation` walks 7 200 one-second slots
per device with Python objects per packet.  This module restates the
same dense-loop semantics over NumPy arrays indexed by device, for the
strategies whose decision rules admit column form:

* **immediate** and **periodic** release on slots that are a pure
  function of arrival times (and the shared fire clock), so the whole
  run collapses to array arithmetic with no slot loop at all;
* **tailender** needs one cheap slot loop (its earliest-deadline fire
  clock resets on every release) but no channel access inside it;
* **etrain** runs the real per-slot loop — Θ-threshold checks, the
  Lyapunov greedy pick, warm-radio gating and heartbeat drains — but
  vectorized across all devices of the chunk, with the delay-cost sums
  P_i(t) maintained as closed-form aggregates instead of per-packet
  scans (see below).

Aggregate delay costs
---------------------
Every supported cost function is affine in the packet's arrival time on
each side of its deadline, so an app's queue cost at time ``u`` is a
function of four running sums — pre/post-deadline packet counts and
arrival-time sums::

    mail  (f1):  P = (n_post·u − s_post)/D − n_post
    weibo (f2):  P = (n_pre·u − s_pre)/D + 2·n_post
    cloud (f3):  P = (n_pre·u − s_pre)/D + 3·(n_post·u − s_post)/D − 2·n_post

The engine keeps *two* aggregate sets per (app, device): one classifying
packets at slot time ``t`` (the Θ check) and one at ``t+1`` (the
speculative costs the greedy gain uses).  A packet's pre→post transition
slot is precomputed with the same float comparison ``(k − arrival) > D``
the scalar branches on, so the split is bit-faithful; only the *sums*
round differently from the scalar sequential additions (~1e-13, reset to
exact zero at every heartbeat drain).

Equivalence to a per-device scalar loop is covered by
``tests/test_fleet_equivalence.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.radio.power_model import GALAXY_S4_3G, PowerModel
from repro.sim.fleet.channel import ChannelTable
from repro.sim.fleet.workload import FleetWorkload

__all__ = [
    "VECTOR_STRATEGIES",
    "FleetChunkRaw",
    "simulate_fleet_chunk",
]

#: Strategies with a vectorized fleet path; everything else falls back
#: to the per-device scalar engine (see repro.sim.fleet.reference).
VECTOR_STRATEGIES = ("immediate", "periodic", "tailender", "etrain")

#: Burst kinds, mirroring TransmissionRecord.kind.
KIND_HEARTBEAT, KIND_DATA, KIND_PIGGYBACK = 0, 1, 2

_SERIALIZE_MAX_ITER = 500


@dataclass
class FleetChunkRaw:
    """Raw simulation output of one chunk: bursts plus packet→burst map.

    Burst rows are ordered chronologically within each device (a stable
    sort by ``burst_dev`` yields each device's burst sequence).  Every
    packet is scheduled — end-of-horizon flushes transmit leftovers just
    like the scalar engine — so ``pk_burst`` is total.
    """

    n_devices: int
    horizon: float
    n_slots: int
    # bursts
    burst_dev: np.ndarray  # int64
    burst_start: np.ndarray  # float64
    burst_dur: np.ndarray  # float64
    burst_size: np.ndarray  # float64 (bytes)
    burst_kind: np.ndarray  # int8
    # packets (app-major flat order: app 0's CSR, then app 1's, ...)
    pk_app: np.ndarray  # int64
    pk_dev: np.ndarray  # int64
    pk_arr: np.ndarray  # float64
    pk_size: np.ndarray  # int64
    pk_burst: np.ndarray  # int64 row into burst arrays
    # per-app metadata (copied from the workload)
    cost_kinds: np.ndarray
    deadlines: np.ndarray


# ---------------------------------------------------------------------------
# shared pieces
# ---------------------------------------------------------------------------


def _flat_packets(w: FleetWorkload):
    """App-major flat packet arrays + per-app flat base offsets."""
    devs, apps = [], []
    base = np.zeros(w.n_apps + 1, dtype=np.int64)
    for a in range(w.n_apps):
        counts = np.diff(w.offsets[a])
        devs.append(np.repeat(np.arange(w.n_devices, dtype=np.int64), counts))
        apps.append(np.full(w.arrivals[a].size, a, dtype=np.int64))
        base[a + 1] = base[a] + w.arrivals[a].size
    pk_app = np.concatenate(apps) if apps else np.empty(0, np.int64)
    pk_dev = np.concatenate(devs) if devs else np.empty(0, np.int64)
    pk_arr = np.concatenate(w.arrivals) if w.arrivals else np.empty(0, np.float64)
    pk_size = np.concatenate(w.sizes) if w.sizes else np.empty(0, np.int64)
    return pk_app, pk_dev, pk_arr, pk_size, base


def _delivery_slots(arr: np.ndarray, n_slots: int) -> np.ndarray:
    """First slot whose start time is >= the arrival (the dense loop
    delivers at step 1 of slot i when arrival <= i)."""
    kd = np.ceil(arr).astype(np.int64)
    return np.minimum(kd, n_slots)


def _transition_slots(arr: np.ndarray, deadline: float) -> np.ndarray:
    """Smallest integer k with ``(k − arrival) > deadline`` — evaluated
    with the same float64 subtraction the scalar cost branches use, so
    aggregate pre/post splits agree with per-packet comparisons exactly."""
    k = np.floor(arr + deadline).astype(np.int64) - 2
    for _ in range(6):
        post = (k.astype(np.float64) - arr) > deadline
        k = np.where(post, k, k + 1)
    return k


def _heartbeat_table(w: FleetWorkload, n_slots: int):
    """All heartbeats of the chunk as flat arrays.

    Returns (time, dev, train, slot, rank) sorted by (dev, slot, time,
    alphabetical app id) — rank 0 marks each (dev, slot) group's first
    heartbeat, the payload carrier, matching merge_heartbeats' tie-break.
    """
    D, T = w.n_devices, w.n_trains
    times, devs, trains = [], [], []
    for t in range(T):
        cycle = float(w.train_cycles[t])
        phases = w.train_phases[t]
        counts = np.ceil((w.horizon - phases) / cycle).astype(np.int64)
        np.maximum(counts, 0, out=counts)
        total = int(counts.sum())
        if total == 0:
            continue
        dev = np.repeat(np.arange(D, dtype=np.int64), counts)
        csum = np.concatenate(([0], np.cumsum(counts)[:-1]))
        seq = np.arange(total, dtype=np.int64) - np.repeat(csum, counts)
        tm = phases[dev] + seq.astype(np.float64) * cycle
        keep = tm < w.horizon
        times.append(tm[keep])
        devs.append(dev[keep])
        trains.append(np.full(int(keep.sum()), t, dtype=np.int64))
    if not times:
        z = np.empty(0, np.int64)
        return np.empty(0, np.float64), z, z, z, z
    time = np.concatenate(times)
    dev = np.concatenate(devs)
    train = np.concatenate(trains)
    slot = np.minimum(np.floor(time).astype(np.int64), n_slots - 1)
    alpha = np.argsort(np.argsort(np.asarray(w.train_ids)))  # alphabetical rank
    order = np.lexsort((alpha[train], time, slot, dev))
    time, dev, train, slot = time[order], dev[order], train[order], slot[order]
    newgrp = np.ones(time.size, dtype=bool)
    newgrp[1:] = (dev[1:] != dev[:-1]) | (slot[1:] != slot[:-1])
    grp = np.cumsum(newgrp) - 1
    starts = np.nonzero(newgrp)[0]  # first row of each (dev, slot) group
    rank = np.arange(time.size, dtype=np.int64) - starts[grp]
    return time, dev, train, slot, rank


def _csr_expand(lo: np.ndarray, hi: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Expand [lo, hi) ranges to flat indices; also returns per-range
    repeat counts (for np.repeat of per-range payloads)."""
    lens = hi - lo
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, np.int64), lens
    csum = np.concatenate(([0], np.cumsum(lens)[:-1]))
    idx = np.repeat(lo, lens) + (np.arange(total, dtype=np.int64) - np.repeat(csum, lens))
    return idx, lens


def _serialize(table, req, dev, size, tie):
    """Radio serialisation: start_k = max(req_k, end_{k-1}) per device.

    Solved as a monotone fixed point so the whole fleet's bursts go
    through batched channel solves; the least fixed point equals the
    scalar radio's sequential recurrence.  Returns (perm, starts, durs)
    with all inputs to be reindexed by ``perm`` (sorted by device, then
    requested time, then ``tie``).
    """
    perm = np.lexsort((tie, req, dev))
    req_s, dev_s, size_s = req[perm], dev[perm], size[perm]
    seg_start = np.ones(req_s.size, dtype=bool)
    seg_start[1:] = dev_s[1:] != dev_s[:-1]
    starts = req_s.copy()
    for _ in range(_SERIALIZE_MAX_ITER):
        durs = table.durations(starts, size_s)
        ends = starts + durs
        prev_end = np.empty_like(ends)
        prev_end[0] = 0.0
        prev_end[1:] = ends[:-1]
        prev_end[seg_start] = 0.0
        new = np.maximum(req_s, prev_end)
        if np.array_equal(new, starts):
            return perm, starts, durs
        starts = new
    raise RuntimeError("burst serialisation did not converge")


# ---------------------------------------------------------------------------
# loop-free release slots (immediate / periodic) + tailender's slot loop
# ---------------------------------------------------------------------------


def _periodic_fires(n_slots: int, period: float) -> np.ndarray:
    """Replay FixedBatchStrategy's fire clock over integer slots."""
    fires = []
    last = 0.0
    for i in range(n_slots):
        if i - last + 1e-9 >= period:
            fires.append(i)
            last = float(i)
    return np.asarray(fires, dtype=np.int64)


def _release_slots_tailender(
    w: FleetWorkload,
    pk_app,
    pk_dev,
    pk_arr,
    n_slots: int,
    slack: float,
) -> np.ndarray:
    """TailEnder's per-device fire clock, vectorized across devices.

    Fires at slot i iff the earliest queued due time is <= i + 1 and
    releases the whole queue; the queue is a contiguous range of the
    device's arrival-sorted packets, so each fire is one (lo, hi) event.
    """
    D = w.n_devices
    perm = np.lexsort((pk_arr, pk_dev))
    dev_s = pk_dev[perm]
    arr_s = pk_arr[perm]
    due_s = arr_s + w.deadlines[pk_app[perm]] - slack
    kd_s = _delivery_slots(arr_s, n_slots)
    border = np.argsort(kd_s, kind="stable")
    bnd = np.searchsorted(kd_s[border], np.arange(n_slots + 1))
    seg = np.searchsorted(dev_s, np.arange(D + 1))
    qhead = seg[:-1].copy()
    qtail = seg[:-1].copy()
    min_due = np.full(D, np.inf)
    ev_dev: List[np.ndarray] = []
    ev_slot: List[int] = []
    ev_lo: List[np.ndarray] = []
    ev_hi: List[np.ndarray] = []
    for i in range(n_slots):
        sl = border[bnd[i] : bnd[i + 1]]
        if sl.size:
            np.minimum.at(min_due, dev_s[sl], due_s[sl])
            np.add.at(qtail, dev_s[sl], 1)
        fired = np.nonzero(min_due <= i + 1.0)[0]
        if fired.size:
            ev_dev.append(fired)
            ev_slot.append(i)
            ev_lo.append(qhead[fired].copy())
            ev_hi.append(qtail[fired].copy())
            qhead[fired] = qtail[fired]
            min_due[fired] = np.inf
    r_s = np.full(dev_s.size, n_slots, dtype=np.int64)
    if ev_dev:
        lo = np.concatenate(ev_lo)
        hi = np.concatenate(ev_hi)
        slots = np.concatenate(
            [np.full(d.size, s, dtype=np.int64) for d, s in zip(ev_dev, ev_slot)]
        )
        idx, lens = _csr_expand(lo, hi)
        r_s[idx] = np.repeat(slots, lens)
    r = np.empty(dev_s.size, dtype=np.int64)
    r[perm] = r_s
    return r


def _build_loopfree(
    w: FleetWorkload,
    table: ChannelTable,
    release: np.ndarray,
    pk_app,
    pk_dev,
    pk_arr,
    pk_size,
    n_slots: int,
) -> FleetChunkRaw:
    """Turn per-packet release slots into serialized bursts.

    Valid only for strategies with ``requires_warm_radio=False``:
    released packets transmit in their release slot (piggybacked when
    that slot carries a heartbeat for the device, a data burst at the
    slot start otherwise), and nothing is ever held for warmth.
    """
    key_mod = n_slots + 1
    h_time, h_dev, h_train, h_slot, h_rank = _heartbeat_table(w, n_slots)
    carrier = h_rank == 0
    ckey = h_dev[carrier] * key_mod + h_slot[carrier]  # ascending by build order
    c_index = np.nonzero(carrier)[0]

    pkey = pk_dev * key_mod + release
    pos = np.searchsorted(ckey, pkey)
    pos_c = np.minimum(pos, max(ckey.size - 1, 0))
    matched = (
        (ckey.size > 0) & (pos < ckey.size) & (ckey[pos_c] == pkey)
        if ckey.size
        else np.zeros(pkey.size, dtype=bool)
    )
    if np.ndim(matched) == 0:
        matched = np.broadcast_to(matched, pkey.shape).copy()

    # heartbeat bursts (one per heartbeat; carriers absorb matched bytes)
    hb_size = w.train_sizes[h_train].astype(np.float64)
    payload = np.zeros(c_index.size, dtype=np.float64)
    pay_cnt = np.zeros(c_index.size, dtype=np.int64)
    if matched.any():
        ci = pos[matched]
        np.add.at(payload, ci, pk_size[matched].astype(np.float64))
        np.add.at(pay_cnt, ci, 1)
    hb_burst_size = hb_size.copy()
    hb_burst_size[c_index] += payload
    hb_kind = np.full(h_time.size, KIND_HEARTBEAT, dtype=np.int8)
    hb_kind[c_index[pay_cnt > 0]] = KIND_PIGGYBACK

    # data bursts: unmatched releases before the horizon, one per (dev, slot)
    um = ~matched & (release < n_slots)
    dkeys, dinv = np.unique(pkey[um], return_inverse=True)
    data_size = np.bincount(dinv, weights=pk_size[um], minlength=dkeys.size)
    data_dev = dkeys // key_mod
    data_req = (dkeys % key_mod).astype(np.float64)

    # flush bursts: whatever was never released transmits at the horizon
    fm = release >= n_slots
    fdevs, finv = np.unique(pk_dev[fm], return_inverse=True)
    flush_size = np.bincount(finv, weights=pk_size[fm], minlength=fdevs.size)

    req = np.concatenate((h_time, data_req, np.full(fdevs.size, w.horizon)))
    dev = np.concatenate((h_dev, data_dev, fdevs))
    size = np.concatenate((hb_burst_size, data_size, flush_size))
    kind = np.concatenate(
        (
            hb_kind,
            np.full(dkeys.size, KIND_DATA, dtype=np.int8),
            np.full(fdevs.size, KIND_DATA, dtype=np.int8),
        )
    )
    tie = np.concatenate(
        (h_rank, np.full(dkeys.size, 90, np.int64), np.full(fdevs.size, 99, np.int64))
    )

    # packet -> burst rows (pre-sort indices, remapped after serialization)
    pk_burst = np.empty(pkey.size, dtype=np.int64)
    if matched.any():
        pk_burst[matched] = c_index[pos[matched]]
    pk_burst[um] = h_time.size + dinv
    pk_burst[fm] = h_time.size + dkeys.size + finv

    perm, starts, durs = _serialize(table, req, dev, size, tie)
    inv = np.empty(perm.size, dtype=np.int64)
    inv[perm] = np.arange(perm.size, dtype=np.int64)
    return FleetChunkRaw(
        n_devices=w.n_devices,
        horizon=w.horizon,
        n_slots=n_slots,
        burst_dev=dev[perm],
        burst_start=starts,
        burst_dur=durs,
        burst_size=size[perm],
        burst_kind=kind[perm],
        pk_app=pk_app,
        pk_dev=pk_dev,
        pk_arr=pk_arr,
        pk_size=pk_size,
        pk_burst=inv[pk_burst],
        cost_kinds=w.cost_kinds.copy(),
        deadlines=w.deadlines.copy(),
    )


# ---------------------------------------------------------------------------
# eTrain: the real per-slot loop, vectorized across devices
# ---------------------------------------------------------------------------


def _cost_aggregate(kind: int, deadline: float, u: float, n_pre, s_pre, n_post, s_post):
    """Closed-form Σ φ(u − arrival) from the four running sums."""
    if kind == 0:  # mail: pre-deadline packets cost 0
        return (n_post * u - s_post) / deadline - n_post
    if kind == 1:  # weibo: post-deadline packets saturate at 2
        return (n_pre * u - s_pre) / deadline + 2.0 * n_post
    # cloud
    return (
        (n_pre * u - s_pre) / deadline
        + 3.0 * (n_post * u - s_post) / deadline
        - 2.0 * n_post
    )


def _head_spec(kind: int, deadline: float, d: np.ndarray) -> np.ndarray:
    """φ(d) with the exact scalar branch arithmetic, vectorized."""
    with np.errstate(invalid="ignore"):
        if kind == 0:
            return np.where(d <= deadline, 0.0, d / deadline - 1.0)
        if kind == 1:
            return np.where(d <= deadline, d / deadline, 2.0)
        return np.where(d <= deadline, d / deadline, 3.0 * d / deadline - 2.0)


def _simulate_etrain(
    w: FleetWorkload,
    table: ChannelTable,
    pk_app,
    pk_dev,
    pk_arr,
    pk_size,
    base,
    n_slots: int,
    theta: float,
    warm_gate: bool,
    pm: PowerModel,
) -> FleetChunkRaw:
    A, D = w.n_apps, w.n_devices
    tail_time = pm.tail_time
    horizon = w.horizon

    garr = [w.arrivals[a] for a in range(A)]
    gsize = [w.sizes[a].astype(np.float64) for a in range(A)]
    gdev = [
        np.repeat(np.arange(D, dtype=np.int64), np.diff(w.offsets[a])) for a in range(A)
    ]
    kinds = [int(k) for k in w.cost_kinds]
    dls = [float(d) for d in w.deadlines]

    # per-slot buckets: deliveries by k_d, pre->post transitions by k_p
    dorder, dbnd, kp, torder, tbnd = [], [], [], [], []
    for a in range(A):
        kd = _delivery_slots(garr[a], n_slots)
        o = np.argsort(kd, kind="stable")
        dorder.append(o)
        dbnd.append(np.searchsorted(kd[o], np.arange(n_slots + 1)))
        k = _transition_slots(garr[a], dls[a])
        kp.append(k)
        kc = np.minimum(k, n_slots + 2)
        o2 = np.argsort(kc, kind="stable")
        torder.append(o2)
        tbnd.append(np.searchsorted(kc[o2], np.arange(n_slots + 3)))

    # heartbeat table bucketed by slot (within a slot: by device, rank)
    h_time, h_dev, h_train, h_slot, h_rank = _heartbeat_table(w, n_slots)
    horder = np.lexsort((h_rank, h_dev, h_slot))
    h_time, h_dev, h_train, h_slot, h_rank = (
        h_time[horder],
        h_dev[horder],
        h_train[horder],
        h_slot[horder],
        h_rank[horder],
    )
    hbnd = np.searchsorted(h_slot, np.arange(n_slots + 1))
    h_sizes = w.train_sizes.astype(np.float64)
    max_rank = int(h_rank.max()) if h_rank.size else 0

    # state
    zeros = lambda dt: np.zeros((A, D), dtype=dt)  # noqa: E731
    in_pre_n, in_pre_s = zeros(np.float64), zeros(np.float64)
    in_post_n, in_post_s = zeros(np.float64), zeros(np.float64)
    sp_pre_n, sp_pre_s = zeros(np.float64), zeros(np.float64)
    sp_post_n, sp_post_s = zeros(np.float64), zeros(np.float64)
    wait_bytes = zeros(np.float64)
    head = [w.offsets[a][:-1].copy() for a in range(A)]
    tail = [w.offsets[a][:-1].copy() for a in range(A)]
    held_bytes = np.zeros(D, dtype=np.float64)
    held_cnt = np.zeros(D, dtype=np.int64)
    busy = np.zeros(D, dtype=np.float64)
    has_rec = np.zeros(D, dtype=bool)

    # outputs accumulated per slot
    b_dev: List[np.ndarray] = []
    b_start: List[np.ndarray] = []
    b_dur: List[np.ndarray] = []
    b_size: List[np.ndarray] = []
    b_kind: List[np.ndarray] = []
    b_count = 0
    dd_dev: List[np.ndarray] = []
    dd_slot: List[np.ndarray] = []
    dd_row: List[np.ndarray] = []
    dd_lo: List[List[np.ndarray]] = [[] for _ in range(A)]
    dd_hi: List[List[np.ndarray]] = [[] for _ in range(A)]
    pw_flat: List[np.ndarray] = []
    pw_row: List[np.ndarray] = []
    pc_flat: List[np.ndarray] = []
    pc_dev: List[np.ndarray] = []
    pc_slot: List[np.ndarray] = []

    def emit(devs, reqs, sizes, kind):
        nonlocal b_count
        starts = np.maximum(reqs, busy[devs])
        durs = table.durations(starts, sizes)
        busy[devs] = starts + durs
        has_rec[devs] = True
        rows = b_count + np.arange(devs.size, dtype=np.int64)
        b_count += devs.size
        b_dev.append(devs)
        b_start.append(starts)
        b_dur.append(durs)
        b_size.append(sizes)
        b_kind.append(np.full(devs.size, kind, dtype=np.int8))
        return rows

    agg_sets = (
        in_pre_n,
        in_pre_s,
        in_post_n,
        in_post_s,
        sp_pre_n,
        sp_pre_s,
        sp_post_n,
        sp_post_s,
    )

    for i in range(n_slots):
        t = float(i)
        # 1. deliveries (arrival <= t): enter both aggregate sets as pre
        for a in range(A):
            sl = dorder[a][dbnd[a][i] : dbnd[a][i + 1]]
            if sl.size:
                dv = gdev[a][sl]
                ar = garr[a][sl]
                np.add.at(in_pre_n[a], dv, 1.0)
                np.add.at(in_pre_s[a], dv, ar)
                np.add.at(sp_pre_n[a], dv, 1.0)
                np.add.at(sp_pre_s[a], dv, ar)
                np.add.at(wait_bytes[a], dv, gsize[a][sl])
                np.add.at(tail[a], dv, 1)
        # 2. pre->post transitions for still-queued packets
        for a in range(A):
            for bucket, (npre, spre, npost, spost) in (
                (i, (in_pre_n[a], in_pre_s[a], in_post_n[a], in_post_s[a])),
                (i + 1, (sp_pre_n[a], sp_pre_s[a], sp_post_n[a], sp_post_s[a])),
            ):
                sl = torder[a][tbnd[a][bucket] : tbnd[a][bucket + 1]]
                if sl.size:
                    dv = gdev[a][sl]
                    act = sl >= head[a][dv]
                    if act.any():
                        g = sl[act]
                        dv = dv[act]
                        ar = garr[a][g]
                        np.add.at(npre, dv, -1.0)
                        np.add.at(spre, dv, -ar)
                        np.add.at(npost, dv, 1.0)
                        np.add.at(spost, dv, ar)
        # 3. which devices see a heartbeat this slot
        hsl = slice(hbnd[i], hbnd[i + 1])
        hb_any = hbnd[i + 1] > hbnd[i]
        if hb_any:
            sl_rank = h_rank[hsl]
            hb_devs = h_dev[hsl][sl_rank == 0]  # unique, ascending
        # 4. theta check on non-heartbeat devices
        P = np.zeros(D)
        for a in range(A):
            P += _cost_aggregate(
                kinds[a], dls[a], t, in_pre_n[a], in_pre_s[a], in_post_n[a], in_post_s[a]
            )
        fire = P >= theta
        if hb_any:
            fire[hb_devs] = False
        fd = np.nonzero(fire)[0]
        # 5. single greedy pick per fired device
        if fd.size:
            u = t + 1.0
            G = np.full((A, fd.size), -np.inf)
            for a in range(A):
                h = head[a][fd]
                has = h < tail[a][fd]
                if not has.any():
                    continue
                pb = _cost_aggregate(
                    kinds[a],
                    dls[a],
                    u,
                    sp_pre_n[a][fd],
                    sp_pre_s[a][fd],
                    sp_post_n[a][fd],
                    sp_post_s[a][fd],
                )
                ar_h = garr[a][np.minimum(h, garr[a].size - 1)]
                s = _head_spec(kinds[a], dls[a], u - ar_h)
                G[a] = np.where(has, pb * s - 0.5 * s * s, -np.inf)
            best = np.argmax(G, axis=0)  # first max wins, like the greedy scan
            gmax = G[best, np.arange(fd.size)]
            picked = gmax > 0.0
            fd = fd[picked]
            best = best[picked]
            warm_devs: List[np.ndarray] = []
            warm_sizes: List[np.ndarray] = []
            warm_flats: List[np.ndarray] = []
            for a in range(A):
                da = fd[best == a]
                if not da.size:
                    continue
                g = head[a][da]
                ar = garr[a][g]
                sz = gsize[a][g]
                post_i = kp[a][g] <= i
                post_s = kp[a][g] <= i + 1
                for post, (npre, spre, npost, spost) in (
                    (post_i, (in_pre_n[a], in_pre_s[a], in_post_n[a], in_post_s[a])),
                    (post_s, (sp_pre_n[a], sp_pre_s[a], sp_post_n[a], sp_post_s[a])),
                ):
                    dp, ap = da[~post], ar[~post]
                    npre[dp] -= 1.0
                    spre[dp] -= ap
                    dq, aq = da[post], ar[post]
                    npost[dq] -= 1.0
                    spost[dq] -= aq
                wait_bytes[a][da] -= sz
                head[a][da] += 1
                warm = (
                    has_rec[da] & (t < busy[da] + tail_time)
                    if warm_gate
                    else np.ones(da.size, dtype=bool)
                )
                if not warm.all():
                    cold = ~warm
                    cd = da[cold]
                    held_bytes[cd] += sz[cold]
                    held_cnt[cd] += 1
                    pc_flat.append(base[a] + g[cold])
                    pc_dev.append(cd)
                    pc_slot.append(np.full(cd.size, i, dtype=np.int64))
                if warm.any():
                    warm_devs.append(da[warm])
                    warm_sizes.append(sz[warm])
                    warm_flats.append(base[a] + g[warm])
            if warm_devs:
                devs = np.concatenate(warm_devs)
                rows = emit(
                    devs,
                    np.full(devs.size, t),
                    np.concatenate(warm_sizes),
                    KIND_DATA,
                )
                pw_flat.append(np.concatenate(warm_flats))
                pw_row.append(rows)
        # 6. heartbeat slots: full drain rides the carrier, rest go bare
        if hb_any:
            sl_dev = h_dev[hsl]
            sl_time = h_time[hsl]
            sl_train = h_train[hsl]
            car = sl_rank == 0
            q_bytes = wait_bytes[:, hb_devs].sum(axis=0)
            q_cnt = np.zeros(hb_devs.size, dtype=np.int64)
            for a in range(A):
                q_cnt += tail[a][hb_devs] - head[a][hb_devs]
            payload = held_bytes[hb_devs] + q_bytes
            pay_cnt = held_cnt[hb_devs] + q_cnt
            c_size = h_sizes[sl_train[car]] + payload
            rows = emit(hb_devs, sl_time[car], c_size, KIND_HEARTBEAT)
            # fix kinds for carriers that actually carried payload
            b_kind[-1][pay_cnt > 0] = KIND_PIGGYBACK
            dd_dev.append(hb_devs)
            dd_slot.append(np.full(hb_devs.size, i, dtype=np.int64))
            dd_row.append(rows)
            for a in range(A):
                dd_lo[a].append(head[a][hb_devs].copy())
                dd_hi[a].append(tail[a][hb_devs].copy())
                head[a][hb_devs] = tail[a][hb_devs]
            for arrs in agg_sets:
                arrs[:, hb_devs] = 0.0
            wait_bytes[:, hb_devs] = 0.0
            held_bytes[hb_devs] = 0.0
            held_cnt[hb_devs] = 0
            for r in range(1, max_rank + 1):
                m = sl_rank == r
                if not m.any():
                    continue
                emit(sl_dev[m], sl_time[m], h_sizes[sl_train[m]], KIND_HEARTBEAT)

    # end-of-horizon flush: held + still-queued + never-delivered packets
    rem_cnt = held_cnt.astype(np.int64).copy()
    rem_bytes = held_bytes.copy()
    byte_prefix = []
    for a in range(A):
        bp = np.concatenate(([0.0], np.cumsum(gsize[a])))
        byte_prefix.append(bp)
        end = w.offsets[a][1:]
        rem_cnt += end - head[a]
        rem_bytes += bp[end] - bp[head[a]]
    fdevs = np.nonzero(rem_cnt > 0)[0]
    flush_row = np.full(D, -1, dtype=np.int64)
    if fdevs.size:
        rows = emit(
            fdevs, np.full(fdevs.size, horizon), rem_bytes[fdevs], KIND_DATA
        )
        flush_row[fdevs] = rows

    # packet -> burst resolution
    n_pk = pk_arr.size
    pk_burst = np.full(n_pk, -1, dtype=np.int64)
    if dd_dev:
        drow = np.concatenate(dd_row)
        for a in range(A):
            lo = np.concatenate(dd_lo[a])
            hi = np.concatenate(dd_hi[a])
            idx, lens = _csr_expand(lo, hi)
            pk_burst[base[a] + idx] = np.repeat(drow, lens)
    if pw_flat:
        pk_burst[np.concatenate(pw_flat)] = np.concatenate(pw_row)
    if pc_flat:
        cflat = np.concatenate(pc_flat)
        cdev = np.concatenate(pc_dev)
        cslot = np.concatenate(pc_slot)
        if dd_dev:
            ddev = np.concatenate(dd_dev)
            dslot = np.concatenate(dd_slot)
            drow = np.concatenate(dd_row)
            key_mod = n_slots + 2
            key = ddev * key_mod + dslot
            kord = np.argsort(key)
            key_s = key[kord]
            drow_s = drow[kord]
            q = cdev * key_mod + cslot + 1
            pos = np.searchsorted(key_s, q)
            pos_c = np.minimum(pos, key_s.size - 1)
            hit = (pos < key_s.size) & (key_s[pos_c] // key_mod == cdev)
            res = np.where(hit, drow_s[pos_c], flush_row[cdev])
        else:
            res = flush_row[cdev]
        pk_burst[cflat] = res
    left = pk_burst < 0
    if left.any():
        pk_burst[left] = flush_row[pk_dev[left]]
    if n_pk and pk_burst.min() < 0:
        raise AssertionError("unresolved packet -> burst mapping")

    empty_f = np.empty(0, np.float64)
    empty_i = np.empty(0, np.int64)
    return FleetChunkRaw(
        n_devices=D,
        horizon=horizon,
        n_slots=n_slots,
        burst_dev=np.concatenate(b_dev) if b_dev else empty_i,
        burst_start=np.concatenate(b_start) if b_start else empty_f,
        burst_dur=np.concatenate(b_dur) if b_dur else empty_f,
        burst_size=np.concatenate(b_size) if b_size else empty_f,
        burst_kind=np.concatenate(b_kind) if b_kind else np.empty(0, np.int8),
        pk_app=pk_app,
        pk_dev=pk_dev,
        pk_arr=pk_arr,
        pk_size=pk_size,
        pk_burst=pk_burst,
        cost_kinds=w.cost_kinds.copy(),
        deadlines=w.deadlines.copy(),
    )


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def simulate_fleet_chunk(
    workload: FleetWorkload,
    table: ChannelTable,
    *,
    strategy: str = "etrain",
    params: Optional[Dict] = None,
    power_model: PowerModel = GALAXY_S4_3G,
    recorder=None,
) -> FleetChunkRaw:
    """Simulate one chunk of devices under a vectorized strategy.

    ``params`` mirrors the scalar strategy builders' keyword arguments:
    ``etrain`` takes ``theta`` (default 0.2) and ``warm_gate`` (default
    True); ``periodic`` takes ``period`` (default 60.0); ``tailender``
    takes ``slack`` (default 0.0); ``immediate`` takes none.

    ``recorder`` optionally receives the chunk's event trace (one
    ``fleet_chunk`` summary plus a ``fleet_burst`` event per burst row)
    after simulation — see :mod:`repro.obs.tracer`.  The simulation
    itself is identical with or without it.
    """
    raw = _dispatch_fleet_chunk(workload, table, strategy, params, power_model)
    if recorder is not None:
        from repro.obs.tracer import emit_fleet_chunk_trace

        emit_fleet_chunk_trace(recorder, raw)
    from repro.obs.metrics import current_registry

    registry = current_registry()
    if registry is not None:
        registry.counter("fleet.chunks").inc()
        registry.counter("fleet.devices").inc(workload.n_devices)
        registry.counter("fleet.bursts").inc(int(raw.burst_start.size))
        registry.counter("fleet.packets").inc(int(raw.pk_arr.size))
    return raw


def _dispatch_fleet_chunk(
    workload: FleetWorkload,
    table: ChannelTable,
    strategy: str,
    params: Optional[Dict],
    power_model: PowerModel,
) -> FleetChunkRaw:
    if strategy not in VECTOR_STRATEGIES:
        raise ValueError(
            f"no vectorized path for strategy {strategy!r}; "
            f"supported: {VECTOR_STRATEGIES} (use the scalar fallback)"
        )
    if power_model.promotion_delay != 0.0 or power_model.promotion_energy != 0.0:
        raise ValueError(
            "fleet path models promotion-free radios only "
            "(promotion_delay == promotion_energy == 0)"
        )
    params = dict(params or {})
    n_slots = int(math.ceil(workload.horizon / 1.0))
    pk_app, pk_dev, pk_arr, pk_size, base = _flat_packets(workload)

    if strategy == "etrain":
        theta = float(params.pop("theta", 0.2))
        warm_gate = bool(params.pop("warm_gate", True))
        if params.pop("k", None) is not None:
            raise ValueError("fleet etrain supports only k=None (full drain)")
        if float(params.pop("slot", 1.0)) != 1.0:
            raise ValueError("fleet etrain supports only slot=1.0")
        _reject_extra(params)
        if np.any(workload.deadlines < 2.0):
            raise ValueError("fleet etrain requires all deadlines >= 2 s")
        return _simulate_etrain(
            workload,
            table,
            pk_app,
            pk_dev,
            pk_arr,
            pk_size,
            base,
            n_slots,
            theta,
            warm_gate,
            power_model,
        )

    if strategy == "immediate":
        _reject_extra(params)
        release = _delivery_slots(pk_arr, n_slots)
    elif strategy == "periodic":
        period = float(params.pop("period", 60.0))
        _reject_extra(params)
        fires = _periodic_fires(n_slots, period)
        kd = _delivery_slots(pk_arr, n_slots)
        pos = np.searchsorted(fires, kd)
        release = np.where(
            pos < fires.size, fires[np.minimum(pos, max(fires.size - 1, 0))], n_slots
        )
    else:  # tailender
        slack = float(params.pop("slack", 0.0))
        _reject_extra(params)
        release = _release_slots_tailender(
            workload, pk_app, pk_dev, pk_arr, n_slots, slack
        )
    return _build_loopfree(
        workload, table, release, pk_app, pk_dev, pk_arr, pk_size, n_slots
    )


def _reject_extra(params: Dict) -> None:
    if params:
        raise ValueError(f"unsupported fleet strategy params: {sorted(params)}")
