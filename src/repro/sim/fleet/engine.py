"""Vectorized slot dynamics over device columns.

One :class:`~repro.sim.engine.Simulation` walks 7 200 one-second slots
per device with Python objects per packet.  This module restates the
same dense-loop semantics over NumPy arrays indexed by device, for the
strategies whose decision rules admit column form:

* **immediate** and **periodic** release on slots that are a pure
  function of arrival times (and the shared fire clock), so the whole
  run collapses to array arithmetic with no slot loop at all;
* **tailender** needs one cheap slot loop (its earliest-deadline fire
  clock resets on every release) but no channel access inside it;
* **etrain** runs the real per-slot loop — Θ-threshold checks, the
  Lyapunov greedy pick, warm-radio gating and heartbeat drains — but
  vectorized across all devices of the chunk, with the delay-cost sums
  P_i(t) maintained as closed-form aggregates instead of per-packet
  scans (see below).

Aggregate delay costs
---------------------
Every supported cost function is affine in the packet's arrival time on
each side of its deadline, so an app's queue cost at time ``u`` is a
function of four running sums — pre/post-deadline packet counts and
arrival-time sums::

    mail  (f1):  P = (n_post·u − s_post)/D − n_post
    weibo (f2):  P = (n_pre·u − s_pre)/D + 2·n_post
    cloud (f3):  P = (n_pre·u − s_pre)/D + 3·(n_post·u − s_post)/D − 2·n_post

The engine keeps *two* aggregate sets per (app, device): one classifying
packets at slot time ``t`` (the Θ check) and one at ``t+1`` (the
speculative costs the greedy gain uses).  A packet's pre→post transition
slot is precomputed with the same float comparison ``(k − arrival) > D``
the scalar branches on, so the split is bit-faithful; only the *sums*
round differently from the scalar sequential additions (~1e-13, reset to
exact zero at every heartbeat drain).

Equivalence to a per-device scalar loop is covered by
``tests/test_fleet_equivalence.py``.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.radio.power_model import GALAXY_S4_3G, PowerModel
from repro.sim.fleet.channel import ChannelTable
from repro.sim.fleet.workload import FleetWorkload

__all__ = [
    "VECTOR_STRATEGIES",
    "FleetChunkRaw",
    "simulate_fleet_chunk",
    "slice_chunk_raw",
    "fleet_slot_count",
]

def __getattr__(name: str):
    # VECTOR_STRATEGIES is derived from the kernel registry so the
    # historical ``from repro.sim.fleet.engine import VECTOR_STRATEGIES``
    # keeps working after strategies register kernels elsewhere
    # (see repro.sim.fleet.registry); everything unregistered falls back
    # to the per-device scalar engine (see repro.sim.fleet.reference).
    if name == "VECTOR_STRATEGIES":
        from repro.sim.fleet.registry import vector_strategies

        return vector_strategies()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

#: Burst kinds, mirroring TransmissionRecord.kind.
KIND_HEARTBEAT, KIND_DATA, KIND_PIGGYBACK = 0, 1, 2

_SERIALIZE_MAX_ITER = 500
#: Bursts per serialisation fixed-point segment (device-aligned); bounds
#: the solver's per-iteration temporaries for bursty strategies.
_SERIALIZE_SEGMENT = 1 << 19


@dataclass
class FleetChunkRaw:
    """Raw simulation output of one chunk: bursts plus packet→burst map.

    Burst rows are ordered chronologically within each device (a stable
    sort by ``burst_dev`` yields each device's burst sequence).  Every
    packet is scheduled — end-of-horizon flushes transmit leftovers just
    like the scalar engine — so ``pk_burst`` is total.
    """

    n_devices: int
    horizon: float
    n_slots: int
    # bursts
    burst_dev: np.ndarray  # int64
    burst_start: np.ndarray  # float64
    burst_dur: np.ndarray  # float64
    burst_size: np.ndarray  # float64 (bytes)
    burst_kind: np.ndarray  # int8
    # packets (app-major flat order: app 0's CSR, then app 1's, ...)
    pk_app: np.ndarray  # int64
    pk_dev: np.ndarray  # int64
    pk_arr: np.ndarray  # float64
    pk_size: np.ndarray  # int64
    pk_burst: np.ndarray  # int64 row into burst arrays
    # per-app metadata (copied from the workload)
    cost_kinds: np.ndarray
    deadlines: np.ndarray


def slice_chunk_raw(raw: FleetChunkRaw, lo: int, hi: int) -> FleetChunkRaw:
    """Restrict a chunk's raw output to devices ``[lo, hi)``, re-based to 0.

    Devices are simulated independently, so the slice carries exactly the
    floats a standalone ``[lo, hi)`` chunk would produce — the serve
    layer's coalesced batch path leans on this to answer each request
    with its own device range after one fused kernel call.  Row order is
    preserved, so downstream reductions sum in the same order too.
    """
    if not 0 <= lo <= hi <= raw.n_devices:
        raise ValueError(
            f"device slice [{lo}, {hi}) outside chunk of {raw.n_devices}"
        )
    if lo == 0 and hi == raw.n_devices:
        return raw
    bm = (raw.burst_dev >= lo) & (raw.burst_dev < hi)
    pm = (raw.pk_dev >= lo) & (raw.pk_dev < hi)
    # New row index of each kept burst, for re-pointing pk_burst.
    remap = np.cumsum(bm, dtype=np.int64) - 1
    return FleetChunkRaw(
        n_devices=hi - lo,
        horizon=raw.horizon,
        n_slots=raw.n_slots,
        burst_dev=raw.burst_dev[bm] - lo,
        burst_start=raw.burst_start[bm],
        burst_dur=raw.burst_dur[bm],
        burst_size=raw.burst_size[bm],
        burst_kind=raw.burst_kind[bm],
        pk_app=raw.pk_app[pm],
        pk_dev=raw.pk_dev[pm] - lo,
        pk_arr=raw.pk_arr[pm],
        pk_size=raw.pk_size[pm],
        pk_burst=remap[raw.pk_burst[pm]],
        cost_kinds=raw.cost_kinds,
        deadlines=raw.deadlines,
    )


# ---------------------------------------------------------------------------
# shared pieces
# ---------------------------------------------------------------------------


def _flat_packets(w: FleetWorkload):
    """App-major flat packet arrays + per-app flat base offsets."""
    devs, apps = [], []
    base = np.zeros(w.n_apps + 1, dtype=np.int64)
    for a in range(w.n_apps):
        counts = np.diff(w.offsets[a])
        devs.append(np.repeat(np.arange(w.n_devices, dtype=np.int64), counts))
        apps.append(np.full(w.arrivals[a].size, a, dtype=np.int64))
        base[a + 1] = base[a] + w.arrivals[a].size
    pk_app = np.concatenate(apps) if apps else np.empty(0, np.int64)
    pk_dev = np.concatenate(devs) if devs else np.empty(0, np.int64)
    pk_arr = np.concatenate(w.arrivals) if w.arrivals else np.empty(0, np.float64)
    pk_size = np.concatenate(w.sizes) if w.sizes else np.empty(0, np.int64)
    return pk_app, pk_dev, pk_arr, pk_size, base


def _delivery_slots(arr: np.ndarray, n_slots: int) -> np.ndarray:
    """First slot whose start time is >= the arrival (the dense loop
    delivers at step 1 of slot i when arrival <= i)."""
    kd = np.ceil(arr).astype(np.int64)
    return np.minimum(kd, n_slots)


def _transition_slots(arr: np.ndarray, deadline: float) -> np.ndarray:
    """Smallest integer k with ``(k − arrival) > deadline`` — evaluated
    with the same float64 subtraction the scalar cost branches use, so
    aggregate pre/post splits agree with per-packet comparisons exactly."""
    k = np.floor(arr + deadline).astype(np.int64) - 2
    for _ in range(6):
        post = (k.astype(np.float64) - arr) > deadline
        k = np.where(post, k, k + 1)
    return k


def _heartbeat_table(w: FleetWorkload, n_slots: int):
    """All heartbeats of the chunk as flat arrays.

    Returns (time, dev, train, slot, rank) sorted by (dev, slot, time,
    alphabetical app id) — rank 0 marks each (dev, slot) group's first
    heartbeat, the payload carrier, matching merge_heartbeats' tie-break.
    """
    D, T = w.n_devices, w.n_trains
    times, devs, trains = [], [], []
    for t in range(T):
        cycle = float(w.train_cycles[t])
        phases = w.train_phases[t]
        counts = np.ceil((w.horizon - phases) / cycle).astype(np.int64)
        np.maximum(counts, 0, out=counts)
        total = int(counts.sum())
        if total == 0:
            continue
        dev = np.repeat(np.arange(D, dtype=np.int64), counts)
        csum = np.concatenate(([0], np.cumsum(counts)[:-1]))
        seq = np.arange(total, dtype=np.int64) - np.repeat(csum, counts)
        tm = phases[dev] + seq.astype(np.float64) * cycle
        keep = tm < w.horizon
        times.append(tm[keep])
        devs.append(dev[keep])
        trains.append(np.full(int(keep.sum()), t, dtype=np.int64))
    if not times:
        z = np.empty(0, np.int64)
        return np.empty(0, np.float64), z, z, z, z
    time = np.concatenate(times)
    dev = np.concatenate(devs)
    train = np.concatenate(trains)
    slot = np.minimum(np.floor(time).astype(np.int64), n_slots - 1)
    alpha = np.argsort(np.argsort(np.asarray(w.train_ids)))  # alphabetical rank
    order = np.lexsort((alpha[train], time, slot, dev))
    time, dev, train, slot = time[order], dev[order], train[order], slot[order]
    newgrp = np.ones(time.size, dtype=bool)
    newgrp[1:] = (dev[1:] != dev[:-1]) | (slot[1:] != slot[:-1])
    grp = np.cumsum(newgrp) - 1
    starts = np.nonzero(newgrp)[0]  # first row of each (dev, slot) group
    rank = np.arange(time.size, dtype=np.int64) - starts[grp]
    return time, dev, train, slot, rank


def _csr_expand(lo: np.ndarray, hi: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Expand [lo, hi) ranges to flat indices; also returns per-range
    repeat counts (for np.repeat of per-range payloads)."""
    lens = hi - lo
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, np.int64), lens
    csum = np.concatenate(([0], np.cumsum(lens)[:-1]))
    idx = np.repeat(lo, lens) + (np.arange(total, dtype=np.int64) - np.repeat(csum, lens))
    return idx, lens


class _GrowBuffer:
    """Geometrically grown tx-record buffer (amortized O(1) extend).

    Replaces append-then-concatenate lists for per-chunk burst records:
    peak memory stays bounded by ~2x the final record bytes (capacity
    doubling) instead of the piece list *plus* a full concatenation at
    finalize, and thousands of per-slot array objects collapse into one.
    """

    __slots__ = ("_data", "_n")

    def __init__(self, dtype, capacity: int = 1024) -> None:
        self._data = np.empty(capacity, dtype=dtype)
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def extend(self, values: np.ndarray) -> None:
        need = self._n + values.size
        cap = self._data.size
        if need > cap:
            while cap < need:
                cap *= 2
            grown = np.empty(cap, dtype=self._data.dtype)
            grown[: self._n] = self._data[: self._n]
            self._data = grown
        self._data[self._n : need] = values
        self._n = need

    def view(self) -> np.ndarray:
        """The filled prefix (a view; copy if outliving the buffer)."""
        return self._data[: self._n]


def _serialize_segment(table, req_s, dev_s, size_s):
    """The monotone fixed point over one device-aligned burst segment."""
    seg_start = np.ones(req_s.size, dtype=bool)
    seg_start[1:] = dev_s[1:] != dev_s[:-1]
    starts = req_s.copy()
    for _ in range(_SERIALIZE_MAX_ITER):
        durs = table.durations(starts, size_s)
        ends = starts + durs
        prev_end = np.empty_like(ends)
        prev_end[0] = 0.0
        prev_end[1:] = ends[:-1]
        prev_end[seg_start] = 0.0
        new = np.maximum(req_s, prev_end)
        if np.array_equal(new, starts):
            return starts, durs
        starts = new
    raise RuntimeError("burst serialisation did not converge")


def _serialize(table, req, dev, size, tie):
    """Radio serialisation: start_k = max(req_k, end_{k-1}) per device.

    Solved as a monotone fixed point so the whole fleet's bursts go
    through batched channel solves; the least fixed point equals the
    scalar radio's sequential recurrence.  Returns (perm, starts, durs)
    with all inputs to be reindexed by ``perm`` (sorted by device, then
    requested time, then ``tie``).

    The fixed point runs over device-aligned segments of at most
    ``_SERIALIZE_SEGMENT`` bursts: devices are independent, so segment
    results are identical to one whole-array solve, while the solver's
    per-iteration temporaries stay segment-sized instead of fleet-sized
    (the peak-RSS spike for bursty strategies like ``immediate``).
    """
    perm = np.lexsort((tie, req, dev))
    req_s, dev_s, size_s = req[perm], dev[perm], size[perm]
    n = req_s.size
    starts = np.empty(n, dtype=np.float64)
    durs = np.empty(n, dtype=np.float64)
    lo = 0
    while lo < n:
        hi = min(lo + _SERIALIZE_SEGMENT, n)
        if hi < n:
            # never cut inside a device run: the recurrence chains
            # through a device's bursts
            hi = int(np.searchsorted(dev_s, dev_s[hi - 1], side="right"))
        s, d = _serialize_segment(
            table, req_s[lo:hi], dev_s[lo:hi], size_s[lo:hi]
        )
        starts[lo:hi] = s
        durs[lo:hi] = d
        lo = hi
    return perm, starts, durs


# ---------------------------------------------------------------------------
# loop-free release slots (immediate / periodic) + tailender's slot loop
# ---------------------------------------------------------------------------


def _periodic_fires(n_slots: int, period: float) -> np.ndarray:
    """Replay FixedBatchStrategy's fire clock over integer slots."""
    fires = []
    last = 0.0
    for i in range(n_slots):
        if i - last + 1e-9 >= period:
            fires.append(i)
            last = float(i)
    return np.asarray(fires, dtype=np.int64)


def _release_slots_tailender(
    w: FleetWorkload,
    pk_app,
    pk_dev,
    pk_arr,
    n_slots: int,
    slack: float,
) -> np.ndarray:
    """TailEnder's per-device fire clock, vectorized across devices.

    Fires at slot i iff the earliest queued due time is <= i + 1 and
    releases the whole queue; the queue is a contiguous range of the
    device's arrival-sorted packets, so each fire is one (lo, hi) event.
    """
    D = w.n_devices
    perm = np.lexsort((pk_arr, pk_dev))
    dev_s = pk_dev[perm]
    arr_s = pk_arr[perm]
    due_s = arr_s + w.deadlines[pk_app[perm]] - slack
    kd_s = _delivery_slots(arr_s, n_slots)
    border = np.argsort(kd_s, kind="stable")
    bnd = np.searchsorted(kd_s[border], np.arange(n_slots + 1))
    seg = np.searchsorted(dev_s, np.arange(D + 1))
    qhead = seg[:-1].copy()
    qtail = seg[:-1].copy()
    min_due = np.full(D, np.inf)
    ev_dev: List[np.ndarray] = []
    ev_slot: List[int] = []
    ev_lo: List[np.ndarray] = []
    ev_hi: List[np.ndarray] = []
    for i in range(n_slots):
        sl = border[bnd[i] : bnd[i + 1]]
        if sl.size:
            np.minimum.at(min_due, dev_s[sl], due_s[sl])
            np.add.at(qtail, dev_s[sl], 1)
        fired = np.nonzero(min_due <= i + 1.0)[0]
        if fired.size:
            ev_dev.append(fired)
            ev_slot.append(i)
            ev_lo.append(qhead[fired].copy())
            ev_hi.append(qtail[fired].copy())
            qhead[fired] = qtail[fired]
            min_due[fired] = np.inf
    r_s = np.full(dev_s.size, n_slots, dtype=np.int64)
    if ev_dev:
        lo = np.concatenate(ev_lo)
        hi = np.concatenate(ev_hi)
        slots = np.concatenate(
            [np.full(d.size, s, dtype=np.int64) for d, s in zip(ev_dev, ev_slot)]
        )
        idx, lens = _csr_expand(lo, hi)
        r_s[idx] = np.repeat(slots, lens)
    r = np.empty(dev_s.size, dtype=np.int64)
    r[perm] = r_s
    return r


def _build_loopfree(
    w: FleetWorkload,
    table: ChannelTable,
    release: np.ndarray,
    pk_app,
    pk_dev,
    pk_arr,
    pk_size,
    n_slots: int,
) -> FleetChunkRaw:
    """Turn per-packet release slots into serialized bursts.

    Valid only for strategies with ``requires_warm_radio=False``:
    released packets transmit in their release slot (piggybacked when
    that slot carries a heartbeat for the device, a data burst at the
    slot start otherwise), and nothing is ever held for warmth.
    """
    key_mod = n_slots + 1
    h_time, h_dev, h_train, h_slot, h_rank = _heartbeat_table(w, n_slots)
    carrier = h_rank == 0
    ckey = h_dev[carrier] * key_mod + h_slot[carrier]  # ascending by build order
    c_index = np.nonzero(carrier)[0]

    pkey = pk_dev * key_mod + release
    pos = np.searchsorted(ckey, pkey)
    pos_c = np.minimum(pos, max(ckey.size - 1, 0))
    matched = (
        (ckey.size > 0) & (pos < ckey.size) & (ckey[pos_c] == pkey)
        if ckey.size
        else np.zeros(pkey.size, dtype=bool)
    )
    if np.ndim(matched) == 0:
        matched = np.broadcast_to(matched, pkey.shape).copy()

    # heartbeat bursts (one per heartbeat; carriers absorb matched bytes)
    hb_size = w.train_sizes[h_train].astype(np.float64)
    payload = np.zeros(c_index.size, dtype=np.float64)
    pay_cnt = np.zeros(c_index.size, dtype=np.int64)
    if matched.any():
        ci = pos[matched]
        np.add.at(payload, ci, pk_size[matched].astype(np.float64))
        np.add.at(pay_cnt, ci, 1)
        ci = None
    hb_burst_size = hb_size.copy()
    hb_burst_size[c_index] += payload
    hb_kind = np.full(h_time.size, KIND_HEARTBEAT, dtype=np.int8)
    hb_kind[c_index[pay_cnt > 0]] = KIND_PIGGYBACK

    # data bursts: unmatched releases before the horizon, one per (dev, slot)
    um = ~matched & (release < n_slots)
    dkeys, dinv = np.unique(pkey[um], return_inverse=True)
    data_size = np.bincount(dinv, weights=pk_size[um], minlength=dkeys.size)
    data_dev = dkeys // key_mod
    data_req = (dkeys % key_mod).astype(np.float64)

    # flush bursts: whatever was never released transmits at the horizon
    fm = release >= n_slots
    fdevs, finv = np.unique(pk_dev[fm], return_inverse=True)
    flush_size = np.bincount(finv, weights=pk_size[fm], minlength=fdevs.size)

    req = np.concatenate((h_time, data_req, np.full(fdevs.size, w.horizon)))
    dev = np.concatenate((h_dev, data_dev, fdevs))
    size = np.concatenate((hb_burst_size, data_size, flush_size))
    kind = np.concatenate(
        (
            hb_kind,
            np.full(dkeys.size, KIND_DATA, dtype=np.int8),
            np.full(fdevs.size, KIND_DATA, dtype=np.int8),
        )
    )
    tie = np.concatenate(
        (h_rank, np.full(dkeys.size, 90, np.int64), np.full(fdevs.size, 99, np.int64))
    )

    # packet -> burst rows (pre-sort indices, remapped after serialization)
    pk_burst = np.empty(pkey.size, dtype=np.int64)
    if matched.any():
        pk_burst[matched] = c_index[pos[matched]]
    pk_burst[um] = h_time.size + dinv
    pk_burst[fm] = h_time.size + dkeys.size + finv
    # Packet-sized matching scratch is done; free it ahead of the
    # serialisation solve so the two peaks don't stack.
    del pkey, pos, pos_c, matched, um, fm, dinv, finv

    perm, starts, durs = _serialize(table, req, dev, size, tie)
    inv = np.empty(perm.size, dtype=np.int64)
    inv[perm] = np.arange(perm.size, dtype=np.int64)
    return FleetChunkRaw(
        n_devices=w.n_devices,
        horizon=w.horizon,
        n_slots=n_slots,
        burst_dev=dev[perm],
        burst_start=starts,
        burst_dur=durs,
        burst_size=size[perm],
        burst_kind=kind[perm],
        pk_app=pk_app,
        pk_dev=pk_dev,
        pk_arr=pk_arr,
        pk_size=pk_size,
        pk_burst=inv[pk_burst],
        cost_kinds=w.cost_kinds.copy(),
        deadlines=w.deadlines.copy(),
    )


# ---------------------------------------------------------------------------
# eTrain: the real per-slot loop, vectorized across devices
# ---------------------------------------------------------------------------


def _cost_aggregate(kind: int, deadline: float, u: float, n_pre, s_pre, n_post, s_post):
    """Closed-form Σ φ(u − arrival) from the four running sums."""
    if kind == 0:  # mail: pre-deadline packets cost 0
        return (n_post * u - s_post) / deadline - n_post
    if kind == 1:  # weibo: post-deadline packets saturate at 2
        return (n_pre * u - s_pre) / deadline + 2.0 * n_post
    # cloud
    return (
        (n_pre * u - s_pre) / deadline
        + 3.0 * (n_post * u - s_post) / deadline
        - 2.0 * n_post
    )


def _head_spec_raw(kind: int, deadline: float, d: np.ndarray) -> np.ndarray:
    """φ(d) branch arithmetic without the errstate guard (hot loops
    enter ``np.errstate`` once around the whole loop instead)."""
    if kind == 0:
        return np.where(d <= deadline, 0.0, d / deadline - 1.0)
    if kind == 1:
        return np.where(d <= deadline, d / deadline, 2.0)
    return np.where(d <= deadline, d / deadline, 3.0 * d / deadline - 2.0)


def _head_spec(kind: int, deadline: float, d: np.ndarray) -> np.ndarray:
    """φ(d) with the exact scalar branch arithmetic, vectorized."""
    with np.errstate(invalid="ignore"):
        return _head_spec_raw(kind, deadline, d)


def _kind_groups(kinds: np.ndarray, dls: np.ndarray):
    """Apps grouped by cost kind, with a column deadline per group.

    The closed forms only branch on the kind, so one array expression per
    *kind* covers all its apps at once; the per-app deadline rides along
    as a broadcast column.  Op order per element is identical to the
    per-app calls, so values stay bit-identical.
    """
    groups = []
    for kind in (0, 1, 2):
        apps = np.nonzero(kinds == kind)[0]
        if apps.size:
            groups.append((kind, apps, dls[apps][:, None]))
    return groups


def _theta_costs_numpy(u, kinds, dls, n_pre, s_pre, n_post, s_post, out) -> None:
    """P(t) per device into ``out``: Σ_a closed-form Σφ, app order.

    The per-app accumulation stays sequential (``out += C[a]`` in app
    order) to match the scalar ``instantaneous_cost`` left-fold.
    """
    C = np.empty_like(n_pre)
    for kind, apps, dl in _kind_groups(kinds, dls):
        C[apps] = _cost_aggregate(
            kind, dl, u, n_pre[apps], s_pre[apps], n_post[apps], s_post[apps]
        )
    out[:] = 0.0
    for a in range(kinds.shape[0]):
        out += C[a]


def _theta_costs_loops(u, kinds, dls, n_pre, s_pre, n_post, s_post, out) -> None:
    """Scalar-loop twin of :func:`_theta_costs_numpy` (the numba source).

    Written so each element performs the *same IEEE operations in the
    same order* as the NumPy expressions: numba compiles it without
    fastmath or FMA contraction, so the results are bit-identical —
    ``tests/test_etrain_jit.py`` checks exactly that.
    """
    A, D = n_pre.shape
    for d in range(D):
        acc = 0.0
        for a in range(A):
            dl = dls[a]
            k = kinds[a]
            if k == 0:
                c = (n_post[a, d] * u - s_post[a, d]) / dl - n_post[a, d]
            elif k == 1:
                c = (n_pre[a, d] * u - s_pre[a, d]) / dl + 2.0 * n_post[a, d]
            else:
                c = (
                    (n_pre[a, d] * u - s_pre[a, d]) / dl
                    + 3.0 * (n_post[a, d] * u - s_post[a, d]) / dl
                    - 2.0 * n_post[a, d]
                )
            acc += c
        out[d] = acc


_THETA_IMPL: Optional[Callable] = None


def etrain_jit_requested() -> bool:
    """Whether the ``ETRAIN_JIT`` env flag asks for the numba path."""
    return os.environ.get("ETRAIN_JIT", "").strip().lower() not in (
        "",
        "0",
        "false",
        "off",
    )


def etrain_jit_active() -> bool:
    """True when the resolved Θ-cost step is the numba-compiled one."""
    return _theta_costs_impl() is not _theta_costs_numpy


def _reset_theta_impl() -> None:
    """Drop the cached Θ-cost impl (tests flip ``ETRAIN_JIT`` at runtime)."""
    global _THETA_IMPL
    _THETA_IMPL = None


def _theta_costs_impl() -> Callable:
    """Resolve the Θ-cost step: NumPy, or numba behind ``ETRAIN_JIT``.

    Import-guarded: a missing or broken numba silently falls back to the
    NumPy path, so the flag is safe to set on machines without numba.
    """
    global _THETA_IMPL
    if _THETA_IMPL is None:
        impl = _theta_costs_numpy
        if etrain_jit_requested():
            try:
                from numba import njit

                jitted = njit(cache=False)(_theta_costs_loops)
                # Warm the compile on token shapes so the first chunk
                # doesn't pay it inside a timed phase.
                jitted(
                    0.0,
                    np.zeros(1, np.int64),
                    np.ones(1),
                    np.zeros((1, 1)),
                    np.zeros((1, 1)),
                    np.zeros((1, 1)),
                    np.zeros((1, 1)),
                    np.zeros(1),
                )
                impl = jitted
            except Exception:
                impl = _theta_costs_numpy
        _THETA_IMPL = impl
    return _THETA_IMPL


def _theta_step_for(kinds_arr: np.ndarray, dls_arr: np.ndarray) -> Callable:
    """Bind the resolved Θ-cost impl to one chunk's app axis.

    The NumPy path specializes to a per-app row fold with scalar
    deadlines — elementwise the exact same IEEE ops as
    :func:`_theta_costs_numpy` (which tests keep as the reference), minus
    the per-slot group construction and scratch allocation.  The numba
    path forwards the full signature.
    """
    impl = _theta_costs_impl()
    if impl is _theta_costs_numpy:
        per_app = [
            (int(kinds_arr[a]), float(dls_arr[a]))
            for a in range(kinds_arr.shape[0])
        ]

        def step(u, n_pre, s_pre, n_post, s_post, out):
            out[:] = 0.0
            for a, (kind, dl) in enumerate(per_app):
                out += _cost_aggregate(
                    kind, dl, u, n_pre[a], s_pre[a], n_post[a], s_post[a]
                )

        return step

    def step(u, n_pre, s_pre, n_post, s_post, out):
        impl(u, kinds_arr, dls_arr, n_pre, s_pre, n_post, s_post, out)

    return step


def _simulate_etrain(
    w: FleetWorkload,
    table: ChannelTable,
    pk_app,
    pk_dev,
    pk_arr,
    pk_size,
    base,
    n_slots: int,
    theta,
    warm_gate: bool,
    pm: PowerModel,
    *,
    profiler=None,
    on_release=None,
    defer=None,
) -> FleetChunkRaw:
    clk = time.perf_counter if profiler is not None else None
    t_setup = clk() if clk else 0.0

    A, D = w.n_apps, w.n_devices
    tail_time = pm.tail_time
    horizon = w.horizon

    garr = [w.arrivals[a] for a in range(A)]
    gsize = [w.sizes[a].astype(np.float64) for a in range(A)]
    gdev = [
        np.repeat(np.arange(D, dtype=np.int64), np.diff(w.offsets[a])) for a in range(A)
    ]
    kinds = [int(k) for k in w.cost_kinds]
    dls = [float(d) for d in w.deadlines]
    kinds_arr = np.asarray(kinds, dtype=np.int64)
    dls_arr = np.asarray(dls, dtype=np.float64)
    theta_costs = _theta_step_for(kinds_arr, dls_arr)

    # App-major flat packet streams: one scatter per slot step instead of
    # one per (app, slot).  Concatenating app-major and sorting stably by
    # slot keeps every (app, device) cell's accumulation order identical
    # to the old per-app loops, so the running sums stay bit-for-bit.
    kp = [_transition_slots(garr[a], dls[a]) for a in range(A)]
    n_per_app = np.asarray([garr[a].size for a in range(A)], dtype=np.int64)
    empty_i64 = np.empty(0, np.int64)
    empty_f64 = np.empty(0, np.float64)
    fl_app = np.repeat(np.arange(A, dtype=np.int64), n_per_app)
    fl_idx = (
        np.concatenate([np.arange(n, dtype=np.int64) for n in n_per_app])
        if A
        else empty_i64
    )
    fl_dev = np.concatenate(gdev) if A else empty_i64
    fl_arr = np.concatenate(garr) if A else empty_f64
    fl_size = np.concatenate(gsize) if A else empty_f64
    fl_lin = fl_app * D + fl_dev

    kd_all = (
        np.concatenate([_delivery_slots(garr[a], n_slots) for a in range(A)])
        if A
        else empty_i64
    )
    do = np.argsort(kd_all, kind="stable")
    dl_lin, dl_arr, dl_size = fl_lin[do], fl_arr[do], fl_size[do]
    dbnd = np.searchsorted(kd_all[do], np.arange(n_slots + 1))
    has_del = dbnd[1:] > dbnd[:-1]

    kc_all = (
        np.concatenate([np.minimum(kp[a], n_slots + 2) for a in range(A)])
        if A
        else empty_i64
    )
    to = np.argsort(kc_all, kind="stable")
    tr_lin, tr_arr, tr_idx = fl_lin[to], fl_arr[to], fl_idx[to]
    tbnd = np.searchsorted(kc_all[to], np.arange(n_slots + 3))
    t_any = tbnd[1:] > tbnd[:-1]
    has_tr = t_any[:n_slots] | t_any[1 : n_slots + 1]

    # head-arrival gather tables for the vectorized greedy step
    abase = np.concatenate(([0], np.cumsum(n_per_app)))[:-1]
    aclip = np.maximum(n_per_app - 1, 0)
    n_total = int(n_per_app.sum()) if A else 0
    abase_col = abase[:, None]
    aclip_col = aclip[:, None]
    gi_max = max(n_total - 1, 0)
    G_buf = np.empty((A, D), dtype=np.float64)
    dev_ar = np.arange(D, dtype=np.int64)

    # heartbeat table bucketed by slot (within a slot: by device, rank)
    h_time, h_dev, h_train, h_slot, h_rank = _heartbeat_table(w, n_slots)
    horder = np.lexsort((h_rank, h_dev, h_slot))
    h_time, h_dev, h_train, h_slot, h_rank = (
        h_time[horder],
        h_dev[horder],
        h_train[horder],
        h_slot[horder],
        h_rank[horder],
    )
    hbnd = np.searchsorted(h_slot, np.arange(n_slots + 1))
    h_sizes = w.train_sizes.astype(np.float64)
    max_rank = int(h_rank.max()) if h_rank.size else 0

    # state
    zeros = lambda dt: np.zeros((A, D), dtype=dt)  # noqa: E731
    in_pre_n, in_pre_s = zeros(np.float64), zeros(np.float64)
    in_post_n, in_post_s = zeros(np.float64), zeros(np.float64)
    sp_pre_n, sp_pre_s = zeros(np.float64), zeros(np.float64)
    sp_post_n, sp_post_s = zeros(np.float64), zeros(np.float64)
    wait_bytes = zeros(np.float64)
    if A:
        head = np.stack([w.offsets[a][:-1] for a in range(A)]).astype(np.int64)
    else:
        head = np.zeros((0, D), dtype=np.int64)
    tail = head.copy()
    # flat views shared with the app-major scatter streams
    head_f, tail_f = head.reshape(-1), tail.reshape(-1)
    in_pre_n_f, in_pre_s_f = in_pre_n.reshape(-1), in_pre_s.reshape(-1)
    in_post_n_f, in_post_s_f = in_post_n.reshape(-1), in_post_s.reshape(-1)
    sp_pre_n_f, sp_pre_s_f = sp_pre_n.reshape(-1), sp_pre_s.reshape(-1)
    sp_post_n_f, sp_post_s_f = sp_post_n.reshape(-1), sp_post_s.reshape(-1)
    wait_bytes_f = wait_bytes.reshape(-1)
    held_bytes = np.zeros(D, dtype=np.float64)
    held_cnt = np.zeros(D, dtype=np.int64)
    # channel-aware deferral buffers (``defer=(release_ok, max_defer)``):
    # theta releases park here until the slot's shared channel quality
    # clears the gate or patience runs out; heartbeat slots always drain
    # them onto the carrier, exactly like the scalar strategy's
    # ``_deferred`` list.  ``def_start`` is the slot time the buffer last
    # turned non-empty (the scalar ``_defer_started``).
    if defer is not None:
        release_ok, max_defer = defer
        def_bytes = np.zeros(D, dtype=np.float64)
        def_cnt = np.zeros(D, dtype=np.int64)
        def_start = np.zeros(D, dtype=np.float64)
        def_flats: List[List[int]] = [[] for _ in range(D)]
    busy = np.zeros(D, dtype=np.float64)
    has_rec = np.zeros(D, dtype=bool)
    P = np.zeros(D, dtype=np.float64)

    # outputs accumulated per slot (geometric buffers: see _GrowBuffer)
    b_dev = _GrowBuffer(np.int64)
    b_start = _GrowBuffer(np.float64)
    b_dur = _GrowBuffer(np.float64)
    b_size = _GrowBuffer(np.float64)
    b_kind = _GrowBuffer(np.int8)
    b_count = 0
    dd_dev: List[np.ndarray] = []
    dd_slot: List[np.ndarray] = []
    dd_row: List[np.ndarray] = []
    dd_lo: List[List[np.ndarray]] = [[] for _ in range(A)]
    dd_hi: List[List[np.ndarray]] = [[] for _ in range(A)]
    pw_flat: List[np.ndarray] = []
    pw_row: List[np.ndarray] = []
    pc_flat: List[np.ndarray] = []
    pc_dev: List[np.ndarray] = []
    pc_slot: List[np.ndarray] = []

    def emit(devs, reqs, sizes, kind):
        nonlocal b_count
        starts = np.maximum(reqs, busy[devs])
        durs = table.durations(starts, sizes)
        busy[devs] = starts + durs
        has_rec[devs] = True
        rows = b_count + np.arange(devs.size, dtype=np.int64)
        b_count += devs.size
        b_dev.extend(devs)
        b_start.extend(starts)
        b_dur.extend(durs)
        b_size.extend(sizes)
        b_kind.extend(np.full(devs.size, kind, dtype=np.int8))
        return rows

    agg_sets = (
        in_pre_n,
        in_pre_s,
        in_post_n,
        in_post_s,
        sp_pre_n,
        sp_pre_s,
        sp_post_n,
        sp_post_s,
    )

    if clk:
        profiler.add("etrain.setup", clk() - t_setup)
        acc_q = acc_d = acc_h = 0.0

    for i in range(n_slots):
        t = float(i)
        if clk:
            ts = clk()
        rel_dev: List[np.ndarray] = []
        rel_delay: List[np.ndarray] = []
        hbq = hb_lo = hb_hi = None
        # 1. deliveries (arrival <= t): enter both aggregate sets as pre
        if has_del[i]:
            sl = slice(dbnd[i], dbnd[i + 1])
            lin = dl_lin[sl]
            ar = dl_arr[sl]
            np.add.at(in_pre_n_f, lin, 1.0)
            np.add.at(in_pre_s_f, lin, ar)
            np.add.at(sp_pre_n_f, lin, 1.0)
            np.add.at(sp_pre_s_f, lin, ar)
            np.add.at(wait_bytes_f, lin, dl_size[sl])
            np.add.at(tail_f, lin, 1)
        # 2. pre->post transitions for still-queued packets
        if has_tr[i]:
            for bucket, (npre_f, spre_f, npost_f, spost_f) in (
                (i, (in_pre_n_f, in_pre_s_f, in_post_n_f, in_post_s_f)),
                (i + 1, (sp_pre_n_f, sp_pre_s_f, sp_post_n_f, sp_post_s_f)),
            ):
                if tbnd[bucket + 1] > tbnd[bucket]:
                    sl = slice(tbnd[bucket], tbnd[bucket + 1])
                    lin = tr_lin[sl]
                    act = tr_idx[sl] >= head_f[lin]
                    if act.any():
                        lin = lin[act]
                        ar = tr_arr[sl][act]
                        np.add.at(npre_f, lin, -1.0)
                        np.add.at(spre_f, lin, -ar)
                        np.add.at(npost_f, lin, 1.0)
                        np.add.at(spost_f, lin, ar)
        # 3. which devices see a heartbeat this slot
        hsl = slice(hbnd[i], hbnd[i + 1])
        hb_any = hbnd[i + 1] > hbnd[i]
        if hb_any:
            sl_rank = h_rank[hsl]
            hb_devs = h_dev[hsl][sl_rank == 0]  # unique, ascending
        if clk:
            acc_q += clk() - ts
            ts = clk()
        # 4. theta check on non-heartbeat devices
        theta_costs(t, in_pre_n, in_pre_s, in_post_n, in_post_s, P)
        fire = P >= theta
        if hb_any:
            fire[hb_devs] = False
        fd = np.nonzero(fire)[0]
        # 5. single greedy pick per fired device: one masked reduction
        # over an (apps x fired) gain matrix instead of per-device Python
        if fd.size:
            u = t + 1.0
            h = head[:, fd]  # (A, F)
            has = h < tail[:, fd]
            G = G_buf[:, : fd.size]
            G.fill(-np.inf)
            if has.any():
                gi = abase_col + np.minimum(h, aclip_col)
                ar_h = fl_arr[np.minimum(gi, gi_max)]
                with np.errstate(invalid="ignore"):
                    for a in range(A):
                        kind, dl = kinds[a], dls[a]
                        pb = _cost_aggregate(
                            kind,
                            dl,
                            u,
                            sp_pre_n[a, fd],
                            sp_pre_s[a, fd],
                            sp_post_n[a, fd],
                            sp_post_s[a, fd],
                        )
                        s = _head_spec_raw(kind, dl, u - ar_h[a])
                        G[a] = np.where(has[a], pb * s - 0.5 * s * s, -np.inf)
            best = np.argmax(G, axis=0)  # first max wins, like the greedy scan
            gmax = G[best, dev_ar[: fd.size]]
            picked = gmax > 0.0
            fd = fd[picked]
            best = best[picked]
            warm_devs: List[np.ndarray] = []
            warm_sizes: List[np.ndarray] = []
            warm_flats: List[np.ndarray] = []
            for a in range(A):
                da = fd[best == a]
                if not da.size:
                    continue
                g = head[a][da]
                ar = garr[a][g]
                sz = gsize[a][g]
                if on_release is not None:
                    rel_dev.append(da)
                    rel_delay.append(np.maximum(0.0, t - ar))
                post_i = kp[a][g] <= i
                post_s = kp[a][g] <= i + 1
                for post, (npre, spre, npost, spost) in (
                    (post_i, (in_pre_n[a], in_pre_s[a], in_post_n[a], in_post_s[a])),
                    (post_s, (sp_pre_n[a], sp_pre_s[a], sp_post_n[a], sp_post_s[a])),
                ):
                    dp, ap = da[~post], ar[~post]
                    npre[dp] -= 1.0
                    spre[dp] -= ap
                    dq, aq = da[post], ar[post]
                    npost[dq] -= 1.0
                    spost[dq] -= aq
                wait_bytes[a][da] -= sz
                head[a][da] += 1
                if defer is not None:
                    # New releases join the buffer before this slot's
                    # quality check (step 5b), like the scalar decide.
                    fresh = def_cnt[da] == 0
                    def_start[da[fresh]] = t
                    def_bytes[da] += sz
                    def_cnt[da] += 1
                    flat = base[a] + g
                    for j, d in enumerate(da):
                        def_flats[d].append(int(flat[j]))
                    continue
                warm = (
                    has_rec[da] & (t < busy[da] + tail_time)
                    if warm_gate
                    else np.ones(da.size, dtype=bool)
                )
                if not warm.all():
                    cold = ~warm
                    cd = da[cold]
                    held_bytes[cd] += sz[cold]
                    held_cnt[cd] += 1
                    pc_flat.append(base[a] + g[cold])
                    pc_dev.append(cd)
                    pc_slot.append(np.full(cd.size, i, dtype=np.int64))
                if warm.any():
                    warm_devs.append(da[warm])
                    warm_sizes.append(sz[warm])
                    warm_flats.append(base[a] + g[warm])
            if warm_devs:
                devs = np.concatenate(warm_devs)
                rows = emit(
                    devs,
                    np.full(devs.size, t),
                    np.concatenate(warm_sizes),
                    KIND_DATA,
                )
                pw_flat.append(np.concatenate(warm_flats))
                pw_row.append(rows)
        # 5b. channel-aware release: drain a device's deferred buffer when
        # the slot's quality clears the gate or patience has run out.
        # Heartbeat devices skip this — their buffer rides the carrier in
        # step 6, matching the scalar heartbeat branch.
        if defer is not None:
            rel = def_cnt > 0
            if hb_any:
                rel[hb_devs] = False
            if not release_ok[i]:
                rel &= (t - def_start) >= max_defer
            rd = np.nonzero(rel)[0]
            if rd.size:
                warm = (
                    has_rec[rd] & (t < busy[rd] + tail_time)
                    if warm_gate
                    else np.ones(rd.size, dtype=bool)
                )
                wd, cd = rd[warm], rd[~warm]
                if wd.size:
                    rows = emit(wd, np.full(wd.size, t), def_bytes[wd], KIND_DATA)
                    pw_flat.append(
                        np.asarray(
                            [f for d in wd for f in def_flats[d]], dtype=np.int64
                        )
                    )
                    pw_row.append(np.repeat(rows, def_cnt[wd]))
                if cd.size:
                    # Cold release: park with the held bytes; the packets
                    # ride the device's next heartbeat (or final flush).
                    held_bytes[cd] += def_bytes[cd]
                    held_cnt[cd] += def_cnt[cd]
                    pc_flat.append(
                        np.asarray(
                            [f for d in cd for f in def_flats[d]], dtype=np.int64
                        )
                    )
                    pc_dev.append(np.repeat(cd, def_cnt[cd]))
                    pc_slot.append(
                        np.full(int(def_cnt[cd].sum()), i, dtype=np.int64)
                    )
                def_bytes[rd] = 0.0
                def_cnt[rd] = 0
                for d in rd:
                    def_flats[d] = []
        if clk:
            acc_d += clk() - ts
            ts = clk()
        # 6. heartbeat slots: full drain rides the carrier, rest go bare
        if hb_any:
            sl_dev = h_dev[hsl]
            sl_time = h_time[hsl]
            sl_train = h_train[hsl]
            car = sl_rank == 0
            q_bytes = wait_bytes[:, hb_devs].sum(axis=0)
            q_cnt = (tail[:, hb_devs] - head[:, hb_devs]).sum(axis=0)
            payload = held_bytes[hb_devs] + q_bytes
            pay_cnt = held_cnt[hb_devs] + q_cnt
            if defer is not None:
                payload = payload + def_bytes[hb_devs]
                pay_cnt = pay_cnt + def_cnt[hb_devs]
            if on_release is not None:
                # Queue bounds frozen before the drain resets them; only
                # devices whose scalar decide would release anything.
                hbq = hb_devs[q_cnt > 0]
                hb_lo = [head[a][hbq].copy() for a in range(A)]
                hb_hi = [tail[a][hbq].copy() for a in range(A)]
            c_size = h_sizes[sl_train[car]] + payload
            rows = emit(hb_devs, sl_time[car], c_size, KIND_HEARTBEAT)
            # fix kinds for carriers that actually carried payload
            b_kind.view()[rows[pay_cnt > 0]] = KIND_PIGGYBACK
            dd_dev.append(hb_devs)
            dd_slot.append(np.full(hb_devs.size, i, dtype=np.int64))
            dd_row.append(rows)
            for a in range(A):
                dd_lo[a].append(head[a][hb_devs].copy())
                dd_hi[a].append(tail[a][hb_devs].copy())
            head[:, hb_devs] = tail[:, hb_devs]
            for arrs in agg_sets:
                arrs[:, hb_devs] = 0.0
            wait_bytes[:, hb_devs] = 0.0
            held_bytes[hb_devs] = 0.0
            held_cnt[hb_devs] = 0
            if defer is not None:
                hd = def_cnt[hb_devs] > 0
                if hd.any():
                    hdev = hb_devs[hd]
                    pw_flat.append(
                        np.asarray(
                            [f for d in hdev for f in def_flats[d]],
                            dtype=np.int64,
                        )
                    )
                    pw_row.append(np.repeat(rows[hd], def_cnt[hdev]))
                    def_bytes[hdev] = 0.0
                    def_cnt[hdev] = 0
                    for d in hdev:
                        def_flats[d] = []
            for r in range(1, max_rank + 1):
                m = sl_rank == r
                if not m.any():
                    continue
                emit(sl_dev[m], sl_time[m], h_sizes[sl_train[m]], KIND_HEARTBEAT)
        # 7. controller hook: this slot's selection-time releases, in the
        # scalar decide order (single theta picks; heartbeat drains with
        # pre-reset queue bounds so the callback can replay pick order)
        if on_release is not None and (
            rel_dev or (hbq is not None and hbq.size)
        ):
            on_release(
                i,
                np.concatenate(rel_dev) if rel_dev else np.empty(0, np.int64),
                np.concatenate(rel_delay) if rel_delay else np.empty(0, np.float64),
                hbq if hbq is not None else np.empty(0, np.int64),
                hb_lo,
                hb_hi,
            )
        if clk:
            acc_h += clk() - ts

    if clk:
        profiler.add("etrain.queue_updates", acc_q, calls=n_slots)
        profiler.add("etrain.decision", acc_d, calls=n_slots)
        profiler.add("etrain.heartbeats", acc_h, calls=n_slots)
        t_fin = clk()

    # end-of-horizon flush: held + still-queued + never-delivered packets
    # (+ still-deferred ones; their pk_burst stays -1 and resolves via
    # the flush_row fallback below, like any other leftover packet)
    rem_cnt = held_cnt.astype(np.int64).copy()
    rem_bytes = held_bytes.copy()
    if defer is not None:
        rem_cnt += def_cnt
        rem_bytes += def_bytes
    byte_prefix = []
    for a in range(A):
        bp = np.concatenate(([0.0], np.cumsum(gsize[a])))
        byte_prefix.append(bp)
        end = w.offsets[a][1:]
        rem_cnt += end - head[a]
        rem_bytes += bp[end] - bp[head[a]]
    fdevs = np.nonzero(rem_cnt > 0)[0]
    flush_row = np.full(D, -1, dtype=np.int64)
    if fdevs.size:
        rows = emit(
            fdevs, np.full(fdevs.size, horizon), rem_bytes[fdevs], KIND_DATA
        )
        flush_row[fdevs] = rows

    # packet -> burst resolution
    n_pk = pk_arr.size
    pk_burst = np.full(n_pk, -1, dtype=np.int64)
    if dd_dev:
        drow = np.concatenate(dd_row)
        for a in range(A):
            lo = np.concatenate(dd_lo[a])
            hi = np.concatenate(dd_hi[a])
            idx, lens = _csr_expand(lo, hi)
            pk_burst[base[a] + idx] = np.repeat(drow, lens)
    if pw_flat:
        pk_burst[np.concatenate(pw_flat)] = np.concatenate(pw_row)
    if pc_flat:
        cflat = np.concatenate(pc_flat)
        cdev = np.concatenate(pc_dev)
        cslot = np.concatenate(pc_slot)
        if dd_dev:
            ddev = np.concatenate(dd_dev)
            dslot = np.concatenate(dd_slot)
            drow = np.concatenate(dd_row)
            key_mod = n_slots + 2
            key = ddev * key_mod + dslot
            kord = np.argsort(key)
            key_s = key[kord]
            drow_s = drow[kord]
            q = cdev * key_mod + cslot + 1
            pos = np.searchsorted(key_s, q)
            pos_c = np.minimum(pos, key_s.size - 1)
            hit = (pos < key_s.size) & (key_s[pos_c] // key_mod == cdev)
            res = np.where(hit, drow_s[pos_c], flush_row[cdev])
        else:
            res = flush_row[cdev]
        pk_burst[cflat] = res
    left = pk_burst < 0
    if left.any():
        pk_burst[left] = flush_row[pk_dev[left]]
    if n_pk and pk_burst.min() < 0:
        raise AssertionError("unresolved packet -> burst mapping")

    if clk:
        profiler.add("etrain.finalize", clk() - t_fin)

    return FleetChunkRaw(
        n_devices=D,
        horizon=horizon,
        n_slots=n_slots,
        burst_dev=b_dev.view(),
        burst_start=b_start.view(),
        burst_dur=b_dur.view(),
        burst_size=b_size.view(),
        burst_kind=b_kind.view(),
        pk_app=pk_app,
        pk_dev=pk_dev,
        pk_arr=pk_arr,
        pk_size=pk_size,
        pk_burst=pk_burst,
        cost_kinds=w.cost_kinds.copy(),
        deadlines=w.deadlines.copy(),
    )


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def simulate_fleet_chunk(
    workload: FleetWorkload,
    table: ChannelTable,
    *,
    strategy: str = "etrain",
    params: Optional[Dict] = None,
    power_model: PowerModel = GALAXY_S4_3G,
    recorder=None,
    profiler=None,
) -> FleetChunkRaw:
    """Simulate one chunk of devices under a vectorized strategy.

    The strategy name is resolved through the kernel registry
    (:mod:`repro.sim.fleet.registry`); ``params`` mirrors the scalar
    strategy builders' keyword arguments: ``etrain`` takes ``theta``
    (default 0.2) and ``warm_gate`` (default True); ``periodic`` and
    ``fixed_batch`` take ``period`` (default 60.0); ``tailender`` takes
    ``slack`` (default 0.0); ``peres`` takes ``omega``/``v_init`` plus
    the estimator knobs; ``etime`` takes ``v`` plus the estimator
    knobs; ``adaptive`` takes ``target_delay``/``theta_init``/
    ``window``/``warm_gate``; ``immediate`` takes none.

    ``recorder`` optionally receives the chunk's event trace (one
    ``fleet_chunk`` summary plus a ``fleet_burst`` event per burst row)
    after simulation — see :mod:`repro.obs.tracer`.  ``profiler``
    optionally accumulates kernel sub-phase timings
    (:class:`repro.obs.profiling.PhaseProfiler`).  The simulation
    itself is identical with or without either.
    """
    raw = _dispatch_fleet_chunk(workload, table, strategy, params, power_model, profiler)
    if recorder is not None:
        from repro.obs.tracer import emit_fleet_chunk_trace

        emit_fleet_chunk_trace(recorder, raw)
    from repro.obs.metrics import current_registry

    registry = current_registry()
    if registry is not None:
        registry.counter("fleet.chunks").inc()
        registry.counter("fleet.devices").inc(workload.n_devices)
        registry.counter("fleet.bursts").inc(int(raw.burst_start.size))
        registry.counter("fleet.packets").inc(int(raw.pk_arr.size))
    return raw


def _dispatch_fleet_chunk(
    workload: FleetWorkload,
    table: ChannelTable,
    strategy: str,
    params: Optional[Dict],
    power_model: PowerModel,
    profiler=None,
) -> FleetChunkRaw:
    from repro.sim.fleet import registry

    try:
        kernel = registry.get_kernel(strategy)
    except KeyError:
        raise ValueError(
            f"no vectorized path for strategy {strategy!r}; "
            f"supported: {registry.vector_strategies()} (use the scalar fallback)"
        ) from None
    if power_model.promotion_delay != 0.0 or power_model.promotion_energy != 0.0:
        raise ValueError(
            "fleet path models promotion-free radios only "
            "(promotion_delay == promotion_energy == 0)"
        )
    return kernel(workload, table, dict(params or {}), power_model, profiler=profiler)


# ---------------------------------------------------------------------------
# the engine-owned kernels (see repro.sim.fleet.registry for the others)
# ---------------------------------------------------------------------------


def fleet_slot_count(horizon: float) -> int:
    """Slot count of the fleet grid (1 s slots, the scalar default)."""
    return int(math.ceil(horizon / 1.0))


def _etrain_kernel(
    workload: FleetWorkload, table, params: Dict, power_model, *, profiler=None
) -> FleetChunkRaw:
    theta = float(params.pop("theta", 0.2))
    warm_gate = bool(params.pop("warm_gate", True))
    if params.pop("k", None) is not None:
        raise ValueError("fleet etrain supports only k=None (full drain)")
    if float(params.pop("slot", 1.0)) != 1.0:
        raise ValueError("fleet etrain supports only slot=1.0")
    _reject_extra(params)
    if np.any(workload.deadlines < 2.0):
        raise ValueError("fleet etrain requires all deadlines >= 2 s")
    n_slots = fleet_slot_count(workload.horizon)
    pk_app, pk_dev, pk_arr, pk_size, base = _flat_packets(workload)
    return _simulate_etrain(
        workload,
        table,
        pk_app,
        pk_dev,
        pk_arr,
        pk_size,
        base,
        n_slots,
        theta,
        warm_gate,
        power_model,
        profiler=profiler,
    )


def _immediate_kernel(
    workload: FleetWorkload, table, params: Dict, power_model, *, profiler=None
) -> FleetChunkRaw:
    _reject_extra(params)
    n_slots = fleet_slot_count(workload.horizon)
    pk_app, pk_dev, pk_arr, pk_size, _ = _flat_packets(workload)
    release = _delivery_slots(pk_arr, n_slots)
    return _build_loopfree(
        workload, table, release, pk_app, pk_dev, pk_arr, pk_size, n_slots
    )


def _periodic_kernel(
    workload: FleetWorkload, table, params: Dict, power_model, *, profiler=None
) -> FleetChunkRaw:
    period = float(params.pop("period", 60.0))
    _reject_extra(params)
    n_slots = fleet_slot_count(workload.horizon)
    pk_app, pk_dev, pk_arr, pk_size, _ = _flat_packets(workload)
    release = _periodic_release_slots(pk_arr, n_slots, period)
    return _build_loopfree(
        workload, table, release, pk_app, pk_dev, pk_arr, pk_size, n_slots
    )


def _periodic_release_slots(pk_arr, n_slots: int, period: float) -> np.ndarray:
    """Release slot per packet under the shared periodic fire clock."""
    fires = _periodic_fires(n_slots, period)
    kd = _delivery_slots(pk_arr, n_slots)
    pos = np.searchsorted(fires, kd)
    return np.where(
        pos < fires.size, fires[np.minimum(pos, max(fires.size - 1, 0))], n_slots
    )


def _tailender_kernel(
    workload: FleetWorkload, table, params: Dict, power_model, *, profiler=None
) -> FleetChunkRaw:
    slack = float(params.pop("slack", 0.0))
    _reject_extra(params)
    n_slots = fleet_slot_count(workload.horizon)
    pk_app, pk_dev, pk_arr, pk_size, _ = _flat_packets(workload)
    release = _release_slots_tailender(
        workload, pk_app, pk_dev, pk_arr, n_slots, slack
    )
    return _build_loopfree(
        workload, table, release, pk_app, pk_dev, pk_arr, pk_size, n_slots
    )


def _reject_extra(params: Dict) -> None:
    if params:
        raise ValueError(f"unsupported fleet strategy params: {sorted(params)}")
