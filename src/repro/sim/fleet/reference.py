"""Per-device scalar replay of a fleet workload.

Two jobs:

* **fallback** — configurations without a vectorized path (e.g. an
  eTrain k-limited drain) still run at fleet scale, one scalar
  :class:`repro.sim.engine.Simulation` per device, producing the same
  :class:`~repro.sim.fleet.aggregate.FleetChunkSummary` shape;
* **ground truth** — the equivalence harness replays the *same*
  synthesized arrays through the scalar engine and compares aggregates
  against :func:`repro.sim.fleet.engine.simulate_fleet_chunk`, so the
  NumPy path is tested against the reference loop, not against itself.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.bandwidth.models import BandwidthModel
from repro.core.cost_functions import CloudCost, MailCost, WeiboCost
from repro.core.packet import Packet, reset_packet_ids
from repro.core.profiles import CargoAppProfile, TrainAppProfile
from repro.heartbeat.generators import FixedCycleGenerator
from repro.radio.power_model import GALAXY_S4_3G, PowerModel
from repro.sim.fleet.aggregate import (
    DELAY_BIN_S,
    DELAY_BINS,
    ENERGY_BIN_J,
    ENERGY_BINS,
    FleetChunkSummary,
    histogram_counts,
)
from repro.sim.fleet.workload import FleetWorkload

__all__ = [
    "reference_profiles",
    "simulate_reference_chunk",
    "summarize_scalar_result",
]

_COST_CLASSES = {0: MailCost, 1: WeiboCost, 2: CloudCost}


def reference_profiles(workload: FleetWorkload) -> List[CargoAppProfile]:
    """Rebuild cargo profiles from what the workload arrays record.

    Cost shape and deadline round-trip exactly; size/interarrival means
    do not (the arrays already realize them), so strategies that read
    those fields at decision time (PerES) should be given the original
    profile list instead.
    """
    out = []
    for a in range(workload.n_apps):
        deadline = float(workload.deadlines[a])
        cost = _COST_CLASSES[int(workload.cost_kinds[a])](deadline)
        out.append(
            CargoAppProfile(
                app_id=workload.app_ids[a],
                cost_function=cost,
                mean_size_bytes=1000,
                min_size_bytes=1,
                deadline=deadline,
                mean_interarrival=60.0,
            )
        )
    return out


def _device_scenario(
    workload: FleetWorkload,
    device: int,
    profiles: Sequence[CargoAppProfile],
    bandwidth: BandwidthModel,
    power_model: PowerModel,
):
    from repro.sim.runner import Scenario

    reset_packet_ids()
    packets: List[Tuple[float, str, int, float]] = []
    for a in range(workload.n_apps):
        arr, sizes = workload.device_slice(a, device)
        app_id = workload.app_ids[a]
        deadline = float(workload.deadlines[a])
        for t, s in zip(arr, sizes):
            packets.append((float(t), app_id, int(s), deadline))
    packets.sort(key=lambda p: (p[0], p[1]))
    packet_objs = [
        Packet(app_id=app, arrival_time=t, size_bytes=s, deadline=d)
        for t, app, s, d in packets
    ]
    gens = [
        FixedCycleGenerator(
            TrainAppProfile(
                app_id=workload.train_ids[t],
                cycle=float(workload.train_cycles[t]),
                heartbeat_size_bytes=int(workload.train_sizes[t]),
                first_heartbeat=float(workload.train_phases[t, device]),
            )
        )
        for t in range(workload.n_trains)
    ]
    return Scenario(
        profiles=list(profiles),
        train_generators=gens,
        packets=packet_objs,
        bandwidth=bandwidth,
        power_model=power_model,
        horizon=workload.horizon,
    )


def summarize_scalar_result(result, profiles: Sequence[CargoAppProfile]) -> FleetChunkSummary:
    """Reduce one device's SimulationResult to a one-device summary."""
    costs = {p.app_id: p.cost_function for p in profiles}
    piggy_ids = set()
    for r in result.records:
        if r.kind == "piggyback":
            piggy_ids.update(r.packet_ids)
    delays = []
    delay_cost = 0.0
    violations = 0
    piggy_hits = 0
    for p in result.packets:
        if not p.is_scheduled:
            continue
        d = p.delay
        delays.append(d)
        delay_cost += costs[p.app_id](d)
        if p.violates_deadline():
            violations += 1
        if p.packet_id in piggy_ids:
            piggy_hits += 1
    hb_bursts = sum(1 for r in result.records if r.kind in ("heartbeat", "piggyback"))
    delays_arr = np.asarray(delays, dtype=np.float64)
    total = result.energy.total
    return FleetChunkSummary(
        devices=1,
        packets=len(delays),
        bursts=len(result.records),
        heartbeats=hb_bursts,
        piggyback_hits=piggy_hits,
        delay_sum=float(delays_arr.sum()),
        delay_cost_sum=delay_cost,
        violations=violations,
        energy_total_j=total,
        energy_tail_j=result.energy.tail,
        energy_tx_j=result.energy.transmission,
        energy_hist=histogram_counts(
            np.asarray([total]), ENERGY_BIN_J, ENERGY_BINS
        ),
        delay_hist=histogram_counts(delays_arr, DELAY_BIN_S, DELAY_BINS),
    )


def reference_device_summaries(
    workload: FleetWorkload,
    bandwidth: BandwidthModel,
    *,
    strategy: str = "etrain",
    params: Optional[Dict] = None,
    power_model: PowerModel = GALAXY_S4_3G,
    profiles: Optional[Sequence[CargoAppProfile]] = None,
) -> Iterator[FleetChunkSummary]:
    """Yield one summary per device, scalar-engine semantics throughout."""
    from repro.sim.parallel.specs import STRATEGY_BUILDERS
    from repro.sim.runner import run_strategy

    if strategy not in STRATEGY_BUILDERS:
        raise KeyError(
            f"unknown strategy {strategy!r}; known: {sorted(STRATEGY_BUILDERS)}"
        )
    if profiles is None:
        profiles = reference_profiles(workload)
    params = dict(params or {})
    for d in range(workload.n_devices):
        scenario = _device_scenario(workload, d, profiles, bandwidth, power_model)
        strat = STRATEGY_BUILDERS[strategy](scenario, **params)
        result = run_strategy(strat, scenario)
        yield summarize_scalar_result(result, profiles)


def simulate_reference_chunk(
    workload: FleetWorkload,
    bandwidth: BandwidthModel,
    *,
    strategy: str = "etrain",
    params: Optional[Dict] = None,
    power_model: PowerModel = GALAXY_S4_3G,
    profiles: Optional[Sequence[CargoAppProfile]] = None,
) -> FleetChunkSummary:
    """Simulate a chunk device-by-device with the scalar engine."""
    out = FleetChunkSummary()
    for s in reference_device_summaries(
        workload,
        bandwidth,
        strategy=strategy,
        params=params,
        power_model=power_model,
        profiles=profiles,
    ):
        out = out.merge(s)
    return out
