"""Fleet orchestration: chunks through the experiment executor.

``run_fleet`` is the one call the CLI and examples use: it publishes the
channel table to shared memory once, fans the fleet's chunks across the
:class:`~repro.sim.parallel.executor.ExperimentExecutor` (serial
in-process or a worker pool — same code path either way), merges the
streamed chunk summaries, and reports throughput plus peak RSS.

Memory stays O(chunk_size): no structure here grows with the fleet's
device count except the list of fixed-size chunk summaries (O(chunks)).
``docs/performance.md`` records measured RSS for a 1M-device run.
"""

from __future__ import annotations

import contextlib
import resource
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.obs.events import TRACE_SCHEMA_VERSION, EventType
from repro.obs.profiling import PhaseProfiler
from repro.sim.fleet.aggregate import FleetChunkSummary
from repro.sim.fleet.channel import ChannelTable, SharedChannel
from repro.sim.fleet.spec import FleetSpec

__all__ = ["FleetRunResult", "run_fleet", "peak_rss_bytes"]


def peak_rss_bytes(include_children: bool = True) -> int:
    """Peak resident set size of this process (and reaped children), bytes.

    ``ru_maxrss`` is kilobytes on Linux; children matter because pool
    workers do the actual simulation in parallel runs.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if include_children:
        peak = max(peak, resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss)
    return int(peak) * 1024


@dataclass
class FleetRunResult:
    """Merged outcome of one fleet run."""

    spec: FleetSpec
    summary: FleetChunkSummary
    wall_time: float
    chunks: int
    cached_chunks: int
    vectorized: bool
    peak_rss: int  # bytes, publisher process + reaped workers
    #: Merged per-worker metrics (serialised MetricsRegistry dict).
    metrics: Dict = field(default_factory=dict)
    #: Per-phase wall/CPU timings of the orchestration pipeline.
    phases: Dict = field(default_factory=dict)
    #: The executor's :class:`~repro.sim.parallel.executor.ExecutorStats`
    #: (retries, worker failures, timeouts, ...); None for old callers.
    executor_stats: Optional[object] = None

    @property
    def devices_per_sec(self) -> float:
        return self.spec.devices / self.wall_time if self.wall_time > 0 else 0.0

    def describe(self) -> str:
        mode = "vectorized" if self.vectorized else "scalar fallback"
        return (
            f"{self.spec.devices} devices ({self.spec.strategy}, {mode}) in "
            f"{self.wall_time:.2f}s — {self.devices_per_sec:,.0f} devices/s, "
            f"{self.chunks} chunk(s), peak RSS {self.peak_rss / 2**20:.0f} MiB"
        )


def run_fleet(
    spec: FleetSpec,
    *,
    workers: Optional[int] = None,
    cache_dir=None,
    progress: Optional[Callable[[str], None]] = None,
    share_channel: Optional[bool] = None,
    recorder=None,
    retry=None,
    faults=None,
    journal=None,
    make_executor: Optional[Callable] = None,
) -> FleetRunResult:
    """Run a fleet spec end to end and merge its chunk summaries.

    ``share_channel`` defaults to "when vectorized": the prefix table is
    published to ``multiprocessing.shared_memory`` once and every chunk
    (in-process or pool worker) attaches instead of re-deriving it.  The
    publisher's context manager closes *and* unlinks even when the run
    dies mid-flight; workers only close.

    ``recorder`` optionally receives one ``fleet_chunk`` event per chunk
    summary plus a closing ``fleet_run`` event.  (Chunk specs cross
    process boundaries, so per-burst tracing is only available through
    the direct ``simulate_fleet_chunk(..., recorder=...)`` API.)

    ``retry`` / ``faults`` / ``journal`` flow straight into
    :class:`~repro.sim.parallel.executor.ExperimentExecutor`: retry
    policy for crashed/hung pool workers, a deterministic
    :class:`~repro.faults.FaultPlan` to inject failures, and a
    :class:`~repro.sim.parallel.journal.RunJournal` for
    ``fleet --resume`` bookkeeping.

    ``make_executor`` swaps the placement layer: a factory called with
    the executor keyword arguments above (minus ``workers``) that
    returns an :class:`ExperimentExecutor`-compatible instance — the
    hook ``--workers-remote`` uses to route chunks through the
    distributed :class:`~repro.sim.dist.DistExecutor`.  Chunk content
    hashes exclude the shared-channel handle, so cache, journal and
    results are identical whichever placement runs them.
    """
    from repro.sim.parallel.executor import ExperimentExecutor

    vectorized = spec.vectorized
    if share_channel is None:
        share_channel = vectorized
    profiler = PhaseProfiler()
    started = time.perf_counter()
    with contextlib.ExitStack() as stack:
        with profiler.phase("channel_publish"):
            if share_channel and vectorized:
                table = ChannelTable.from_model(spec.bandwidth_model(), spec.horizon)
                shared = stack.enter_context(SharedChannel.publish(table))
                chunks = spec.chunk_specs(channel=shared.handle)
            else:
                chunks = spec.chunk_specs()
        common = dict(
            cache_dir=cache_dir,
            progress=progress,
            retry=retry,
            faults=faults,
            journal=journal,
            recorder=recorder,
        )
        if make_executor is not None:
            executor = make_executor(**common)
        else:
            executor = ExperimentExecutor(workers=workers, **common)
        if not vectorized:
            # Fallback visibility: count it where dashboards look and
            # stamp it into the trace so a slow run explains itself.
            executor.metrics.counter("fleet.scalar_fallback").inc(len(chunks))
            if recorder is not None:
                recorder.emit(
                    {
                        "ev": EventType.FLEET_FALLBACK,
                        "schema": TRACE_SCHEMA_VERSION,
                        "strategy": spec.strategy,
                        "chunks": len(chunks),
                    }
                )
        with profiler.phase("simulate"):
            results = executor.run(chunks)
    with profiler.phase("aggregate"):
        summaries = [FleetChunkSummary.from_dict(r.summary) for r in results]
        merged = FleetChunkSummary.merge_all(summaries)
    wall = time.perf_counter() - started
    if recorder is not None:
        for s in summaries:
            recorder.emit(
                {
                    "ev": EventType.FLEET_CHUNK,
                    "schema": TRACE_SCHEMA_VERSION,
                    "devices": int(s.devices),
                    "packets": int(s.packets),
                    "bursts": int(s.bursts),
                    "energy_total_j": float(s.energy_total_j),
                    "piggyback_hits": int(s.piggyback_hits),
                }
            )
        recorder.emit(
            {
                "ev": EventType.FLEET_RUN,
                "devices": int(merged.devices),
                "chunks": len(results),
                "summary": {k: float(v) for k, v in merged.summary().items()},
            }
        )
    return FleetRunResult(
        spec=spec,
        summary=merged,
        wall_time=wall,
        chunks=len(results),
        cached_chunks=sum(1 for r in results if r.cached),
        vectorized=vectorized,
        peak_rss=peak_rss_bytes(
            include_children=(workers is not None and workers > 1)
            or make_executor is not None
        ),
        metrics=executor.metrics.to_dict(),
        phases=profiler.as_dict(),
        executor_stats=executor.stats,
    )
