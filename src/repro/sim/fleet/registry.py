"""The strategy-kernel registry: name -> vectorized fleet step kernel.

Historically the fleet engine hardcoded ``VECTOR_STRATEGIES`` and a
``_dispatch_fleet_chunk`` if/elif ladder; every strategy outside the
tuple fell back to the per-device scalar loop.  This module replaces
the tuple with a registry so kernels can live next to the strategy
they vectorize (``repro.baselines.peres`` owns the PerES kernel, the
engine owns the slot-dynamics kernels) without import cycles: entries
are ``(module, attribute)`` pairs resolved lazily on first use.

A kernel is a callable::

    kernel(workload, table, params, power_model) -> FleetChunkRaw

where ``params`` is a private dict the kernel must fully consume
(popping its keywords and rejecting leftovers, mirroring the scalar
builders' signatures).  The per-device scalar loop
(:mod:`repro.sim.fleet.reference`) stays the equivalence oracle for
every registered kernel — ``tests/test_fleet_equivalence.py`` sweeps
the registry.
"""

from __future__ import annotations

import importlib
from typing import Callable, Dict, Tuple

__all__ = [
    "KernelFn",
    "register_kernel",
    "get_kernel",
    "has_kernel",
    "vector_strategies",
]

#: ``(workload, table, params, power_model) -> FleetChunkRaw``
KernelFn = Callable[..., object]

#: Lazily-resolved kernels, in registration (= documentation) order.
#: Values are either a resolved callable or a ``(module, attr)`` pair.
_KERNELS: "Dict[str, object]" = {
    "immediate": ("repro.sim.fleet.engine", "_immediate_kernel"),
    "periodic": ("repro.sim.fleet.engine", "_periodic_kernel"),
    "tailender": ("repro.sim.fleet.engine", "_tailender_kernel"),
    "etrain": ("repro.sim.fleet.engine", "_etrain_kernel"),
    "peres": ("repro.baselines.peres", "peres_fleet_kernel"),
    "etime": ("repro.baselines.etime", "etime_fleet_kernel"),
    "adaptive": ("repro.baselines.adaptive", "adaptive_fleet_kernel"),
    "fixed_batch": ("repro.baselines.fixed_batch", "fixed_batch_fleet_kernel"),
    "channel_aware": ("repro.baselines.channel_aware", "channel_aware_fleet_kernel"),
}


def register_kernel(name: str, kernel: KernelFn) -> None:
    """Register (or override) the vectorized kernel for ``name``."""
    if not callable(kernel):
        raise TypeError(f"kernel for {name!r} must be callable, got {kernel!r}")
    _KERNELS[name] = kernel


def has_kernel(name: str) -> bool:
    """Whether ``name`` has a vectorized fleet kernel."""
    return name in _KERNELS


def get_kernel(name: str) -> KernelFn:
    """Resolve the kernel for ``name`` (importing its module if needed).

    Raises ``KeyError`` for unregistered strategies — callers translate
    that into their own "use the scalar fallback" behaviour.
    """
    entry = _KERNELS.get(name)
    if entry is None:
        raise KeyError(name)
    if callable(entry):
        return entry
    module, attr = entry
    kernel = getattr(importlib.import_module(module), attr)
    _KERNELS[name] = kernel
    return kernel


def vector_strategies() -> Tuple[str, ...]:
    """Registered strategy names, in registration order."""
    return tuple(_KERNELS)
