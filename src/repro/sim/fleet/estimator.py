"""Shared channel-quality series for estimator-driven fleet kernels.

PerES and eTime consult a :class:`repro.baselines.base.BandwidthEstimator`
every decision slot: ``decide`` records a sample first, then scores the
backlog by ``quality = estimate / running_average``.  Both the sample
times (the decision-slot grid) and the estimator's inputs (the shared
channel, the lag/noise/seed knobs) are identical for every device of a
chunk — ``decide`` runs on every decision slot whether or not the queue
holds anything, and heartbeats never trigger extra ``decide`` calls —
so the whole quality series is **device-independent** and can be
computed once per chunk.

Bit-exactness with the scalar path is by *code reuse*, not re-derivation:
:func:`quality_series` drives the real ``BandwidthEstimator`` over a
:class:`_TableBandwidth` shim whose ``rate_at`` reads the flattened
channel table.  ``ChannelTable.from_model`` copies the model's per-second
samples (wrap/clamp extended) verbatim, and every query time here is an
integer-valued float, so the shim returns the very same float64 the
scalar ``TraceBandwidth.rate_at``/``ConstantBandwidth.rate_at`` would.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.baselines.base import BandwidthEstimator
from repro.sim.decision import is_decision_slot
from repro.sim.fleet.channel import ChannelTable

__all__ = ["quality_series", "decision_slot_indices"]


class _TableBandwidth:
    """Minimal BandwidthModel stand-in backed by a flattened channel table.

    Only ``rate_at`` is exercised (the estimator never integrates), and
    only at whole-second times within the table's guard-extended range.
    """

    def __init__(self, table: ChannelTable) -> None:
        self._samples = table.samples

    def rate_at(self, t: float) -> float:
        return float(self._samples[int(math.floor(t))])


def decision_slot_indices(n_slots: int, granularity: float) -> np.ndarray:
    """Slot indices of the 1 s fleet grid on which a strategy decides.

    Applies :func:`repro.sim.decision.is_decision_slot` to every slot
    start, exactly as the scalar engine loops do (slot = 1.0 s).
    """
    return np.asarray(
        [i for i in range(n_slots) if is_decision_slot(float(i), 1.0, granularity)],
        dtype=np.int64,
    )


def quality_series(
    table: ChannelTable,
    times: Sequence[float],
    *,
    lag: float = 2.0,
    noise: float = 0.3,
    seed: int = 0,
) -> np.ndarray:
    """``estimate / running_average`` at each decision time, in order.

    Replays the exact per-decide estimator protocol of the scalar
    PerES/eTime ``decide``: record a sample, re-estimate, divide by the
    running average (falling back to the estimate itself while the
    average is unavailable or zero).  The scalar strategies skip the
    division on empty-queue slots, but the estimator is pure per call,
    so evaluating it unconditionally yields the same floats wherever the
    scalar path uses them.
    """
    est = BandwidthEstimator(_TableBandwidth(table), lag=lag, noise=noise, seed=seed)
    q = np.empty(len(times), dtype=np.float64)
    for j, t in enumerate(times):
        t = float(t)
        est.record(t)
        estimate = est.estimate(t)
        average = est.running_average() or estimate
        q[j] = estimate / average if average > 0 else 1.0
    return q
