"""Batched fleet engine: tens of thousands of devices per process.

The scalar engine (:mod:`repro.sim.engine`) simulates one device at a
time with Python objects per packet and per burst.  Population-scale
questions (Fig. 7-style energy-saving-vs-population curves, percentile
distributions across a city of handsets) need orders of magnitude more
devices than that representation can sustain, so this package restates
the same slotted model over NumPy *device columns*:

* :mod:`repro.sim.fleet.workload` — vectorized workload synthesis with
  one ``numpy.random.Generator`` per device, seeded from a
  ``SeedSequence`` spawn key so any chunking of the fleet reproduces the
  same per-device streams;
* :mod:`repro.sim.fleet.channel` — the bandwidth trace flattened into a
  prefix-sum table usable with ``searchsorted`` across thousands of
  concurrent bursts, publishable once per machine over
  ``multiprocessing.shared_memory``;
* :mod:`repro.sim.fleet.engine` — the vectorized slot dynamics for the
  strategies that admit column form (immediate, periodic, TailEnder and
  eTrain's Lyapunov greedy), with a transparent scalar-engine-per-device
  fallback for the ones that do not (PerES et al.);
* :mod:`repro.sim.fleet.aggregate` — fixed-size, associatively mergeable
  per-chunk summaries so a million-device run needs O(chunk) memory;
* :mod:`repro.sim.fleet.runner` — chunk orchestration through
  :class:`repro.sim.parallel.ExperimentExecutor`.

Semantics match the scalar engine's: small fleets reproduce a per-device
loop of :class:`repro.sim.engine.Simulation` on aggregate metrics to
float-summation rounding (see ``tests/test_fleet_equivalence.py``).
"""

from repro.sim.fleet.aggregate import FleetChunkSummary
from repro.sim.fleet.channel import ChannelTable, SharedChannel
from repro.sim.fleet.engine import VECTOR_STRATEGIES, simulate_fleet_chunk
from repro.sim.fleet.reference import simulate_reference_chunk
from repro.sim.fleet.runner import FleetRunResult, run_fleet
from repro.sim.fleet.spec import FleetChunkSpec, FleetSpec, fleet_supports
from repro.sim.fleet.workload import FleetWorkload, synthesize_fleet

__all__ = [
    "ChannelTable",
    "FleetChunkSpec",
    "FleetChunkSummary",
    "FleetRunResult",
    "FleetSpec",
    "FleetWorkload",
    "SharedChannel",
    "VECTOR_STRATEGIES",
    "fleet_supports",
    "run_fleet",
    "simulate_fleet_chunk",
    "simulate_reference_chunk",
    "synthesize_fleet",
]
