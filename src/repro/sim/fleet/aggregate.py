"""Streaming, associatively-mergeable per-chunk summaries.

A million-device run must not hold a million devices' worth of results.
Each chunk reduces to a :class:`FleetChunkSummary` — a fixed-size record
of sums, counts and fixed-bin histograms — and summaries merge
associatively, so any chunking (and any merge order across workers)
yields the same fleet-level totals and the whole reduction needs
O(chunks) memory, never O(devices).

Percentiles come from the histograms and are therefore approximate to
one bin width (2 J for per-device energy, 1 s for per-packet delay);
totals and ratios are exact sums.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "DELAY_BIN_S",
    "DELAY_BINS",
    "ENERGY_BIN_J",
    "ENERGY_BINS",
    "FleetChunkSummary",
    "histogram_counts",
]

#: Per-device total-energy histogram: 512 bins of 2 J covers 0..1024 J
#: (a 2 h horizon of continuous transmission stays well under that);
#: overflow clips into the last bin.
ENERGY_BIN_J = 2.0
ENERGY_BINS = 512

#: Per-packet delay histogram: 1 s bins up to 1024 s (deadlines are
#: 30-120 s; the tail above ~17 min clips into the last bin).
DELAY_BIN_S = 1.0
DELAY_BINS = 1024


def histogram_counts(values: np.ndarray, bin_width: float, n_bins: int) -> np.ndarray:
    """Clip values into ``n_bins`` fixed bins of ``bin_width`` (int64)."""
    if values.size == 0:
        return np.zeros(n_bins, dtype=np.int64)
    idx = np.floor(np.asarray(values, dtype=np.float64) / bin_width).astype(np.int64)
    np.clip(idx, 0, n_bins - 1, out=idx)
    return np.bincount(idx, minlength=n_bins).astype(np.int64)


def _percentile_from_hist(
    hist: np.ndarray, bin_width: float, q: float, total: Optional[int] = None
) -> float:
    """Approximate q-th percentile (0..100) from a fixed-bin histogram.

    Returns the upper edge of the bin where the cumulative count crosses
    q% — an over-estimate by at most one bin width.
    """
    if total is None:
        total = int(hist.sum())
    if total == 0:
        return 0.0
    target = total * (q / 100.0)
    cum = np.cumsum(hist)
    bin_idx = int(np.searchsorted(cum, target, side="left"))
    return (bin_idx + 1) * bin_width


@dataclass
class FleetChunkSummary:
    """Fixed-size reduction of one simulated chunk (or a merge of many).

    ``merge`` is associative and commutative: every field is a sum.
    """

    devices: int = 0
    packets: int = 0
    bursts: int = 0
    heartbeats: int = 0
    piggyback_hits: int = 0
    delay_sum: float = 0.0
    delay_cost_sum: float = 0.0
    violations: int = 0
    energy_total_j: float = 0.0
    energy_tail_j: float = 0.0
    energy_tx_j: float = 0.0
    energy_hist: np.ndarray = field(
        default_factory=lambda: np.zeros(ENERGY_BINS, dtype=np.int64)
    )
    delay_hist: np.ndarray = field(
        default_factory=lambda: np.zeros(DELAY_BINS, dtype=np.int64)
    )

    def merge(self, other: "FleetChunkSummary") -> "FleetChunkSummary":
        """Combine two summaries into a new one (neither input mutated)."""
        return FleetChunkSummary(
            devices=self.devices + other.devices,
            packets=self.packets + other.packets,
            bursts=self.bursts + other.bursts,
            heartbeats=self.heartbeats + other.heartbeats,
            piggyback_hits=self.piggyback_hits + other.piggyback_hits,
            delay_sum=self.delay_sum + other.delay_sum,
            delay_cost_sum=self.delay_cost_sum + other.delay_cost_sum,
            violations=self.violations + other.violations,
            energy_total_j=self.energy_total_j + other.energy_total_j,
            energy_tail_j=self.energy_tail_j + other.energy_tail_j,
            energy_tx_j=self.energy_tx_j + other.energy_tx_j,
            energy_hist=self.energy_hist + other.energy_hist,
            delay_hist=self.delay_hist + other.delay_hist,
        )

    def __add__(self, other: "FleetChunkSummary") -> "FleetChunkSummary":
        return self.merge(other)

    @classmethod
    def merge_all(cls, summaries: Sequence["FleetChunkSummary"]) -> "FleetChunkSummary":
        from repro.obs.metrics import current_registry

        out = cls()
        for s in summaries:
            out = out.merge(s)
        registry = current_registry()
        if registry is not None:
            registry.counter("aggregate.merges").inc(len(summaries))
            registry.counter("aggregate.devices").inc(out.devices)
            registry.gauge("aggregate.max_chunk_devices").set(
                float(max((s.devices for s in summaries), default=0))
            )
        return out

    # -- derived metrics (mirroring repro.sim.results naming) --

    def energy_percentile_j(self, q: float) -> float:
        """Approximate per-device total-energy percentile (±2 J)."""
        return _percentile_from_hist(self.energy_hist, ENERGY_BIN_J, q, self.devices)

    def delay_percentile_s(self, q: float) -> float:
        """Approximate per-packet delay percentile (±1 s)."""
        return _percentile_from_hist(self.delay_hist, DELAY_BIN_S, q, self.packets)

    def summary(self) -> Dict[str, float]:
        """Scalar-result-style metric dict (keys match RunResult.summary)."""
        pk = max(self.packets, 1)
        dv = max(self.devices, 1)
        return {
            "devices": self.devices,
            "packets": self.packets,
            "bursts": self.bursts,
            "total_energy_j": self.energy_total_j,
            "tail_energy_j": self.energy_tail_j,
            "transmission_energy_j": self.energy_tx_j,
            "energy_per_device_j": self.energy_total_j / dv,
            "normalized_delay_s": self.delay_sum / pk,
            "deadline_violation_ratio": self.violations / pk,
            "piggyback_ratio": self.piggyback_hits / pk,
            "delay_cost_total": self.delay_cost_sum,
            "delay_cost_per_device": self.delay_cost_sum / dv,
            "energy_p50_j": self.energy_percentile_j(50.0),
            "energy_p95_j": self.energy_percentile_j(95.0),
            "delay_p50_s": self.delay_percentile_s(50.0),
            "delay_p95_s": self.delay_percentile_s(95.0),
        }

    # -- serialization (for cache / cross-process transport) --

    def to_dict(self) -> Dict:
        return {
            "devices": self.devices,
            "packets": self.packets,
            "bursts": self.bursts,
            "heartbeats": self.heartbeats,
            "piggyback_hits": self.piggyback_hits,
            "delay_sum": self.delay_sum,
            "delay_cost_sum": self.delay_cost_sum,
            "violations": self.violations,
            "energy_total_j": self.energy_total_j,
            "energy_tail_j": self.energy_tail_j,
            "energy_tx_j": self.energy_tx_j,
            "energy_hist": self.energy_hist.tolist(),
            "delay_hist": self.delay_hist.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "FleetChunkSummary":
        return cls(
            devices=int(payload["devices"]),
            packets=int(payload["packets"]),
            bursts=int(payload["bursts"]),
            heartbeats=int(payload["heartbeats"]),
            piggyback_hits=int(payload["piggyback_hits"]),
            delay_sum=float(payload["delay_sum"]),
            delay_cost_sum=float(payload["delay_cost_sum"]),
            violations=int(payload["violations"]),
            energy_total_j=float(payload["energy_total_j"]),
            energy_tail_j=float(payload["energy_tail_j"]),
            energy_tx_j=float(payload["energy_tx_j"]),
            energy_hist=np.asarray(payload["energy_hist"], dtype=np.int64),
            delay_hist=np.asarray(payload["delay_hist"], dtype=np.int64),
        )
