"""Vectorized workload synthesis: one RNG stream per device.

The scalar generator (:mod:`repro.workload.cargo`) draws one device's
packets with Python's ``random`` module.  The fleet path keeps the same
statistical model — independent Poisson arrivals per cargo app,
truncated-normal sizes with σ = mean/4 — but draws whole device columns
with ``numpy.random.Generator`` block calls.

Determinism and chunk invariance
--------------------------------
Device ``d`` of a fleet seeded with ``seed`` always gets the generator
``default_rng(SeedSequence(entropy=seed, spawn_key=(d,)))``, where ``d``
is the device's *global* index (``device_offset + local``).  The spawn
key, not the chunk boundary, identifies the stream, so splitting a
100 000-device fleet into chunks of 8 192 or 24 576 yields byte-identical
per-device workloads.  Each device's generator is consumed in a fixed
order — per cargo app: arrival gaps, then sizes; then train phases when
``phase_mode="random"`` — so adding devices never perturbs existing ones.

The pure-Python generators remain the reference path; equivalence is at
the simulation level (the reference chunk replays *these* arrays through
the scalar engine, see :mod:`repro.sim.fleet.reference`), so the two
synthesis paths never need bit-equal streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cost_functions import CloudCost, MailCost, WeiboCost
from repro.core.profiles import CargoAppProfile, TrainAppProfile
from repro.heartbeat.apps import ANDROID_TRAIN_APPS
from repro.workload.cargo import DEFAULT_CARGO_PROFILES

__all__ = ["FleetWorkload", "synthesize_fleet", "COST_KINDS", "default_fleet_trains"]

#: Cost-function classes the vectorized accounting understands, keyed to
#: the small integers stored per app in :class:`FleetWorkload`.
COST_KINDS = {MailCost: 0, WeiboCost: 1, CloudCost: 2}

#: The evaluation's default phase stagger (see ``default_train_generators``).
DEFAULT_STAGGER = 97.0


def default_fleet_trains() -> List[TrainAppProfile]:
    """QQ / WeChat / WhatsApp, matching ``default_train_generators(3)``."""
    return [ANDROID_TRAIN_APPS[a] for a in ("qq", "wechat", "whatsapp")]


@dataclass
class FleetWorkload:
    """Column-form workload of one device chunk.

    Cargo packets live in per-app CSR arrays: app ``a``'s packets for
    device ``d`` are ``arrivals[a][offsets[a][d]:offsets[a][d+1]]``
    (sorted ascending) with matching ``sizes[a]``.  Train apps are
    described by their cycles/sizes plus a per-device phase matrix.
    """

    n_devices: int
    horizon: float
    seed: int
    device_offset: int
    # -- cargo apps (parallel lists, one entry per app) --
    app_ids: List[str]
    cost_kinds: np.ndarray  # (A,) int64, values from COST_KINDS
    deadlines: np.ndarray  # (A,) float64
    arrivals: List[np.ndarray]  # A arrays of float64
    sizes: List[np.ndarray]  # A arrays of int64
    offsets: List[np.ndarray]  # A arrays of int64, each (D+1,)
    # -- train apps --
    train_ids: List[str]
    train_cycles: np.ndarray  # (T,) float64
    train_sizes: np.ndarray  # (T,) int64
    train_phases: np.ndarray  # (T, D) float64

    @property
    def n_apps(self) -> int:
        return len(self.app_ids)

    @property
    def n_trains(self) -> int:
        return len(self.train_ids)

    @property
    def n_packets(self) -> int:
        return int(sum(a.size for a in self.arrivals))

    def device_slice(self, app: int, device: int) -> Tuple[np.ndarray, np.ndarray]:
        """(arrivals, sizes) of one app on one local device index."""
        off = self.offsets[app]
        lo, hi = int(off[device]), int(off[device + 1])
        return self.arrivals[app][lo:hi], self.sizes[app][lo:hi]


def _poisson_arrivals(
    rng: np.random.Generator, mean: float, horizon: float
) -> np.ndarray:
    """Arrival instants of one homogeneous Poisson process on [0, horizon).

    Draws exponential gaps in galloping blocks and cumsums, so the
    expected number of RNG calls is O(1) regardless of packet count.
    """
    block = max(16, int(horizon / mean * 1.25) + 8)
    chunks = []
    total = 0.0
    while total < horizon:
        gaps = rng.exponential(mean, block)
        times = total + np.cumsum(gaps)
        chunks.append(times)
        total = float(times[-1])
    times = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
    return times[times < horizon]


def _truncated_normal_sizes(
    rng: np.random.Generator, mean: float, minimum: float, n: int
) -> np.ndarray:
    """``n`` sizes from Normal(mean, mean/4) truncated below at ``minimum``.

    Vector rejection: with minimum <= mean the acceptance probability is
    >= 0.5, so a handful of passes converge; stragglers clamp.
    """
    sigma = mean / 4.0
    vals = rng.normal(mean, sigma, n)
    for _ in range(64):
        bad = vals < minimum
        n_bad = int(bad.sum())
        if n_bad == 0:
            break
        vals[bad] = rng.normal(mean, sigma, n_bad)
    np.maximum(vals, minimum, out=vals)
    return np.maximum(1, np.rint(vals)).astype(np.int64)


def synthesize_fleet(
    n_devices: int,
    horizon: float,
    seed: int,
    *,
    device_offset: int = 0,
    profiles: Optional[Sequence[CargoAppProfile]] = None,
    trains: Optional[Sequence[TrainAppProfile]] = None,
    phase_mode: str = "fixed",
    stagger: float = DEFAULT_STAGGER,
) -> FleetWorkload:
    """Synthesize a chunk of ``n_devices`` device workloads.

    ``phase_mode="fixed"`` gives every device the scalar default phases
    (``i * stagger`` for train ``i``); ``"random"`` draws each device's
    phases uniformly on ``[0, cycle)`` from its own stream, modelling app
    daemons started at arbitrary times across a population.
    """
    if n_devices < 1:
        raise ValueError(f"n_devices must be >= 1, got {n_devices}")
    if horizon <= 0:
        raise ValueError(f"horizon must be > 0, got {horizon}")
    if phase_mode not in ("fixed", "random"):
        raise ValueError(f"phase_mode must be 'fixed' or 'random', got {phase_mode!r}")
    if profiles is None:
        profiles = DEFAULT_CARGO_PROFILES()
    if trains is None:
        trains = default_fleet_trains()

    cost_kinds = []
    for p in profiles:
        kind = COST_KINDS.get(type(p.cost_function))
        if kind is None:
            raise TypeError(
                f"app {p.app_id!r} uses {type(p.cost_function).__name__}, "
                "which the fleet accounting cannot vectorize"
            )
        cost_kinds.append(kind)

    A, D, T = len(profiles), n_devices, len(trains)
    per_app_arr: List[List[np.ndarray]] = [[] for _ in range(A)]
    per_app_sizes: List[List[np.ndarray]] = [[] for _ in range(A)]
    counts = np.zeros((A, D), dtype=np.int64)
    train_phases = np.empty((T, D), dtype=np.float64)
    if phase_mode == "fixed":
        for t in range(T):
            train_phases[t, :] = t * stagger

    for d in range(D):
        ss = np.random.SeedSequence(entropy=seed, spawn_key=(device_offset + d,))
        rng = np.random.default_rng(ss)
        for a, p in enumerate(profiles):
            arr = _poisson_arrivals(rng, p.mean_interarrival, horizon)
            per_app_arr[a].append(arr)
            per_app_sizes[a].append(
                _truncated_normal_sizes(
                    rng, p.mean_size_bytes, p.min_size_bytes, arr.size
                )
            )
            counts[a, d] = arr.size
        if phase_mode == "random":
            for t, tr in enumerate(trains):
                train_phases[t, d] = rng.uniform(0.0, tr.cycle)

    arrivals, sizes, offsets = [], [], []
    for a in range(A):
        off = np.zeros(D + 1, dtype=np.int64)
        np.cumsum(counts[a], out=off[1:])
        arrivals.append(
            np.concatenate(per_app_arr[a]) if off[-1] else np.empty(0, dtype=np.float64)
        )
        sizes.append(
            np.concatenate(per_app_sizes[a]) if off[-1] else np.empty(0, dtype=np.int64)
        )
        offsets.append(off)

    return FleetWorkload(
        n_devices=D,
        horizon=float(horizon),
        seed=seed,
        device_offset=device_offset,
        app_ids=[p.app_id for p in profiles],
        cost_kinds=np.asarray(cost_kinds, dtype=np.int64),
        deadlines=np.asarray([p.deadline for p in profiles], dtype=np.float64),
        arrivals=arrivals,
        sizes=sizes,
        offsets=offsets,
        train_ids=[t.app_id for t in trains],
        train_cycles=np.asarray([t.cycle for t in trains], dtype=np.float64),
        train_sizes=np.asarray([t.heartbeat_size_bytes for t in trains], dtype=np.int64),
        train_phases=train_phases,
    )
