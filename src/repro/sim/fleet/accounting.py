"""Vectorized tail-energy and delay-cost accounting over burst columns.

The scalar :class:`repro.radio.energy.EnergyAccountant` walks one
device's transmission records, charging each burst its transmission
energy plus the tail of the inter-burst gap that follows it (capped at
``tail_time``; the last burst pays the full tail).  This module applies
the same piecewise tail formula to the whole chunk's bursts at once: a
stable sort by device recovers each device's chronological burst
sequence, gaps fall out of one shifted subtraction, and a boolean mask
marks each device's final burst.

Delay metrics reuse the packet→burst map the engine resolves: a packet's
scheduled time is its burst's serialized start, exactly like the scalar
``Packet.scheduled_time``, so delays, deadline violations and Θ-style
delay costs (f1/f2/f3 at the realized delay) are pure array expressions.
"""

from __future__ import annotations

import numpy as np

from repro.radio.power_model import PowerModel
from repro.sim.fleet.aggregate import (
    DELAY_BIN_S,
    DELAY_BINS,
    ENERGY_BIN_J,
    ENERGY_BINS,
    FleetChunkSummary,
    histogram_counts,
)
from repro.sim.fleet.engine import KIND_HEARTBEAT, KIND_PIGGYBACK, FleetChunkRaw

__all__ = ["chunk_device_energy", "summarize_chunk"]


def _tail_energy(pm: PowerModel, gaps: np.ndarray) -> np.ndarray:
    """Vectorized ``PowerModel.tail_energy`` over non-negative gaps.

    ``gaps`` must already be clipped to ``[0, tail_time]``; the branches
    reproduce the scalar piecewise arithmetic term for term.
    """
    dch = pm.p_dch_extra * gaps
    fach = pm.p_dch_extra * pm.delta_dch + pm.p_fach_extra * (gaps - pm.delta_dch)
    return np.where(gaps <= pm.delta_dch, dch, fach)


def chunk_device_energy(raw: FleetChunkRaw, pm: PowerModel):
    """Per-device (total, tail, tx) energy arrays for one chunk."""
    D = raw.n_devices
    order = np.argsort(raw.burst_dev, kind="stable")
    dev = raw.burst_dev[order]
    start = raw.burst_start[order]
    end = start + raw.burst_dur[order]
    gaps = np.empty(dev.size, dtype=np.float64)
    if dev.size:
        gaps[:-1] = start[1:] - end[:-1]
        gaps[-1] = pm.tail_time
        last = np.empty(dev.size, dtype=bool)
        last[:-1] = dev[1:] != dev[:-1]
        last[-1] = True
        gaps[last] = pm.tail_time  # final burst pays the full tail
        np.clip(gaps, 0.0, pm.tail_time, out=gaps)
    tail_e = _tail_energy(pm, gaps)
    tx_e = pm.p_tx_extra * raw.burst_dur[order]
    dev_tail = np.bincount(dev, weights=tail_e, minlength=D)
    dev_tx = np.bincount(dev, weights=tx_e, minlength=D)
    return dev_tail + dev_tx, dev_tail, dev_tx


def _delay_costs(raw: FleetChunkRaw, delays: np.ndarray) -> np.ndarray:
    """f1/f2/f3 evaluated at each packet's realized delay."""
    costs = np.zeros(delays.size, dtype=np.float64)
    for a in range(raw.cost_kinds.size):
        m = raw.pk_app == a
        if not m.any():
            continue
        d = delays[m]
        dl = float(raw.deadlines[a])
        kind = int(raw.cost_kinds[a])
        if kind == 0:  # mail
            c = np.where(d <= dl, 0.0, d / dl - 1.0)
        elif kind == 1:  # weibo
            c = np.where(d <= dl, d / dl, 2.0)
        else:  # cloud
            c = np.where(d <= dl, d / dl, 3.0 * d / dl - 2.0)
        costs[m] = c
    return costs


def summarize_chunk(raw: FleetChunkRaw, pm: PowerModel) -> FleetChunkSummary:
    """Reduce one chunk's raw bursts + packets to a FleetChunkSummary."""
    dev_total, dev_tail, dev_tx = chunk_device_energy(raw, pm)

    sched = raw.burst_start[raw.pk_burst]
    delays = np.maximum(0.0, sched - raw.pk_arr)
    deadlines_pk = raw.deadlines[raw.pk_app]
    violations = int(np.count_nonzero(delays > deadlines_pk))
    piggy = int(np.count_nonzero(raw.burst_kind[raw.pk_burst] == KIND_PIGGYBACK))
    hb_bursts = int(
        np.count_nonzero(
            (raw.burst_kind == KIND_HEARTBEAT) | (raw.burst_kind == KIND_PIGGYBACK)
        )
    )

    return FleetChunkSummary(
        devices=raw.n_devices,
        packets=int(raw.pk_arr.size),
        bursts=int(raw.burst_dev.size),
        heartbeats=hb_bursts,
        piggyback_hits=piggy,
        delay_sum=float(delays.sum()),
        delay_cost_sum=float(_delay_costs(raw, delays).sum()),
        violations=violations,
        energy_total_j=float(dev_total.sum()),
        energy_tail_j=float(dev_tail.sum()),
        energy_tx_j=float(dev_tx.sum()),
        energy_hist=histogram_counts(dev_total, ENERGY_BIN_J, ENERGY_BINS),
        delay_hist=histogram_counts(delays, DELAY_BIN_S, DELAY_BINS),
    )
