"""Shared, vectorized channel state for fleet simulations.

The scalar path answers "how long does a burst of S bytes starting at t
take?" one burst at a time through
:meth:`repro.bandwidth.models.TraceBandwidth.transfer_duration`.  A fleet
chunk asks the same question for thousands of devices per slot, so this
module flattens the trace into two plain float64 arrays —

* ``samples[k]`` — the uplink rate over whole second ``[k, k+1)``,
  extended past the trace end by the model's wrap/clamp semantics, and
* ``prefix[k]`` — cumulative bytes carried by the first ``k`` whole
  seconds (``prefix[0] == 0``),

so a batch of burst-end solves becomes one ``searchsorted`` against the
prefix array.  Durations agree with the scalar integrator to float-
summation rounding (~1e-11 relative; the scalar path itself only claims
that much across its fast/generic variants).

Every worker process needs the same two arrays, and for a 2-hour trace
extended by the 86 400 s transfer guard they are ~1.5 MB — cheap per
process, but pointless to re-derive and re-copy per chunk.
:class:`SharedChannel` publishes them once through
``multiprocessing.shared_memory``; workers attach zero-copy views by
block name.  Discipline (see ``docs/parallelism.md``): the publisher
``close()``s *and* ``unlink()``s, attachers only ``close()``.
"""

from __future__ import annotations

import math
import os
import secrets
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

from repro.bandwidth.models import ConstantBandwidth, TraceBandwidth

__all__ = [
    "ChannelTable",
    "SharedChannel",
    "SharedChannelHandle",
    "SHM_PREFIX",
    "SHM_DIR",
    "segment_name",
    "cleanup_stale_segments",
]

#: Every block this library publishes is named ``etrain-<pid>-<token>``,
#: so a crashed run's leftovers are recognisable (and sweepable) by name.
SHM_PREFIX = "etrain-"

#: Where POSIX shared memory surfaces as files (Linux tmpfs).
SHM_DIR = Path("/dev/shm")


def segment_name(*, pid: Optional[int] = None) -> str:
    """A fresh ``etrain-<pid>-<token>`` shared-memory block name."""
    if pid is None:
        pid = os.getpid()
    return f"{SHM_PREFIX}{pid}-{secrets.token_hex(4)}"


def _segment_pid(name: str) -> Optional[int]:
    """The publisher pid encoded in a segment name, or None if unparseable."""
    if not name.startswith(SHM_PREFIX):
        return None
    head = name[len(SHM_PREFIX):].split("-", 1)[0]
    try:
        return int(head)
    except ValueError:
        return None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, owned by another user
        return True
    return True


def cleanup_stale_segments(*, include_live: bool = False) -> List[str]:
    """Unlink leftover ``etrain-*`` shm segments; returns removed names.

    A segment is *stale* when the publisher pid baked into its name is no
    longer alive — i.e. the publisher died between ``publish()`` and
    ``unlink()``.  ``include_live=True`` sweeps every ``etrain-*``
    segment regardless (only safe when no fleet run is in flight).
    Unparseable names are treated as live unless ``include_live``.
    No-op (empty list) on platforms without ``/dev/shm``.
    """
    removed: List[str] = []
    if not SHM_DIR.is_dir():
        return removed
    for path in sorted(SHM_DIR.glob(SHM_PREFIX + "*")):
        pid = _segment_pid(path.name)
        stale = pid is not None and not _pid_alive(pid)
        if not (stale or include_live):
            continue
        try:
            path.unlink()
            removed.append(path.name)
        except OSError:  # vanished or not ours; nothing to sweep
            pass
    return removed

#: Seconds of rate samples kept past the horizon: the scalar integrator's
#: transfer guard plus slack for a burst that begins exactly at the
#: horizon.
TRANSFER_GUARD_S = 86_400


class ChannelTable:
    """Prefix-sum view of a piecewise-constant (1 Hz) uplink rate.

    Uplink only: fleet workloads are sends (``direction="up"``), which is
    the only direction the reference scenario exercises.
    """

    __slots__ = ("samples", "prefix")

    def __init__(self, samples: np.ndarray, prefix: Optional[np.ndarray] = None):
        samples = np.ascontiguousarray(samples, dtype=np.float64)
        if samples.ndim != 1 or samples.size == 0:
            raise ValueError("samples must be a non-empty 1-D array")
        if prefix is None:
            prefix = np.empty(samples.size + 1, dtype=np.float64)
            prefix[0] = 0.0
            # np.cumsum accumulates sequentially, matching the running
            # sum the scalar TraceBandwidth prefix uses.
            np.cumsum(samples, out=prefix[1:])
        self.samples = samples
        self.prefix = np.ascontiguousarray(prefix, dtype=np.float64)

    @classmethod
    def from_model(cls, model, horizon: float) -> "ChannelTable":
        """Flatten a bandwidth model over ``[0, horizon + guard)``.

        Supports :class:`TraceBandwidth` (with ``start_time == 0``) and
        :class:`ConstantBandwidth`; anything else would need a scalar
        fallback and is rejected here.
        """
        n_ext = int(math.ceil(horizon)) + TRANSFER_GUARD_S + 2
        if isinstance(model, ConstantBandwidth):
            if model.rate <= 0:
                raise ValueError("fleet channel requires a positive rate")
            return cls(np.full(n_ext, model.rate, dtype=np.float64))
        if isinstance(model, TraceBandwidth):
            if model.start_time != 0.0:
                raise ValueError("fleet channel requires trace start_time == 0")
            base = np.asarray(model.samples, dtype=np.float64)
            idx = np.arange(n_ext, dtype=np.int64)
            if model.wrap:
                idx %= base.size
            else:
                np.minimum(idx, base.size - 1, out=idx)
            return cls(base[idx])
        raise TypeError(
            f"fleet channel cannot flatten {type(model).__name__}; "
            "use the scalar per-device fallback"
        )

    @property
    def n_seconds(self) -> int:
        return int(self.samples.size)

    def durations(self, starts: np.ndarray, sizes: np.ndarray) -> np.ndarray:
        """Vectorized ``transfer_duration``: seconds to move ``sizes`` bytes.

        ``starts`` may be fractional; each burst consumes the remainder
        of its starting second at that second's rate, then whole seconds
        until the cumulative bytes cross its size, finishing fractionally
        inside the crossing second (which necessarily has positive rate).
        """
        starts = np.asarray(starts, dtype=np.float64)
        sizes = np.asarray(sizes, dtype=np.float64)
        if np.any(starts < 0.0):
            raise ValueError("burst starts must be >= 0")
        i = np.floor(starts).astype(np.int64)
        if np.any(i >= self.samples.size):
            raise RuntimeError("burst starts past the channel table")
        prefix = self.prefix
        # F(start): cumulative bytes from trace time 0 to the start instant.
        base = prefix[i] + (starts - i) * self.samples[i]
        target = base + sizes
        j = np.searchsorted(prefix, target, side="left")
        if np.any(j >= prefix.size):
            raise RuntimeError(
                "transfer would not finish within the channel table "
                f"({TRANSFER_GUARD_S} s guard); all-zero trace region?"
            )
        # prefix[j-1] < target <= prefix[j], so second j-1 carries bytes.
        j1 = j - 1
        with np.errstate(invalid="ignore", divide="ignore"):
            end = j1 + (target - prefix[j1]) / self.samples[j1]
        dur = end - starts
        # Zero-size bursts never advance the clock.
        zero = sizes <= 0.0
        if np.any(zero):
            dur = np.where(zero, 0.0, dur)
        return dur


@dataclass(frozen=True)
class SharedChannelHandle:
    """Names and geometry needed to attach a published channel table.

    Runtime-only: excluded from job-spec content hashes (the table is a
    pure function of the bandwidth spec, not an input in its own right).
    """

    samples_name: str
    prefix_name: str
    n_seconds: int


class SharedChannel:
    """A channel table living in ``multiprocessing.shared_memory``.

    Lifecycle::

        with SharedChannel.publish(table) as shared:   # parent, once
            handle = shared.handle            # picklable, pass to workers
            ...
            with SharedChannel.attach(handle) as view: # worker
                view.table.durations(...)
        # publisher __exit__ closes AND unlinks; attacher __exit__ only
        # closes — the same discipline as the explicit calls below.

        shared = SharedChannel.publish(table)
        ...
        shared.close(); shared.unlink()          # parent: free the blocks

    Blocks are named ``etrain-<pid>-<token>`` so that if the publisher
    dies before ``unlink()`` (kill -9, OOM), the leak is attributable
    and :func:`cleanup_stale_segments` / ``etrain fleet --cleanup-shm``
    can sweep it.
    """

    def __init__(self, blocks, table: ChannelTable, handle: SharedChannelHandle, owner: bool):
        self._blocks = list(blocks)
        self.table = table
        self.handle = handle
        self._owner = owner

    @classmethod
    def publish(cls, table: ChannelTable) -> "SharedChannel":
        from multiprocessing import shared_memory

        blocks = []
        arrays = []
        try:
            for src in (table.samples, table.prefix):
                block = None
                while block is None:
                    try:
                        block = shared_memory.SharedMemory(
                            create=True, size=src.nbytes, name=segment_name()
                        )
                    except FileExistsError:  # pragma: no cover - token clash
                        continue
                dst = np.ndarray(src.shape, dtype=np.float64, buffer=block.buf)
                dst[:] = src
                blocks.append(block)
                arrays.append(dst)
        except BaseException:
            # Publishing the second block failed: free the first rather
            # than leaking it for --cleanup-shm to find later.
            for block in blocks:
                try:
                    block.close()
                    block.unlink()
                except OSError:  # pragma: no cover - already gone
                    pass
            raise
        handle = SharedChannelHandle(
            samples_name=blocks[0].name,
            prefix_name=blocks[1].name,
            n_seconds=table.n_seconds,
        )
        shared_table = ChannelTable.__new__(ChannelTable)
        shared_table.samples = arrays[0]
        shared_table.prefix = arrays[1]
        return cls(blocks, shared_table, handle, owner=True)

    @classmethod
    def attach(cls, handle: SharedChannelHandle) -> "SharedChannel":
        from multiprocessing import shared_memory

        samples_block = shared_memory.SharedMemory(name=handle.samples_name)
        prefix_block = shared_memory.SharedMemory(name=handle.prefix_name)
        n = handle.n_seconds
        table = ChannelTable.__new__(ChannelTable)
        table.samples = np.ndarray((n,), dtype=np.float64, buffer=samples_block.buf)
        table.prefix = np.ndarray((n + 1,), dtype=np.float64, buffer=prefix_block.buf)
        return cls([samples_block, prefix_block], table, handle, owner=False)

    def close(self) -> None:
        """Release this process's mapping (safe to call twice)."""
        # Drop array views first: closing a block with live buffer views
        # raises BufferError on CPython.
        self.table.samples = np.empty(0, dtype=np.float64)
        self.table.prefix = np.empty(0, dtype=np.float64)
        for block in self._blocks:
            try:
                block.close()
            except BufferError:  # pragma: no cover - view still alive
                pass

    def unlink(self) -> None:
        """Free the underlying blocks (publisher only, after close)."""
        if not self._owner:
            raise RuntimeError("only the publishing process may unlink")
        for block in self._blocks:
            try:
                block.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedChannel":
        return self

    def __exit__(self, *exc) -> None:
        """Close; publishers additionally unlink (even if close raises)."""
        try:
            self.close()
        finally:
            if self._owner:
                self.unlink()
