"""Slotted discrete-event simulator (Sec. IV's slotted time model).

The engine advances in fixed slots (1 s by default).  Each slot it:

1. delivers to the strategy every cargo packet that arrived by the slot
   boundary (the paper assumes packets generated within slot *t* arrive
   by the end of slot *t*);
2. invokes the strategy's decision — but only on multiples of the
   strategy's own decision granularity (eTime decides every 60 s);
3. transmits this slot's heartbeats at their exact departure times,
   piggybacking the strategy's released packets onto the first heartbeat
   of the slot when there is one, otherwise sending them as a standalone
   data burst at the slot start.

Heartbeats are never rescheduled; the radio serialises overlapping bursts
(constraint (3)).  At the horizon the strategy's leftover queue is force-
flushed so every packet is accounted for.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.bandwidth.models import BandwidthModel
from repro.baselines.base import TransmissionStrategy
from repro.core.packet import Heartbeat, Packet
from repro.heartbeat.generators import HeartbeatGenerator, merge_heartbeats
from repro.radio.interface import RadioInterface
from repro.radio.power_model import PowerModel
from repro.sim.results import SimulationResult

__all__ = ["Simulation"]


class Simulation:
    """One run of a strategy against a workload, trains and a channel."""

    def __init__(
        self,
        strategy: TransmissionStrategy,
        train_generators: Sequence[HeartbeatGenerator],
        packets: Sequence[Packet],
        *,
        power_model: Optional[PowerModel] = None,
        bandwidth: Optional[BandwidthModel] = None,
        horizon: float = 7200.0,
        slot: float = 1.0,
        flush_at_end: bool = True,
    ) -> None:
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        if slot <= 0:
            raise ValueError(f"slot must be > 0, got {slot}")
        self.strategy = strategy
        self.train_generators = list(train_generators)
        self.packets = sorted(packets, key=lambda p: (p.arrival_time, p.packet_id))
        self.power_model = power_model
        self.bandwidth = bandwidth
        self.horizon = float(horizon)
        self.slot = float(slot)
        self.flush_at_end = flush_at_end
        self.radio: Optional[RadioInterface] = None

    @property
    def _granularity(self) -> float:
        """Effective decision period (never finer than the engine slot)."""
        return max(self.strategy.slot, self.slot)

    def _is_decision_slot(self, t: float) -> bool:
        """Whether the strategy decides in the slot starting at ``t``.

        The strategy decides in the first slot whose start is at or after
        each multiple of its decision granularity.  This stays correct
        when the granularity is not an integer multiple of the engine
        slot (e.g. slot 0.25 s with a 0.3 s strategy) and is immune to
        accumulated float error in ``t``: the comparison happens in the
        time domain with a granularity-relative epsilon, not on a raw
        ratio.
        """
        granularity = self._granularity
        eps = 1e-9 * granularity
        m_curr = math.floor((t + eps) / granularity)
        # Index of the last decision point at or before the previous slot.
        prev = t - self.slot
        m_prev = math.floor((prev + eps) / granularity) if prev >= 0.0 else -1
        # Decide iff a new decision point landed in (t - slot, t].
        return m_curr > m_prev

    def run(self) -> SimulationResult:
        """Execute the simulation and return the collected result."""
        radio = RadioInterface(self.power_model, self.bandwidth)
        self.radio = radio
        heartbeats = merge_heartbeats(self.train_generators, self.horizon)

        arrival_idx = 0
        hb_idx = 0
        decisions = 0
        held: List[Packet] = []  # Q_TX contents awaiting radio resource
        # "Radio resource available" = the radio is still in its promoted
        # high-power tail (DCH or FACH).  Once fully demoted to IDLE a
        # new burst would buy a brand-new tail, so Q_TX waits for the
        # next heartbeat promotion instead.
        warm_window = radio.power_model.tail_time
        n_slots = int(math.ceil(self.horizon / self.slot))

        for i in range(n_slots):
            t = i * self.slot
            slot_end = min(t + self.slot, self.horizon)

            # 1. Deliver arrivals visible by this slot boundary.
            while (
                arrival_idx < len(self.packets)
                and self.packets[arrival_idx].arrival_time <= t
            ):
                self.strategy.on_arrival(self.packets[arrival_idx], t)
                arrival_idx += 1

            # 2. Collect this slot's heartbeats.
            slot_hbs: List[Heartbeat] = []
            while hb_idx < len(heartbeats) and heartbeats[hb_idx].time < slot_end:
                slot_hbs.append(heartbeats[hb_idx])
                hb_idx += 1

            # 3. Strategy decision (on its own granularity).
            released: List[Packet] = []
            if self._is_decision_slot(t):
                released = self.strategy.decide(t, bool(slot_hbs))
                decisions += 1

            # 4. Transmit: piggyback released packets on the slot's first
            #    heartbeat when available.  Otherwise a warm-radio-gated
            #    strategy (eTrain's Q_TX) only transmits while the radio
            #    is still in its tail; a cold release waits for the next
            #    promotion.  Other strategies transmit on demand.
            if slot_hbs:
                first, rest = slot_hbs[0], slot_hbs[1:]
                payload = held + released
                held = []
                if payload:
                    radio.transmit_piggyback(first, payload)
                else:
                    radio.transmit_heartbeat(first)
                for hb in rest:
                    radio.transmit_heartbeat(hb)
            elif released or held:
                radio_warm = bool(radio.records) and t < radio.busy_until + warm_window
                if self.strategy.requires_warm_radio and not radio_warm:
                    held.extend(released)
                else:
                    payload = held + released
                    held = []
                    if payload:
                        radio.transmit_packets(t, payload)

        # Deliver any arrivals past the last slot boundary, then flush.
        if self.flush_at_end:
            while arrival_idx < len(self.packets):
                self.strategy.on_arrival(self.packets[arrival_idx], self.horizon)
                arrival_idx += 1
            leftovers = held + self.strategy.flush(self.horizon)
            held = []
            if leftovers:
                radio.transmit_packets(self.horizon, leftovers)
            flushed = len(leftovers)
        else:
            flushed = len(held)

        return SimulationResult(
            strategy_name=self.strategy.name,
            horizon=self.horizon,
            records=list(radio.records),
            packets=list(self.packets),
            heartbeats=heartbeats,
            energy=radio.energy_breakdown(),
            flushed_packets=flushed,
            decisions=decisions,
        )
