"""Slotted discrete-event simulator (Sec. IV's slotted time model).

The engine models time in fixed slots (1 s by default).  In each slot it:

1. delivers to the strategy every cargo packet that arrived by the slot
   boundary (the paper assumes packets generated within slot *t* arrive
   by the end of slot *t*);
2. invokes the strategy's decision — but only on multiples of the
   strategy's own decision granularity (eTime decides every 60 s);
3. transmits this slot's heartbeats at their exact departure times,
   piggybacking the strategy's released packets onto the first heartbeat
   of the slot when there is one, otherwise sending them as a standalone
   data burst at the slot start.

Heartbeats are never rescheduled; the radio serialises overlapping bursts
(constraint (3)).  At the horizon the strategy's leftover queue is force-
flushed so every packet is accounted for.

Two execution paths produce bit-identical results:

* the **dense** reference loop (``Simulation(..., dense=True)``) visits
  every slot in order, exactly as the original implementation did;
* the default **event-horizon** loop fast-forwards between *interesting*
  slots — the earliest of the next packet arrival, the next heartbeat,
  the next decision slot the strategy may act in (per its
  :attr:`~repro.baselines.base.TransmissionStrategy.is_idle` /
  :meth:`~repro.baselines.base.TransmissionStrategy.decision_horizon`
  contract) and the warm-window safety check for held Q_TX packets.

Skipping a slot is sound because a slot with no arrivals, no heartbeats
and no (effective) decision is a no-op in the dense loop: held Q_TX
packets only accumulate while the radio is cold, and the radio can only
warm up at a transmission, which itself only happens at a wake slot.
Decision slots skipped while a strategy is quiet are still *counted*
(``SimulationResult.decisions`` matches the dense loop) and are offered
back to the strategy through
:meth:`~repro.baselines.base.TransmissionStrategy.on_decisions_skipped`
so clock-keeping state (e.g. a periodic fire timer) can be replayed
exactly.  See ``docs/performance.md``.
"""

from __future__ import annotations

import math
import time
from bisect import bisect_left, bisect_right
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from repro.bandwidth.models import BandwidthModel
from repro.baselines.base import TransmissionStrategy
from repro.core.packet import Heartbeat, Packet
from repro.heartbeat.generators import HeartbeatGenerator, merge_heartbeats
from repro.radio.interface import RadioInterface
from repro.radio.power_model import PowerModel
from repro.sim.decision import is_decision_slot, slot_step
from repro.sim.results import SimulationResult

__all__ = ["Simulation", "DecisionWindow"]


class DecisionWindow:
    """Decision times the event loop skipped, queryable without materialising.

    Passed to :meth:`TransmissionStrategy.on_decisions_skipped`.  Two
    backings: an explicit sorted list of times, or (on exact slot grids)
    an arithmetic description — granularity multiples ``m_lo+1 .. m_hi``
    — whose individual times are derived on demand, so a day-long skip is
    O(1) to describe and O(log)-ish to query.
    """

    __slots__ = ("count", "_times", "_s", "_g", "_eps", "_lo", "_m_lo")

    def __init__(self) -> None:
        self.count = 0
        self._times: Optional[List[float]] = None
        self._s = self._g = self._eps = 0.0
        self._lo = 0
        self._m_lo = 0

    @classmethod
    def from_times(cls, times: List[float]) -> "DecisionWindow":
        win = cls()
        win._times = times
        win.count = len(times)
        return win

    @classmethod
    def from_grid(
        cls, slot: float, granularity: float, eps: float,
        lo_slot: int, m_lo: int, m_hi: int,
    ) -> "DecisionWindow":
        win = cls()
        win._s = slot
        win._g = granularity
        win._eps = eps
        win._lo = lo_slot
        win.count = m_hi - m_lo
        win._m_lo = m_lo
        return win

    def _slot_time(self, m: int) -> float:
        """Time of the decision slot serving granularity multiple ``m``."""
        s, g, eps = self._s, self._g, self._eps
        k = max(self._lo + 1, int((m * g - eps) / s) - 1)
        while math.floor((k * s + eps) / g) < m:
            k += 1
        return k * s

    def first_at_or_after(self, time: float) -> Optional[float]:
        """Smallest skipped decision time >= ``time`` (None past the end)."""
        if self._times is not None:
            idx = bisect_left(self._times, time)
            return self._times[idx] if idx < len(self._times) else None
        m_lo = self._m_lo
        m_hi = m_lo + self.count
        # A decision slot's time lies in [m*g - eps, m*g + s), so no
        # multiple below this candidate can qualify.
        m = max(m_lo + 1, int(math.floor((time - self._s - self._eps) / self._g)))
        while m <= m_hi:
            t_m = self._slot_time(m)
            if t_m >= time:
                return t_m
            m += 1
        return None

    def next_after(self, time: float) -> Optional[float]:
        """Smallest skipped decision time strictly > ``time``."""
        if self._times is not None:
            idx = bisect_right(self._times, time)
            return self._times[idx] if idx < len(self._times) else None
        first = self.first_at_or_after(time)
        if first is None or first > time:
            return first
        # ``time`` is itself a decision time; consecutive decision times
        # are at least one engine slot apart, so half a slot past it
        # lands strictly between it and its successor.
        return self.first_at_or_after(first + 0.5 * self._s)

    def times(self) -> List[float]:
        """All skipped decision times, materialised (O(count))."""
        if self._times is not None:
            return list(self._times)
        m_lo = self._m_lo
        return [self._slot_time(m) for m in range(m_lo + 1, m_lo + self.count + 1)]


class Simulation:
    """One run of a strategy against a workload, trains and a channel."""

    def __init__(
        self,
        strategy: TransmissionStrategy,
        train_generators: Sequence[HeartbeatGenerator],
        packets: Sequence[Packet],
        *,
        power_model: Optional[PowerModel] = None,
        bandwidth: Optional[BandwidthModel] = None,
        horizon: float = 7200.0,
        slot: float = 1.0,
        flush_at_end: bool = True,
        dense: bool = False,
        recorder=None,
        trace_app_costs=None,
        battery=None,
    ) -> None:
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        if slot <= 0:
            raise ValueError(f"slot must be > 0, got {slot}")
        self.strategy = strategy
        self.train_generators = list(train_generators)
        self.packets = sorted(packets, key=lambda p: (p.arrival_time, p.packet_id))
        self.power_model = power_model
        self.bandwidth = bandwidth
        self.horizon = float(horizon)
        self.slot = float(slot)
        self.flush_at_end = flush_at_end
        #: Select the dense reference loop instead of the event-horizon
        #: loop.  Both produce bit-identical results; dense exists for
        #: A/B equivalence testing and as the micro-benchmark baseline.
        self.dense = dense
        #: Optional :class:`repro.obs.recorder.Recorder` sink.  When None
        #: (the default) the run constructs no observability objects at
        #: all; when set, the full event trace is derived from the
        #: completed result after the slot loops finish, so the hot paths
        #: are identical either way (see ``repro.obs.tracer``).
        self.recorder = recorder
        #: Optional ``{app_id: {"cost_kind", "deadline"}}`` table for the
        #: trace's delay-cost accounting (``repro.obs.events.app_cost_table``).
        self.trace_app_costs = trace_app_costs
        #: Optional :class:`~repro.sim.battery.HarvestingBattery` gating
        #: standalone bursts.  When None, a battery the strategy *owns*
        #: (``strategy.battery``, e.g. harvest_lazy) is picked up
        #: automatically so every caller — engine, serve, fleet scalar
        #: fallback — applies the same energy constraint.
        self.battery = battery
        self.radio: Optional[RadioInterface] = None
        #: Slots actually visited by the last run (dense: every slot).
        self.loop_iterations: int = 0

    @property
    def _granularity(self) -> float:
        """Effective decision period (never finer than the engine slot)."""
        return max(self.strategy.slot, self.slot)

    def _is_decision_slot(self, t: float, granularity: Optional[float] = None) -> bool:
        """Whether the strategy decides in the slot starting at ``t``.

        The strategy decides in the first slot whose start is at or after
        each multiple of its decision granularity.  This stays correct
        when the granularity is not an integer multiple of the engine
        slot (e.g. slot 0.25 s with a 0.3 s strategy) and is immune to
        accumulated float error in ``t``: the comparison happens in the
        time domain with a granularity-relative epsilon, not on a raw
        ratio.  Callers in a loop pass the hoisted ``granularity``.

        The predicate itself lives in :mod:`repro.sim.decision` so the
        online serving layer evaluates exactly the same floats.
        """
        if granularity is None:
            granularity = self._granularity
        return is_decision_slot(t, self.slot, granularity)

    def _exact_slot_grid(self, n_slots: int) -> bool:
        """Whether ``k * slot`` is exact (and telescopes) for every slot k.

        Every float is a dyadic rational; ``k * slot`` is computed exactly
        whenever the numerator times the largest k fits the 53-bit
        mantissa, which also guarantees ``k*slot - slot == (k-1)*slot``
        bit-for-bit.  On such grids decision-slot counts and jump targets
        have closed forms; otherwise the event loop falls back to linear
        predicate scans (still skipping the *work*, not the arithmetic).
        """
        return Fraction(self.slot).numerator * (n_slots + 1) <= 2 ** 53

    def _can_skip(self) -> bool:
        """Whether the event loop could ever jump more than one slot.

        A strategy that keeps the base ``is_idle`` (never idle) and the
        base ``decision_horizon`` (no quiet stretches) while deciding
        every slot forces slot-by-slot stepping; for those the dense loop
        is the event loop, minus the bookkeeping.
        """
        base = TransmissionStrategy
        cls = type(self.strategy)
        return (
            cls.is_idle is not base.is_idle
            or cls.decision_horizon is not base.decision_horizon
            or self._granularity > self.slot
        )

    def run(self) -> SimulationResult:
        """Execute the simulation and return the collected result."""
        from repro.obs.metrics import current_registry

        registry = current_registry()
        t0 = time.perf_counter() if registry is not None else 0.0
        radio = RadioInterface(self.power_model, self.bandwidth)
        self.radio = radio
        heartbeats = merge_heartbeats(self.train_generators, self.horizon)
        battery = (
            self.battery
            if self.battery is not None
            else getattr(self.strategy, "battery", None)
        )

        if self.dense or not self._can_skip():
            arrival_idx, decisions, held = self._run_dense(
                radio, heartbeats, battery
            )
        else:
            arrival_idx, decisions, held = self._run_event(
                radio, heartbeats, battery
            )

        # Deliver any arrivals past the last slot boundary, then flush.
        if self.flush_at_end:
            while arrival_idx < len(self.packets):
                self.strategy.on_arrival(self.packets[arrival_idx], self.horizon)
                arrival_idx += 1
            leftovers = held + self.strategy.flush(self.horizon)
            if leftovers:
                radio.transmit_packets(self.horizon, leftovers)
            flushed = len(leftovers)
        else:
            flushed = len(held)

        result = SimulationResult(
            strategy_name=self.strategy.name,
            horizon=self.horizon,
            records=list(radio.records),
            packets=list(self.packets),
            heartbeats=heartbeats,
            energy=radio.energy_breakdown(),
            flushed_packets=flushed,
            decisions=decisions,
        )
        if registry is not None:
            registry.counter("engine.runs").inc()
            registry.counter("engine.slots_visited").inc(self.loop_iterations)
            registry.counter("engine.decisions").inc(decisions)
            registry.counter("engine.bursts").inc(len(result.records))
            registry.counter("engine.packets").inc(len(self.packets))
            registry.counter("engine.flushed_packets").inc(flushed)
            registry.counter("engine.cold_starts").inc(radio.cold_starts)
            registry.histogram("engine.run_wall_s").observe(
                time.perf_counter() - t0
            )
        if self.recorder is not None:
            from repro.obs.tracer import emit_simulation_trace

            emit_simulation_trace(
                self.recorder,
                result,
                power_model=radio.power_model,
                slot=self.slot,
                app_costs=self.trace_app_costs,
            )
        return result

    # ------------------------------------------------------------------
    # Dense reference loop
    # ------------------------------------------------------------------

    def _run_dense(
        self, radio: RadioInterface, heartbeats: List[Heartbeat], battery=None
    ) -> Tuple[int, int, List[Packet]]:
        """Visit every slot in order (the original engine loop)."""
        strategy = self.strategy
        packets = self.packets
        n_packets = len(packets)
        n_hbs = len(heartbeats)
        granularity = self._granularity

        arrival_idx = 0
        hb_idx = 0
        decisions = 0
        held: List[Packet] = []  # Q_TX contents awaiting radio resource
        # "Radio resource available" = the radio is still in its promoted
        # high-power tail (DCH or FACH).  Once fully demoted to IDLE a
        # new burst would buy a brand-new tail, so Q_TX waits for the
        # next heartbeat promotion instead.
        warm_window = radio.power_model.tail_time
        n_slots = int(math.ceil(self.horizon / self.slot))

        for i in range(n_slots):
            t = i * self.slot
            slot_end = min(t + self.slot, self.horizon)

            # 1. Deliver arrivals visible by this slot boundary.
            while (
                arrival_idx < n_packets
                and packets[arrival_idx].arrival_time <= t
            ):
                strategy.on_arrival(packets[arrival_idx], t)
                arrival_idx += 1

            # 2. Collect this slot's heartbeats.
            slot_hbs: List[Heartbeat] = []
            while hb_idx < n_hbs and heartbeats[hb_idx].time < slot_end:
                slot_hbs.append(heartbeats[hb_idx])
                hb_idx += 1

            # 3+4. Strategy decision (on its own granularity) and
            #      transmission — the shared kernel in repro.sim.decision.
            decide_now = self._is_decision_slot(t, granularity)
            if decide_now:
                decisions += 1
            held = slot_step(
                strategy, radio, held, t, slot_hbs, decide_now, warm_window,
                battery=battery,
            )

        self.loop_iterations = n_slots
        return arrival_idx, decisions, held

    # ------------------------------------------------------------------
    # Event-horizon loop
    # ------------------------------------------------------------------

    def _run_event(
        self, radio: RadioInterface, heartbeats: List[Heartbeat], battery=None
    ) -> Tuple[int, int, List[Packet]]:
        """Fast-forward between interesting slots; bit-identical to dense.

        Per-slot processing is kept in lockstep with :meth:`_run_dense`
        (same expressions, same order) so both paths make identical float
        comparisons; only the iteration schedule differs.
        """
        strategy = self.strategy
        s = self.slot
        horizon = self.horizon
        packets = self.packets
        n_packets = len(packets)
        n_hbs = len(heartbeats)
        granularity = self._granularity
        eps = 1e-9 * granularity
        n_slots = int(math.ceil(horizon / s))
        exact_grid = self._exact_slot_grid(n_slots)
        every_slot_decides = granularity <= s
        # On an exact grid with granularity == slot every slot decides,
        # so the per-wake predicate evaluation can be elided.
        always_decides = every_slot_decides and exact_grid
        base = TransmissionStrategy
        notify_skips = (
            type(strategy).on_decisions_skipped is not base.on_decisions_skipped
        )
        arrival_wakes = strategy.arrival_wakes

        # Precompute each pending event's wake slot once, with the exact
        # float comparisons the dense loop makes, so the hot loop indexes
        # instead of scanning.  Dense delivers an arrival at the first
        # slot whose start is >= its arrival time; a heartbeat is
        # collected by the first slot whose (horizon-clamped) end exceeds
        # its departure time.
        arr_wake: List[int] = []
        if arrival_wakes:
            for p in packets:
                a = p.arrival_time
                j = int(a / s)
                while j * s < a:
                    j += 1
                while j > 0 and (j - 1) * s >= a:
                    j -= 1
                arr_wake.append(j)
        hb_wake: List[int] = []
        for hb in heartbeats:
            h = hb.time
            j = int(h / s) - 1
            if j < 0:
                j = 0
            while j < n_slots and h >= min(j * s + s, horizon):
                j += 1
            hb_wake.append(j)  # n_slots when never collected

        on_arrivals = strategy.on_arrivals
        arrival_times = [p.arrival_time for p in packets]
        floor = math.floor

        arrival_idx = 0
        hb_idx = 0
        decisions = 0
        held: List[Packet] = []
        warm_window = radio.power_model.tail_time
        iterations = 0

        i = 0
        while i < n_slots:
            iterations += 1
            t = i * s
            slot_end = t + s
            if slot_end > horizon:
                slot_end = horizon

            # ---- per-slot body: keep in lockstep with _run_dense ----
            # Bulk equivalent of dense's one-at-a-time delivery loop:
            # on_arrivals is contractually identical to repeated
            # on_arrival calls at the same ``now``.
            if arrival_idx < n_packets and arrival_times[arrival_idx] <= t:
                j = bisect_right(arrival_times, t, arrival_idx)
                on_arrivals(packets[arrival_idx:j], t)
                arrival_idx = j

            slot_hbs: List[Heartbeat] = []
            while hb_idx < n_hbs and heartbeats[hb_idx].time < slot_end:
                slot_hbs.append(heartbeats[hb_idx])
                hb_idx += 1

            decide_now = always_decides or self._is_decision_slot(t, granularity)
            if decide_now:
                decisions += 1
            held = slot_step(
                strategy, radio, held, t, slot_hbs, decide_now, warm_window,
                battery=battery,
            )

            # ---- fast-forward to the next interesting slot ----
            i1 = i + 1
            # With arrival_wakes=False, arrivals can no longer wake an
            # idle-skipping engine, so idleness must not drive skips —
            # only the strategy's (arrival-independent) decision horizon.
            idle = arrival_wakes and strategy.is_idle
            if idle:
                dh = t
            else:
                dh = strategy.decision_horizon(t)
                if every_slot_decides and (dh <= t or i1 * s >= dh):
                    # A decision may act next slot and the strategy does
                    # not vouch for a quiet stretch: step densely.
                    i = i1
                    continue

            nxt = n_slots
            if arrival_idx < n_packets and arrival_wakes:
                j = arr_wake[arrival_idx]
                if j < nxt:
                    nxt = j
            if hb_idx < n_hbs:
                j = hb_wake[hb_idx]
                if j < nxt:
                    nxt = j
            if nxt <= i1:
                i = i1
                continue

            if not idle:
                if dh >= horizon:
                    d = n_slots
                elif every_slot_decides:
                    # First slot at or after the promised horizon.
                    k = int(dh / s)
                    while k * s < dh:
                        k += 1
                    while k > i1 and (k - 1) * s >= dh:
                        k -= 1
                    d = k if k > i1 else i1
                else:
                    d = self._next_decision_slot(
                        i, nxt, granularity, eps, exact_grid, dh
                    )
                if d < nxt:
                    nxt = d
            if held and nxt > i1:
                if battery is not None:
                    # Battery-gated cargo transmits at the first slot
                    # whose accrued charge affords it; affordability can
                    # flip at any slot, so step densely while holding.
                    nxt = i1
                elif radio.records and i1 * s < radio.busy_until + warm_window:
                    # Held Q_TX packets transmit as soon as the radio is
                    # warm.  By construction held implies a cold radio
                    # (warmth only increases at transmissions, which are
                    # wakes), so this never fires — it guards the loop
                    # should that invariant ever change.
                    nxt = i1

            if nxt > i1:
                # Count the decision slots the dense loop would have
                # visited in (i, nxt); offer them back to strategies that
                # replay clock state over skips.
                if exact_grid:
                    if every_slot_decides:
                        decisions += nxt - i1
                    else:
                        m_lo = floor((t + eps) / granularity)
                        m_hi = floor(((nxt - 1) * s + eps) / granularity)
                        if m_hi > m_lo:
                            decisions += m_hi - m_lo
                    if notify_skips:
                        win = self._skipped_decision_window(
                            i, nxt, granularity, eps, exact_grid
                        )
                        if win is not None:
                            strategy.on_decisions_skipped(win)
                else:
                    win = self._skipped_decision_window(
                        i, nxt, granularity, eps, exact_grid
                    )
                    if win is not None:
                        decisions += win.count
                        if notify_skips:
                            strategy.on_decisions_skipped(win)
            i = nxt

        self.loop_iterations = iterations
        return arrival_idx, decisions, held

    def _next_decision_slot(
        self,
        i: int,
        limit: int,
        granularity: float,
        eps: float,
        exact_grid: bool,
        min_time: float,
    ) -> int:
        """Smallest decision-slot index in ``(i, limit)`` whose start time
        is ``>= min_time`` (``limit`` when there is none).

        On exact grids the answer comes from the next granularity
        multiple in O(1); otherwise a linear scan applies the dense
        predicate directly, which preserves correctness at the cost of
        walking indices (decide() calls are still skipped).
        """
        s = self.slot
        if not exact_grid:
            k = i + 1
            while k < limit:
                t_k = k * s
                if t_k >= min_time and self._is_decision_slot(t_k, granularity):
                    return k
                k += 1
            return limit
        m = math.floor((i * s + eps) / granularity) + 1
        if min_time > i * s:
            # A decision slot's time lies in [m*g - eps, m*g + slot), so
            # multiples below this floor cannot reach min_time.
            cand = int(math.floor((min_time - s - eps) / granularity))
            if cand > m:
                m = cand
        while True:
            k = max(i + 1, int((m * granularity - eps) / s) - 1)
            while k < limit and math.floor((k * s + eps) / granularity) < m:
                k += 1
            if k >= limit:
                return limit
            if k * s >= min_time:
                return k
            m += 1

    def _skipped_decision_window(
        self, i: int, nxt: int, granularity: float, eps: float, exact_grid: bool
    ) -> Optional[DecisionWindow]:
        """Decision slots the dense loop would visit in ``(i, nxt)``.

        On exact grids the count telescopes: each slot's predicate is
        ``floor((k*s+eps)/g) > floor(((k-1)*s+eps)/g)`` and the floor can
        climb by at most one per slot (granularity >= slot), so the total
        over a range is the difference of its endpoint floors.
        """
        s = self.slot
        if exact_grid:
            m_lo = math.floor((i * s + eps) / granularity)
            m_hi = math.floor(((nxt - 1) * s + eps) / granularity)
            if m_hi <= m_lo:
                return None
            return DecisionWindow.from_grid(s, granularity, eps, i, m_lo, m_hi)
        times = [
            k * s
            for k in range(i + 1, nxt)
            if self._is_decision_slot(k * s, granularity)
        ]
        if not times:
            return None
        return DecisionWindow.from_times(times)
