"""The per-slot decision kernel, shared by simulator and server.

`repro.sim.engine` has two loops (dense reference and event-horizon)
whose per-slot decision/transmit body must stay bit-identical; the
online serving layer (`repro.serve`) must execute *the same* body so
the batch-vs-server equivalence is a property of shared code rather
than of two parallel implementations.  This module is that body:

* :func:`is_decision_slot` — the decision-granularity predicate, exact
  float semantics shared by every caller;
* :func:`slot_step` — one slot's decide + transmit step (steps 3 and 4
  of the engine's slot body), mutating the strategy/radio/held triple
  exactly as the dense loop always has;
* :class:`DecisionState` / :class:`SlotEvent` /
  :func:`advance` / :func:`decide` — an event-level API over the same
  kernel.  ``advance`` applies one slot's worth of events in place (the
  server's hot path); ``decide`` is its pure counterpart — it clones
  the state first, so the same ``(state, event)`` pair always yields
  the same decision and never aliases or mutates the caller's state.

Because both engine loops call :func:`slot_step`, the existing
dense/event/fleet equivalence oracles transitively certify anything
else built on it.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.baselines.base import TransmissionStrategy
from repro.core.packet import Heartbeat, Packet, TransmissionRecord
from repro.radio.interface import RadioInterface

__all__ = [
    "is_decision_slot",
    "slot_step",
    "DecisionState",
    "SlotEvent",
    "DecisionOutcome",
    "advance",
    "decide",
    "clone_state",
]


def is_decision_slot(t: float, slot: float, granularity: float) -> bool:
    """Whether a strategy decides in the slot starting at ``t``.

    The strategy decides in the first slot whose start is at or after
    each multiple of its decision granularity.  This stays correct when
    the granularity is not an integer multiple of the engine slot and is
    immune to accumulated float error in ``t``: the comparison happens
    in the time domain with a granularity-relative epsilon, not on a
    raw ratio.
    """
    eps = 1e-9 * granularity
    m_curr = math.floor((t + eps) / granularity)
    # Index of the last decision point at or before the previous slot.
    prev = t - slot
    m_prev = math.floor((prev + eps) / granularity) if prev >= 0.0 else -1
    # Decide iff a new decision point landed in (t - slot, t].
    return m_curr > m_prev


def slot_step(
    strategy: TransmissionStrategy,
    radio: RadioInterface,
    held: List[Packet],
    t: float,
    slot_hbs: Sequence[Heartbeat],
    decide_now: bool,
    warm_window: float,
    battery=None,
) -> List[Packet]:
    """Decide and transmit for the slot starting at ``t``; returns held'.

    Piggybacks released packets on the slot's first heartbeat when one
    exists.  Otherwise a warm-radio-gated strategy (eTrain's Q_TX) only
    transmits while the radio is still in its tail; a cold release waits
    for the next promotion.  Other strategies transmit on demand.

    When a :class:`~repro.sim.battery.HarvestingBattery` is present,
    standalone data bursts are additionally gated on stored energy: an
    unaffordable burst stays held until charge accrues.  Heartbeats and
    piggybacks are never gated — the heartbeat departs regardless and
    cargo riding it is (per the paper) nearly free.
    """
    released: List[Packet] = []
    if decide_now:
        released = strategy.decide(t, bool(slot_hbs))
    if slot_hbs:
        first, rest = slot_hbs[0], slot_hbs[1:]
        payload = held + released
        held = []
        if payload:
            radio.transmit_piggyback(first, payload)
        else:
            radio.transmit_heartbeat(first)
        for hb in rest:
            radio.transmit_heartbeat(hb)
    elif released or held:
        radio_warm = bool(radio.records) and t < radio.busy_until + warm_window
        if strategy.requires_warm_radio and not radio_warm:
            held.extend(released)
        else:
            payload = held + released
            held = []
            if payload:
                if battery is not None and not battery.try_spend(
                    t, sum(p.size_bytes for p in payload)
                ):
                    held = payload
                else:
                    radio.transmit_packets(t, payload)
    return held


# ---------------------------------------------------------------------------
# Event-level API over the kernel
# ---------------------------------------------------------------------------


@dataclass
class DecisionState:
    """Everything one device's scheduler carries between slots.

    The strategy and radio are the live objects the kernel mutates;
    ``held`` is the Q_TX content awaiting radio resource.  ``slot`` and
    ``granularity`` fix the slot geometry (``granularity`` must already
    be ``max(strategy.slot, slot)``); ``decisions`` counts strategy
    decisions exactly as ``SimulationResult.decisions`` does.
    """

    strategy: TransmissionStrategy
    radio: RadioInterface
    slot: float
    granularity: float
    warm_window: float
    held: List[Packet] = field(default_factory=list)
    decisions: int = 0
    #: Optional :class:`~repro.sim.battery.HarvestingBattery` gating
    #: standalone bursts (shared with the strategy when it owns one).
    battery: Optional[object] = None

    @property
    def pending_cargo(self) -> int:
        """Packets the scheduler still owes the radio (queue + Q_TX)."""
        return self.strategy.pending_count + len(self.held)


@dataclass(frozen=True)
class SlotEvent:
    """One slot's inputs: start time, arrivals due, heartbeats departing.

    ``arrivals`` must be the packets the dense loop would deliver at
    this slot boundary (arrival_time <= t, in (arrival_time, packet_id)
    order); ``heartbeats`` the slot's departures in
    (time, app_id, seq) order.
    """

    t: float
    arrivals: Tuple[Packet, ...] = ()
    heartbeats: Tuple[Heartbeat, ...] = ()


@dataclass(frozen=True)
class DecisionOutcome:
    """What one slot produced: bursts emitted and whether it decided."""

    transmissions: Tuple[TransmissionRecord, ...]
    decided: bool
    held: int

    @property
    def piggybacked(self) -> bool:
        return any(r.kind == "piggyback" for r in self.transmissions)


def advance(state: DecisionState, event: SlotEvent) -> DecisionOutcome:
    """Apply one slot in place — the engine's slot body, event-shaped."""
    t = event.t
    strategy = state.strategy
    if event.arrivals:
        strategy.on_arrivals(list(event.arrivals), t)
    decide_now = is_decision_slot(t, state.slot, state.granularity)
    if decide_now:
        state.decisions += 1
    n_before = len(state.radio.records)
    state.held = slot_step(
        strategy,
        state.radio,
        state.held,
        t,
        event.heartbeats,
        decide_now,
        state.warm_window,
        battery=state.battery,
    )
    return DecisionOutcome(
        transmissions=tuple(state.radio.records[n_before:]),
        decided=decide_now,
        held=len(state.held),
    )


def clone_state(state: DecisionState) -> DecisionState:
    """Deep copy of a decision state that shares its immutable substrate.

    The bandwidth and power models are lookup tables never mutated by
    the kernel, so the clone aliases them (a Wuhan trace is large);
    everything stateful — strategy queues, estimator RNGs, the radio's
    burst log, held packets — is copied.
    """
    memo = {
        id(state.radio.bandwidth): state.radio.bandwidth,
        id(state.radio.power_model): state.radio.power_model,
    }
    return copy.deepcopy(state, memo)


def decide(
    state: DecisionState, event: SlotEvent
) -> Tuple[DecisionOutcome, DecisionState]:
    """Pure decision step: ``(state, event) -> (outcome, state')``.

    Clones ``state`` (and the event's packets, which strategies mutate
    when scheduling them) before applying :func:`advance`, so the caller's
    state and packets are never touched and repeated calls with the same
    inputs return the same outcome.
    """
    new_state = clone_state(state)
    arrivals = tuple(
        Packet(
            app_id=p.app_id,
            arrival_time=p.arrival_time,
            size_bytes=p.size_bytes,
            deadline=p.deadline,
            packet_id=p.packet_id,
            direction=p.direction,
        )
        for p in event.arrivals
    )
    outcome = advance(new_state, SlotEvent(event.t, arrivals, event.heartbeats))
    return outcome, new_state
