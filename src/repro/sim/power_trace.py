"""Power-trace extraction: what a hardware power monitor would record.

The controlled experiments (Sec. VI-D) power the phone from a Monsoon
monitor and sample current at 10 Hz.  This module turns an RRC timeline
into the equivalent sampled power trace, used by the Fig. 2 / Fig. 4
reproductions and the power-monitor emulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.radio.rrc import RRCMachine, RRCSegment
from repro.radio.states import RRCState

__all__ = ["PowerTrace", "sample_power_trace"]


@dataclass
class PowerTrace:
    """Uniformly sampled instantaneous power.

    Attributes
    ----------
    times:
        Sample instants (seconds).
    watts:
        Instantaneous power at each instant (absolute, including the
        IDLE baseline — what the monitor's ammeter sees).
    interval:
        Sampling interval (seconds).
    """

    times: List[float]
    watts: List[float]
    interval: float

    def __post_init__(self) -> None:
        if len(self.times) != len(self.watts):
            raise ValueError("times and watts must align")
        if self.interval <= 0:
            raise ValueError("interval must be > 0")

    def __len__(self) -> int:
        return len(self.times)

    @property
    def duration(self) -> float:
        """Covered time span in seconds."""
        return len(self.times) * self.interval

    def energy(self) -> float:
        """Rectangle-rule integral of the sampled power (joules)."""
        return sum(self.watts) * self.interval

    def mean_power(self) -> float:
        """Average power over the trace (watts)."""
        return sum(self.watts) / len(self.watts) if self.watts else 0.0

    def peak_power(self) -> float:
        """Maximum sampled power (watts)."""
        return max(self.watts) if self.watts else 0.0

    def window(self, start: float, end: float) -> "PowerTrace":
        """Sub-trace restricted to ``[start, end)``."""
        pairs = [
            (t, w) for t, w in zip(self.times, self.watts) if start <= t < end
        ]
        return PowerTrace(
            times=[t for t, _ in pairs],
            watts=[w for _, w in pairs],
            interval=self.interval,
        )


def sample_power_trace(
    rrc: RRCMachine,
    horizon: Optional[float] = None,
    interval: float = 0.1,
    *,
    absolute: bool = True,
) -> PowerTrace:
    """Sample an RRC timeline at a fixed rate (default 10 Hz, as the
    paper's power tool does: "capture the current of the smartphone every
    0.1 second").

    The sampler walks the segment list once (O(samples + segments)).
    """
    if interval <= 0:
        raise ValueError(f"interval must be > 0, got {interval}")
    segments: List[RRCSegment] = rrc.segments(horizon=horizon)
    end_time = horizon if horizon is not None else (
        segments[-1].end if segments else 0.0
    )
    n = int(end_time / interval)
    times: List[float] = []
    watts: List[float] = []
    seg_idx = 0
    for i in range(n):
        t = i * interval
        while seg_idx < len(segments) and segments[seg_idx].end <= t:
            seg_idx += 1
        if seg_idx < len(segments) and segments[seg_idx].start <= t:
            state = segments[seg_idx].state
        else:
            state = RRCState.IDLE
        times.append(t)
        watts.append(rrc.power_model.state_power(state, absolute=absolute))
    return PowerTrace(times=times, watts=watts, interval=interval)
