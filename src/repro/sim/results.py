"""Simulation outputs and the paper's three performance metrics (Sec. VI-A).

Metrics investigated by the evaluation:

1. **total energy consumption** — extra joules (transmission + tail) over
   the IDLE baseline;
2. **normalized delay** — average queueing delay per data packet;
3. **deadline violation ratio** — fraction of packets scheduled after
   their deadline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.packet import Heartbeat, Packet, TransmissionRecord
from repro.radio.energy import EnergyBreakdown

__all__ = ["AppStats", "SimulationResult"]


@dataclass(frozen=True)
class AppStats:
    """Per-cargo-app delivery statistics."""

    app_id: str
    packets: int
    mean_delay: float
    max_delay: float
    violations: int

    @property
    def violation_ratio(self) -> float:
        return self.violations / self.packets if self.packets else 0.0


@dataclass
class SimulationResult:
    """Everything one simulation run produced.

    Attributes
    ----------
    strategy_name:
        Which policy generated the schedule.
    horizon:
        Simulated duration (seconds).
    records:
        Chronological radio bursts.
    packets:
        All cargo packets (each carries its scheduled/completion times).
    heartbeats:
        All heartbeats that departed during the run.
    energy:
        Analytic energy breakdown over ``records``.
    flushed_packets:
        Packets force-released at the horizon (still counted in metrics;
        a large number signals the strategy starved its queue).
    """

    strategy_name: str
    horizon: float
    records: List[TransmissionRecord]
    packets: List[Packet]
    heartbeats: List[Heartbeat]
    energy: EnergyBreakdown
    flushed_packets: int = 0
    decisions: int = 0

    @property
    def total_energy(self) -> float:
        """Total extra energy in joules (transmission + tail)."""
        return self.energy.total

    @property
    def tail_energy(self) -> float:
        """Wasted tail energy in joules."""
        return self.energy.tail

    @property
    def normalized_delay(self) -> float:
        """Average per-packet queueing delay (seconds); 0 with no packets."""
        scheduled = [p for p in self.packets if p.is_scheduled]
        if not scheduled:
            return 0.0
        return sum(p.delay for p in scheduled) / len(scheduled)

    @property
    def deadline_violation_ratio(self) -> float:
        """Fraction of scheduled packets that missed their deadline."""
        scheduled = [p for p in self.packets if p.is_scheduled]
        if not scheduled:
            return 0.0
        return sum(1 for p in scheduled if p.violates_deadline()) / len(scheduled)

    @property
    def piggyback_ratio(self) -> float:
        """Fraction of cargo packets that rode a heartbeat burst."""
        scheduled = [p for p in self.packets if p.is_scheduled]
        if not scheduled:
            return 0.0
        piggybacked = set()
        for r in self.records:
            if r.kind == "piggyback":
                piggybacked.update(r.packet_ids)
        return sum(1 for p in scheduled if p.packet_id in piggybacked) / len(
            scheduled
        )

    @property
    def burst_count(self) -> int:
        """Number of radio bursts (fewer = better aggregation)."""
        return len(self.records)

    def app_stats(self) -> Dict[str, AppStats]:
        """Per-app delay/violation statistics."""
        by_app: Dict[str, List[Packet]] = {}
        for p in self.packets:
            if p.is_scheduled:
                by_app.setdefault(p.app_id, []).append(p)
        out: Dict[str, AppStats] = {}
        for app_id, pkts in sorted(by_app.items()):
            delays = [p.delay for p in pkts]
            out[app_id] = AppStats(
                app_id=app_id,
                packets=len(pkts),
                mean_delay=sum(delays) / len(delays),
                max_delay=max(delays),
                violations=sum(1 for p in pkts if p.violates_deadline()),
            )
        return out

    def summary(self) -> Dict[str, float]:
        """Flat dict of headline metrics (for tables and benchmarks)."""
        return {
            "total_energy_j": self.total_energy,
            "tail_energy_j": self.tail_energy,
            "transmission_energy_j": self.energy.transmission,
            "normalized_delay_s": self.normalized_delay,
            "deadline_violation_ratio": self.deadline_violation_ratio,
            "piggyback_ratio": self.piggyback_ratio,
            "bursts": float(self.burst_count),
            "packets": float(len(self.packets)),
        }
