"""Simulation outputs and the paper's three performance metrics (Sec. VI-A).

Metrics investigated by the evaluation:

1. **total energy consumption** — extra joules (transmission + tail) over
   the IDLE baseline;
2. **normalized delay** — average queueing delay per data packet;
3. **deadline violation ratio** — fraction of packets scheduled after
   their deadline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.packet import Heartbeat, Packet, TransmissionRecord
from repro.radio.energy import EnergyBreakdown

__all__ = ["AppStats", "SimulationResult", "compute_aoi"]


def compute_aoi(deliveries: Sequence[tuple], horizon: float) -> float:
    """Time-averaged Age of Information over ``[0, horizon]``.

    ``deliveries`` is ``(delivery_time, generation_time)`` per delivered
    packet, in any order.  The age at time ``t`` is ``t - u(t)`` where
    ``u(t)`` is the generation (arrival) time of the freshest packet
    delivered by ``t`` (0 before any delivery); the metric integrates
    that sawtooth and divides by the horizon (Tseng & Hsu,
    arXiv:1901.03137).

    Shared by :class:`SimulationResult` and the trace replay so both
    fold the exact same floats in the exact same order — the pairs are
    fully sorted first, making the result independent of input order.
    """
    if horizon <= 0:
        return 0.0
    integral = 0.0
    u = 0.0
    t_prev = 0.0
    for d, g in sorted(deliveries):
        if d > horizon:
            d = horizon
        if d > t_prev:
            integral += ((d - u) ** 2 - (t_prev - u) ** 2) / 2.0
            t_prev = d
        if g > u:
            u = g
    integral += ((horizon - u) ** 2 - (t_prev - u) ** 2) / 2.0
    return integral / horizon


@dataclass(frozen=True)
class AppStats:
    """Per-cargo-app delivery statistics."""

    app_id: str
    packets: int
    mean_delay: float
    max_delay: float
    violations: int

    @property
    def violation_ratio(self) -> float:
        return self.violations / self.packets if self.packets else 0.0


@dataclass
class SimulationResult:
    """Everything one simulation run produced.

    Attributes
    ----------
    strategy_name:
        Which policy generated the schedule.
    horizon:
        Simulated duration (seconds).
    records:
        Chronological radio bursts.
    packets:
        All cargo packets (each carries its scheduled/completion times).
    heartbeats:
        All heartbeats that departed during the run.
    energy:
        Analytic energy breakdown over ``records``.
    flushed_packets:
        Packets force-released at the horizon (still counted in metrics;
        a large number signals the strategy starved its queue).
    """

    strategy_name: str
    horizon: float
    records: List[TransmissionRecord]
    packets: List[Packet]
    heartbeats: List[Heartbeat]
    energy: EnergyBreakdown
    flushed_packets: int = 0
    decisions: int = 0
    #: Lazily computed derived metrics; every metric property reads from
    #: this single-pass cache, so repeated ``summary()`` calls never
    #: re-scan ``packets``/``records``.  Results are treated as immutable
    #: once constructed — mutating their lists afterwards is unsupported.
    _metrics: Optional[Dict[str, float]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _app_stats: Optional[Dict[str, AppStats]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def _computed(self) -> Dict[str, float]:
        """One pass over packets and records feeding every derived metric."""
        if self._metrics is None:
            piggybacked: set = set()
            for r in self.records:
                if r.kind == "piggyback":
                    piggybacked.update(r.packet_ids)
            scheduled = 0
            delay_sum = 0.0
            violations = 0
            piggyback_hits = 0
            deliveries: List[tuple] = []
            by_app: Dict[str, List[Packet]] = {}
            for p in self.packets:
                if not p.is_scheduled:
                    continue
                scheduled += 1
                delay_sum += p.delay
                if p.violates_deadline():
                    violations += 1
                if p.packet_id in piggybacked:
                    piggyback_hits += 1
                deliveries.append((p.scheduled_time, p.arrival_time))
                by_app.setdefault(p.app_id, []).append(p)
            stats: Dict[str, AppStats] = {}
            for app_id, pkts in sorted(by_app.items()):
                delays = [p.delay for p in pkts]
                stats[app_id] = AppStats(
                    app_id=app_id,
                    packets=len(pkts),
                    mean_delay=sum(delays) / len(delays),
                    max_delay=max(delays),
                    violations=sum(1 for p in pkts if p.violates_deadline()),
                )
            self._app_stats = stats
            self._metrics = {
                "scheduled": float(scheduled),
                "normalized_delay_s": delay_sum / scheduled if scheduled else 0.0,
                "deadline_violation_ratio": (
                    violations / scheduled if scheduled else 0.0
                ),
                "piggyback_ratio": (
                    piggyback_hits / scheduled if scheduled else 0.0
                ),
                "aoi_s": compute_aoi(deliveries, self.horizon),
                "bursts": float(len(self.records)),
                "packets": float(len(self.packets)),
            }
        return self._metrics

    @property
    def total_energy(self) -> float:
        """Total extra energy in joules (transmission + tail)."""
        return self.energy.total

    @property
    def tail_energy(self) -> float:
        """Wasted tail energy in joules."""
        return self.energy.tail

    @property
    def normalized_delay(self) -> float:
        """Average per-packet queueing delay (seconds); 0 with no packets."""
        return self._computed()["normalized_delay_s"]

    @property
    def deadline_violation_ratio(self) -> float:
        """Fraction of scheduled packets that missed their deadline."""
        return self._computed()["deadline_violation_ratio"]

    @property
    def piggyback_ratio(self) -> float:
        """Fraction of cargo packets that rode a heartbeat burst."""
        return self._computed()["piggyback_ratio"]

    @property
    def aoi(self) -> float:
        """Time-averaged Age of Information (seconds) — data freshness."""
        return self._computed()["aoi_s"]

    @property
    def burst_count(self) -> int:
        """Number of radio bursts (fewer = better aggregation)."""
        return int(self._computed()["bursts"])

    def app_stats(self) -> Dict[str, AppStats]:
        """Per-app delay/violation statistics (computed once, then cached)."""
        self._computed()
        assert self._app_stats is not None
        return dict(self._app_stats)

    def summary(self) -> Dict[str, float]:
        """Flat dict of headline metrics (for tables and benchmarks)."""
        m = self._computed()
        return {
            "total_energy_j": self.total_energy,
            "tail_energy_j": self.tail_energy,
            "transmission_energy_j": self.energy.transmission,
            "normalized_delay_s": m["normalized_delay_s"],
            "deadline_violation_ratio": m["deadline_violation_ratio"],
            "piggyback_ratio": m["piggyback_ratio"],
            "aoi_s": m["aoi_s"],
            "bursts": m["bursts"],
            "packets": m["packets"],
        }
