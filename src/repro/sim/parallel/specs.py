"""Declarative job specifications for the parallel experiment executor.

A job is ``(strategy, scenario, parameter overrides)`` expressed as plain
data — names and numbers, no live objects — so it can cross a process
boundary, be hashed into a stable cache key, and be rebuilt bit-identically
in any worker.  Determinism rests on two properties:

1. every source of randomness (packet trace, bandwidth trace, estimator
   noise, heartbeat jitter) is seeded from fields of the spec, and
2. :func:`repro.core.packet.reset_packet_ids` runs before each scenario
   build, so packet ids depend only on the spec, never on process history.

Rebuilding the same spec therefore yields the same
``SimulationResult.summary()`` dict whether it runs serially in the parent
process or in a pool worker.
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.radio.lte import LTE_CAT4
from repro.radio.power_model import (
    GALAXY_S4_3G,
    GALAXY_S4_FAST_DORMANCY,
    NEXUS4_3G,
    PowerModel,
)
from repro.radio.wifi import WIFI_PSM

__all__ = [
    "CACHE_VERSION",
    "POWER_MODELS",
    "STRATEGY_BUILDERS",
    "ScenarioSpec",
    "StrategySpec",
    "JobSpec",
    "power_model_name",
    "strategy_param_names",
    "run_job",
    "seed_grid",
]

#: Bumped whenever a change anywhere in the simulator may shift summary
#: numbers; stale cache entries then miss instead of lying.
#: v2: summary() gained the ``aoi_s`` freshness column.
CACHE_VERSION = 2

#: Named power models a :class:`ScenarioSpec` can reference.
POWER_MODELS: Dict[str, PowerModel] = {
    "galaxy_s4_3g": GALAXY_S4_3G,
    "galaxy_s4_fast_dormancy": GALAXY_S4_FAST_DORMANCY,
    "nexus4_3g": NEXUS4_3G,
    "lte_cat4": LTE_CAT4,
    "wifi_psm": WIFI_PSM,
}

_POWER_MODEL_NAMES: Dict[PowerModel, str] = {pm: name for name, pm in POWER_MODELS.items()}


def power_model_name(power_model: PowerModel) -> Optional[str]:
    """Registry name of a power model, or None if it is not registered."""
    return _POWER_MODEL_NAMES.get(power_model)


@dataclass(frozen=True)
class ScenarioSpec:
    """A :class:`~repro.sim.runner.Scenario` as plain, hashable data.

    Covers every scenario the stock experiments sweep: the Sec. VI-A
    default plus the knobs the sensitivity/ablation studies turn
    (arrival rate, power model, tail-timer scale, shared train cycle,
    heartbeat jitter).  Scenarios outside this space (custom generator
    objects, external traces) stay on the serial code paths.
    """

    seed: int = 0
    horizon: float = 7200.0
    train_count: int = 3
    rate: Optional[float] = None
    power_model: str = "galaxy_s4_3g"
    tail_scale: float = 1.0
    train_cycle: Optional[float] = None
    train_jitter: float = 0.0
    slot: float = 1.0

    def __post_init__(self) -> None:
        if self.power_model not in POWER_MODELS:
            raise KeyError(
                f"unknown power model {self.power_model!r}; "
                f"known: {sorted(POWER_MODELS)}"
            )
        if self.tail_scale <= 0:
            raise ValueError(f"tail_scale must be > 0, got {self.tail_scale}")
        if self.train_jitter < 0:
            raise ValueError(f"train_jitter must be >= 0, got {self.train_jitter}")

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form used for hashing and cache metadata."""
        return dataclasses.asdict(self)

    def build(self):
        """Materialise the scenario (fresh packet trace, generators, channel)."""
        from repro.core.profiles import TrainAppProfile
        from repro.heartbeat.generators import (
            FixedCycleGenerator,
            JitteredCycleGenerator,
        )
        from repro.sim.runner import default_scenario
        from repro.workload.cargo import profiles_for_total_rate

        profiles = (
            profiles_for_total_rate(self.rate) if self.rate is not None else None
        )
        pm = POWER_MODELS[self.power_model]
        if self.tail_scale != 1.0:
            pm = dataclasses.replace(
                pm,
                delta_dch=pm.delta_dch * self.tail_scale,
                delta_fach=pm.delta_fach * self.tail_scale,
            )
        scenario = default_scenario(
            seed=self.seed,
            horizon=self.horizon,
            train_count=self.train_count,
            profiles=profiles,
            power_model=pm,
        )
        if self.train_cycle is not None:
            scenario.train_generators = [
                FixedCycleGenerator(
                    TrainAppProfile(
                        app_id=f"train{i}",
                        cycle=self.train_cycle,
                        heartbeat_size_bytes=120,
                        first_heartbeat=i * self.train_cycle / 3.0,
                    )
                )
                for i in range(3)
            ]
        if self.train_jitter > 0:
            scenario.train_generators = [
                JitteredCycleGenerator(g, max_jitter=self.train_jitter, seed=self.seed + i)
                for i, g in enumerate(scenario.train_generators)
            ]
        scenario.slot = self.slot
        scenario.spec = self
        return scenario


# ---------------------------------------------------------------------------
# Strategy registry
# ---------------------------------------------------------------------------


def _build_immediate(scenario):
    from repro.baselines.immediate import ImmediateStrategy

    return ImmediateStrategy()


def _build_etrain(
    scenario,
    theta: float = 0.2,
    k: Optional[int] = None,
    slot: float = 1.0,
    warm_gate: bool = True,
):
    from repro.baselines.etrain import ETrainStrategy
    from repro.core.scheduler import SchedulerConfig

    return ETrainStrategy(
        scenario.profiles,
        SchedulerConfig(theta=theta, k=k, slot=slot),
        warm_gate=warm_gate,
    )


def _build_peres(
    scenario,
    omega: float = 0.5,
    v_init: float = 1.0,
    lag: float = 2.0,
    noise: float = 0.3,
    est_seed: int = 0,
):
    from repro.baselines.peres import PerESStrategy

    estimator = scenario.estimator(lag=lag, noise=noise, seed=est_seed)
    return PerESStrategy(scenario.profiles, estimator, omega=omega, v_init=v_init)


def _build_etime(
    scenario,
    v: float = 200_000.0,
    lag: float = 2.0,
    noise: float = 0.3,
    est_seed: int = 0,
):
    from repro.baselines.etime import ETimeStrategy

    estimator = scenario.estimator(lag=lag, noise=noise, seed=est_seed)
    return ETimeStrategy(estimator, v=v)


def _build_channel_aware(
    scenario,
    theta: float = 0.2,
    quality_threshold: float = 1.0,
    max_defer: float = 20.0,
    lag: float = 2.0,
    noise: float = 0.3,
    est_seed: int = 0,
):
    from repro.baselines.channel_aware import ChannelAwareETrainStrategy
    from repro.core.scheduler import SchedulerConfig

    estimator = scenario.estimator(lag=lag, noise=noise, seed=est_seed)
    return ChannelAwareETrainStrategy(
        scenario.profiles,
        estimator,
        SchedulerConfig(theta=theta),
        quality_threshold=quality_threshold,
        max_defer=max_defer,
    )


def _build_periodic(scenario, period: float = 60.0):
    from repro.baselines.fixed_batch import PeriodicBatchStrategy

    return PeriodicBatchStrategy(period=period)


#: ``fixed_batch`` is the fleet-facing alias of ``periodic``: same
#: strategy object, registered under the name the fleet kernel registry
#: (and the ROADMAP perf item) uses for the naive-aggregation ablation.
_build_fixed_batch = _build_periodic


def _build_adaptive(
    scenario,
    target_delay: float = 30.0,
    theta_init: float = 0.5,
    window: int = 40,
    warm_gate: bool = True,
):
    from repro.baselines.adaptive import AdaptiveThetaETrainStrategy

    return AdaptiveThetaETrainStrategy(
        scenario.profiles,
        target_delay,
        theta_init=theta_init,
        window=window,
        warm_gate=warm_gate,
    )


def _build_tailender(scenario, default_deadline: float = 60.0, slack: float = 0.0):
    from repro.baselines.tailender import TailEnderStrategy

    return TailEnderStrategy(
        scenario.profiles, default_deadline=default_deadline, slack=slack
    )


def _build_lazy_circuit(
    scenario,
    target_batch_bytes: int = 60_000,
    default_deadline: float = 60.0,
):
    from repro.baselines.lazy_circuit import LazyCircuitStrategy

    return LazyCircuitStrategy(
        scenario.profiles,
        target_batch_bytes=target_batch_bytes,
        default_deadline=default_deadline,
    )


def _build_harvest_lazy(
    scenario,
    default_deadline: float = 60.0,
    watermark: float = 0.85,
    capacity_j: float = 40.0,
    initial_j: float = 20.0,
    harvest_window_s: float = 60.0,
    harvest_rate_max: float = 0.05,
    burst_cost_j: float = 1.0,
    per_byte_j: float = 2e-6,
    battery_seed: int = 0,
):
    from repro.baselines.harvest_lazy import HarvestLazyStrategy
    from repro.sim.battery import HarvestingBattery

    battery = HarvestingBattery(
        capacity_j=capacity_j,
        initial_j=initial_j,
        harvest_window_s=harvest_window_s,
        harvest_rate_max=harvest_rate_max,
        burst_cost_j=burst_cost_j,
        per_byte_j=per_byte_j,
        seed=battery_seed,
    )
    return HarvestLazyStrategy(
        scenario.profiles,
        default_deadline=default_deadline,
        watermark=watermark,
        battery=battery,
    )


def _build_common_deadline(scenario, round_s: float = 300.0):
    from repro.baselines.common_deadline import CommonDeadlineStrategy

    return CommonDeadlineStrategy(round_s=round_s)


def _build_aoi_download(scenario, threshold_s: float = 120.0):
    from repro.baselines.aoi_download import AoiDownloadStrategy

    return AoiDownloadStrategy(threshold_s=threshold_s)


#: name → builder(scenario, **params).  Builders receive the materialised
#: scenario because several strategies need its profiles/estimator.
STRATEGY_BUILDERS = {
    "immediate": _build_immediate,
    "etrain": _build_etrain,
    "peres": _build_peres,
    "etime": _build_etime,
    "channel_aware": _build_channel_aware,
    "periodic": _build_periodic,
    "fixed_batch": _build_fixed_batch,
    "adaptive": _build_adaptive,
    "tailender": _build_tailender,
    "lazy_circuit": _build_lazy_circuit,
    "harvest_lazy": _build_harvest_lazy,
    "common_deadline": _build_common_deadline,
    "aoi_download": _build_aoi_download,
}


def strategy_param_names(name: str) -> Tuple[str, ...]:
    """Tunable parameter names a registered strategy accepts."""
    builder = STRATEGY_BUILDERS[name]
    params = list(inspect.signature(builder).parameters)[1:]  # drop `scenario`
    return tuple(params)


@dataclass(frozen=True)
class StrategySpec:
    """A registered strategy plus its tunables, as hashable data.

    ``params`` is a sorted tuple of (name, value) pairs so equal specs
    hash equally regardless of keyword order.
    """

    name: str
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.name not in STRATEGY_BUILDERS:
            raise KeyError(
                f"unknown strategy {self.name!r}; known: {sorted(STRATEGY_BUILDERS)}"
            )
        accepted = set(strategy_param_names(self.name))
        unknown = [k for k, _ in self.params if k not in accepted]
        if unknown:
            raise ValueError(
                f"strategy {self.name!r} does not accept {unknown}; "
                f"accepted: {sorted(accepted)}"
            )

    @classmethod
    def make(cls, name: str, **params: Any) -> "StrategySpec":
        return cls(name=name, params=tuple(sorted(params.items())))

    @property
    def kwargs(self) -> Dict[str, Any]:
        return dict(self.params)

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "params": {k: v for k, v in self.params}}

    def build(self, scenario):
        """Instantiate the strategy against a materialised scenario."""
        return STRATEGY_BUILDERS[self.name](scenario, **self.kwargs)

    def describe(self) -> str:
        """Short human label, e.g. ``etrain(theta=0.5)``."""
        params = ",".join(f"{k}={v}" for k, v in self.params)
        return self.name + (f"({params})" if params else "")


@dataclass(frozen=True)
class JobSpec:
    """One cell of an experiment grid: a strategy run on a scenario.

    ``tag`` is a caller-facing label (used in progress lines and result
    tables); it is deliberately excluded from the content hash, so
    relabelling a sweep never invalidates its cache.
    """

    strategy: StrategySpec
    scenario: ScenarioSpec
    tag: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": CACHE_VERSION,
            "strategy": self.strategy.to_dict(),
            "scenario": self.scenario.to_dict(),
        }

    def content_hash(self) -> str:
        """Stable SHA-256 over the canonical JSON form (tag excluded)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """Short human label for progress output."""
        if self.tag:
            return self.tag
        return f"{self.strategy.describe()} seed={self.scenario.seed}"


def run_job(spec: JobSpec) -> Dict[str, float]:
    """Execute one job start-to-finish; the module-level pool entry point.

    Rebuilds the scenario from its spec (resetting the packet-id counter),
    instantiates the strategy, runs the slotted simulation and returns the
    flat summary dict.  Pure function of ``spec`` — see the module
    docstring for why.
    """
    # Specs that carry their own worker entry point (fleet chunks, and
    # anything else shaped like them) dispatch to it; duck-typed so this
    # module never imports the NumPy-backed fleet package.
    runner = getattr(spec, "run_in_worker", None)
    if runner is not None:
        return runner()

    from repro.sim.runner import run_strategy

    scenario = spec.scenario.build()
    strategy = spec.strategy.build(scenario)
    return run_strategy(strategy, scenario).summary()


def seed_grid(
    strategies: List[StrategySpec],
    seeds: List[int],
    base: Optional[ScenarioSpec] = None,
) -> List[JobSpec]:
    """The common (strategy × seed) grid, seeds varying fastest."""
    template = base if base is not None else ScenarioSpec()
    jobs: List[JobSpec] = []
    for strat in strategies:
        for seed in seeds:
            jobs.append(
                JobSpec(
                    strategy=strat,
                    scenario=dataclasses.replace(template, seed=seed),
                    tag=f"{strat.name} seed={seed}",
                )
            )
    return jobs
