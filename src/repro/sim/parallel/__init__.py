"""Parallel multi-seed/parameter experiment execution.

See :mod:`repro.sim.parallel.specs` for the declarative job model,
:mod:`repro.sim.parallel.executor` for the process-pool runner, and
``docs/parallelism.md`` for the cache layout and determinism guarantees.
"""

from repro.sim.parallel.cache import ResultCache
from repro.sim.parallel.executor import (
    ExecutorStats,
    ExperimentExecutor,
    JobResult,
    RetryPolicy,
)
from repro.sim.parallel.journal import (
    JournalMismatchError,
    RunJournal,
    run_key_of,
)
from repro.sim.parallel.specs import (
    CACHE_VERSION,
    POWER_MODELS,
    STRATEGY_BUILDERS,
    JobSpec,
    ScenarioSpec,
    StrategySpec,
    power_model_name,
    run_job,
    seed_grid,
    strategy_param_names,
)

__all__ = [
    "CACHE_VERSION",
    "POWER_MODELS",
    "STRATEGY_BUILDERS",
    "ResultCache",
    "ExecutorStats",
    "ExperimentExecutor",
    "JobResult",
    "RetryPolicy",
    "RunJournal",
    "JournalMismatchError",
    "run_key_of",
    "JobSpec",
    "ScenarioSpec",
    "StrategySpec",
    "power_model_name",
    "run_job",
    "seed_grid",
    "strategy_param_names",
]
