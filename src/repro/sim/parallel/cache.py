"""On-disk result cache keyed by job-spec content hashes.

Layout (two-level fan-out keeps directories small on big sweeps)::

    <root>/
        ab/
            abcdef...0123.json      # one completed job

Each entry stores the spec (for auditing), the summary dict, and the
wall time of the run that produced it.  Writes go through a temp file +
``os.replace`` so concurrent writers (pool workers finishing the same
cell, two sweeps sharing a cache) can never leave a torn entry; a corrupt
or unreadable entry is treated as a miss and rewritten.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

__all__ = ["ResultCache"]


class ResultCache:
    """A directory of completed job results, addressed by content hash."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached entry for ``key``, or None on miss/corruption."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(entry, dict) or "summary" not in entry:
            return None
        return entry

    def put(self, key: str, entry: Dict[str, Any]) -> None:
        """Atomically store ``entry`` under ``key``."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
