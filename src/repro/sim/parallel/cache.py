"""On-disk result cache keyed by job-spec content hashes.

Layout (two-level fan-out keeps directories small on big sweeps)::

    <root>/
        ab/
            abcdef...0123.json      # one completed job

Each entry stores the spec (for auditing), the summary dict, and the
wall time of the run that produced it.  Writes go through a temp file +
``os.replace`` so concurrent writers (pool workers finishing the same
cell, two sweeps sharing a cache) can never leave a torn entry; a corrupt
or unreadable entry is treated as a miss and rewritten.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Optional

__all__ = ["ResultCache"]


class ResultCache:
    """A directory of completed job results, addressed by content hash.

    Instances also count their own traffic: ``hits`` / ``misses``
    (lookups served / not served) and ``puts`` (entries written), so
    callers can surface cache effectiveness without re-scanning disk.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.puts = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _scan(self):
        """Yield entry paths, tolerating concurrent deletion.

        ``Path.glob`` can raise if a shard directory disappears between
        being listed and being descended into (a concurrent ``clear``/
        external cleanup); scanning shard-by-shard makes every vanishing
        path a skip instead of an exception.
        """
        try:
            shards = [d for d in os.scandir(self.root) if d.is_dir()]
        except OSError:
            return
        for shard in shards:
            try:
                names = list(os.scandir(shard.path))
            except OSError:
                continue  # shard vanished mid-scan
            for entry in names:
                if entry.name.endswith(".json"):
                    yield Path(entry.path)

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached entry for ``key``, or None on miss/corruption."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if not isinstance(entry, dict) or "summary" not in entry:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, key: str, entry: Dict[str, Any]) -> None:
        """Atomically store ``entry`` under ``key``.

        Retries once if the shard directory is ripped out between the
        ``mkdir`` and the ``os.replace`` (e.g. an external cleanup or an
        aggressive prune running concurrently).
        """
        path = self._path(key)
        for attempt in (1, 2):
            path.parent.mkdir(parents=True, exist_ok=True)
            try:
                fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            except FileNotFoundError:
                if attempt == 1:
                    continue
                raise
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(entry, fh, sort_keys=True)
                os.replace(tmp, path)
                self.puts += 1
                return
            except FileNotFoundError:
                self._discard(tmp)
                if attempt == 1:
                    continue
                raise
            except BaseException:
                self._discard(tmp)
                raise

    @staticmethod
    def _discard(tmp: str) -> None:
        try:
            os.unlink(tmp)
        except OSError:
            pass

    def __len__(self) -> int:
        return sum(1 for _ in self._scan())

    def size_bytes(self) -> int:
        """Total on-disk size of all entries (0 for an empty cache)."""
        total = 0
        for path in self._scan():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def prune(
        self,
        max_entries: Optional[int] = None,
        max_age: Optional[float] = None,
    ) -> int:
        """Evict stale entries; returns how many were removed.

        ``max_age`` (seconds) drops every entry whose file mtime is older
        than that; ``max_entries`` then keeps only the most recently
        touched N.  Both are optional and compose; with neither given
        this is a no-op.  Concurrent writers are safe: an entry vanishing
        under us is simply skipped.
        """
        if max_entries is not None and max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        if max_age is not None and max_age < 0:
            raise ValueError(f"max_age must be >= 0, got {max_age}")
        entries = []
        for path in self._scan():
            try:
                entries.append((path.stat().st_mtime, path))
            except OSError:
                pass
        entries.sort()  # oldest first
        doomed = []
        if max_age is not None:
            cutoff = time.time() - max_age
            while entries and entries[0][0] < cutoff:
                doomed.append(entries.pop(0)[1])
        if max_entries is not None and len(entries) > max_entries:
            excess = len(entries) - max_entries
            doomed.extend(path for _, path in entries[:excess])
        removed = 0
        for path in doomed:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self._scan():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
