"""Process-pool experiment executor with caching and fault tolerance.

The executor fans a grid of :class:`~repro.sim.parallel.specs.JobSpec`
cells across worker processes.  Four properties the rest of the library
leans on:

* **Determinism** — each worker rebuilds its job from the spec alone
  (fresh packet-id counter, seeded traces), so a parallel run returns
  summaries bit-identical to a serial run of the same grid, in the same
  order as the submitted jobs.
* **Caching** — with a ``cache_dir``, completed cells are stored under
  their spec's content hash; reruns and overlapping sweeps skip the
  simulation entirely (visible in :class:`ExecutorStats`).
* **Fault tolerance** — a worker dying (OOM kill, segfault, injected
  crash) breaks the whole ``ProcessPoolExecutor``; this executor requeues
  the lost jobs under a bounded per-job retry budget, rebuilds the pool
  with exponential backoff, enforces an optional per-job timeout by
  killing hung workers, and — when the pool keeps dying — degrades to
  in-process serial execution rather than failing the run.  Because jobs
  are pure functions of their specs, a retried job returns the exact
  bytes the first attempt would have (see ``docs/robustness.md``).
* **Instrumentation** — jobs done, per-job wall time, cache hits,
  retries/timeouts/pool rebuilds and worker utilization accumulate in
  ``executor.stats``, the ``executor.*`` counters of
  ``executor.metrics``, and stream through the optional ``progress``
  callback; an optional ``recorder`` receives one structured event per
  failure-handling action.

``workers=None`` (the default) runs jobs in-process, in submission
order — the drop-in replacement for the old serial loops, sharing the
exact code path workers use.  ``workers=N`` uses a pool of N processes.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.obs.events import EventType
from repro.obs.metrics import MetricsRegistry, metrics_scope
from repro.sim.parallel.cache import ResultCache
from repro.sim.parallel.specs import JobSpec, run_job

__all__ = ["JobResult", "ExecutorStats", "RetryPolicy", "ExperimentExecutor"]


@dataclass(frozen=True)
class JobResult:
    """Outcome of one grid cell."""

    spec: JobSpec
    summary: Dict[str, float]
    wall_time: float
    worker_pid: int
    cached: bool = False
    #: Serialised :class:`~repro.obs.metrics.MetricsRegistry` the job's
    #: worker recorded (None for cache entries written before metrics
    #: existed).  The executor folds these into ``executor.metrics``.
    metrics: Optional[Dict] = None


@dataclass(frozen=True)
class RetryPolicy:
    """How the executor responds to worker death and hung jobs.

    ``max_retries`` bounds *resubmissions per job*: a job may be
    submitted to the pool at most ``1 + max_retries`` times; a job lost
    beyond that budget gets one last-resort in-process serial run (with
    fault injection off) instead of failing the sweep.  Pool rebuild
    ``k`` waits ``backoff_base * backoff_factor**(k-1)`` seconds, and
    after ``max_pool_rebuilds`` rebuilds the executor stops trusting the
    pool entirely and finishes the remaining jobs serially.
    ``job_timeout`` (seconds of *running* time, measured from when the
    job's future is first observed ``running()``, not from submission)
    kills the pool's workers when exceeded — the only way to unstick a
    hung ``ProcessPoolExecutor`` worker — and requeues the in-flight
    jobs.  Caveat: the stdlib marks a future running once it is
    *prefetched* into the worker call queue (which buffers up to
    ``max_workers + 1`` items), possibly before any worker picks it up,
    so a job queued behind a slow one can be charged wait time it never
    executed.  Budget ``job_timeout`` to cover roughly two back-to-back
    worst-case jobs, not one, to keep that overcount from tripping a
    spurious pool kill.
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    job_timeout: Optional[float] = None
    max_pool_rebuilds: int = 3
    #: Poll period for the timeout watchdog (only used with a timeout).
    poll_interval: float = 0.05

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff needs base >= 0 and factor >= 1")
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise ValueError(f"job_timeout must be > 0, got {self.job_timeout}")
        if self.max_pool_rebuilds < 0:
            raise ValueError(
                f"max_pool_rebuilds must be >= 0, got {self.max_pool_rebuilds}"
            )

    def backoff(self, rebuild: int) -> float:
        """Seconds to pause before pool rebuild number ``rebuild`` (1-based)."""
        if rebuild <= 0:
            return 0.0
        return self.backoff_base * self.backoff_factor ** (rebuild - 1)


@dataclass
class ExecutorStats:
    """Lifetime counters of one executor (accumulated across ``run`` calls)."""

    jobs_total: int = 0
    jobs_run: int = 0
    cache_hits: int = 0
    cache_misses: int = 0  # lookups that went to simulation (cache configured)
    wall_time: float = 0.0
    busy_time: float = 0.0
    workers: int = 1
    job_times: List[float] = field(default_factory=list)
    # Fault-tolerance counters (all zero on a healthy run).
    retries: int = 0  # resubmissions after a job was lost
    worker_failures: int = 0  # pool-break events from worker death
    timeouts: int = 0  # jobs whose running time exceeded job_timeout
    pool_rebuilds: int = 0  # pools rebuilt after a break
    serial_fallbacks: int = 0  # pool given up on entirely
    serial_rescues: int = 0  # jobs run in-process after exhausting retries

    @property
    def worker_utilization(self) -> float:
        """Fraction of worker-seconds spent simulating (0 when idle)."""
        capacity = self.workers * self.wall_time
        return self.busy_time / capacity if capacity > 0 else 0.0

    @property
    def mean_job_time(self) -> float:
        return sum(self.job_times) / len(self.job_times) if self.job_times else 0.0

    def describe(self) -> str:
        """One-line human summary (used by the CLI)."""
        line = (
            f"{self.jobs_total} jobs ({self.jobs_run} run, "
            f"{self.cache_hits} cached) in {self.wall_time:.2f}s wall, "
            f"mean job {self.mean_job_time * 1000:.0f}ms, "
            f"{self.workers} worker(s) at {100 * self.worker_utilization:.0f}% "
            "utilization"
        )
        if self.worker_failures or self.timeouts or self.retries:
            line += (
                f"; survived {self.worker_failures} worker failure(s), "
                f"{self.timeouts} timeout(s) via {self.retries} retrie(s)"
            )
        return line


def _job_key(spec) -> str:
    """The stable identity faults and journals key on (the cache key)."""
    return spec.content_hash()


def _execute_indexed(payload):
    """Pool entry point: run one (index, spec) pair, timing it.

    Each job runs inside its own :func:`~repro.obs.metrics.metrics_scope`
    so engine-side instrumentation lands in a per-job registry that ships
    back with the summary; the executor merges the registries
    associatively, exactly like fleet chunk summaries.

    ``faults`` (a :class:`repro.faults.FaultPlan` or None) injects its
    decision for this (job, attempt) first — an injected crash kills the
    worker via ``os._exit`` before any simulation state exists, which is
    what makes retried jobs bit-identical to undisturbed ones.
    """
    index, spec, faults, attempt = payload
    if faults is not None:
        faults.inject(_job_key(spec), attempt)
    started = time.perf_counter()
    with metrics_scope() as registry:
        summary = run_job(spec)
    elapsed = time.perf_counter() - started
    registry.counter("executor.jobs").inc()
    registry.histogram("executor.job_wall_s").observe(elapsed)
    return index, summary, elapsed, os.getpid(), registry.to_dict()


class ExperimentExecutor:
    """Runs job grids serially in-process or across a process pool."""

    def __init__(
        self,
        *,
        workers: Optional[int] = None,
        cache_dir=None,
        progress: Optional[Callable[[str], None]] = None,
        retry: Optional[RetryPolicy] = None,
        faults=None,
        journal=None,
        recorder=None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1 or None, got {workers}")
        self.workers = workers
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.progress = progress
        #: Failure-handling knobs; the default policy retries twice with
        #: exponential backoff and never times jobs out.
        self.retry = retry if retry is not None else RetryPolicy()
        #: Optional :class:`repro.faults.FaultPlan`.  Injected in pool
        #: workers only — an in-process crash/hang would take down or
        #: stall the parent, which is the failure mode, not the test.
        self.faults = faults
        #: Optional :class:`repro.sim.parallel.journal.RunJournal`; every
        #: completed cell's key is appended, making the run resumable.
        self.journal = journal
        #: Optional trace recorder for failure-handling events
        #: (``job_retry`` / ``worker_failure``).
        self.recorder = recorder
        self.stats = ExecutorStats(workers=workers if workers else 1)
        #: Merge of every job's per-worker registry (run or cached), in
        #: completion order — the merge is associative and commutative,
        #: so the totals are independent of scheduling and cache state.
        #: The parent-side ``executor.retries`` / ``executor.timeouts`` /
        #: ``executor.worker_failures`` / ``executor.pool_rebuilds``
        #: counters land here too.
        self.metrics = MetricsRegistry()

    def _absorb_metrics(self, result: JobResult) -> None:
        if result.metrics:
            self.metrics.merge(MetricsRegistry.from_dict(result.metrics))

    # -- internals ---------------------------------------------------------

    def _report(self, done: int, total: int, result: JobResult) -> None:
        if self.progress is None:
            return
        origin = "cache" if result.cached else f"{result.wall_time:.2f}s"
        self.progress(f"[{done}/{total}] {result.spec.describe()} ({origin})")

    def _count_fault(self, name: str, amount: int = 1) -> None:
        """Bump a parent-side fault counter in stats and metrics together."""
        setattr(self.stats, name, getattr(self.stats, name) + amount)
        self.metrics.counter(f"executor.{name}").inc(amount)

    def _emit(self, event: Dict) -> None:
        if self.recorder is not None:
            self.recorder.emit(event)

    def _finish(self, result: JobResult, done: int, total: int) -> int:
        """Common completion path: store, merge metrics, journal, report."""
        self._store(result)
        self._absorb_metrics(result)
        if self.journal is not None:
            self.journal.record(_job_key(result.spec), tag=result.spec.tag)
        done += 1
        self._report(done, total, result)
        return done

    def _from_cache(self, spec: JobSpec) -> Optional[JobResult]:
        if self.cache is None:
            return None
        entry = self.cache.get(spec.content_hash())
        if entry is None:
            return None
        return JobResult(
            spec=spec,
            summary=dict(entry["summary"]),
            wall_time=float(entry.get("wall_time", 0.0)),
            worker_pid=0,
            cached=True,
            metrics=entry.get("metrics"),
        )

    def _store(self, result: JobResult) -> None:
        if self.cache is None or result.cached:
            return
        self.cache.put(
            result.spec.content_hash(),
            {
                "spec": result.spec.to_dict(),
                "tag": result.spec.tag,
                "summary": result.summary,
                "wall_time": result.wall_time,
                "metrics": result.metrics,
            },
        )

    def _run_pool(
        self, misses: List[int], jobs: Sequence[JobSpec], results: List[Optional[JobResult]]
    ) -> None:
        """Pooled execution that survives worker death and hung workers.

        The loop runs one *pool generation* at a time: submit everything
        queued, collect until the generation either drains or breaks
        (worker death / timeout kill), requeue whatever was lost, and
        rebuild.  Each requeue consumes one unit of the lost job's retry
        budget; jobs over budget — and every remaining job once the pool
        has broken ``max_pool_rebuilds + 1`` times — run in-process
        instead, so worker failures degrade throughput, never results.
        """
        policy = self.retry
        total = len(jobs)
        done = total - len(misses)
        submissions: Dict[int, int] = {i: 0 for i in misses}
        queue: deque = deque(misses)
        rescues: List[int] = []  # run serially, faults off
        breaks = 0

        while queue:
            if breaks > policy.max_pool_rebuilds:
                self._count_fault("serial_fallbacks")
                self._emit(
                    {"ev": EventType.SERIAL_FALLBACK, "jobs": len(queue), "breaks": breaks}
                )
                rescues.extend(queue)
                queue.clear()
                break
            if breaks:
                self._count_fault("pool_rebuilds")
                delay = policy.backoff(breaks)
                if delay > 0:
                    time.sleep(delay)
            done, broke = self._pool_generation(
                queue, jobs, results, submissions, rescues, done, total
            )
            if broke:
                breaks += 1

        for i in rescues:
            self._count_fault("serial_rescues")
            done = self._run_one_serial(i, jobs, results, done, total)

    def _pool_generation(
        self,
        queue: deque,
        jobs: Sequence[JobSpec],
        results: List[Optional[JobResult]],
        submissions: Dict[int, int],
        rescues: List[int],
        done: int,
        total: int,
    ):
        """One pool lifetime; returns ``(done, broke)``."""
        policy = self.retry
        max_workers = min(self.workers or 1, len(queue))
        pool = ProcessPoolExecutor(max_workers=max_workers)
        pending: Dict = {}  # future -> job index
        first_running: Dict = {}  # future -> perf_counter when seen running
        lost: List[int] = []
        timed_out: List[int] = []
        broke = False
        try:
            while queue:
                i = queue.popleft()
                attempt = submissions[i] + 1
                try:
                    future = pool.submit(
                        _execute_indexed, (i, jobs[i], self.faults, attempt)
                    )
                except BrokenProcessPool:
                    # The pool died under us mid-submission.  This job
                    # never reached a worker, so it spends no retry
                    # budget: put it back at the head of the queue for
                    # the next generation (dropping it here would shift
                    # every later result in the grid).
                    queue.appendleft(i)
                    broke = True
                    break
                submissions[i] = attempt
                if attempt > 1:
                    self._count_fault("retries")
                    self._emit(
                        {
                            "ev": EventType.JOB_RETRY,
                            "job": jobs[i].describe(),
                            "attempt": attempt,
                        }
                    )
                pending[future] = i
            poll = policy.poll_interval if policy.job_timeout is not None else None
            while pending and not broke:
                finished, _ = wait(
                    set(pending), timeout=poll, return_when=FIRST_COMPLETED
                )
                for future in finished:
                    i = pending.pop(future)
                    first_running.pop(future, None)
                    try:
                        index, summary, elapsed, pid, metrics = future.result()
                    except BrokenProcessPool:
                        lost.append(i)
                        broke = True
                        continue
                    result = JobResult(
                        spec=jobs[index],
                        summary=summary,
                        wall_time=elapsed,
                        worker_pid=pid,
                        metrics=metrics,
                    )
                    results[index] = result
                    done = self._finish(result, done, total)
                if broke or policy.job_timeout is None:
                    continue
                now = time.perf_counter()
                for future in pending:
                    # running() flips when the future is prefetched into
                    # the call queue, not when a worker dequeues it — so
                    # this clock can start early by up to one preceding
                    # job's runtime (see the RetryPolicy docstring).
                    if future not in first_running and future.running():
                        first_running[future] = now
                overdue = [
                    future
                    for future, t0 in first_running.items()
                    if future in pending and now - t0 > policy.job_timeout
                ]
                if overdue:
                    timed_out = [pending[f] for f in overdue]
                    self._count_fault("timeouts", len(overdue))
                    self._kill_workers(pool)
                    broke = True
        except BrokenProcessPool:  # pragma: no cover - safety net; submit
            broke = True  # and result() handle their breaks locally
        finally:
            if broke:
                # Everything still pending died with the pool; requeue
                # within budget, collect the rest for serial rescue.
                lost.extend(pending.values())
                pending.clear()
                if lost and not timed_out:
                    self._count_fault("worker_failures")
                self._emit(
                    {
                        "ev": EventType.WORKER_FAILURE,
                        "lost": len(lost),
                        "timed_out": len(timed_out),
                    }
                )
                for i in lost:
                    if submissions[i] <= policy.max_retries:
                        queue.append(i)
                    else:
                        rescues.append(i)
            pool.shutdown(wait=True, cancel_futures=True)
        return done, broke

    @staticmethod
    def _kill_workers(pool: ProcessPoolExecutor) -> None:
        """SIGKILL every pool worker — the only cure for a hung job."""
        for proc in list(getattr(pool, "_processes", {}).values()):
            try:
                proc.kill()
            except (OSError, AttributeError):  # pragma: no cover - racing exit
                pass

    def _run_one_serial(
        self,
        i: int,
        jobs: Sequence[JobSpec],
        results: List[Optional[JobResult]],
        done: int,
        total: int,
    ) -> int:
        """Run one job in-process (no fault injection) and record it."""
        index, summary, elapsed, pid, metrics = _execute_indexed(
            (i, jobs[i], None, 1)
        )
        result = JobResult(
            spec=jobs[index],
            summary=summary,
            wall_time=elapsed,
            worker_pid=pid,
            metrics=metrics,
        )
        results[index] = result
        return self._finish(result, done, total)

    def _run_serial(
        self, misses: List[int], jobs: Sequence[JobSpec], results: List[Optional[JobResult]]
    ) -> None:
        done = len(jobs) - len(misses)
        for i in misses:
            done = self._run_one_serial(i, jobs, results, done, len(jobs))

    def _dispatch(
        self, misses: List[int], jobs: Sequence[JobSpec], results: List[Optional[JobResult]]
    ) -> None:
        """Execute the cache misses; the extension point subclasses override.

        Everything around this call — cache prefill, journaling of hits,
        the hole check, and stats accounting — is placement-independent
        and shared; only *where* the misses run differs (in-process,
        process pool here; TCP workers in
        :class:`repro.sim.dist.DistExecutor`).
        """
        if self.workers is not None and self.workers > 1 and len(misses) > 1:
            self._run_pool(misses, jobs, results)
        else:
            self._run_serial(misses, jobs, results)

    # -- public API --------------------------------------------------------

    def describe_cache(self) -> Optional[str]:
        """One-line cache summary (None when no cache is configured)."""
        if self.cache is None:
            return None
        return (
            f"cache: {self.stats.cache_hits} hit(s), "
            f"{self.stats.cache_misses} miss(es), "
            f"{len(self.cache)} entries, "
            f"{self.cache.size_bytes() / 1024:.1f} KiB on disk"
        )

    def run(self, jobs: Sequence[JobSpec]) -> List[JobResult]:
        """Execute a grid; results come back in submission order."""
        jobs = list(jobs)
        started = time.perf_counter()
        results: List[Optional[JobResult]] = [None] * len(jobs)

        misses: List[int] = []
        for i, spec in enumerate(jobs):
            hit = self._from_cache(spec)
            if hit is not None:
                results[i] = hit
                self._absorb_metrics(hit)
                if self.journal is not None:
                    self.journal.record(_job_key(spec), tag=spec.tag)
            else:
                misses.append(i)
        # Cache hits are reported up front, before any simulation starts.
        reported = 0
        for r in results:
            if r is not None:
                reported += 1
                self._report(reported, len(jobs), r)

        if misses:
            self._dispatch(misses, jobs, results)

        elapsed = time.perf_counter() - started
        holes = [i for i, r in enumerate(results) if r is None]
        if holes:
            # Completeness is an invariant callers depend on (sweep zips
            # results against its spec grid, fleet merges chunks by
            # position); a hole would silently misalign every result
            # after it, so fail loudly instead of filtering it away.
            raise RuntimeError(
                f"executor lost {len(holes)} of {len(jobs)} job(s) "
                f"(indices {holes[:10]}{'...' if len(holes) > 10 else ''})"
            )
        finished: List[JobResult] = [r for r in results if r is not None]
        executed = [r for r in finished if not r.cached]
        self.stats.jobs_total += len(jobs)
        self.stats.jobs_run += len(executed)
        self.stats.cache_hits += len(finished) - len(executed)
        if self.cache is not None:
            self.stats.cache_misses += len(misses)
        self.stats.wall_time += elapsed
        self.stats.busy_time += sum(r.wall_time for r in executed)
        self.stats.job_times.extend(r.wall_time for r in executed)
        return finished
