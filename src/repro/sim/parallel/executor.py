"""Process-pool experiment executor with caching and instrumentation.

The executor fans a grid of :class:`~repro.sim.parallel.specs.JobSpec`
cells across worker processes.  Three properties the rest of the library
leans on:

* **Determinism** — each worker rebuilds its job from the spec alone
  (fresh packet-id counter, seeded traces), so a parallel run returns
  summaries bit-identical to a serial run of the same grid, in the same
  order as the submitted jobs.
* **Caching** — with a ``cache_dir``, completed cells are stored under
  their spec's content hash; reruns and overlapping sweeps skip the
  simulation entirely (visible in :class:`ExecutorStats`).
* **Instrumentation** — jobs done, per-job wall time, cache hits and
  worker utilization accumulate in ``executor.stats`` and stream through
  the optional ``progress`` callback.

``workers=None`` (the default) runs jobs in-process, in submission
order — the drop-in replacement for the old serial loops, sharing the
exact code path workers use.  ``workers=N`` uses a pool of N processes.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.obs.metrics import MetricsRegistry, metrics_scope
from repro.sim.parallel.cache import ResultCache
from repro.sim.parallel.specs import JobSpec, run_job

__all__ = ["JobResult", "ExecutorStats", "ExperimentExecutor"]


@dataclass(frozen=True)
class JobResult:
    """Outcome of one grid cell."""

    spec: JobSpec
    summary: Dict[str, float]
    wall_time: float
    worker_pid: int
    cached: bool = False
    #: Serialised :class:`~repro.obs.metrics.MetricsRegistry` the job's
    #: worker recorded (None for cache entries written before metrics
    #: existed).  The executor folds these into ``executor.metrics``.
    metrics: Optional[Dict] = None


@dataclass
class ExecutorStats:
    """Lifetime counters of one executor (accumulated across ``run`` calls)."""

    jobs_total: int = 0
    jobs_run: int = 0
    cache_hits: int = 0
    cache_misses: int = 0  # lookups that went to simulation (cache configured)
    wall_time: float = 0.0
    busy_time: float = 0.0
    workers: int = 1
    job_times: List[float] = field(default_factory=list)

    @property
    def worker_utilization(self) -> float:
        """Fraction of worker-seconds spent simulating (0 when idle)."""
        capacity = self.workers * self.wall_time
        return self.busy_time / capacity if capacity > 0 else 0.0

    @property
    def mean_job_time(self) -> float:
        return sum(self.job_times) / len(self.job_times) if self.job_times else 0.0

    def describe(self) -> str:
        """One-line human summary (used by the CLI)."""
        return (
            f"{self.jobs_total} jobs ({self.jobs_run} run, "
            f"{self.cache_hits} cached) in {self.wall_time:.2f}s wall, "
            f"mean job {self.mean_job_time * 1000:.0f}ms, "
            f"{self.workers} worker(s) at {100 * self.worker_utilization:.0f}% "
            "utilization"
        )


def _execute_indexed(payload):
    """Pool entry point: run one (index, spec) pair, timing it.

    Each job runs inside its own :func:`~repro.obs.metrics.metrics_scope`
    so engine-side instrumentation lands in a per-job registry that ships
    back with the summary; the executor merges the registries
    associatively, exactly like fleet chunk summaries.
    """
    index, spec = payload
    started = time.perf_counter()
    with metrics_scope() as registry:
        summary = run_job(spec)
    elapsed = time.perf_counter() - started
    registry.counter("executor.jobs").inc()
    registry.histogram("executor.job_wall_s").observe(elapsed)
    return index, summary, elapsed, os.getpid(), registry.to_dict()


class ExperimentExecutor:
    """Runs job grids serially in-process or across a process pool."""

    def __init__(
        self,
        *,
        workers: Optional[int] = None,
        cache_dir=None,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1 or None, got {workers}")
        self.workers = workers
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.progress = progress
        self.stats = ExecutorStats(workers=workers if workers else 1)
        #: Merge of every job's per-worker registry (run or cached), in
        #: completion order — the merge is associative and commutative,
        #: so the totals are independent of scheduling and cache state.
        self.metrics = MetricsRegistry()

    def _absorb_metrics(self, result: JobResult) -> None:
        if result.metrics:
            self.metrics.merge(MetricsRegistry.from_dict(result.metrics))

    # -- internals ---------------------------------------------------------

    def _report(self, done: int, total: int, result: JobResult) -> None:
        if self.progress is None:
            return
        origin = "cache" if result.cached else f"{result.wall_time:.2f}s"
        self.progress(f"[{done}/{total}] {result.spec.describe()} ({origin})")

    def _from_cache(self, spec: JobSpec) -> Optional[JobResult]:
        if self.cache is None:
            return None
        entry = self.cache.get(spec.content_hash())
        if entry is None:
            return None
        return JobResult(
            spec=spec,
            summary=dict(entry["summary"]),
            wall_time=float(entry.get("wall_time", 0.0)),
            worker_pid=0,
            cached=True,
            metrics=entry.get("metrics"),
        )

    def _store(self, result: JobResult) -> None:
        if self.cache is None or result.cached:
            return
        self.cache.put(
            result.spec.content_hash(),
            {
                "spec": result.spec.to_dict(),
                "tag": result.spec.tag,
                "summary": result.summary,
                "wall_time": result.wall_time,
                "metrics": result.metrics,
            },
        )

    def _run_pool(
        self, misses: List[int], jobs: Sequence[JobSpec], results: List[Optional[JobResult]]
    ) -> None:
        done = len(jobs) - len(misses)
        max_workers = min(self.workers or 1, len(misses))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            pending = {
                pool.submit(_execute_indexed, (i, jobs[i])) for i in misses
            }
            while pending:
                finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    index, summary, elapsed, pid, metrics = future.result()
                    result = JobResult(
                        spec=jobs[index],
                        summary=summary,
                        wall_time=elapsed,
                        worker_pid=pid,
                        metrics=metrics,
                    )
                    results[index] = result
                    self._store(result)
                    self._absorb_metrics(result)
                    done += 1
                    self._report(done, len(jobs), result)

    def _run_serial(
        self, misses: List[int], jobs: Sequence[JobSpec], results: List[Optional[JobResult]]
    ) -> None:
        done = len(jobs) - len(misses)
        for i in misses:
            index, summary, elapsed, pid, metrics = _execute_indexed((i, jobs[i]))
            result = JobResult(
                spec=jobs[index],
                summary=summary,
                wall_time=elapsed,
                worker_pid=pid,
                metrics=metrics,
            )
            results[index] = result
            self._store(result)
            self._absorb_metrics(result)
            done += 1
            self._report(done, len(jobs), result)

    # -- public API --------------------------------------------------------

    def describe_cache(self) -> Optional[str]:
        """One-line cache summary (None when no cache is configured)."""
        if self.cache is None:
            return None
        return (
            f"cache: {self.stats.cache_hits} hit(s), "
            f"{self.stats.cache_misses} miss(es), "
            f"{len(self.cache)} entries, "
            f"{self.cache.size_bytes() / 1024:.1f} KiB on disk"
        )

    def run(self, jobs: Sequence[JobSpec]) -> List[JobResult]:
        """Execute a grid; results come back in submission order."""
        jobs = list(jobs)
        started = time.perf_counter()
        results: List[Optional[JobResult]] = [None] * len(jobs)

        misses: List[int] = []
        for i, spec in enumerate(jobs):
            hit = self._from_cache(spec)
            if hit is not None:
                results[i] = hit
                self._absorb_metrics(hit)
            else:
                misses.append(i)
        # Cache hits are reported up front, before any simulation starts.
        reported = 0
        for r in results:
            if r is not None:
                reported += 1
                self._report(reported, len(jobs), r)

        if misses:
            if self.workers is not None and self.workers > 1 and len(misses) > 1:
                self._run_pool(misses, jobs, results)
            else:
                self._run_serial(misses, jobs, results)

        elapsed = time.perf_counter() - started
        finished = [r for r in results if r is not None]
        executed = [r for r in finished if not r.cached]
        self.stats.jobs_total += len(jobs)
        self.stats.jobs_run += len(executed)
        self.stats.cache_hits += len(finished) - len(executed)
        if self.cache is not None:
            self.stats.cache_misses += len(misses)
        self.stats.wall_time += elapsed
        self.stats.busy_time += sum(r.wall_time for r in executed)
        self.stats.job_times.extend(r.wall_time for r in executed)
        return finished  # type: ignore[return-value]
