"""Append-only checkpoint journal for resumable runs.

A sweep or fleet run writes one JSONL line per completed grid cell —
its spec content hash — into a journal keyed by the whole run's
``run_key`` (the hash of every job key in submission order).  Because
results themselves live in the content-addressed
:class:`~repro.sim.parallel.cache.ResultCache`, the journal does not
have to store data to make resume bit-identical: determinism plus the
cache already guarantee that a relaunched run replays completed cells
as exact cache hits.  What the journal adds is crash-safe *bookkeeping*:

* ``etrain sweep --resume`` / ``etrain fleet --resume`` can say how far
  the killed run got, and refuse to "resume" a *different* grid into
  the same journal (the ``run_key`` check);
* the file is append-only and line-framed, so a SIGKILL mid-write costs
  at most one torn tail line — :meth:`RunJournal.attach` truncates the
  torn bytes and carries on, it never refuses to resume over them.

Layout: line 0 is a header ``{"journal": 1, "run_key": ..., "jobs": N}``;
every further line is ``{"key": <sha256>, "tag": ...}``.  Duplicate keys
are fine (they dedupe on load), which keeps appends unconditional.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Set, Tuple

__all__ = ["JOURNAL_VERSION", "JournalMismatchError", "RunJournal", "run_key_of"]

#: Bumped on breaking changes to the journal line format.
JOURNAL_VERSION = 1


class JournalMismatchError(ValueError):
    """``--resume`` pointed an existing journal at a different job grid."""


def _read(path: Path) -> Tuple[Dict, Set[str], int, int]:
    """Parse a journal; returns (header, keys, valid_bytes, torn_bytes).

    Only lines that both parse as JSON *and* end with a newline count —
    anything after the last such line is a torn tail from a crash
    mid-write.  ``valid_bytes`` is where an append must resume from.
    """
    header: Dict = {}
    keys: Set[str] = set()
    valid = 0
    raw = path.read_bytes()
    for line in raw.splitlines(keepends=True):
        if not line.endswith(b"\n"):
            break
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            break
        if not isinstance(record, dict):
            break
        if valid == 0:
            if record.get("journal") != JOURNAL_VERSION:
                break
            header = record
        elif "key" in record:
            keys.add(record["key"])
        valid += len(line)
    return header, keys, valid, len(raw) - valid


class RunJournal:
    """One run's append-only record of completed job keys."""

    def __init__(self, path, run_key: str, total_jobs: int) -> None:
        self.path = Path(path)
        self.run_key = run_key
        self.total_jobs = total_jobs
        self.completed: Set[str] = set()
        #: Torn bytes dropped while resuming (0 for a clean journal).
        self.torn_bytes = 0
        self._fh = None

    @classmethod
    def attach(
        cls, path, run_key: str, total_jobs: int, *, resume: bool = False
    ) -> "RunJournal":
        """Open (or resume) the journal for a run.

        ``resume=False`` always starts fresh, truncating any previous
        journal at ``path``.  ``resume=True`` loads the completed keys
        of a prior run of the *same* grid (same ``run_key``), dropping a
        torn tail if the previous process died mid-append; resuming onto
        a journal written by a different grid raises
        :class:`JournalMismatchError` instead of silently mixing runs.
        """
        journal = cls(path, run_key, total_jobs)
        journal.path.parent.mkdir(parents=True, exist_ok=True)
        if resume and journal.path.exists():
            header, keys, valid, torn = _read(journal.path)
            if header and header.get("run_key") != run_key:
                raise JournalMismatchError(
                    f"journal {journal.path} belongs to run "
                    f"{header.get('run_key', '?')[:12]}..., not "
                    f"{run_key[:12]}...; refusing to resume a different grid"
                )
            journal.completed = keys
            journal.torn_bytes = torn
            if header:
                # Drop the torn tail (if any) and continue appending.
                with open(journal.path, "r+b") as fh:
                    fh.truncate(valid)
                journal._fh = open(journal.path, "a", encoding="utf-8")
                return journal
            # Unreadable/foreign file with no valid header: start over.
        journal._fh = open(journal.path, "w", encoding="utf-8")
        journal._write(
            {"journal": JOURNAL_VERSION, "run_key": run_key, "jobs": total_jobs}
        )
        return journal

    def _write(self, record: Dict) -> None:
        assert self._fh is not None
        self._fh.write(json.dumps(record, sort_keys=True, separators=(",", ":")))
        self._fh.write("\n")
        # Flush per line: a SIGKILLed parent then loses at most the one
        # line the OS had not been handed yet (fsync would survive power
        # loss too, but costs ~1ms/line for a guarantee resume does not
        # need — a lost line is just one redundant cache hit on replay).
        self._fh.flush()

    def record(self, key: str, tag: str = "") -> None:
        """Mark one job complete (idempotent; duplicates are skipped)."""
        if key in self.completed or self._fh is None:
            return
        self.completed.add(key)
        entry: Dict = {"key": key}
        if tag:
            entry["tag"] = tag
        self._write(entry)

    @property
    def resumed_jobs(self) -> int:
        """Completed-key count loaded from a previous run."""
        return len(self.completed)

    def describe(self) -> str:
        """One-line resume status for the CLI."""
        torn = f" (dropped {self.torn_bytes} torn byte(s))" if self.torn_bytes else ""
        return (
            f"journal {self.path.name}: {len(self.completed)}/{self.total_jobs} "
            f"job(s) complete{torn}"
        )

    def close(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self._fh.close()
        self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def run_key_of(job_keys) -> str:
    """Stable identity of a whole grid: SHA-256 over its job keys in order."""
    import hashlib

    digest = hashlib.sha256()
    for key in job_keys:
        digest.update(key.encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()
