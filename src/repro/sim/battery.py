"""Battery models: capacity arithmetic and an energy-harvesting store.

The introduction's arithmetic — "Given a battery capacity of 1700 mAh
with voltage 3.7 V, if the battery life is 10 hours, the smartphone will
spend at least 6 % of its battery capacity on sending heartbeats of only
one app" — is reproduced here as a first-class object, so the day-long
experiment can report savings in battery-percentage and standby-hours
rather than raw joules.

:class:`HarvestingBattery` adds the finite-energy store the
energy-harvesting scheduling literature assumes (Bacinoglu &
Uysal-Biyikoglu, arXiv:1312.4798): charge accrues over time from a
seeded, piecewise-constant harvest process, standalone data bursts drain
it, and a burst the store cannot afford waits.  The engine threads it
through :func:`repro.sim.decision.slot_step`; see ``docs/fidelity.md``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional

__all__ = ["Battery", "GALAXY_S4_BATTERY", "HarvestingBattery"]


@dataclass(frozen=True)
class Battery:
    """An ideal battery (no ageing/temperature effects).

    Attributes
    ----------
    capacity_mah:
        Rated capacity in milliamp-hours.
    voltage:
        Nominal voltage (the paper uses 3.7 V).
    """

    capacity_mah: float = 2600.0
    voltage: float = 3.7

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0:
            raise ValueError(f"capacity_mah must be > 0, got {self.capacity_mah}")
        if self.voltage <= 0:
            raise ValueError(f"voltage must be > 0, got {self.voltage}")

    @property
    def capacity_joules(self) -> float:
        """Total energy content: mAh → A·s → J."""
        return self.capacity_mah / 1000.0 * 3600.0 * self.voltage

    def fraction_used(self, energy_j: float) -> float:
        """Fraction of capacity a given energy drain represents."""
        if energy_j < 0:
            raise ValueError(f"energy_j must be >= 0, got {energy_j}")
        return energy_j / self.capacity_joules

    def percent_used(self, energy_j: float) -> float:
        """Battery percentage (0-100+) consumed by ``energy_j``."""
        return 100.0 * self.fraction_used(energy_j)

    def lifetime_hours(self, mean_power_w: float) -> float:
        """Hours a constant draw of ``mean_power_w`` lasts on a full charge."""
        if mean_power_w <= 0:
            raise ValueError(f"mean_power_w must be > 0, got {mean_power_w}")
        return self.capacity_joules / mean_power_w / 3600.0

    def standby_hours_equivalent(self, energy_j: float, standby_power_w: float = 0.018) -> float:
        """How many hours of deep-sleep standby ``energy_j`` equals.

        The paper phrases heartbeat waste as "roughly 10 hours of standby
        time"; this converts any saving the same way.
        """
        if standby_power_w <= 0:
            raise ValueError("standby_power_w must be > 0")
        return energy_j / standby_power_w / 3600.0


#: The paper's reference battery: "a battery capacity of 1700 mAh with
#: voltage 3.7 V" (Sec. II-D).
GALAXY_S4_BATTERY = Battery(capacity_mah=1700.0, voltage=3.7)


class HarvestingBattery:
    """A finite energy store fed by a seeded harvesting process.

    Harvest power is piecewise constant: window ``k`` (of
    ``harvest_window_s`` seconds) harvests at a rate drawn uniformly from
    ``[0, harvest_rate_max]`` by ``random.Random(seed)``, in window
    order, so the whole charge trajectory is a pure function of the seed.

    The store only changes state at :meth:`try_spend`; between drains the
    level at any time has the closed form ``min(capacity_j, level +
    harvested_since_last_drain)``, which is what makes the engine's
    dense and event-horizon loops agree bit-for-bit: both evaluate the
    same closed form at the same visited slots.  (Harvest rates are
    nonnegative, so charge is monotone between drains and clamping once
    at the query time equals clamping continuously.)

    A standalone data burst of ``b`` bytes costs ``burst_cost_j +
    per_byte_j * b``; heartbeat and piggyback bursts are free — the
    heartbeat fires regardless and the paper's point is that cargo
    riding it adds almost nothing.
    """

    def __init__(
        self,
        *,
        capacity_j: float = 40.0,
        initial_j: float = 20.0,
        harvest_window_s: float = 60.0,
        harvest_rate_max: float = 0.05,
        burst_cost_j: float = 1.0,
        per_byte_j: float = 2e-6,
        seed: int = 0,
    ) -> None:
        if capacity_j <= 0:
            raise ValueError(f"capacity_j must be > 0, got {capacity_j}")
        if not 0.0 <= initial_j <= capacity_j:
            raise ValueError(
                f"initial_j must be in [0, capacity_j], got {initial_j}"
            )
        if harvest_window_s <= 0:
            raise ValueError(
                f"harvest_window_s must be > 0, got {harvest_window_s}"
            )
        if harvest_rate_max < 0:
            raise ValueError(
                f"harvest_rate_max must be >= 0, got {harvest_rate_max}"
            )
        if burst_cost_j < 0 or per_byte_j < 0:
            raise ValueError("burst costs must be >= 0")
        self.capacity_j = float(capacity_j)
        self.harvest_window_s = float(harvest_window_s)
        self.harvest_rate_max = float(harvest_rate_max)
        self.burst_cost_j = float(burst_cost_j)
        self.per_byte_j = float(per_byte_j)
        self.seed = int(seed)
        self._rng = random.Random(seed)
        #: Per-window harvest rates (J/s), extended lazily in order.
        self._rates: List[float] = []
        #: ``_cum[k]`` = joules harvested over ``[0, k * window]``.
        self._cum: List[float] = [0.0]
        #: Level at the last drain, and when that drain happened.
        self._level = float(initial_j)
        self._anchor = 0.0
        self.drains = 0
        self.drained_j = 0.0

    def _ensure_windows(self, k: int) -> None:
        while len(self._rates) <= k:
            rate = self._rng.uniform(0.0, self.harvest_rate_max)
            self._rates.append(rate)
            self._cum.append(self._cum[-1] + rate * self.harvest_window_s)

    def harvested(self, t: float) -> float:
        """Total joules harvested over ``[0, t]`` (capacity ignored)."""
        if t <= 0.0:
            return 0.0
        w = self.harvest_window_s
        k = int(math.floor(t / w))
        self._ensure_windows(k)
        return self._cum[k] + self._rates[k] * (t - k * w)

    def stored_at(self, t: float) -> float:
        """Energy available at time ``t`` (no drains since the last one)."""
        if t < self._anchor:
            t = self._anchor
        gained = self.harvested(t) - self.harvested(self._anchor)
        return min(self.capacity_j, self._level + gained)

    def tx_cost(self, size_bytes: int) -> float:
        """Joules one standalone burst of ``size_bytes`` costs."""
        return self.burst_cost_j + self.per_byte_j * size_bytes

    def can_afford(self, t: float, size_bytes: int) -> bool:
        return self.stored_at(t) >= self.tx_cost(size_bytes)

    def try_spend(self, t: float, size_bytes: int) -> bool:
        """Drain one burst's cost at ``t`` if the store covers it.

        Returns False (and changes nothing) when it does not; the caller
        holds the payload and retries as charge accrues.  The level never
        goes negative by construction.
        """
        cost = self.tx_cost(size_bytes)
        stored = self.stored_at(t)
        if stored < cost:
            return False
        self._level = stored - cost
        self._anchor = t
        self.drains += 1
        self.drained_j += cost
        return True

    def when_stored_at_least(
        self, target_j: float, t0: float, *, max_windows: int = 100_000
    ) -> Optional[float]:
        """Earliest ``t >= t0`` with ``stored_at(t) >= target_j``.

        None when ``target_j`` exceeds capacity or the crossing is not
        found within ``max_windows`` harvest windows (e.g. all-zero
        rates).  Assumes no drains happen in between, which holds for
        the planning callers: a drain would only postpone the crossing,
        and every drain site re-queries.
        """
        if target_j > self.capacity_j:
            return None
        t0 = max(t0, self._anchor)
        if self.stored_at(t0) >= target_j:
            return t0
        w = self.harvest_window_s
        # Unclamped accumulation crosses `target` at the same instant the
        # clamped level does, because target <= capacity and charge is
        # monotone between drains.
        need = target_j - self._level + self.harvested(self._anchor)
        k = int(math.floor(t0 / w))
        self._ensure_windows(k)
        for _ in range(max_windows):
            rate = self._rates[k]
            end_of_window = self._cum[k + 1]
            if end_of_window >= need and rate > 0.0:
                t = k * w + (need - self._cum[k]) / rate
                return max(t, t0)
            k += 1
            self._ensure_windows(k)
        return None
