"""Battery model: turning joules into the paper's battery-life claims.

The introduction's arithmetic — "Given a battery capacity of 1700 mAh
with voltage 3.7 V, if the battery life is 10 hours, the smartphone will
spend at least 6 % of its battery capacity on sending heartbeats of only
one app" — is reproduced here as a first-class object, so the day-long
experiment can report savings in battery-percentage and standby-hours
rather than raw joules.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Battery", "GALAXY_S4_BATTERY"]


@dataclass(frozen=True)
class Battery:
    """An ideal battery (no ageing/temperature effects).

    Attributes
    ----------
    capacity_mah:
        Rated capacity in milliamp-hours.
    voltage:
        Nominal voltage (the paper uses 3.7 V).
    """

    capacity_mah: float = 2600.0
    voltage: float = 3.7

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0:
            raise ValueError(f"capacity_mah must be > 0, got {self.capacity_mah}")
        if self.voltage <= 0:
            raise ValueError(f"voltage must be > 0, got {self.voltage}")

    @property
    def capacity_joules(self) -> float:
        """Total energy content: mAh → A·s → J."""
        return self.capacity_mah / 1000.0 * 3600.0 * self.voltage

    def fraction_used(self, energy_j: float) -> float:
        """Fraction of capacity a given energy drain represents."""
        if energy_j < 0:
            raise ValueError(f"energy_j must be >= 0, got {energy_j}")
        return energy_j / self.capacity_joules

    def percent_used(self, energy_j: float) -> float:
        """Battery percentage (0-100+) consumed by ``energy_j``."""
        return 100.0 * self.fraction_used(energy_j)

    def lifetime_hours(self, mean_power_w: float) -> float:
        """Hours a constant draw of ``mean_power_w`` lasts on a full charge."""
        if mean_power_w <= 0:
            raise ValueError(f"mean_power_w must be > 0, got {mean_power_w}")
        return self.capacity_joules / mean_power_w / 3600.0

    def standby_hours_equivalent(self, energy_j: float, standby_power_w: float = 0.018) -> float:
        """How many hours of deep-sleep standby ``energy_j`` equals.

        The paper phrases heartbeat waste as "roughly 10 hours of standby
        time"; this converts any saving the same way.
        """
        if standby_power_w <= 0:
            raise ValueError("standby_power_w must be > 0")
        return energy_j / standby_power_w / 3600.0


#: The paper's reference battery: "a battery capacity of 1700 mAh with
#: voltage 3.7 V" (Sec. II-D).
GALAXY_S4_BATTERY = Battery(capacity_mah=1700.0, voltage=3.7)
