"""Scenario plumbing: the paper's default evaluation setup in one place.

Most experiments share the same substrate — 3 train apps (QQ, WeChat,
WhatsApp), 3 cargo apps (Mail, Weibo, Cloud) with Poisson arrivals, the
synthetic Wuhan bandwidth trace, the Galaxy S4 power model, a 7200 s
horizon.  :class:`Scenario` bundles it; experiment modules tweak pieces.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Sequence

from repro.bandwidth.models import BandwidthModel
from repro.bandwidth.synth import wuhan_bandwidth_model
from repro.baselines.base import BandwidthEstimator, TransmissionStrategy
from repro.core.packet import Packet, reset_packet_ids
from repro.core.profiles import CargoAppProfile, DEFAULT_CARGO_PROFILES
from repro.heartbeat.apps import default_train_generators
from repro.heartbeat.generators import HeartbeatGenerator
from repro.radio.power_model import GALAXY_S4_3G, PowerModel
from repro.sim.engine import Simulation
from repro.sim.results import SimulationResult
from repro.workload.cargo import synthesize_trace

__all__ = ["Scenario", "default_scenario", "run_strategy"]


@dataclass
class Scenario:
    """A complete experiment substrate, ready to run strategies against.

    The cargo *profiles* stay part of the scenario because strategies
    (eTrain, PerES) need the cost functions at construction time.
    """

    profiles: List[CargoAppProfile]
    train_generators: List[HeartbeatGenerator]
    packets: List[Packet]
    bandwidth: BandwidthModel
    power_model: PowerModel = GALAXY_S4_3G
    horizon: float = 7200.0
    slot: float = 1.0
    #: Declarative origin of this scenario, when it was built from (or is
    #: representable as) a :class:`repro.sim.parallel.specs.ScenarioSpec`.
    #: Experiments use it to fan equivalent runs across worker processes.
    spec: Optional[object] = None

    def fresh_packets(self) -> List[Packet]:
        """Copy of the packet trace with scheduling state reset.

        Strategies mutate packets (scheduled/completion times), so each
        run must receive its own copies for results to be independent.
        Copies keep the original ``packet_id`` — allocating new ids from
        the global counter would make ids drift across repeated runs of
        the same scenario (and across processes replaying one job spec).
        """
        return [
            Packet(
                app_id=p.app_id,
                arrival_time=p.arrival_time,
                size_bytes=p.size_bytes,
                deadline=p.deadline,
                packet_id=p.packet_id,
                direction=p.direction,
            )
            for p in self.packets
        ]

    def estimator(self, *, lag: float = 2.0, noise: float = 0.3, seed: int = 0) -> BandwidthEstimator:
        """A bandwidth estimator bound to this scenario's channel."""
        return BandwidthEstimator(self.bandwidth, lag=lag, noise=noise, seed=seed)


def default_scenario(
    *,
    seed: int = 0,
    horizon: float = 7200.0,
    train_count: int = 3,
    profiles: Optional[Sequence[CargoAppProfile]] = None,
    bandwidth: Optional[BandwidthModel] = None,
    power_model: PowerModel = GALAXY_S4_3G,
) -> Scenario:
    """The Sec. VI-A setup: 3 trains, 3 cargos, Wuhan trace, S4 power."""
    profile_list = list(profiles) if profiles is not None else DEFAULT_CARGO_PROFILES()
    reset_packet_ids()

    # When every input is the stock default (or a registered power
    # model), the scenario is representable as a declarative spec —
    # attach it so experiments can replay this scenario in pool workers.
    spec = None
    if profiles is None and bandwidth is None:
        from repro.sim.parallel.specs import ScenarioSpec, power_model_name

        pm_name = power_model_name(power_model)
        if pm_name is not None:
            spec = ScenarioSpec(
                seed=seed,
                horizon=horizon,
                train_count=train_count,
                power_model=pm_name,
            )

    return Scenario(
        profiles=profile_list,
        train_generators=default_train_generators(train_count),
        packets=synthesize_trace(profile_list, horizon=horizon, seed=seed),
        bandwidth=bandwidth if bandwidth is not None else wuhan_bandwidth_model(),
        power_model=power_model,
        horizon=horizon,
        spec=spec,
    )


def run_strategy(
    strategy: TransmissionStrategy, scenario: Scenario, *, dense: bool = False
) -> SimulationResult:
    """Run one strategy over a scenario (on a fresh packet copy).

    ``dense=True`` selects the slot-by-slot reference loop instead of the
    event-horizon loop; both produce bit-identical results (see
    ``docs/performance.md``).
    """
    sim = Simulation(
        strategy,
        scenario.train_generators,
        scenario.fresh_packets(),
        power_model=scenario.power_model,
        bandwidth=scenario.bandwidth,
        horizon=scenario.horizon,
        slot=scenario.slot,
        dense=dense,
    )
    return sim.run()
