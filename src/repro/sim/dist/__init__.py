"""Multi-node sharded execution: TCP chunk coordinator and pull workers.

``repro.sim.dist`` closes the placement half of the parallel-execution
story (ROADMAP item 2): the same job grids the process-pool
:class:`~repro.sim.parallel.executor.ExperimentExecutor` fans across
local processes can instead be leased over TCP to workers on any host,
with the coordinator keeping sole ownership of the
:class:`~repro.sim.parallel.journal.RunJournal` and
:class:`~repro.sim.parallel.cache.ResultCache` so ``--resume`` semantics
are unchanged.  Results are content-addressed: workers hash what they
upload, the coordinator re-hashes before journaling, and spec content
hashes keep results chunk- and placement-invariant — a distributed run
returns the exact bytes of a serial run.

See ``docs/parallelism.md`` (topology) and ``docs/robustness.md``
(lease lifecycle and failure semantics).
"""

from repro.sim.dist.coordinator import DistConfig, DistExecutor
from repro.sim.dist.protocol import (
    DIST_PROTOCOL_VERSION,
    job_from_wire,
    job_to_wire,
    result_hash,
)

__all__ = [
    "DIST_PROTOCOL_VERSION",
    "DistConfig",
    "DistExecutor",
    "job_from_wire",
    "job_to_wire",
    "result_hash",
]
