"""Pull-based dist worker: lease, simulate, upload, repeat.

``python -m repro.sim.dist.worker --connect HOST:PORT`` (or ``etrain
worker --connect ...``) attaches to a running coordinator, completes
the versioned hello handshake, then drives a blocking lease loop.  Each
leased job is rebuilt from its canonical wire dict, checked against the
leased content key (a coordinator/worker version skew fails loudly, not
silently under a stale key), and executed through the *same*
``_execute_indexed`` entry point pool workers use — identical metrics,
identical fault injection (the coordinator ships its
:class:`~repro.faults.FaultPlan` in the hello response, so an injected
crash kills this whole process mid-chunk, which is exactly the host
failure the lease machinery is built for).

While a job runs, a daemon heartbeat thread shares the socket under a
write lock and beats at the coordinator-advertised cadence; the main
thread is the only reader and discards heartbeat acks while waiting for
lease/result responses.  Connection loss triggers bounded-backoff
reconnection (work keeps running; the finished result is uploaded on
the new connection and deduplicated coordinator-side by content hash).

Exit codes: 0 — run complete (``done`` lease); 1 — coordinator
unreachable/lost for good; 2 — protocol rejection (version skew).
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import threading
import time
from typing import Dict, Optional

from repro.faults import FaultPlan
from repro.sim.dist.protocol import (
    DIST_PROTOCOL_VERSION,
    encode_frame,
    job_from_wire,
    result_hash,
)
from repro.sim.parallel.executor import _execute_indexed
from repro.workload.trace_io import NdjsonDecoder

__all__ = ["run_worker", "main"]

#: Give up on the coordinator after this many seconds without a
#: successful connection (covers both startup and mid-run loss).
CONNECT_PATIENCE_S = 30.0


class _CoordinatorLost(Exception):
    """The TCP connection died; reconnect and resume the lease loop."""


class _Heartbeat:
    """Daemon thread beating one lease while its job computes."""

    def __init__(self, sock: socket.socket, lock: threading.Lock,
                 frame: Dict, period: float) -> None:
        self._sock = sock
        self._lock = lock
        self._payload = encode_frame(frame)
        self._period = period
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)

    def _run(self) -> None:
        while not self._stop.wait(self._period):
            try:
                with self._lock:
                    self._sock.sendall(self._payload)
            except OSError:
                return  # main thread handles the dead socket


class _Connection:
    """Blocking request/response channel with heartbeat-ack filtering."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.lock = threading.Lock()
        self._decoder = NdjsonDecoder()
        self._ready: list = []

    def request(self, frame: Dict) -> Dict:
        """Send one frame; return the next non-heartbeat response."""
        try:
            with self.lock:
                self.sock.sendall(encode_frame(frame))
        except OSError as exc:
            raise _CoordinatorLost(str(exc)) from exc
        while True:
            resp = self._next_frame()
            if resp.get("op") == "heartbeat":
                continue  # ack for the heartbeat thread; drop it
            return resp

    def _next_frame(self) -> Dict:
        while True:
            while self._ready:
                frame = self._ready.pop(0)
                if frame.obj is not None:
                    return frame.obj
            try:
                data = self.sock.recv(65536)
            except OSError as exc:
                raise _CoordinatorLost(str(exc)) from exc
            if not data:
                raise _CoordinatorLost("connection closed by coordinator")
            self._ready.extend(self._decoder.feed(data))

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - racing close
            pass


def _connect(host: str, port: int, patience: float) -> Optional[_Connection]:
    """Dial with bounded exponential backoff; None when patience runs out."""
    deadline = time.monotonic() + patience
    delay = 0.05
    while True:
        try:
            return _Connection(socket.create_connection((host, port), timeout=10.0))
        except OSError:
            if time.monotonic() + delay > deadline:
                return None
            time.sleep(delay)
            delay = min(delay * 2.0, 1.0)


def _run_lease(conn: _Connection, lease: Dict, faults: Optional[FaultPlan],
               heartbeat_s: float, worker: str) -> Dict:
    """Execute one leased job and build its result (or fail) frame."""
    index, key, attempt = lease["index"], lease["key"], lease["attempt"]
    try:
        spec = job_from_wire(lease["job"])
        if spec.content_hash() != key:
            raise ValueError(
                f"rebuilt spec hashes to {spec.content_hash()[:16]}, "
                f"lease says {key[:16]} (version skew?)"
            )
    except (KeyError, ValueError, TypeError) as exc:
        return {"op": "fail", "worker": worker, "index": index, "key": key,
                "attempt": attempt, "error": str(exc)}
    hb_frame = {"op": "heartbeat", "worker": worker, "index": index, "key": key}
    try:
        with _Heartbeat(conn.sock, conn.lock, hb_frame, heartbeat_s):
            # Same entry point as pool workers: injects faults (a crash
            # exits this process), runs under a metrics scope, times the
            # job.  Heartbeats keep beating through an injected hang —
            # only the coordinator's hard deadline bounds that.
            index, summary, elapsed, pid, metrics = _execute_indexed(
                (index, spec, faults, attempt)
            )
    except Exception as exc:  # simulation failure: NACK, don't die
        return {"op": "fail", "worker": worker, "index": index, "key": key,
                "attempt": attempt, "error": f"{type(exc).__name__}: {exc}"}
    return {
        "op": "result",
        "worker": worker,
        "index": index,
        "key": key,
        "attempt": attempt,
        "summary": summary,
        "wall_time": elapsed,
        "pid": pid,
        "metrics": metrics,
        "hash": result_hash(key, summary, metrics),
    }


def run_worker(host: str, port: int, *, name: Optional[str] = None,
               patience: float = CONNECT_PATIENCE_S) -> int:
    """Serve one coordinator until its run completes.  Returns exit code."""
    worker = name or f"{socket.gethostname()}-{os.getpid()}"
    outbox: Optional[Dict] = None  # finished frame surviving a reconnect
    while True:
        conn = _connect(host, port, patience)
        if conn is None:
            print(f"worker {worker}: coordinator {host}:{port} unreachable",
                  file=sys.stderr)
            return 1
        try:
            hello = conn.request({
                "op": "hello",
                "proto": DIST_PROTOCOL_VERSION,
                "worker": worker,
                "pid": os.getpid(),
            })
            if not hello.get("ok"):
                err = hello.get("error", {})
                print(f"worker {worker}: rejected: {err.get('code')}: "
                      f"{err.get('message')}", file=sys.stderr)
                return 2
            faults = (FaultPlan.from_dict(hello["faults"])
                      if hello.get("faults") else None)
            heartbeat_s = float(hello.get("heartbeat_s", 10.0))
            while True:
                if outbox is not None:
                    conn.request(outbox)  # stale duplicates are dropped
                    outbox = None
                resp = conn.request({"op": "lease", "worker": worker})
                if resp.get("done"):
                    return 0
                if not resp.get("ok"):
                    err = resp.get("error", {})
                    print(f"worker {worker}: lease rejected: {err.get('code')}",
                          file=sys.stderr)
                    return 2
                if resp.get("idle"):
                    time.sleep(float(resp.get("retry_after", 0.05)))
                    continue
                outbox = _run_lease(conn, resp, faults, heartbeat_s, worker)
                conn.request(outbox)
                outbox = None
        except _CoordinatorLost:
            continue  # redial; an unsent result frame rides along in outbox
        finally:
            conn.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="etrain worker",
        description="Attach to an etrain coordinator and execute leased jobs.",
    )
    parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address")
    parser.add_argument("--name", default=None,
                        help="worker name (default: host-pid)")
    args = parser.parse_args(argv)
    host, sep, port = args.connect.rpartition(":")
    if not sep or not port.isdigit():
        parser.error(f"--connect wants HOST:PORT, got {args.connect!r}")
    return run_worker(host, int(port), name=args.name)


if __name__ == "__main__":
    sys.exit(main())
