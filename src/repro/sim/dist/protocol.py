"""Wire protocol of the distributed executor (version 1).

The coordinator and its workers speak the same canonical NDJSON framing
as ``etrain serve`` (one JSON object per line, sorted keys, compact
separators — see :mod:`repro.serve.protocol`, whose ``encode_frame`` and
``ProtocolError`` this module reuses).  Every worker request receives
exactly one response frame; unsolicited frames never occur, so a worker
can drive the connection with a blocking request/response loop (the
heartbeat thread shares the socket under a lock and its acks are
filtered out by op).

Requests (worker → coordinator)
-------------------------------
``{"op": "hello", "proto": V, "worker": W, "pid": P}``
    Handshake.  Rejected (``proto_mismatch``) unless ``V`` equals
    :data:`DIST_PROTOCOL_VERSION`.  The response carries the run key,
    the total job count, the serialized fault plan workers must apply
    (or null), and the heartbeat cadence the coordinator expects.
``{"op": "lease", "worker": W}``
    Pull one job.  The response is either a lease (``job`` wire dict,
    ``index``, ``key``, ``attempt``, ``deadline_s``), ``idle`` with a
    ``retry_after`` hint (queue momentarily empty or the start barrier
    still closed), or ``done`` (run complete — the worker exits 0).
``{"op": "heartbeat", "worker": W, "index": I, "key": K}``
    Keep a lease alive.  Extends the *heartbeat* deadline only — the
    hard per-job deadline from ``RetryPolicy.job_timeout`` is never
    extended, which is how a hung-but-heartbeating worker is bounded.
``{"op": "result", "worker": W, "index": I, "key": K, "attempt": A,
"summary": S, "wall_time": T, "pid": P, "metrics": M, "hash": H}``
    Upload a finished job.  ``H`` must equal
    :func:`result_hash` ``(K, S, M)``; the coordinator recomputes it
    before accepting (``bad_hash`` otherwise, and the attempt is treated
    as lost).  A duplicate upload for an already-completed index is
    acknowledged as ``stale`` — deterministic jobs make duplicates
    byte-identical, so dropping them is safe.
``{"op": "fail", "worker": W, "index": I, "key": K, "error": E}``
    Negative acknowledgement: the worker could not run the job (spec
    rebuild mismatch, simulation exception).  The coordinator requeues
    or rescues it exactly like a lost lease.

Job wire format
---------------
Specs travel as their canonical cache dicts (``spec.to_dict()``, the
same bytes their content hash covers), discriminated by the
``"kind"`` key: ``"fleet_chunk"`` rebuilds a
:class:`~repro.sim.fleet.spec.FleetChunkSpec`, anything else a sweep
:class:`~repro.sim.parallel.specs.JobSpec`.  Because
``FleetChunkSpec.to_dict`` never includes the shared-memory channel
handle, wire round-trips naturally yield ``channel=None`` and workers
rebuild the channel table locally — the placement-invariance property
the result hashes then verify end to end.  A version skew between
coordinator and worker raises instead of silently producing
differently-keyed results.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict

from repro.serve.protocol import ProtocolError, encode_frame, error_response

__all__ = [
    "DIST_PROTOCOL_VERSION",
    "COORDINATOR_NAME",
    "ProtocolError",
    "encode_frame",
    "error_response",
    "job_to_wire",
    "job_from_wire",
    "result_hash",
]

#: Bumped only on breaking changes; additive fields ride version 1.
DIST_PROTOCOL_VERSION = 1

COORDINATOR_NAME = "etrain-coordinator"


def job_to_wire(spec) -> Dict:
    """A job spec as its canonical, content-hash-covered wire dict."""
    return spec.to_dict()


def job_from_wire(wire: Dict):
    """Rebuild the spec a wire dict describes (exact content-hash peer).

    Raises ``ValueError`` on a malformed dict or a cache-version skew —
    a worker running different code than the coordinator must fail the
    lease loudly rather than compute under a stale key.
    """
    if not isinstance(wire, dict):
        raise ValueError(f"job wire must be a dict, got {type(wire).__name__}")
    if wire.get("kind") == "fleet_chunk":
        from repro.sim.fleet.spec import FLEET_CACHE_VERSION, FleetChunkSpec

        if wire.get("version") != FLEET_CACHE_VERSION:
            raise ValueError(
                f"fleet cache version skew: wire has {wire.get('version')!r}, "
                f"this worker speaks {FLEET_CACHE_VERSION}"
            )
        # Field values ride verbatim: JSON round-trips ints, floats and
        # nulls exactly, and any coercion here (int -> float, say) would
        # change the canonical dict and break key equality.
        return FleetChunkSpec(
            strategy=wire["strategy"],
            params=tuple(sorted(dict(wire["params"]).items())),
            seed=wire["seed"],
            horizon=wire["horizon"],
            rate=wire["rate"],
            power_model=wire["power_model"],
            phase_mode=wire["phase_mode"],
            bandwidth=wire["bandwidth"],
            bandwidth_rate=wire["bandwidth_rate"],
            n_devices=wire["n_devices"],
            device_offset=wire["device_offset"],
        )
    from repro.sim.parallel.specs import (
        CACHE_VERSION,
        JobSpec,
        ScenarioSpec,
        StrategySpec,
    )

    if wire.get("version") != CACHE_VERSION:
        raise ValueError(
            f"job cache version skew: wire has {wire.get('version')!r}, "
            f"this worker speaks {CACHE_VERSION}"
        )
    strategy = StrategySpec.make(
        wire["strategy"]["name"], **dict(wire["strategy"]["params"])
    )
    scenario = ScenarioSpec(**wire["scenario"])
    return JobSpec(strategy=strategy, scenario=scenario)


def result_hash(key: str, summary: Dict, metrics) -> str:
    """Content address of one uploaded result.

    SHA-256 over the canonical JSON of ``{key, summary, metrics}`` —
    ``wall_time`` is deliberately excluded (timing is measurement, not
    content, and must not fail verification).  JSON float serialization
    round-trips exactly, so the worker-side and coordinator-side digests
    of the same payload always agree.
    """
    payload = {"key": key, "summary": summary, "metrics": metrics}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
