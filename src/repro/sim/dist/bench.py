"""Distributed-executor benchmarks: chunk scaling across worker hosts.

Mirrors :mod:`repro.sim.fleet.perf` for the multi-node path: each case
fans one fleet's chunks through a :class:`~repro.sim.dist.DistExecutor`
twice — once with a single spawned worker, once with ``workers_scaled``
— and records the *dispatch speedup*

    speedup = base dispatch_wall / scaled dispatch_wall

``dispatch_wall`` runs from the first lease grant to the last accepted
result, so the ~1s Python/NumPy startup of each worker process (a
fixed, machine-dependent cost that real deployments pay once per host,
not per run) stays outside the timed region; the ratio measures how the
coordinator's lease loop actually scales the simulation work.
``BENCH_dist.json`` commits the ratios; CI re-runs the smoke subset and
fails on >25% regression plus a hard :data:`DIST_SPEEDUP_FLOOR` for
gated cases (the acceptance criterion: >=1.7x at two localhost
workers).  Every case also asserts the two arms' merged fleet summaries
are identical — a scaling number from diverging results would be
meaningless — and ``check_floor`` fails rows where they are not.

Each row records the CPUs the run could actually use
(``len(os.sched_getaffinity(0))``); the scaling floor is only asserted
when that count reaches ``workers_scaled``, because two CPU-bound
worker processes timesharing one core measure ~1.0x by physics, not by
regression.  The identity gate applies on any host.

Runs are uncached on purpose (no ``cache_dir``): both arms recompute
every chunk, so the ratio compares placement against placement.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.sim.perf import BENCH_VERSION, check_results, load_baseline, write_results

__all__ = [
    "DIST_SPEEDUP_FLOOR",
    "DistBenchCase",
    "DIST_BENCH_CASES",
    "run_dist_case",
    "run_dist_benchmarks",
    "check_floor",
    "check_results",
    "load_baseline",
    "write_results",
]

#: Hard acceptance floor for gated cases: two localhost workers must
#: beat one by at least this factor on dispatch wall time.
DIST_SPEEDUP_FLOOR = 1.7


@dataclass(frozen=True)
class DistBenchCase:
    """One single-vs-multi-worker dispatch-scaling cell."""

    name: str
    devices: int
    chunk_size: int
    horizon: float = 1800.0
    seed: int = 0
    strategy: str = "etrain"
    workers_scaled: int = 2
    smoke: bool = False
    #: Assert speedup >= floor (and arm identity) for this case.
    gate: bool = False
    floor: float = DIST_SPEEDUP_FLOOR


#: Eight equal chunks divide evenly across both one and two workers, so
#: the scaled arm never idles on a ragged tail; 256 devices x 1800 s
#: makes each chunk heavy enough (~0.5 s) that lease round-trips are
#: noise.  The full-mode case doubles everything to document scaling at
#: a population where per-chunk channel-table rebuilds amortize better.
DIST_BENCH_CASES: List[DistBenchCase] = [
    DistBenchCase(
        "etrain_dist_2x256x8", 2048, 256, smoke=True, gate=True
    ),
    DistBenchCase("etrain_dist_2x512x8", 4096, 512, gate=True),
]


def _dispatch_once(case: DistBenchCase, workers: int) -> Dict:
    """One uncached dist run; returns dispatch wall + merged summary."""
    from repro.sim.dist.coordinator import DistConfig, DistExecutor
    from repro.sim.fleet.aggregate import FleetChunkSummary
    from repro.sim.fleet.spec import FleetSpec

    spec = FleetSpec.make(
        case.devices,
        case.strategy,
        chunk_size=case.chunk_size,
        horizon=case.horizon,
        seed=case.seed,
    )
    executor = DistExecutor(
        spawn_workers=workers,
        config=DistConfig(min_workers=workers),
    )
    t0 = time.perf_counter()
    results = executor.run(spec.chunk_specs())
    wall = time.perf_counter() - t0
    merged = FleetChunkSummary.merge_all(
        [FleetChunkSummary.from_dict(r.summary) for r in results]
    )
    return {
        "dispatch_wall_s": executor.dispatch_wall,
        "total_wall_s": wall,
        "summary": merged.to_dict(),
    }


def run_dist_case(case: DistBenchCase, repeats: int = 2) -> Dict[str, object]:
    """Benchmark one case: best-of-``repeats`` per arm, identity-checked."""
    from repro.sim.fleet.runner import peak_rss_bytes

    rss_before = peak_rss_bytes(include_children=True)
    base: Optional[Dict] = None
    for _ in range(repeats):
        run = _dispatch_once(case, 1)
        if base is None or run["dispatch_wall_s"] < base["dispatch_wall_s"]:
            base = run
    scaled: Optional[Dict] = None
    for _ in range(repeats):
        run = _dispatch_once(case, case.workers_scaled)
        if scaled is None or run["dispatch_wall_s"] < scaled["dispatch_wall_s"]:
            scaled = run
    assert base is not None and scaled is not None
    speedup = (
        base["dispatch_wall_s"] / scaled["dispatch_wall_s"]
        if scaled["dispatch_wall_s"] > 0
        else 0.0
    )
    return {
        "name": case.name,
        "strategy": case.strategy,
        "devices": case.devices,
        "chunks": (case.devices + case.chunk_size - 1) // case.chunk_size,
        "chunk_size": case.chunk_size,
        "horizon": case.horizon,
        "seed": case.seed,
        "workers_base": 1,
        "workers_scaled": case.workers_scaled,
        "cpus": len(os.sched_getaffinity(0)),
        "smoke": case.smoke,
        "gate": case.gate,
        "floor": case.floor,
        "base_dispatch_s": base["dispatch_wall_s"],
        "scaled_dispatch_s": scaled["dispatch_wall_s"],
        "base_total_s": base["total_wall_s"],
        "scaled_total_s": scaled["total_wall_s"],
        "speedup": speedup,
        "identical": base["summary"] == scaled["summary"],
        # Workers are child processes, so include reaped children.
        "peak_rss_delta_bytes": max(
            0, peak_rss_bytes(include_children=True) - rss_before
        ),
    }


def run_dist_benchmarks(
    mode: str = "full",
    repeats: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Run the dist suite and return the benchmark document."""
    if mode not in ("full", "smoke"):
        raise ValueError(f"mode must be 'full' or 'smoke', got {mode!r}")
    if repeats is None:
        repeats = 3 if mode == "full" else 2
    cases = [c for c in DIST_BENCH_CASES if mode == "full" or c.smoke]
    rows: List[Dict[str, object]] = []
    for case in cases:
        row = run_dist_case(case, repeats=repeats)
        rows.append(row)
        if progress is not None:
            progress(
                f"{row['name']:22s} 1w {row['base_dispatch_s']:6.2f}s  "
                f"{row['workers_scaled']}w {row['scaled_dispatch_s']:6.2f}s  "
                f"speedup {row['speedup']:5.2f}x  "
                f"identical {row['identical']}"
            )
    return {
        "version": BENCH_VERSION,
        "suite": "dist",
        "mode": mode,
        "repeats": repeats,
        "python": sys.version.split()[0],
        "cases": rows,
    }


def check_floor(results: Dict[str, object]) -> List[str]:
    """Gated cases must scale past their floor *and* agree bit-for-bit.

    The floor applies only to rows measured with at least
    ``workers_scaled`` usable CPUs — a single-core host cannot scale
    CPU-bound work no matter how good the coordinator is.  Identity is
    gated unconditionally.
    """
    failures = []
    for row in results["cases"]:
        if not row.get("gate"):
            continue
        scalable = row.get("cpus", 0) >= row.get("workers_scaled", 2)
        if scalable and row["speedup"] < row.get("floor", DIST_SPEEDUP_FLOOR):
            failures.append(
                f"{row['name']}: {row['speedup']:.2f}x below the "
                f"{row.get('floor', DIST_SPEEDUP_FLOOR):.1f}x scaling floor "
                f"at {row['workers_scaled']} workers"
            )
        if not row.get("identical"):
            failures.append(
                f"{row['name']}: merged summaries diverge between "
                f"1 and {row['workers_scaled']} workers"
            )
    return failures


if __name__ == "__main__":
    from repro.cli import main

    sys.exit(main(["bench", "--suite", "dist"] + sys.argv[1:]))
