"""TCP chunk coordinator: the multi-node :class:`ExperimentExecutor`.

:class:`DistExecutor` runs the exact grid the process-pool executor
runs, but places the cache misses on pull-based TCP workers
(:mod:`repro.sim.dist.worker`) instead of local pool processes.  It is
a thin placement layer: cache prefill, journaling, the result-hole
check and stats accounting are all inherited — only
``_dispatch(misses, jobs, results)`` is overridden, with an asyncio
lease server.

Ownership and failure semantics
-------------------------------
The coordinator is the *sole* owner of the
:class:`~repro.sim.parallel.journal.RunJournal` and
:class:`~repro.sim.parallel.cache.ResultCache`: workers never touch
disk state, they upload content-addressed results
(:func:`~repro.sim.dist.protocol.result_hash`-verified before anything
is journaled), so ``--resume`` after killing the coordinator or any
worker behaves exactly like the single-node story in
``docs/robustness.md``.

Every lease carries two deadlines:

* a **heartbeat deadline** (``DistConfig.lease_timeout`` past the last
  heartbeat) that catches silent host death and network partitions, and
* a **hard deadline** (``RetryPolicy.job_timeout`` past the grant,
  never extended) that bounds a hung-but-heartbeating worker — the
  distributed analogue of the pool's hung-worker kill.

A connection close revokes that worker's leases immediately (the fast
path, mirroring ``BrokenProcessPool``); the deadlines are the backstop.
Lost jobs are requeued under the same per-job
``RetryPolicy.max_retries`` budget the pool uses, count the same
``retries`` / ``worker_failures`` / ``timeouts`` stats, and over-budget
jobs get the same last-resort in-process serial rescue (fault injection
off), so a distributed run degrades in throughput, never in results.

When ``spawn_workers > 0`` the coordinator spawns that many local
worker processes itself (the ``--workers-remote N`` CLI path) and
replaces dead ones up to ``RetryPolicy.max_pool_rebuilds`` respawns;
past that budget, with no external workers attached, the remaining
queue degrades to in-process serial execution (``serial_fallbacks``),
exactly like a pool that will not stay up.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.obs.events import EventType
from repro.sim.dist.protocol import (
    COORDINATOR_NAME,
    DIST_PROTOCOL_VERSION,
    ProtocolError,
    encode_frame,
    error_response,
    job_to_wire,
    result_hash,
)
from repro.sim.parallel.executor import (
    ExperimentExecutor,
    JobResult,
    _execute_indexed,
    _job_key,
)
from repro.sim.parallel.journal import run_key_of
from repro.workload.trace_io import NdjsonDecoder

__all__ = ["DistConfig", "DistExecutor"]


@dataclass(frozen=True)
class DistConfig:
    """Knobs of the coordinator's lease server."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (resolved into ``DistExecutor.port``).
    port: int = 0
    #: Seconds a lease survives without a heartbeat before it is revoked
    #: and the job requeued.  The advertised heartbeat cadence is a
    #: third of this, so one lost beat never kills a healthy lease.
    lease_timeout: float = 30.0
    #: Leases are granted only once this many workers have completed the
    #: hello handshake (a one-way latch).  0 means "first worker starts
    #: the run"; the spawned-worker CLI path sets it to the worker count
    #: so scaling measurements exclude worker startup.
    min_workers: int = 0
    #: ``retry_after`` hint returned with idle lease responses.
    idle_retry: float = 0.05

    def __post_init__(self) -> None:
        if self.lease_timeout <= 0:
            raise ValueError(f"lease_timeout must be > 0, got {self.lease_timeout}")
        if self.min_workers < 0:
            raise ValueError(f"min_workers must be >= 0, got {self.min_workers}")

    @property
    def heartbeat_s(self) -> float:
        return max(0.2, self.lease_timeout / 3.0)


@dataclass
class _Lease:
    """One outstanding job grant."""

    index: int
    key: str
    worker: str
    attempt: int
    hb_deadline: float  # monotonic; pushed forward by heartbeats
    hard_deadline: Optional[float]  # monotonic; never extended


class DistExecutor(ExperimentExecutor):
    """Executor whose misses run on TCP lease workers.

    Results are byte-identical to serial and pool execution: workers
    run the same ``_execute_indexed`` entry point on specs rebuilt from
    their canonical wire dicts, and content hashes are verified at both
    ends (spec key on lease, result hash on upload).
    """

    def __init__(
        self,
        *,
        spawn_workers: int = 0,
        config: Optional[DistConfig] = None,
        announce: Optional[Callable[[str], None]] = None,
        **kwargs,
    ) -> None:
        super().__init__(workers=None, **kwargs)
        if spawn_workers < 0:
            raise ValueError(f"spawn_workers must be >= 0, got {spawn_workers}")
        self.spawn_workers = spawn_workers
        self.config = config if config is not None else DistConfig()
        #: Optional callback told the resolved listen address (external
        #: workers need the ephemeral port before they can connect).
        self.announce = announce
        self.host = self.config.host
        self.port = self.config.port
        #: Wall seconds from the first lease grant to the last accepted
        #: result — the placement-independent scaling signal the dist
        #: bench gates on (worker startup and handshake excluded).
        self.dispatch_wall = 0.0
        self.stats.workers = max(1, spawn_workers or self.config.min_workers)

    # -- placement hook ----------------------------------------------------

    def _dispatch(self, misses, jobs, results) -> None:
        asyncio.run(self._serve(misses, jobs, results))

    # -- lease server ------------------------------------------------------

    async def _serve(
        self,
        misses: List[int],
        jobs: Sequence,
        results: List[Optional[JobResult]],
    ) -> None:
        self._jobs = jobs
        self._results_ref = results
        self._total = len(jobs)
        self._done_count = self._total - len(misses)
        self._queue: deque = deque(misses)
        self._submissions: Dict[int, int] = {i: 0 for i in misses}
        self._leases: Dict[int, _Lease] = {}
        self._remaining: Set[int] = set(misses)
        self._rescues: deque = deque()
        self._rescue_task: Optional[asyncio.Task] = None
        self._done_event = asyncio.Event()
        self._connected = 0
        self._barrier_open = self.config.min_workers == 0
        self._respawns = 0
        self._spawn_serial = 0
        self._spawned: List[subprocess.Popen] = []
        self._t_first_lease: Optional[float] = None
        self._t_last_result: Optional[float] = None
        self._run_key = run_key_of(_job_key(spec) for spec in jobs)

        server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        self.host = self.config.host
        self.port = server.sockets[0].getsockname()[1]
        if self.announce is not None:
            self.announce(
                f"coordinator: listening on {self.host}:{self.port} "
                f"({len(misses)} job(s) to lease, run {self._run_key[:16]})"
            )
        watchdog = asyncio.create_task(self._watchdog())
        try:
            for _ in range(self.spawn_workers):
                self._spawn_one()
            await self._done_event.wait()
            # Grace period: keep answering `done` leases until connected
            # workers hang up, so they exit 0 instead of hitting a reset.
            deadline = time.monotonic() + 5.0
            while self._connected > 0 and time.monotonic() < deadline:
                await asyncio.sleep(0.02)
        finally:
            watchdog.cancel()
            try:
                await watchdog
            except asyncio.CancelledError:
                pass
            if self._rescue_task is not None:
                try:
                    await self._rescue_task
                except asyncio.CancelledError:  # pragma: no cover
                    pass
            server.close()
            await server.wait_closed()
            await asyncio.get_running_loop().run_in_executor(None, self._reap_all)
        if self._t_first_lease is not None and self._t_last_result is not None:
            self.dispatch_wall = self._t_last_result - self._t_first_lease

    async def _on_connection(self, reader, writer) -> None:
        decoder = NdjsonDecoder()
        held: Dict[int, _Lease] = {}
        state = {"hello": False, "worker": "?"}
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                for frame in decoder.feed(data):
                    if frame.error is not None:
                        exc = ProtocolError("parse_error", str(frame.error))
                        writer.write(encode_frame(error_response(None, exc, {})))
                    elif frame.obj is not None:
                        writer.write(encode_frame(self._handle(frame.obj, held, state)))
                await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            self._revoke(held, state["worker"])
            if state["hello"]:
                self._connected -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - racing close
                pass

    # -- op handlers (all synchronous: state mutations never interleave) ---

    def _handle(self, request: Dict, held: Dict[int, _Lease], state: Dict) -> Dict:
        op = request.get("op")
        try:
            if not isinstance(request, dict) or not isinstance(op, str):
                raise ProtocolError("bad_request", "frame must carry a string op")
            if op == "hello":
                return self._on_hello(request, state)
            if not state["hello"]:
                raise ProtocolError("no_hello", "handshake required before any other op")
            if op == "lease":
                return self._on_lease(state["worker"], held)
            if op == "heartbeat":
                return self._on_heartbeat(request)
            if op == "result":
                return self._on_result(request, held)
            if op == "fail":
                return self._on_fail(request, held)
            raise ProtocolError("unknown_op", f"unknown op {op!r}")
        except ProtocolError as exc:
            return error_response(op if isinstance(op, str) else None, exc, request)

    def _on_hello(self, request: Dict, state: Dict) -> Dict:
        proto = request.get("proto")
        if proto != DIST_PROTOCOL_VERSION:
            raise ProtocolError(
                "proto_mismatch",
                f"coordinator speaks dist protocol {DIST_PROTOCOL_VERSION}, "
                f"worker sent {proto!r}",
            )
        if not state["hello"]:
            state["hello"] = True
            self._connected += 1
            self.metrics.counter("dist.workers_connected").inc()
        state["worker"] = str(request.get("worker") or f"worker-{self._connected}")
        if not self._barrier_open and self._connected >= self.config.min_workers:
            self._barrier_open = True
        return {
            "ok": True,
            "op": "hello",
            "proto": DIST_PROTOCOL_VERSION,
            "server": COORDINATOR_NAME,
            "run_key": self._run_key,
            "jobs": self._total,
            "faults": self.faults.to_dict() if self.faults is not None else None,
            "heartbeat_s": self.config.heartbeat_s,
            "lease_timeout_s": self.config.lease_timeout,
        }

    def _on_lease(self, worker: str, held: Dict[int, _Lease]) -> Dict:
        if not self._remaining:
            return {"ok": True, "op": "lease", "done": True}
        if not self._barrier_open or not self._queue:
            return {
                "ok": True,
                "op": "lease",
                "idle": True,
                "retry_after": self.config.idle_retry,
            }
        i = self._queue.popleft()
        if self._t_first_lease is None:
            self._t_first_lease = time.perf_counter()
        attempt = self._submissions[i] + 1
        self._submissions[i] = attempt
        if attempt > 1:
            self._count_fault("retries")
            self._emit(
                {
                    "ev": EventType.JOB_RETRY,
                    "job": self._jobs[i].describe(),
                    "attempt": attempt,
                }
            )
        key = _job_key(self._jobs[i])
        now = time.monotonic()
        lease = _Lease(
            index=i,
            key=key,
            worker=worker,
            attempt=attempt,
            hb_deadline=now + self.config.lease_timeout,
            hard_deadline=(
                now + self.retry.job_timeout
                if self.retry.job_timeout is not None
                else None
            ),
        )
        self._leases[i] = lease
        held[i] = lease
        self.metrics.counter("dist.leases").inc()
        return {
            "ok": True,
            "op": "lease",
            "index": i,
            "key": key,
            "attempt": attempt,
            "deadline_s": self.config.lease_timeout,
            "job": job_to_wire(self._jobs[i]),
        }

    def _on_heartbeat(self, request: Dict) -> Dict:
        lease = self._leases.get(request.get("index"))
        if lease is None or lease.key != request.get("key"):
            return {"ok": True, "op": "heartbeat", "extended": False}
        lease.hb_deadline = time.monotonic() + self.config.lease_timeout
        return {"ok": True, "op": "heartbeat", "extended": True}

    def _on_result(self, request: Dict, held: Dict[int, _Lease]) -> Dict:
        i = request.get("index")
        key = request.get("key")
        if (
            not isinstance(i, int)
            or not 0 <= i < self._total
            or key != _job_key(self._jobs[i])
        ):
            raise ProtocolError(
                "bad_request", "result index/key do not match any job of this run"
            )
        summary = request.get("summary")
        metrics = request.get("metrics")
        if result_hash(key, summary, metrics) != request.get("hash"):
            # A corrupt upload spends the attempt: revoke the lease and
            # requeue, exactly like a lost worker.
            self.metrics.counter("dist.hash_rejects").inc()
            lease = self._leases.get(i)
            if lease is not None and held.get(i) is lease:
                del self._leases[i]
                held.pop(i, None)
                self._lost(i)
            raise ProtocolError(
                "bad_hash", "result hash does not match uploaded content"
            )
        # A verified upload settles the index no matter who holds the
        # lease (first write wins; deterministic jobs make any duplicate
        # byte-identical, so dropping it as stale is safe).
        if self._leases.get(i) is not None:
            del self._leases[i]
        held.pop(i, None)
        if i not in self._remaining:
            return {"ok": True, "op": "result", "accepted": False, "stale": True}
        result = JobResult(
            spec=self._jobs[i],
            summary=summary,
            wall_time=float(request.get("wall_time", 0.0)),
            worker_pid=int(request.get("pid", 0)),
            metrics=metrics,
        )
        self._settle(i, result)
        return {"ok": True, "op": "result", "accepted": True, "stale": False}

    def _on_fail(self, request: Dict, held: Dict[int, _Lease]) -> Dict:
        i = request.get("index")
        lease = self._leases.get(i)
        if lease is not None and held.get(i) is lease:
            del self._leases[i]
            held.pop(i, None)
            self.metrics.counter("dist.nacks").inc()
            self._lost(i)
        return {"ok": True, "op": "fail"}

    # -- loss, rescue and completion ---------------------------------------

    def _settle(self, i: int, result: JobResult) -> None:
        """Record one verified completion (upload or in-process rescue)."""
        self._results_ref[i] = result
        self._remaining.discard(i)
        self._t_last_result = time.perf_counter()
        self._done_count = self._finish(result, self._done_count, self._total)
        if not self._remaining and not self._done_event.is_set():
            self._done_event.set()

    def _lost(self, i: int) -> None:
        """Requeue a lost attempt within budget, else queue a rescue."""
        if i not in self._remaining:
            return
        if self._submissions[i] <= self.retry.max_retries:
            self._queue.append(i)
        else:
            self._rescues.append(i)
            self._kick_rescues()

    def _revoke(self, held: Dict[int, _Lease], worker: str) -> None:
        """Connection closed: drop every lease it still holds (fast path)."""
        lost = []
        for i, lease in list(held.items()):
            if self._leases.get(i) is lease:
                del self._leases[i]
                if i in self._remaining:
                    lost.append(i)
        held.clear()
        if not lost:
            return
        self._count_fault("worker_failures")
        self._emit(
            {
                "ev": EventType.WORKER_FAILURE,
                "lost": len(lost),
                "timed_out": 0,
                "worker": worker,
            }
        )
        for i in lost:
            self._lost(i)
        # A dropped connection with live leases usually means the process
        # behind it died; respawn now rather than on the next watchdog
        # tick so the fleet is back to strength before the requeued
        # leases are handed out (a fast surviving worker can otherwise
        # drain the queue first and the dead slot is never refilled).
        self._tend_spawned()

    def _kick_rescues(self) -> None:
        if self._rescue_task is None or self._rescue_task.done():
            self._rescue_task = asyncio.ensure_future(self._drain_rescues())

    async def _drain_rescues(self) -> None:
        """Run over-budget jobs in-process, compute off the event loop.

        Only the simulation itself runs in the thread; journaling,
        caching and completion bookkeeping stay on the loop thread so
        they never interleave with the op handlers.
        """
        loop = asyncio.get_running_loop()
        while self._rescues:
            i = self._rescues.popleft()
            if i not in self._remaining:
                continue
            self._count_fault("serial_rescues")
            index, summary, elapsed, pid, metrics = await loop.run_in_executor(
                None, _execute_indexed, (i, self._jobs[i], None, 1)
            )
            if index not in self._remaining:  # pragma: no cover - late upload won
                continue
            self._settle(
                index,
                JobResult(
                    spec=self._jobs[index],
                    summary=summary,
                    wall_time=elapsed,
                    worker_pid=pid,
                    metrics=metrics,
                ),
            )

    async def _watchdog(self) -> None:
        """Expire dead leases and keep the spawned-worker fleet alive."""
        poll = max(0.01, self.retry.poll_interval)
        while True:
            await asyncio.sleep(poll)
            now = time.monotonic()
            for i, lease in list(self._leases.items()):
                if lease.hard_deadline is not None and now > lease.hard_deadline:
                    self._count_fault("timeouts")
                    self._expire(i, lease, timed_out=True)
                elif now > lease.hb_deadline:
                    self._count_fault("worker_failures")
                    self._expire(i, lease, timed_out=False)
            self._tend_spawned()

    def _expire(self, i: int, lease: _Lease, *, timed_out: bool) -> None:
        del self._leases[i]
        self.metrics.counter("dist.lease_expiries").inc()
        self._emit(
            {
                "ev": EventType.LEASE_EXPIRED,
                "job": self._jobs[i].describe(),
                "worker": lease.worker,
                "timed_out": int(timed_out),
            }
        )
        self._lost(i)

    # -- spawned local workers (the --workers-remote path) -----------------

    def _spawn_one(self) -> None:
        import repro

        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root + os.pathsep + existing if existing else src_root
        )
        name = f"local-{self._spawn_serial}"
        self._spawn_serial += 1
        # Workers write nothing the coordinator's caller should see;
        # silencing them keeps CLI output byte-identical to local runs.
        self._spawned.append(
            subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.sim.dist.worker",
                    "--connect",
                    f"{self.host}:{self.port}",
                    "--name",
                    name,
                ],
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
        )

    def _tend_spawned(self) -> None:
        """Respawn dead local workers within the rebuild budget.

        Past the budget with nobody connected, the remaining queue
        degrades to in-process serial execution — the distributed
        analogue of the pool executor's serial fallback.
        """
        if self.spawn_workers <= 0 or self._done_event.is_set():
            return
        for k, proc in enumerate(self._spawned):
            if proc.poll() is None:
                continue
            if self._respawns >= self.retry.max_pool_rebuilds:
                continue
            self._respawns += 1
            self._count_fault("pool_rebuilds")
            self._spawn_one()
            self._spawned[k] = self._spawned.pop()
        if (
            self._respawns >= self.retry.max_pool_rebuilds
            and self._connected == 0
            and not any(p.poll() is None for p in self._spawned)
            and self._queue
        ):
            self._count_fault("serial_fallbacks")
            self._emit(
                {
                    "ev": EventType.SERIAL_FALLBACK,
                    "jobs": len(self._queue),
                    "breaks": self._respawns,
                }
            )
            while self._queue:
                self._rescues.append(self._queue.popleft())
            self._kick_rescues()

    def _reap_all(self) -> None:
        """Collect spawned workers at shutdown (blocking; off-loop)."""
        for proc in self._spawned:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - wedged child
                proc.kill()
                proc.wait()
