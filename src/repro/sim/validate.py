"""Post-run invariant validation for simulation results.

Any schedule the simulator produces must satisfy the paper's constraints
(Sec. III-C) regardless of strategy: causality (2), one-burst-at-a-time
(3), and fixed train departure times (5) — plus bookkeeping invariants
(every packet delivered exactly once, energy attribution consistent).

:func:`validate_result` returns a list of violation strings (empty =
clean); :func:`assert_valid` raises.  Property tests run every random
workload through it, and downstream users can sanity-check custom
strategies the same way.
"""

from __future__ import annotations

from typing import List

from repro.sim.results import SimulationResult

__all__ = ["validate_result", "assert_valid", "InvalidScheduleError"]

_EPS = 1e-9


def _tol(*timestamps: float) -> float:
    """Comparison tolerance for timestamps of the given magnitudes.

    Purely absolute 1e-9 is below float64 spacing once timestamps grow
    past ~2^30 s and — more practically — rejects legitimate last-bit
    rounding on day-long horizons: at t = 86 400 s one ulp is ~1.5e-11,
    and a handful of accumulated rounding steps in the burst integrator
    exceeds 1e-9 absolute while being exactly the kind of noise these
    checks must ignore.  So: absolute 1e-9 near zero, relative 1e-9 at
    scale, whichever is larger.
    """
    scale = max((abs(t) for t in timestamps), default=0.0)
    return max(_EPS, _EPS * scale)


class InvalidScheduleError(AssertionError):
    """A simulation result violated a schedule invariant."""


def validate_result(result: SimulationResult) -> List[str]:
    """Check every schedule invariant; returns violation descriptions."""
    violations: List[str] = []

    # (3) Bursts are time-ordered and never overlap.
    for a, b in zip(result.records, result.records[1:]):
        if b.start < a.start - _tol(a.start, b.start):
            violations.append(
                f"bursts out of order: {b.start:.3f} after {a.start:.3f}"
            )
        if b.start < a.end - _tol(a.end, b.start):
            violations.append(
                f"burst at {b.start:.3f} overlaps burst ending {a.end:.3f}"
            )

    # (2) Causality: no packet scheduled before its arrival.
    for p in result.packets:
        if p.scheduled_time is not None and p.scheduled_time < (
            p.arrival_time - _tol(p.arrival_time, p.scheduled_time)
        ):
            violations.append(
                f"packet {p.packet_id} scheduled at {p.scheduled_time:.3f} "
                f"before arrival {p.arrival_time:.3f}"
            )

    # Delivery: every packet scheduled, and carried by exactly one burst.
    carried: dict = {}
    for record in result.records:
        for pid in record.packet_ids:
            carried[pid] = carried.get(pid, 0) + 1
    for p in result.packets:
        if p.scheduled_time is None:
            violations.append(f"packet {p.packet_id} never scheduled")
            continue
        count = carried.get(p.packet_id, 0)
        if count != 1:
            violations.append(
                f"packet {p.packet_id} carried by {count} bursts (expected 1)"
            )

    # (5) Train departures: enough heartbeat-carrying bursts, and none
    # leaves before its heartbeat's nominal departure time.  (Downlink
    # piggyback companions share kind="piggyback" without carrying the
    # heartbeat itself, so the carrier count is a lower-bound check.)
    if result.heartbeats:
        carriers = sorted(
            (r for r in result.records if r.kind in ("heartbeat", "piggyback")),
            key=lambda r: r.start,
        )
        if len(carriers) < len(result.heartbeats):
            violations.append(
                f"{len(result.heartbeats)} heartbeats but only "
                f"{len(carriers)} carrier bursts"
            )
        for hb, record in zip(result.heartbeats, carriers):
            if record.start < hb.time - _tol(hb.time, record.start):
                violations.append(
                    f"heartbeat burst at {record.start:.3f} departs before "
                    f"nominal time {hb.time:.3f}"
                )

    # Energy attribution is internally consistent.
    e = result.energy
    expected_total = e.transmission + e.tail + e.signaling
    if abs(e.total - expected_total) > max(1e-6, 1e-9 * abs(expected_total)):
        violations.append(
            f"energy total {e.total} != transmission+tail+signaling "
            f"{expected_total}"
        )
    if e.transmission < -_EPS or e.tail < -_EPS or e.signaling < -_EPS:
        violations.append("negative energy component")

    return violations


def assert_valid(result: SimulationResult) -> None:
    """Raise :class:`InvalidScheduleError` when any invariant fails."""
    violations = validate_result(result)
    if violations:
        raise InvalidScheduleError(
            "schedule invariants violated:\n  " + "\n  ".join(violations)
        )
