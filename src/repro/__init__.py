"""repro — a full reproduction of eTrain (ICDCS 2015).

eTrain piggybacks delay-tolerant mobile data ("cargoes") onto the 3G
radio tails of IM-app heartbeats ("trains") to minimise cumulative tail
energy without violating user delay budgets.

Quickstart::

    from repro import quick_run
    result = quick_run()
    print(result.summary())

Subpackages
-----------
``repro.core``
    The paper's contribution: delay-cost models, Lyapunov machinery, the
    online scheduler (Algorithm 1) and offline bounds.
``repro.radio``
    3G RRC power-state substrate and tail-energy accounting.
``repro.heartbeat``
    Heartbeat generators, known-app registry, monitor and cycle detector.
``repro.workload`` / ``repro.bandwidth``
    Synthetic cargo traces, user-behaviour traces, channel models.
``repro.sim``
    Slotted simulator, metrics, power-trace extraction.
``repro.baselines``
    Immediate baseline, PerES, eTime, TailEnder, periodic batching.
``repro.android``
    Simulated Android layer (alarms, broadcasts, Xposed hooks, apps).
``repro.measurement``
    Packet capture + cycle analysis + power-monitor emulation.
``repro.experiments``
    One module per paper table/figure.
"""

__version__ = "1.0.0"

from repro.core import (
    CargoAppProfile,
    ETrainScheduler,
    Heartbeat,
    Packet,
    SchedulerConfig,
    TrainAppProfile,
)
from repro.radio import GALAXY_S4_3G, PowerModel
from repro.sim import Scenario, Simulation, SimulationResult, default_scenario, run_strategy

__all__ = [
    "__version__",
    "CargoAppProfile",
    "ETrainScheduler",
    "Heartbeat",
    "Packet",
    "SchedulerConfig",
    "TrainAppProfile",
    "GALAXY_S4_3G",
    "PowerModel",
    "Scenario",
    "Simulation",
    "SimulationResult",
    "default_scenario",
    "run_strategy",
    "quick_run",
]


def quick_run(theta: float = 0.2, horizon: float = 1800.0, seed: int = 0) -> "SimulationResult":
    """Run eTrain on a small default scenario and return the result."""
    from repro.baselines import ETrainStrategy

    scenario = default_scenario(seed=seed, horizon=horizon)
    strategy = ETrainStrategy(scenario.profiles, SchedulerConfig(theta=theta))
    return run_strategy(strategy, scenario)
