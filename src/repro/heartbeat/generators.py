"""Heartbeat schedule generators (Sec. II-B, Fig. 3).

The measurement study found two heartbeat-cycle behaviours in the wild:

* **Fixed cycle** — WeChat (270 s), WhatsApp (240 s), QQ (300 s),
  RenRen (300 s), and everything on iOS via APNS (1800 s).
* **Doubling cycle** — NetEase News starts at 60 s and doubles the cycle
  after every 6 heartbeats until reaching a 480 s ceiling.

Generators are deterministic; :class:`JitteredCycleGenerator` adds bounded
random jitter for robustness experiments (real alarms drift a little).
"""

from __future__ import annotations

import abc
import random
from typing import Iterator, List, Optional, Sequence

from repro.core.packet import Heartbeat
from repro.core.profiles import TrainAppProfile

__all__ = [
    "HeartbeatGenerator",
    "FixedCycleGenerator",
    "DoublingCycleGenerator",
    "JitteredCycleGenerator",
    "StaticScheduleGenerator",
    "merge_heartbeats",
]


class HeartbeatGenerator(abc.ABC):
    """Produces a train app's heartbeat stream ``H_i``."""

    #: Identifier of the app whose heartbeats this generator emits.
    app_id: str

    @abc.abstractmethod
    def heartbeats_until(self, horizon: float) -> List[Heartbeat]:
        """All heartbeats with departure time strictly before ``horizon``."""

    def next_after(self, t: float, horizon: float = float("inf")) -> Optional[Heartbeat]:
        """First heartbeat strictly after ``t`` (None if past ``horizon``).

        Default implementation scans :meth:`heartbeats_until`; subclasses
        with closed forms may override.
        """
        bound = min(horizon, t + self._scan_bound())
        for hb in self.heartbeats_until(bound):
            if hb.time > t:
                return hb
        return None

    def _scan_bound(self) -> float:
        """How far past ``t`` :meth:`next_after` scans by default."""
        return 86_400.0


class FixedCycleGenerator(HeartbeatGenerator):
    """Constant-period heartbeats: ``t_s(h_j) = t0 + j · cycle``."""

    def __init__(self, profile: TrainAppProfile) -> None:
        self.profile = profile
        self.app_id = profile.app_id

    @property
    def cycle(self) -> float:
        return self.profile.cycle

    def heartbeats_until(self, horizon: float) -> List[Heartbeat]:
        out: List[Heartbeat] = []
        t = self.profile.first_heartbeat
        seq = 0
        while t < horizon:
            out.append(
                Heartbeat(
                    app_id=self.app_id,
                    seq=seq,
                    time=t,
                    size_bytes=self.profile.heartbeat_size_bytes,
                )
            )
            seq += 1
            t = self.profile.first_heartbeat + seq * self.profile.cycle
        return out

    def next_after(self, t: float, horizon: float = float("inf")) -> Optional[Heartbeat]:
        t0, c = self.profile.first_heartbeat, self.profile.cycle
        if t < t0:
            seq = 0
        else:
            seq = int((t - t0) // c) + 1
        when = t0 + seq * c
        if when <= t:  # guard float edge cases
            seq += 1
            when = t0 + seq * c
        if when >= horizon:
            return None
        return Heartbeat(
            app_id=self.app_id,
            seq=seq,
            time=when,
            size_bytes=self.profile.heartbeat_size_bytes,
        )


class DoublingCycleGenerator(HeartbeatGenerator):
    """NetEase-style adaptive cycle: doubles every ``beats_per_stage``.

    Starting at ``initial_cycle``, after every ``beats_per_stage``
    heartbeats the cycle doubles, capped at ``max_cycle`` (then constant).
    Defaults follow the paper: 60 s initial, 6 beats per stage, 480 s cap.
    """

    def __init__(
        self,
        app_id: str = "netease",
        heartbeat_size_bytes: int = 120,
        first_heartbeat: float = 0.0,
        initial_cycle: float = 60.0,
        max_cycle: float = 480.0,
        beats_per_stage: int = 6,
    ) -> None:
        if initial_cycle <= 0 or max_cycle < initial_cycle:
            raise ValueError("need 0 < initial_cycle <= max_cycle")
        if beats_per_stage < 1:
            raise ValueError("beats_per_stage must be >= 1")
        self.app_id = app_id
        self.heartbeat_size_bytes = heartbeat_size_bytes
        self.first_heartbeat = first_heartbeat
        self.initial_cycle = initial_cycle
        self.max_cycle = max_cycle
        self.beats_per_stage = beats_per_stage

    def cycle_for_seq(self, seq: int) -> float:
        """Cycle length *following* heartbeat ``seq`` (0-based)."""
        stage = seq // self.beats_per_stage
        return min(self.initial_cycle * (2**stage), self.max_cycle)

    def heartbeats_until(self, horizon: float) -> List[Heartbeat]:
        out: List[Heartbeat] = []
        t = self.first_heartbeat
        seq = 0
        while t < horizon:
            out.append(
                Heartbeat(
                    app_id=self.app_id,
                    seq=seq,
                    time=t,
                    size_bytes=self.heartbeat_size_bytes,
                )
            )
            t += self.cycle_for_seq(seq)
            seq += 1
        return out


class JitteredCycleGenerator(HeartbeatGenerator):
    """Wraps another generator, adding bounded uniform departure jitter.

    Jitter models alarm slack and OS scheduling delay; it never reorders
    heartbeats (bounded by half the minimum inter-beat spacing would be
    required for a hard guarantee, so the wrapper clamps each jittered
    time to stay after the previous one).
    """

    def __init__(
        self,
        inner: HeartbeatGenerator,
        max_jitter: float,
        seed: int = 0,
    ) -> None:
        if max_jitter < 0:
            raise ValueError(f"max_jitter must be >= 0, got {max_jitter}")
        self.inner = inner
        self.app_id = inner.app_id
        self.max_jitter = max_jitter
        self.seed = seed

    def heartbeats_until(self, horizon: float) -> List[Heartbeat]:
        rng = random.Random(self.seed)
        out: List[Heartbeat] = []
        prev_time = -float("inf")
        for hb in self.inner.heartbeats_until(horizon):
            jittered = hb.time + rng.uniform(0.0, self.max_jitter)
            jittered = max(jittered, prev_time + 1e-6, 0.0)
            prev_time = jittered
            if jittered < horizon:
                out.append(
                    Heartbeat(
                        app_id=hb.app_id,
                        seq=hb.seq,
                        time=jittered,
                        size_bytes=hb.size_bytes,
                    )
                )
        return out


class StaticScheduleGenerator(HeartbeatGenerator):
    """Replays a precomputed heartbeat list as a generator.

    Used when the departure schedule comes from elsewhere — a recorded
    capture, a coalesced stream (:mod:`repro.heartbeat.coalesce`), or a
    hand-written test fixture.
    """

    def __init__(self, heartbeats: Sequence[Heartbeat], app_id: str = "static") -> None:
        self._heartbeats = sorted(heartbeats, key=lambda h: (h.time, h.app_id, h.seq))
        self.app_id = app_id

    def heartbeats_until(self, horizon: float) -> List[Heartbeat]:
        return [h for h in self._heartbeats if h.time < horizon]


def merge_heartbeats(
    generators: Sequence[HeartbeatGenerator], horizon: float
) -> List[Heartbeat]:
    """Union H = ∪ H_i of all generators' heartbeats, sorted by time."""
    merged: List[Heartbeat] = []
    for gen in generators:
        merged.extend(gen.heartbeats_until(horizon))
    merged.sort(key=lambda h: (h.time, h.app_id, h.seq))
    return merged
