"""Heartbeat coalescing — what breaking constraint (5) would buy.

eTrain deliberately never touches heartbeat timing ("any modification on
the heartbeat cycle can bring unexpected side-effects").  This module
quantifies the road not taken: if the platform were allowed to *delay*
heartbeats by a bounded slack — short enough that keep-alive timers
still hold — nearby departures from different apps could merge into one
radio wake-up.

:func:`coalesce_heartbeats` greedily clusters a merged heartbeat stream:
each cluster is anchored at its earliest member's time plus nothing
(members may only move *later*, never earlier, and never by more than
``slack``).  The corresponding ablation shows how much tail energy the
platform leaves on the table by honouring (5).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.packet import Heartbeat

__all__ = ["coalesce_heartbeats"]


def coalesce_heartbeats(
    heartbeats: Sequence[Heartbeat], slack: float
) -> List[Heartbeat]:
    """Cluster heartbeats so each departs at its cluster's latest member.

    Greedy left-to-right clustering of the time-sorted stream: a
    heartbeat joins the current cluster when deferring it to the
    cluster's (growing) departure time would delay it by at most
    ``slack``.  All members of a cluster depart together at the
    *latest* member's nominal time — i.e. heartbeats are only ever
    delayed, never advanced, so keep-alive semantics (refresh the
    timeout counter no later than planned + slack) are preserved.

    Returns new :class:`Heartbeat` instances (inputs are immutable).
    """
    if slack < 0:
        raise ValueError(f"slack must be >= 0, got {slack}")
    ordered = sorted(heartbeats, key=lambda h: h.time)
    if not ordered:
        return []

    clusters: List[List[Heartbeat]] = [[ordered[0]]]
    for hb in ordered[1:]:
        anchor = clusters[-1][0]
        # Departing at max(cluster) time: the earliest member is the
        # most-delayed one; admit hb only if the earliest member's
        # total delay stays within slack.
        candidate_departure = max(h.time for h in clusters[-1] + [hb])
        if candidate_departure - anchor.time <= slack:
            clusters[-1].append(hb)
        else:
            clusters.append([hb])

    out: List[Heartbeat] = []
    for cluster in clusters:
        departure = max(h.time for h in cluster)
        for h in cluster:
            out.append(
                Heartbeat(
                    app_id=h.app_id,
                    seq=h.seq,
                    time=departure,
                    size_bytes=h.size_bytes,
                )
            )
    out.sort(key=lambda h: (h.time, h.app_id, h.seq))
    return out
