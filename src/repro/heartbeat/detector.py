"""Offline heartbeat-cycle detection from captured traffic (Sec. II-B).

The measurement study captured raw packets with Wireshark and analysed
the files offline "to determine the heartbeat cycle".  This module is
that analysis: given the departure times of an app's keep-alive-sized
packets, recover either a single stable cycle (WeChat/WhatsApp/QQ/RenRen)
or a staged, doubling cycle (NetEase).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

__all__ = ["CycleStage", "detect_cycle", "detect_cycle_stages", "is_doubling_pattern"]


@dataclass(frozen=True)
class CycleStage:
    """A run of consecutive inter-heartbeat gaps sharing one cycle value."""

    cycle: float
    count: int

    def __post_init__(self) -> None:
        if self.cycle <= 0:
            raise ValueError(f"cycle must be > 0, got {self.cycle}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")


def _gaps(times: Sequence[float]) -> List[float]:
    ordered = sorted(times)
    gaps = [b - a for a, b in zip(ordered, ordered[1:])]
    if any(g <= 0 for g in gaps):
        raise ValueError("heartbeat times must be strictly increasing")
    return gaps


def detect_cycle(
    times: Sequence[float], *, rel_tolerance: float = 0.05
) -> Optional[float]:
    """Recover a single stable heartbeat cycle, or None.

    Returns the median inter-departure gap if at least 80 % of gaps lie
    within ``rel_tolerance`` of it (missed beats appearing as ~integer
    multiples are first folded down); returns None for streams without a
    dominant period (e.g. NetEase's doubling schedule).

    Needs at least 3 departure times (2 gaps).
    """
    if len(times) < 3:
        return None
    gaps = _gaps(times)
    base = statistics.median(gaps)
    folded = []
    for g in gaps:
        multiple = max(1, round(g / base))
        folded.append(g / multiple)
    cycle = statistics.median(folded)
    if cycle <= 0:
        return None
    close = sum(1 for g in folded if abs(g - cycle) <= rel_tolerance * cycle)
    if close / len(folded) >= 0.8:
        return cycle
    return None


def detect_cycle_stages(
    times: Sequence[float], *, rel_tolerance: float = 0.05
) -> List[CycleStage]:
    """Segment the gap sequence into runs of (approximately) equal cycles.

    For a fixed-cycle app this returns one stage; for NetEase it returns
    the staircase 60 s ×6, 120 s ×6, 240 s ×6, 480 s ×… .  Consecutive
    gaps within ``rel_tolerance`` of the current stage's running mean are
    merged into the stage.
    """
    if len(times) < 2:
        return []
    gaps = _gaps(times)
    stages: List[CycleStage] = []
    run_sum = gaps[0]
    run_count = 1
    for g in gaps[1:]:
        mean = run_sum / run_count
        if abs(g - mean) <= rel_tolerance * mean:
            run_sum += g
            run_count += 1
        else:
            stages.append(CycleStage(cycle=run_sum / run_count, count=run_count))
            run_sum = g
            run_count = 1
    stages.append(CycleStage(cycle=run_sum / run_count, count=run_count))
    return stages


def is_doubling_pattern(
    stages: Sequence[CycleStage], *, rel_tolerance: float = 0.1
) -> bool:
    """Whether detected stages follow a cycle-doubling staircase.

    True when every stage's cycle is ≈2× the previous stage's (NetEase's
    adaptive keep-alive).  A single stage is not a doubling pattern.
    """
    if len(stages) < 2:
        return False
    for a, b in zip(stages, stages[1:]):
        ratio = b.cycle / a.cycle
        if abs(ratio - 2.0) > rel_tolerance * 2.0:
            return False
    return True
