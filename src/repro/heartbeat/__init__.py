"""Heartbeat substrate: generators, known apps, monitoring, detection."""

from repro.heartbeat.apps import (
    ANDROID_CYCLE_TABLE,
    ANDROID_TRAIN_APPS,
    IOS_APNS_CYCLE,
    default_train_generators,
    ios_generator,
    known_train_profile,
    make_generator,
)
from repro.heartbeat.detector import (
    CycleStage,
    detect_cycle,
    detect_cycle_stages,
    is_doubling_pattern,
)
from repro.heartbeat.coalesce import coalesce_heartbeats
from repro.heartbeat.generators import (
    DoublingCycleGenerator,
    FixedCycleGenerator,
    HeartbeatGenerator,
    JitteredCycleGenerator,
    StaticScheduleGenerator,
    merge_heartbeats,
)
from repro.heartbeat.monitor import AppObservations, HeartbeatMonitor
from repro.heartbeat.phases import (
    GapStats,
    expected_wait,
    merged_gap_stats,
    optimize_phases,
)

__all__ = [
    "ANDROID_CYCLE_TABLE",
    "ANDROID_TRAIN_APPS",
    "IOS_APNS_CYCLE",
    "default_train_generators",
    "ios_generator",
    "known_train_profile",
    "make_generator",
    "CycleStage",
    "detect_cycle",
    "detect_cycle_stages",
    "is_doubling_pattern",
    "DoublingCycleGenerator",
    "FixedCycleGenerator",
    "HeartbeatGenerator",
    "JitteredCycleGenerator",
    "StaticScheduleGenerator",
    "coalesce_heartbeats",
    "merge_heartbeats",
    "AppObservations",
    "HeartbeatMonitor",
    "GapStats",
    "expected_wait",
    "merged_gap_stats",
    "optimize_phases",
]
