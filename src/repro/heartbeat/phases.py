"""Heartbeat phase analysis and optimisation.

eTrain never alters heartbeat *cycles* ("any modification on the
heartbeat cycle can bring unexpected side-effects"), but the *phases* —
when each app's daemon happens to start — are free, and they matter: a
cargo packet's expected wait for the next train is the length-biased
mean of the merged inter-heartbeat gaps,

    E[wait] = E[gap²] / (2 · E[gap]),

which grows with gap variance.  Aligning phases so all trains fire
together minimises heartbeat energy (tails merge) but maximises waits;
spreading them evens the gaps and halves typical waits.

This module quantifies that trade (:func:`merged_gap_stats`,
:func:`expected_wait`) and searches phase assignments optimising either
objective (:func:`optimize_phases`).  It is an extension the paper's
implementation could apply by simply restarting daemons at chosen
times — no app modification required.
"""

from __future__ import annotations

import itertools
import statistics
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.profiles import TrainAppProfile
from repro.heartbeat.generators import FixedCycleGenerator, merge_heartbeats

__all__ = [
    "GapStats",
    "merged_gap_stats",
    "expected_wait",
    "optimize_phases",
]


@dataclass(frozen=True)
class GapStats:
    """Statistics of the merged heartbeat process's inter-departure gaps."""

    count: int
    mean: float
    stdev: float
    maximum: float
    expected_wait: float

    @property
    def coefficient_of_variation(self) -> float:
        return self.stdev / self.mean if self.mean > 0 else 0.0


def _merged_times(
    cycles: Sequence[float], phases: Sequence[float], horizon: float
) -> List[float]:
    if len(cycles) != len(phases):
        raise ValueError("cycles and phases must align")
    generators = [
        FixedCycleGenerator(
            TrainAppProfile(
                app_id=f"t{i}",
                cycle=cycle,
                heartbeat_size_bytes=100,
                first_heartbeat=phase % cycle,
            )
        )
        for i, (cycle, phase) in enumerate(zip(cycles, phases))
    ]
    return [h.time for h in merge_heartbeats(generators, horizon)]


def merged_gap_stats(
    cycles: Sequence[float],
    phases: Sequence[float],
    horizon: Optional[float] = None,
) -> GapStats:
    """Gap statistics of the merged train process for given phases.

    ``horizon`` defaults to 20x the longest cycle — enough for the
    merged pattern (period lcm of the cycles for rational ratios) to
    express its structure.
    """
    if not cycles:
        raise ValueError("need at least one train")
    if horizon is None:
        horizon = 20.0 * max(cycles)
    times = _merged_times(cycles, phases, horizon)
    if len(times) < 2:
        raise ValueError("horizon too short to observe gaps")
    gaps = [b - a for a, b in zip(times, times[1:]) if b > a]
    if not gaps:  # all heartbeats coincide
        gaps = [0.0]
    mean = statistics.fmean(gaps)
    second_moment = statistics.fmean(g * g for g in gaps)
    return GapStats(
        count=len(gaps),
        mean=mean,
        stdev=statistics.stdev(gaps) if len(gaps) > 1 else 0.0,
        maximum=max(gaps),
        expected_wait=second_moment / (2.0 * mean) if mean > 0 else 0.0,
    )


def expected_wait(
    cycles: Sequence[float],
    phases: Sequence[float],
    horizon: Optional[float] = None,
) -> float:
    """Mean wait of a uniformly-arriving packet for the next heartbeat."""
    return merged_gap_stats(cycles, phases, horizon).expected_wait


def optimize_phases(
    cycles: Sequence[float],
    *,
    objective: str = "wait",
    grid: int = 12,
    horizon: Optional[float] = None,
) -> Tuple[List[float], float]:
    """Grid-search phase offsets for the trains.

    Parameters
    ----------
    cycles:
        Heartbeat cycles of the train apps (first phase is pinned to 0;
        only relative phases matter).
    objective:
        ``"wait"`` minimises the expected piggyback wait (spread the
        trains); ``"align"`` minimises the *number* of distinct
        departure instants (merge tails — the energy-first choice).
    grid:
        Phase candidates per train (fractions of its own cycle).

    Returns
    -------
    (phases, objective_value)
    """
    if objective not in ("wait", "align"):
        raise ValueError(f"objective must be 'wait' or 'align', got {objective!r}")
    if grid < 1:
        raise ValueError(f"grid must be >= 1, got {grid}")
    if not cycles:
        raise ValueError("need at least one train")
    if horizon is None:
        horizon = 20.0 * max(cycles)

    candidate_sets = [[0.0]] + [
        [cycle * k / grid for k in range(grid)] for cycle in cycles[1:]
    ]

    best_phases: Optional[List[float]] = None
    best_value = float("inf")
    for combo in itertools.product(*candidate_sets):
        phases = list(combo)
        if objective == "wait":
            value = expected_wait(cycles, phases, horizon)
        else:
            times = _merged_times(cycles, phases, horizon)
            value = float(len(set(round(t, 6) for t in times)))
        if value < best_value - 1e-12:
            best_value = value
            best_phases = phases
    assert best_phases is not None
    return best_phases, best_value
