"""Registry of measured real-world train apps (Table 1 and Sec. VI-A).

Heartbeat cycles measured on Android (HTC Sensation Z710e, Samsung Note
II, Samsung Galaxy S4 — all identical per app) and on iOS (everything
rides APNS's single 1800 s connection):

==========  ===========  =========  ==============
App         Android      iOS        Heartbeat size
==========  ===========  =========  ==============
WeChat      270 s        1800 s     74 B
WhatsApp    240 s        1800 s     66 B
Mobile QQ   300 s        1800 s     378 B
RenRen      300 s        1800 s     ~90 B
NetEase     60–480 s     1800 s     ~120 B (doubling cycle)
==========  ===========  =========  ==============
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.profiles import TrainAppProfile
from repro.heartbeat.generators import (
    DoublingCycleGenerator,
    FixedCycleGenerator,
    HeartbeatGenerator,
)

__all__ = [
    "ANDROID_TRAIN_APPS",
    "IOS_APNS_CYCLE",
    "known_train_profile",
    "make_generator",
    "default_train_generators",
    "ios_generator",
    "ANDROID_CYCLE_TABLE",
]

#: Measured Android heartbeat cycles/sizes (app_id → profile).
ANDROID_TRAIN_APPS: Dict[str, TrainAppProfile] = {
    "qq": TrainAppProfile(app_id="qq", cycle=300.0, heartbeat_size_bytes=378),
    "wechat": TrainAppProfile(app_id="wechat", cycle=270.0, heartbeat_size_bytes=74),
    "whatsapp": TrainAppProfile(
        app_id="whatsapp", cycle=240.0, heartbeat_size_bytes=66
    ),
    "renren": TrainAppProfile(app_id="renren", cycle=300.0, heartbeat_size_bytes=90),
}

#: All iOS apps share APNS's 1800 s heartbeat.
IOS_APNS_CYCLE = 1800.0

#: Table 1 rows: device → app → cycle (seconds); NetEase is a range.
ANDROID_CYCLE_TABLE: Dict[str, Dict[str, object]] = {
    device: {
        "wechat": 270.0,
        "whatsapp": 240.0,
        "qq": 300.0,
        "renren": 300.0,
        "netease": (60.0, 480.0),
    }
    for device in ("HTC Sensation Z710e", "Samsung Note II", "Samsung GALAXY S IV")
}
ANDROID_CYCLE_TABLE["iPhone 4/iPhone 5"] = {
    app: IOS_APNS_CYCLE for app in ("wechat", "whatsapp", "qq", "renren", "netease")
}


def known_train_profile(app_id: str, first_heartbeat: float = 0.0) -> TrainAppProfile:
    """Profile of a measured Android train app, with a chosen phase."""
    base = ANDROID_TRAIN_APPS.get(app_id)
    if base is None:
        raise KeyError(
            f"unknown train app {app_id!r}; known: {sorted(ANDROID_TRAIN_APPS)}"
        )
    return TrainAppProfile(
        app_id=base.app_id,
        cycle=base.cycle,
        heartbeat_size_bytes=base.heartbeat_size_bytes,
        first_heartbeat=first_heartbeat,
    )


def make_generator(app_id: str, first_heartbeat: float = 0.0) -> HeartbeatGenerator:
    """Generator for any measured app, including NetEase's doubling cycle."""
    if app_id == "netease":
        return DoublingCycleGenerator(first_heartbeat=first_heartbeat)
    return FixedCycleGenerator(known_train_profile(app_id, first_heartbeat))


def default_train_generators(
    count: int = 3, stagger: Optional[float] = 97.0
) -> List[HeartbeatGenerator]:
    """The evaluation's train apps: QQ, WeChat, WhatsApp (Sec. VI-A).

    Parameters
    ----------
    count:
        How many of the three to include (0–3), in that order —
        matches Fig. 10(a)'s 0/1/2/3-train-app sweep.
    stagger:
        Offset between consecutive apps' first heartbeats (None → all
        start at 0).  The default is deliberately *not* a divisor of the
        cycles: app daemons start at arbitrary times in reality, and a
        round offset like 30 s would make all three apps fire together
        at t = 300 k, inflating the variance of merged heartbeat gaps
        (and with it the mean piggyback wait).
    """
    if not (0 <= count <= 3):
        raise ValueError(f"count must be in [0, 3], got {count}")
    order = ["qq", "wechat", "whatsapp"]
    gens: List[HeartbeatGenerator] = []
    for i, app_id in enumerate(order[:count]):
        phase = 0.0 if stagger is None else i * stagger
        gens.append(make_generator(app_id, first_heartbeat=phase))
    return gens


def ios_generator(app_id: str, first_heartbeat: float = 0.0) -> HeartbeatGenerator:
    """The same app on iOS: one APNS connection, 1800 s cycle."""
    size = (
        ANDROID_TRAIN_APPS[app_id].heartbeat_size_bytes
        if app_id in ANDROID_TRAIN_APPS
        else 100
    )
    profile = TrainAppProfile(
        app_id=f"{app_id}-ios",
        cycle=IOS_APNS_CYCLE,
        heartbeat_size_bytes=size,
        first_heartbeat=first_heartbeat,
    )
    return FixedCycleGenerator(profile)
