"""Heartbeat Monitor — the component the Xposed hooks report into (Sec. V-2).

On the real system, a hook appended to each train app's heartbeat-sending
code fires a trigger the instant a heartbeat leaves; the monitor forwards
the event to the scheduler and, because measured cycles are stable,
predicts all future "train departure times" from the observations.

This simulation-side monitor supports:

* learning each app's cycle online from observed departures (robust
  median of inter-departure gaps, tolerating missed observations that
  show up as ~integer multiples of the cycle);
* predicting the next departure per app and across all apps;
* registering listeners (the scheduler, the broadcast module) invoked on
  every observation.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["AppObservations", "HeartbeatMonitor"]

Listener = Callable[[str, float], None]


@dataclass
class AppObservations:
    """Departure history and learned cycle for one train app."""

    app_id: str
    times: List[float] = field(default_factory=list)
    declared_cycle: Optional[float] = None

    @property
    def last_seen(self) -> Optional[float]:
        return self.times[-1] if self.times else None

    def estimated_cycle(self) -> Optional[float]:
        """Learned heartbeat cycle, or the declared one, or None.

        Gaps that are near-integer multiples of the smallest gap are
        folded down (a missed observation looks like 2× or 3× the cycle),
        then the median of the folded gaps is returned.
        """
        if self.declared_cycle is not None:
            return self.declared_cycle
        if len(self.times) < 2:
            return None
        gaps = [b - a for a, b in zip(self.times, self.times[1:]) if b > a]
        if not gaps:
            return None
        base = min(gaps)
        folded = []
        for g in gaps:
            multiple = max(1, round(g / base))
            folded.append(g / multiple)
        return statistics.median(folded)


class HeartbeatMonitor:
    """Tracks heartbeat departures and predicts future ones."""

    def __init__(self) -> None:
        self._apps: Dict[str, AppObservations] = {}
        self._listeners: List[Listener] = []

    @property
    def app_ids(self) -> List[str]:
        """Apps with at least one observation or declaration."""
        return sorted(self._apps)

    def declare_app(self, app_id: str, cycle: Optional[float] = None) -> None:
        """Pre-register a train app, optionally with a known cycle.

        Observations still refine ``last_seen``; a declared cycle skips
        the learning phase (the paper assumes ``t_s(h_{i,0})`` known).
        """
        obs = self._apps.setdefault(app_id, AppObservations(app_id))
        if cycle is not None:
            if cycle <= 0:
                raise ValueError(f"cycle must be > 0, got {cycle}")
            obs.declared_cycle = cycle

    def add_listener(self, listener: Listener) -> None:
        """Register a callback invoked as ``listener(app_id, time)``."""
        self._listeners.append(listener)

    def observe(self, app_id: str, time: float) -> None:
        """Record a heartbeat departure reported by the hook layer."""
        if time < 0:
            raise ValueError(f"time must be >= 0, got {time}")
        obs = self._apps.setdefault(app_id, AppObservations(app_id))
        if obs.times and time < obs.times[-1]:
            raise ValueError(
                f"observations must be chronological: {time} < {obs.times[-1]}"
            )
        obs.times.append(time)
        for listener in self._listeners:
            listener(app_id, time)

    def cycle_of(self, app_id: str) -> Optional[float]:
        """Learned/declared cycle of an app (None if unknown)."""
        obs = self._apps.get(app_id)
        return obs.estimated_cycle() if obs else None

    def predict_next(self, app_id: str, now: float) -> Optional[float]:
        """Predicted next departure of ``app_id`` strictly after ``now``.

        Uses ``last_seen + n · cycle`` for the smallest n putting the
        prediction in the future.  None when the cycle is unknown or the
        app has never been seen.
        """
        obs = self._apps.get(app_id)
        if obs is None or obs.last_seen is None:
            return None
        cycle = obs.estimated_cycle()
        if cycle is None or cycle <= 0:
            return None
        last = obs.last_seen
        if now < last:
            return last if last > now else last + cycle
        n = int((now - last) // cycle) + 1
        predicted = last + n * cycle
        if predicted <= now:  # float guard
            predicted += cycle
        return predicted

    def predict_next_any(self, now: float) -> Optional[Tuple[str, float]]:
        """Earliest predicted departure across all apps (app_id, time)."""
        best: Optional[Tuple[str, float]] = None
        for app_id in self._apps:
            t = self.predict_next(app_id, now)
            if t is not None and (best is None or t < best[1]):
                best = (app_id, t)
        return best

    def has_active_trains(self) -> bool:
        """Whether any train app has been observed or declared.

        When no train app is running, eTrain stops its scheduler "to
        avoid cargo apps' indefinite waiting" (Sec. V-3); callers check
        this before relying on piggyback opportunities.
        """
        return bool(self._apps)
