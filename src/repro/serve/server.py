"""The ``etrain serve`` daemon: NDJSON TCP, sessions, micro-batching.

Three layers, separable for testing:

* :class:`ServeApp` — transport-free request handling.  ``handle(dict)
  -> dict`` owns the op dispatch (hello/open/event/close/batch), the
  session store, and the error mapping; the equivalence and golden
  tests drive it directly, so protocol behaviour is pinned without
  sockets.  ``handle_batch`` additionally *coalesces* adjacent ``batch``
  requests with the same configuration and contiguous device ranges
  into one vectorized fleet-kernel call (see docs/serving.md), then
  answers each request with its own device slice.
* :class:`EtrainServer` — the asyncio shell.  Each connection feeds an
  incremental NDJSON decoder (:class:`repro.workload.trace_io
  .NdjsonDecoder`, shared with the trace reader, so a frame split
  across TCP reads can never mis-parse); decoded frames pass admission
  control (:class:`repro.serve.batcher.Inbox`) and are drained by a
  single processor task in micro-batches, which keeps per-frame
  event-loop overhead amortised under concurrent load.  Shed frames
  are answered immediately with a retryable ``overloaded`` error.
* :func:`run_serve` — the blocking CLI entry.

Ordering guarantees: frames from one connection are processed in the
order received (single FIFO inbox, single processor), so a client that
streams a device's events down one connection observes the engine's
exact slot ordering.  Responses to one connection are written in
processing order; shed responses may overtake queued ones — they carry
``retry_after`` precisely so the client can tell.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.serve.batcher import Inbox
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    SERVER_NAME,
    ProtocolError,
    encode_frame,
    error_response,
    tx_to_wire,
)
from repro.serve.sessions import DeviceSession, SessionStore, profiles_from_specs

__all__ = ["ServeConfig", "ServeApp", "EtrainServer", "run_serve"]


@dataclass
class ServeConfig:
    """Tunables for one server instance (defaults suit tests and CI)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral, resolved after start()
    max_sessions: int = 4096
    inbox_capacity: int = 8192
    inbox_watermark: Optional[int] = None  # None = no soft limit below capacity
    batch_max: int = 256
    read_chunk: int = 65536
    default_bandwidth: str = "wuhan"
    #: Per-``batch``-request device cap (bounds one kernel call's memory).
    batch_devices_max: int = 16384
    #: When set, a second listener serves ``GET /`` with a JSON metrics
    #: snapshot (0 = ephemeral).  ``None`` disables introspection.
    metrics_port: Optional[int] = None


class ServeApp:
    """Transport-independent request handler over a session store."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.store = SessionStore(self.config.max_sessions)
        self._bandwidth_cache: Dict[str, object] = {}
        self._table_cache: Dict[Tuple[str, float], object] = {}
        self.requests = 0
        self.errors = 0

    # -- op dispatch ---------------------------------------------------

    def handle(self, request: object) -> Dict:
        """One request frame in, one response frame out.  Never raises."""
        self.requests += 1
        if not isinstance(request, dict):
            self.errors += 1
            return error_response(
                None,
                ProtocolError("bad_frame", "request frame must be a JSON object"),
                {},
            )
        op = request.get("op")
        try:
            if op == "hello":
                response = self._hello()
            elif op == "open":
                response = self._open(request)
            elif op == "event":
                response = self._event(request)
            elif op == "close":
                response = self._close(request)
            elif op == "batch":
                response = self._run_batch_group([self._parse_batch(request)])[0]
            else:
                raise ProtocolError("unknown_op", f"unknown op {op!r}")
        except ProtocolError as exc:
            self.errors += 1
            return error_response(op if isinstance(op, str) else None, exc, request)
        if "id" in request:
            response["id"] = request["id"]
        return response

    def handle_batch(self, requests: List[object]) -> List[Dict]:
        """Handle one micro-batch, preserving request order.

        Adjacent ``batch`` requests that share a configuration (strategy,
        params, horizon, seed, bandwidth, power model) and cover
        *contiguous* device ranges are fused into one vectorized kernel
        call; each request is then answered with its own device slice —
        bit-identical to serving it alone, because the fleet engine's
        devices never interact and the workload RNG is keyed by absolute
        device index.  Everything else goes through :meth:`handle`
        one frame at a time.
        """
        responses: List[Optional[Dict]] = [None] * len(requests)
        i = 0
        while i < len(requests):
            request = requests[i]
            if not (isinstance(request, dict) and request.get("op") == "batch"):
                responses[i] = self.handle(request)
                i += 1
                continue
            self.requests += 1
            try:
                parsed = [self._parse_batch(request)]
            except ProtocolError as exc:
                self.errors += 1
                responses[i] = error_response("batch", exc, request)
                i += 1
                continue
            j = i + 1
            while j < len(requests):
                nxt = requests[j]
                if not (isinstance(nxt, dict) and nxt.get("op") == "batch"):
                    break
                try:
                    candidate = self._parse_batch(nxt)
                except ProtocolError:
                    break  # let the per-frame path report it
                prev = parsed[-1]
                if candidate["key"] != prev["key"] or candidate[
                    "offset"
                ] != prev["offset"] + prev["devices"]:
                    break
                parsed.append(candidate)
                self.requests += 1
                j += 1
            try:
                group = self._run_batch_group(parsed)
            except ProtocolError as exc:
                self.errors += len(parsed)
                group = [
                    error_response("batch", exc, p["request"]) for p in parsed
                ]
            for k, response in zip(range(i, j), group):
                if "id" in requests[k]:
                    response["id"] = requests[k]["id"]
                responses[k] = response
            i = j
        return responses

    # -- ops -----------------------------------------------------------

    def _hello(self) -> Dict:
        from repro.sim.fleet.registry import vector_strategies
        from repro.sim.parallel.specs import STRATEGY_BUILDERS

        return {
            "ok": True,
            "op": "hello",
            "proto": PROTOCOL_VERSION,
            "server": SERVER_NAME,
            "strategies": sorted(STRATEGY_BUILDERS),
            "scalar_fallback": sorted(
                set(STRATEGY_BUILDERS) - set(vector_strategies())
            ),
            "sessions": len(self.store),
        }

    def _open(self, request: Dict) -> Dict:
        device = self._device(request)
        strategy = request.get("strategy", "etrain")
        if not isinstance(strategy, str):
            raise ProtocolError("bad_request", f"strategy must be a string, got {strategy!r}")
        params = request.get("params") or {}
        if not isinstance(params, dict):
            raise ProtocolError("bad_request", f"params must be an object, got {params!r}")
        apps = request.get("apps")
        profiles = None
        if apps is not None:
            if not isinstance(apps, list):
                raise ProtocolError("bad_request", "apps must be a list of app specs")
            profiles = profiles_from_specs(apps)
        session = DeviceSession(
            device,
            strategy=strategy,
            params=params,
            horizon=self._number(request, "horizon", 7200.0),
            slot=self._number(request, "slot", 1.0),
            power_model=self._power_model(request.get("power_model")),
            bandwidth=self._bandwidth(request.get("bandwidth")),
            profiles=profiles,
        )
        evicted = self.store.put(device, session)
        response = {
            "ok": True,
            "op": "open",
            "device": device,
            "strategy": strategy,
            "horizon": session.horizon,
            "slot": session.slot,
            "n_slots": session.n_slots,
        }
        if evicted is not None:
            response["evicted"] = evicted
        return response

    def _event(self, request: Dict) -> Dict:
        device = self._device(request)
        session = self.store.get(device)
        kind = request.get("kind")
        t = request.get("t")
        if kind == "cargo":
            txs, decisions = session.on_cargo(
                t,
                request.get("app"),
                request.get("size", 0),
                deadline=request.get("deadline"),
                direction=request.get("direction", "up"),
            )
        elif kind == "hb":
            txs, decisions = session.on_heartbeat(
                t,
                request.get("app"),
                request.get("seq", 0),
                request.get("size", 0),
            )
        else:
            raise ProtocolError(
                "bad_event", f"event kind must be 'cargo' or 'hb', got {kind!r}"
            )
        return {
            "ok": True,
            "op": "event",
            "device": device,
            "t": session._watermark,
            "decisions": decisions,
            "tx": [tx_to_wire(r) for r in txs],
            "held": len(session.state.held),
        }

    def _close(self, request: Dict) -> Dict:
        from repro.sim.fleet.reference import summarize_scalar_result

        device = self._device(request)
        session = self.store.get(device)  # surfaces unknown_device before pop
        result, txs, _ = session.close()
        self.store.pop(device)
        return {
            "ok": True,
            "op": "close",
            "device": device,
            "decisions": result.decisions,
            "tx": [tx_to_wire(r) for r in txs],
            "flushed": result.flushed_packets,
            "summary": result.summary(),
            "fleet": summarize_scalar_result(result, session.profiles).to_dict(),
        }

    # -- the bulk op: whole device ranges through the fleet kernel ------

    def _parse_batch(self, request: Dict) -> Dict:
        """Validate one ``batch`` request into a normalized group entry.

        ``key`` is the coalescing identity: two parsed requests with
        equal keys and contiguous device ranges may be fused into one
        kernel call.
        """
        from repro.sim.fleet.registry import has_kernel
        from repro.sim.parallel.specs import STRATEGY_BUILDERS

        strategy = request.get("strategy", "etrain")
        if not isinstance(strategy, str) or strategy not in STRATEGY_BUILDERS:
            raise ProtocolError(
                "bad_request",
                f"unknown strategy {strategy!r}; known: {sorted(STRATEGY_BUILDERS)}",
            )
        if not has_kernel(strategy):
            raise ProtocolError(
                "scalar_only",
                f"strategy {strategy!r} has no vectorized fleet kernel; "
                "open per-device sessions instead",
            )
        params = request.get("params") or {}
        if not isinstance(params, dict):
            raise ProtocolError(
                "bad_request", f"params must be an object, got {params!r}"
            )
        try:
            params_key = json.dumps(params, sort_keys=True, separators=(",", ":"))
        except (TypeError, ValueError):
            raise ProtocolError("bad_request", "params must be JSON-serializable")
        devices = self._int(request, "devices", None, minimum=1)
        if devices > self.config.batch_devices_max:
            raise ProtocolError(
                "bad_request",
                f"devices {devices} above the per-request cap "
                f"{self.config.batch_devices_max}; split into ranges "
                "(contiguous ranges coalesce server-side)",
            )
        offset = self._int(request, "device_offset", 0, minimum=0)
        horizon = self._number(request, "horizon", 7200.0)
        if horizon <= 0:
            raise ProtocolError("bad_request", f"horizon must be > 0, got {horizon}")
        seed = self._int(request, "seed", 0, minimum=0)
        power_name = request.get("power_model")
        self._power_model(power_name)  # validates the name
        bw_spec = request.get("bandwidth")
        if bw_spec is None:
            bw_spec = {"kind": self.config.default_bandwidth}
        self._bandwidth(bw_spec)  # validates + warms the model cache
        bw_key = json.dumps(bw_spec, sort_keys=True, separators=(",", ":"))
        return {
            "request": request,
            "key": (strategy, params_key, horizon, seed, bw_key, power_name),
            "strategy": strategy,
            "params": params,
            "devices": devices,
            "offset": offset,
            "horizon": horizon,
            "seed": seed,
            "bw_spec": bw_spec,
            "power_model": power_name,
        }

    def _channel_table(self, bw_spec: Dict, horizon: float):
        from repro.sim.fleet.channel import ChannelTable

        key = (
            json.dumps(bw_spec, sort_keys=True, separators=(",", ":")),
            float(horizon),
        )
        table = self._table_cache.get(key)
        if table is None:
            if len(self._table_cache) >= 8:
                self._table_cache.clear()
            table = ChannelTable.from_model(self._bandwidth(bw_spec), horizon)
            self._table_cache[key] = table
        return table

    def _run_batch_group(self, parsed: List[Dict]) -> List[Dict]:
        """One fused kernel call over a coalesced run of batch requests.

        ``parsed`` entries share a config key and cover contiguous device
        ranges; responses come back in request order, each summarizing
        its own range (ids are attached by the caller).
        """
        from repro.sim.fleet.accounting import summarize_chunk
        from repro.sim.fleet.engine import simulate_fleet_chunk, slice_chunk_raw
        from repro.sim.fleet.workload import synthesize_fleet

        base = parsed[0]
        total = sum(p["devices"] for p in parsed)
        workload = synthesize_fleet(
            total,
            base["horizon"],
            seed=base["seed"],
            device_offset=base["offset"],
        )
        table = self._channel_table(base["bw_spec"], base["horizon"])
        try:
            raw = simulate_fleet_chunk(
                workload,
                table,
                strategy=base["strategy"],
                params=dict(base["params"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(
                "bad_request",
                f"fleet kernel rejected the configuration: {exc}",
            )
        pm = self._power_model(base["power_model"])
        if pm is None:
            from repro.radio.power_model import GALAXY_S4_3G

            pm = GALAXY_S4_3G
        responses: List[Dict] = []
        lo = 0
        for p in parsed:
            hi = lo + p["devices"]
            summary = summarize_chunk(slice_chunk_raw(raw, lo, hi), pm)
            responses.append(
                {
                    "ok": True,
                    "op": "batch",
                    "strategy": p["strategy"],
                    "devices": p["devices"],
                    "device_offset": p["offset"],
                    "horizon": p["horizon"],
                    "seed": p["seed"],
                    "coalesced": len(parsed),
                    "packets": summary.packets,
                    "bursts": summary.bursts,
                    "fleet": summary.to_dict(),
                }
            )
            lo = hi
        self._count_batch(total, len(parsed))
        return responses

    @staticmethod
    def _count_batch(devices: int, coalesced: int) -> None:
        from repro.obs.metrics import current_registry

        registry = current_registry()
        if registry is None:
            return
        registry.counter("serve.batch_devices").inc(devices)
        registry.counter("serve.batch_requests").inc(coalesced)
        if coalesced > 1:
            registry.counter("serve.batch_coalesced").inc(coalesced)

    # -- request parsing helpers ---------------------------------------

    @staticmethod
    def _device(request: Dict) -> str:
        device = request.get("device")
        if not isinstance(device, str) or not device:
            raise ProtocolError(
                "bad_request", f"device must be a non-empty string, got {device!r}"
            )
        return device

    @staticmethod
    def _number(request: Dict, field: str, default: float) -> float:
        value = request.get(field, default)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ProtocolError(
                "bad_request", f"{field} must be a number, got {value!r}"
            )
        return float(value)

    @staticmethod
    def _int(
        request: Dict, field: str, default: Optional[int], *, minimum: int
    ) -> int:
        value = request.get(field, default)
        if value is None:
            raise ProtocolError("bad_request", f"{field} is required")
        if isinstance(value, bool) or not isinstance(value, int):
            raise ProtocolError(
                "bad_request", f"{field} must be an integer, got {value!r}"
            )
        if value < minimum:
            raise ProtocolError(
                "bad_request", f"{field} must be >= {minimum}, got {value}"
            )
        return value

    @staticmethod
    def _power_model(name: Optional[str]):
        if name is None:
            return None
        from repro.sim.parallel.specs import POWER_MODELS

        if name not in POWER_MODELS:
            raise ProtocolError(
                "bad_request",
                f"unknown power model {name!r}; known: {sorted(POWER_MODELS)}",
            )
        return POWER_MODELS[name]

    def _bandwidth(self, spec: Optional[Dict]):
        if spec is None:
            spec = {"kind": self.config.default_bandwidth}
        if not isinstance(spec, dict) or "kind" not in spec:
            raise ProtocolError(
                "bad_request", f"bandwidth must be an object with 'kind', got {spec!r}"
            )
        key = json.dumps(spec, sort_keys=True, separators=(",", ":"))
        cached = self._bandwidth_cache.get(key)
        if cached is not None:
            return cached
        kind = spec["kind"]
        if kind == "wuhan":
            from repro.bandwidth.synth import wuhan_bandwidth_model

            model = wuhan_bandwidth_model()
        elif kind == "constant":
            from repro.bandwidth.models import ConstantBandwidth

            rate = spec.get("rate")
            if isinstance(rate, bool) or not isinstance(rate, (int, float)) or rate <= 0:
                raise ProtocolError(
                    "bad_request", f"constant bandwidth needs rate > 0, got {rate!r}"
                )
            model = ConstantBandwidth(float(rate))
        else:
            raise ProtocolError(
                "bad_request",
                f"unknown bandwidth kind {kind!r}; known: ['constant', 'wuhan']",
            )
        self._bandwidth_cache[key] = model
        return model


class _Connection:
    """Per-connection bookkeeping: writer + frames still in flight."""

    __slots__ = ("writer", "outstanding", "closed")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.outstanding = 0
        self.closed = False

    def send(self, payload: bytes) -> None:
        if not self.closed:
            try:
                self.writer.write(payload)
            except (ConnectionError, RuntimeError):
                self.closed = True


class EtrainServer:
    """Asyncio NDJSON TCP front-end around a :class:`ServeApp`."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.app = ServeApp(self.config)
        self.inbox = Inbox(
            capacity=self.config.inbox_capacity,
            watermark=self.config.inbox_watermark,
        )
        self.host = self.config.host
        self.port = self.config.port
        self.metrics_port: Optional[int] = None  # resolved after start()
        self._server: Optional[asyncio.AbstractServer] = None
        self._metrics_server: Optional[asyncio.AbstractServer] = None
        self._processor: Optional[asyncio.Task] = None
        self._wake: Optional[asyncio.Event] = None

    async def start(self) -> None:
        """Bind, resolve the ephemeral port, and start the processor."""
        self._wake = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._on_metrics_connection,
                self.config.host,
                self.config.metrics_port,
            )
            self.metrics_port = self._metrics_server.sockets[0].getsockname()[1]
        self._processor = asyncio.create_task(self._process_loop())

    async def stop(self) -> None:
        if self._processor is not None:
            self._processor.cancel()
            try:
                await self._processor
            except asyncio.CancelledError:
                pass
            self._processor = None
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
            self._metrics_server = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # -- connection handling -------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        from repro.workload.trace_io import NdjsonDecoder

        conn = _Connection(writer)
        decoder = NdjsonDecoder()
        try:
            while True:
                data = await reader.read(self.config.read_chunk)
                if not data:
                    break
                self._ingest(conn, decoder.feed(data))
            # A final unterminated line is still a complete request once
            # the peer half-closes — flush and serve it.
            self._ingest(conn, decoder.flush())
            while conn.outstanding > 0:
                await asyncio.sleep(0)
            try:
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass
        finally:
            conn.closed = True
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    def _ingest(self, conn: _Connection, frames) -> None:
        """Admit decoded frames; answer shed/undecodable ones in place."""
        assert self._wake is not None
        for frame in frames:
            if frame.is_blank:
                continue
            if frame.error is not None or not isinstance(frame.obj, dict):
                detail = (
                    "frame is not valid JSON"
                    if frame.error is not None
                    else "request frame must be a JSON object"
                )
                conn.send(
                    encode_frame(
                        error_response(None, ProtocolError("bad_frame", detail), {})
                    )
                )
                continue
            if not self.inbox.offer((conn, frame.obj)):
                conn.send(
                    encode_frame(
                        error_response(
                            frame.obj.get("op")
                            if isinstance(frame.obj.get("op"), str)
                            else None,
                            ProtocolError(
                                "overloaded",
                                f"inbox at watermark ({self.inbox.watermark})",
                                retryable=True,
                                retry_after=self.inbox.retry_after(),
                            ),
                            frame.obj,
                        )
                    )
                )
                continue
            conn.outstanding += 1
            self._wake.set()

    # -- introspection: one-shot HTTP metrics snapshots -----------------

    def metrics_snapshot(self) -> Dict:
        """Point-in-time counters for the metrics endpoint (and tests)."""
        from repro.obs.metrics import current_registry

        registry = current_registry()
        return {
            "server": SERVER_NAME,
            "proto": PROTOCOL_VERSION,
            "sessions": len(self.app.store),
            "inbox": {
                "backlog": self.inbox.backlog,
                "capacity": self.inbox.capacity,
                "watermark": self.inbox.watermark,
                "accepted": self.inbox.accepted,
                "shed": self.inbox.shed,
            },
            "requests": self.app.requests,
            "errors": self.app.errors,
            "metrics": registry.to_dict() if registry is not None else {},
        }

    async def _on_metrics_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Minimal HTTP/1.1: any ``GET`` gets the JSON snapshot.

        Hand-rolled on purpose — the endpoint answers ``curl`` and
        dashboards without pulling an HTTP framework into the tree.  The
        request head is read to its blank line and discarded (no routing:
        every path returns the same document), the response closes the
        connection.
        """
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=5.0
            )
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                asyncio.TimeoutError, ConnectionError):
            writer.close()
            return
        method = head.split(b" ", 1)[0].upper()
        if method == b"GET":
            body = json.dumps(
                self.metrics_snapshot(), sort_keys=True, separators=(",", ":")
            ).encode("utf-8")
            status = b"200 OK"
        else:
            body = b'{"error":"method not allowed; GET only"}'
            status = b"405 Method Not Allowed"
        try:
            writer.write(
                b"HTTP/1.1 " + status + b"\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: " + str(len(body)).encode("ascii") + b"\r\n"
                b"Connection: close\r\n\r\n" + body
            )
            await writer.drain()
        except (ConnectionError, RuntimeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    # -- the processor: micro-batched drain ----------------------------

    async def _process_loop(self) -> None:
        assert self._wake is not None
        metrics = self._metrics()
        while True:
            await self._wake.wait()
            self._wake.clear()
            while len(self.inbox) > 0:
                batch: List[Tuple[_Connection, Dict]] = self.inbox.drain(
                    self.config.batch_max
                )
                # One app call for the whole micro-batch: adjacent
                # same-config bulk requests fuse into single vectorized
                # kernel calls; responses come back in request order.
                # Coalesce each connection's responses into one write.
                responses = self.app.handle_batch([req for _, req in batch])
                per_conn: Dict[int, Tuple[_Connection, List[bytes]]] = {}
                for (conn, _), response in zip(batch, responses):
                    entry = per_conn.get(id(conn))
                    if entry is None:
                        entry = per_conn[id(conn)] = (conn, [])
                    entry[1].append(encode_frame(response))
                    conn.outstanding -= 1
                for conn, payloads in per_conn.values():
                    conn.send(b"".join(payloads))
                if metrics is not None:
                    metrics["frames"].inc(len(batch))
                    metrics["batches"].inc()
                # Yield so readers can refill the inbox — this is what
                # turns concurrent arrivals into the next micro-batch.
                await asyncio.sleep(0)

    @staticmethod
    def _metrics():
        from repro.obs.metrics import current_registry

        registry = current_registry()
        if registry is None:
            return None
        return {
            "frames": registry.counter("serve.frames"),
            "batches": registry.counter("serve.batches"),
        }


def run_serve(config: Optional[ServeConfig] = None) -> int:
    """Blocking entry point for ``etrain serve`` (Ctrl-C to stop)."""
    from repro.obs.metrics import metrics_scope

    config = config or ServeConfig()

    async def _main() -> None:
        server = EtrainServer(config)
        await server.start()
        print(
            f"{SERVER_NAME} proto={PROTOCOL_VERSION} "
            f"listening on {server.host}:{server.port}",
            flush=True,
        )
        if server.metrics_port is not None:
            print(
                f"{SERVER_NAME} metrics on "
                f"http://{server.host}:{server.metrics_port}/",
                flush=True,
            )
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        # A live registry makes serve.frames / serve.batches exist for
        # the metrics endpoint even before the first snapshot request.
        with metrics_scope():
            asyncio.run(_main())
    except KeyboardInterrupt:
        print(f"{SERVER_NAME}: shutting down", flush=True)
    return 0
